//! Offline API-compatible shim for `criterion`.
//!
//! The build environment has no registry access, so this vendored crate
//! provides the macro/type surface the workspace's benches use —
//! `criterion_group!`, `criterion_main!`, `Criterion::benchmark_group`,
//! `bench_with_input`, `bench_function`, `Bencher::iter`, `BenchmarkId`,
//! `Throughput` — backed by a simple median-of-samples wall-clock timer
//! printed to stdout. There is no statistical analysis, HTML report, or
//! baseline comparison; benches compile and produce useful rough numbers.
//!
//! Sample counts are intentionally small (and overridable via the
//! `CRITERION_SHIM_SAMPLES` environment variable) so accidentally *running*
//! the benches — e.g. `cargo test --benches` — stays fast.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Prevents the compiler from optimising away a benchmarked value.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Throughput annotation for a benchmark (recorded, reported per-element).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id composed of a function name and a parameter value.
    pub fn new(name: impl Display, param: impl Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{param}"),
        }
    }

    /// An id consisting only of a parameter value.
    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId {
            id: param.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(id: &str) -> Self {
        BenchmarkId { id: id.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Top-level benchmark driver, handed to every `criterion_group!` function.
pub struct Criterion {
    samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let samples = std::env::var("CRITERION_SHIM_SAMPLES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(5);
        Criterion { samples }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: self.samples,
            throughput: None,
            _criterion: self,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let samples = self.samples;
        run_benchmark(name, samples, None, f);
    }
}

/// A group of benchmarks sharing a name prefix and throughput annotation.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sets the sample count for subsequent benchmarks.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.clamp(1, 20);
        self
    }

    /// Benchmarks `f` with `input` passed by reference.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.id);
        run_benchmark(&label, self.samples, self.throughput, |b| f(b, input));
        self
    }

    /// Benchmarks `f` with no input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().id);
        run_benchmark(&label, self.samples, self.throughput, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    samples: usize,
    elapsed: Option<Duration>,
}

impl Bencher {
    /// Times `f`, recording the median over the configured samples.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let mut times: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            std_black_box(f());
            times.push(start.elapsed());
        }
        times.sort_unstable();
        self.elapsed = Some(times[times.len() / 2]);
    }
}

fn run_benchmark<F>(label: &str, samples: usize, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        samples: samples.max(1),
        elapsed: None,
    };
    f(&mut bencher);
    match bencher.elapsed {
        Some(t) => {
            let per_unit = match throughput {
                Some(Throughput::Elements(n)) if n > 0 => {
                    format!(" ({:.1} ns/elem)", t.as_nanos() as f64 / n as f64)
                }
                Some(Throughput::Bytes(n)) if n > 0 => {
                    format!(" ({:.1} ns/byte)", t.as_nanos() as f64 / n as f64)
                }
                _ => String::new(),
            };
            println!("bench: {label:<50} {t:>12.2?}{per_unit}");
        }
        None => println!("bench: {label:<50} (no measurement)"),
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench`/`cargo test` pass harness flags (e.g. `--bench`,
            // `--test`); this shim accepts and ignores them.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim_smoke");
        group.sample_size(3);
        group.throughput(Throughput::Elements(128));
        group.bench_with_input(BenchmarkId::new("sum", 128), &128u64, |b, &n| {
            b.iter(|| (0..n).map(black_box).sum::<u64>());
        });
        group.bench_function(BenchmarkId::from_parameter("noop"), |b| b.iter(|| 1 + 1));
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_macro_runs() {
        benches();
    }

    #[test]
    fn bencher_records_time() {
        let mut b = Bencher {
            samples: 3,
            elapsed: None,
        };
        b.iter(|| std::thread::sleep(std::time::Duration::from_micros(50)));
        assert!(b.elapsed.unwrap() >= std::time::Duration::from_micros(50));
    }
}
