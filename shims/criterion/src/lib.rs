//! Offline API-compatible shim for `criterion`.
//!
//! The build environment has no registry access, so this vendored crate
//! provides the macro/type surface the workspace's benches use —
//! `criterion_group!`, `criterion_main!`, `Criterion::benchmark_group`,
//! `bench_with_input`, `bench_function`, `Bencher::iter`, `BenchmarkId`,
//! `Throughput` — backed by the measurement procedure in [`measure`]:
//! warmup iterations (discarded) followed by `N` timed samples, with
//! MAD-based outlier rejection (samples farther than `3·MAD` from the
//! median are dropped) and the median of the surviving samples reported.
//! There is no HTML report or baseline comparison, but the per-benchmark
//! statistics (median, MAD, rejected count) are printed and exposed
//! programmatically as [`Measurement`] so harnesses (e.g. the workspace's
//! bench-runner binary) can persist machine-readable numbers.
//!
//! Sample counts are intentionally small (and overridable via the
//! `CRITERION_SHIM_SAMPLES` / `CRITERION_SHIM_WARMUP` environment
//! variables) so accidentally *running* the benches — e.g.
//! `cargo test --benches` — stays fast.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Prevents the compiler from optimising away a benchmarked value.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Throughput annotation for a benchmark (recorded, reported per-element).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id composed of a function name and a parameter value.
    pub fn new(name: impl Display, param: impl Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{param}"),
        }
    }

    /// An id consisting only of a parameter value.
    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId {
            id: param.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(id: &str) -> Self {
        BenchmarkId { id: id.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// One benchmark measurement: warmup + samples + MAD outlier rejection.
#[derive(Clone, Copy, Debug)]
pub struct Measurement {
    /// Median of the samples surviving outlier rejection.
    pub median: Duration,
    /// Median absolute deviation of *all* samples around their median —
    /// the robust spread estimate the rejection rule is based on.
    pub mad: Duration,
    /// Samples taken (after warmup).
    pub samples: usize,
    /// Samples rejected as outliers (farther than `3·MAD` from the median).
    pub rejected: usize,
}

/// Runs `f` `warmup` times unrecorded, then `samples` recorded times, and
/// reduces the timings to a [`Measurement`]: the median of the samples
/// within `3·MAD` of the raw median. With `MAD = 0` (quiescent machine, or
/// timer granularity) nothing is rejected.
///
/// This is the measurement kernel behind [`Bencher::iter`], exposed so
/// harnesses can collect machine-readable numbers without going through
/// the macro surface.
pub fn measure<R, F: FnMut() -> R>(warmup: usize, samples: usize, mut f: F) -> Measurement {
    for _ in 0..warmup {
        std_black_box(f());
    }
    let samples = samples.max(1);
    let mut times: Vec<Duration> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let start = Instant::now();
        std_black_box(f());
        times.push(start.elapsed());
    }
    reduce_samples(times)
}

/// Measures two kernels with **interleaved** samples in ABBA order: pair
/// `2i` runs `a` then `b`, pair `2i+1` runs `b` then `a`. Any drift that
/// is slow against the pair period (thermal throttling, a background
/// process ramping up) then hits both kernels equally, so their *medians
/// stay comparable* — exactly what back-to-back [`measure`] calls cannot
/// guarantee on a noisy machine. Use for A/B comparisons (cached vs
/// rebuilt, before vs after); the absolute numbers mean the same as
/// [`measure`]'s.
pub fn measure_paired<RA, RB, FA, FB>(
    warmup: usize,
    samples: usize,
    mut a: FA,
    mut b: FB,
) -> (Measurement, Measurement)
where
    FA: FnMut() -> RA,
    FB: FnMut() -> RB,
{
    for _ in 0..warmup {
        std_black_box(a());
        std_black_box(b());
    }
    let samples = samples.max(1);
    let mut times_a: Vec<Duration> = Vec::with_capacity(samples);
    let mut times_b: Vec<Duration> = Vec::with_capacity(samples);
    let mut time_a = |times_a: &mut Vec<Duration>| {
        let start = Instant::now();
        std_black_box(a());
        times_a.push(start.elapsed());
    };
    let mut time_b = |times_b: &mut Vec<Duration>| {
        let start = Instant::now();
        std_black_box(b());
        times_b.push(start.elapsed());
    };
    for i in 0..samples {
        if i % 2 == 0 {
            time_a(&mut times_a);
            time_b(&mut times_b);
        } else {
            time_b(&mut times_b);
            time_a(&mut times_a);
        }
    }
    (reduce_samples(times_a), reduce_samples(times_b))
}

/// The shared sample reduction: median of the samples within `3·MAD` of
/// the raw median (see [`measure`]).
fn reduce_samples(times: Vec<Duration>) -> Measurement {
    let samples = times.len();
    let mut sorted = times.clone();
    sorted.sort_unstable();
    let raw_median = sorted[sorted.len() / 2];
    let mut deviations: Vec<Duration> = times.iter().map(|&t| t.abs_diff(raw_median)).collect();
    deviations.sort_unstable();
    let mad = deviations[deviations.len() / 2];
    let cutoff = raw_median + 3 * mad;
    let floor = raw_median.saturating_sub(3 * mad);
    let mut kept: Vec<Duration> = times
        .iter()
        .copied()
        .filter(|&t| t >= floor && t <= cutoff)
        .collect();
    let rejected = samples - kept.len();
    kept.sort_unstable();
    Measurement {
        median: kept[kept.len() / 2],
        mad,
        samples,
        rejected,
    }
}

/// Top-level benchmark driver, handed to every `criterion_group!` function.
pub struct Criterion {
    samples: usize,
    warmup: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let samples = std::env::var("CRITERION_SHIM_SAMPLES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(7);
        let warmup = std::env::var("CRITERION_SHIM_WARMUP")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(2);
        Criterion { samples, warmup }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: self.samples,
            warmup: self.warmup,
            throughput: None,
            _criterion: self,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, self.samples, self.warmup, None, f);
    }
}

/// A group of benchmarks sharing a name prefix and throughput annotation.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    warmup: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sets the sample count for subsequent benchmarks.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.clamp(1, 20);
        self
    }

    /// Benchmarks `f` with `input` passed by reference.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.id);
        run_benchmark(&label, self.samples, self.warmup, self.throughput, |b| {
            f(b, input)
        });
        self
    }

    /// Benchmarks `f` with no input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().id);
        run_benchmark(&label, self.samples, self.warmup, self.throughput, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    samples: usize,
    warmup: usize,
    measurement: Option<Measurement>,
}

impl Bencher {
    /// Times `f` via [`measure`]: warmup, `samples` timed runs, MAD-based
    /// outlier rejection, median of the survivors.
    pub fn iter<R, F: FnMut() -> R>(&mut self, f: F) {
        self.measurement = Some(measure(self.warmup, self.samples, f));
    }
}

fn run_benchmark<F>(
    label: &str,
    samples: usize,
    warmup: usize,
    throughput: Option<Throughput>,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        samples: samples.max(1),
        warmup,
        measurement: None,
    };
    f(&mut bencher);
    match bencher.measurement {
        Some(m) => {
            let t = m.median;
            let per_unit = match throughput {
                Some(Throughput::Elements(n)) if n > 0 => {
                    format!(" ({:.1} ns/elem)", t.as_nanos() as f64 / n as f64)
                }
                Some(Throughput::Bytes(n)) if n > 0 => {
                    format!(" ({:.1} ns/byte)", t.as_nanos() as f64 / n as f64)
                }
                _ => String::new(),
            };
            let rejected = if m.rejected > 0 {
                format!(", {} outlier(s) rejected", m.rejected)
            } else {
                String::new()
            };
            println!(
                "bench: {label:<50} {t:>12.2?} ±{:.2?} [n={}{rejected}]{per_unit}",
                m.mad, m.samples
            );
        }
        None => println!("bench: {label:<50} (no measurement)"),
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench`/`cargo test` pass harness flags (e.g. `--bench`,
            // `--test`); this shim accepts and ignores them.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim_smoke");
        group.sample_size(3);
        group.throughput(Throughput::Elements(128));
        group.bench_with_input(BenchmarkId::new("sum", 128), &128u64, |b, &n| {
            b.iter(|| (0..n).map(black_box).sum::<u64>());
        });
        group.bench_function(BenchmarkId::from_parameter("noop"), |b| b.iter(|| 1 + 1));
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_macro_runs() {
        benches();
    }

    #[test]
    fn bencher_records_time() {
        let mut b = Bencher {
            samples: 3,
            warmup: 1,
            measurement: None,
        };
        b.iter(|| std::thread::sleep(std::time::Duration::from_micros(50)));
        let m = b.measurement.unwrap();
        assert!(m.median >= std::time::Duration::from_micros(50));
        assert_eq!(m.samples, 3);
    }

    #[test]
    fn measure_runs_warmup_and_samples() {
        let mut calls = 0u32;
        let m = measure(2, 5, || calls += 1);
        assert_eq!(calls, 7, "warmup runs must execute but not be recorded");
        assert_eq!(m.samples, 5);
        assert!(m.rejected < 5, "median itself can never be rejected");
    }

    #[test]
    fn measure_paired_interleaves_and_records_both() {
        let mut a_calls = 0u32;
        let mut b_calls = 0u32;
        let (ma, mb) = measure_paired(2, 6, || a_calls += 1, || b_calls += 1);
        assert_eq!(a_calls, 8, "2 warmup + 6 samples for kernel a");
        assert_eq!(b_calls, 8, "2 warmup + 6 samples for kernel b");
        assert_eq!(ma.samples, 6);
        assert_eq!(mb.samples, 6);
        // A deliberately slower kernel must measure slower than a faster
        // one even though their samples interleave.
        let (fast, slow) = measure_paired(
            1,
            5,
            || std::thread::sleep(std::time::Duration::from_micros(100)),
            || std::thread::sleep(std::time::Duration::from_micros(900)),
        );
        assert!(fast.median < slow.median);
    }

    #[test]
    fn mad_rejection_discards_a_single_spike() {
        // 9 fast runs and one deliberate spike: the spike must be rejected
        // whenever the fast runs show any timer-visible spread (MAD > 0);
        // with MAD == 0 the cutoff collapses to the median and the spike is
        // rejected too. Either way the median must stay at fast-run scale.
        let mut i = 0;
        let m = measure(0, 10, || {
            i += 1;
            if i == 4 {
                std::thread::sleep(std::time::Duration::from_millis(30));
            } else {
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
        });
        assert!(
            m.median < std::time::Duration::from_millis(15),
            "median {:?} dragged up by the spike",
            m.median
        );
        assert!(m.rejected >= 1, "spike not rejected (mad = {:?})", m.mad);
    }
}
