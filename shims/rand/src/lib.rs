//! Offline API-compatible shim for the `rand` crate (0.9-style surface).
//!
//! The build environment has no registry access, so this vendored crate
//! implements exactly the subset of `rand` the workspace uses: a seedable
//! `StdRng` (xoshiro256++ seeded via SplitMix64), `Rng::random` /
//! `Rng::random_range`, slice shuffling, and index sampling without
//! replacement. Streams are deterministic per seed, which is all the
//! experiment harness relies on; no claim of statistical quality beyond
//! what xoshiro256++ provides.

use std::ops::{Range, RangeInclusive};

/// A source of random `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable RNG constructors.
pub trait SeedableRng: Sized {
    /// Builds an RNG whose stream is a deterministic function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (`f64`/`f32`: uniform in `[0, 1)`; integers: uniform over the full
    /// range; `bool`: fair coin).
    fn random<T: StandardUniform>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range`.
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.random::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable from their "standard" distribution via [`Rng::random`].
pub trait StandardUniform {
    /// Draws one sample from `rng`.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl StandardUniform for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> f64 {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardUniform for bool {
    fn sample<R: RngCore>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardUniform for $t {
            fn sample<R: RngCore>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable via [`Rng::random_range`].
pub trait SampleRange {
    /// The element type of the range.
    type Output;
    /// Draws one sample from `rng`, uniform over the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> Self::Output;
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange for RangeInclusive<f64> {
    type Output = f64;
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "empty range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        lo + u * (hi - lo)
    }
}

macro_rules! impl_sample_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty range");
                let span = (hi as u128).wrapping_sub(lo as u128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_sample_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform integer in `[0, span)` by rejection sampling (no modulo bias).
fn uniform_u64<R: RngCore>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    let zone = u64::MAX - (u64::MAX % span) - 1;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

pub mod rngs {
    //! Concrete RNG implementations.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++ seeded via SplitMix64.
    ///
    /// Deterministic per seed; not cryptographically secure (neither is the
    /// real `StdRng` guarantee this workspace relies on — only seeded
    /// reproducibility).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related sampling: shuffling and index sampling.

    use super::{Rng, RngCore};

    /// Extension trait adding in-place shuffling to slices.
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }

    pub mod index {
        //! Sampling indices without replacement.

        use super::super::{Rng, RngCore};

        /// A set of sampled indices (always vector-backed in this shim).
        #[derive(Clone, Debug)]
        pub struct IndexVec(Vec<usize>);

        impl IndexVec {
            /// Consumes the set, returning the indices in sampled order.
            pub fn into_vec(self) -> Vec<usize> {
                self.0
            }

            /// Number of sampled indices.
            pub fn len(&self) -> usize {
                self.0.len()
            }

            /// Whether the sample is empty.
            pub fn is_empty(&self) -> bool {
                self.0.is_empty()
            }

            /// Iterates over the sampled indices.
            pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
                self.0.iter().copied()
            }
        }

        /// Samples `amount` distinct indices from `0..length` (partial
        /// Fisher–Yates).
        ///
        /// # Panics
        ///
        /// Panics if `amount > length`.
        pub fn sample<R: RngCore>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
            assert!(
                amount <= length,
                "cannot sample {amount} indices from 0..{length}"
            );
            let mut pool: Vec<usize> = (0..length).collect();
            for i in 0..amount {
                let j = rng.random_range(i..length);
                pool.swap(i, j);
            }
            pool.truncate(amount);
            IndexVec(pool)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::{index::sample, SliceRandom};
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_sampling_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x = rng.random_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.random_range(-2.5..=2.5f64);
            assert!((-2.5..=2.5).contains(&y));
            let z = rng.random_range(-5i64..5);
            assert!((-5..5).contains(&z));
        }
    }

    #[test]
    fn range_sampling_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.random_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut v: Vec<u32> = (0..100).collect();
        let mut rng = StdRng::seed_from_u64(4);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn index_sample_is_distinct_and_in_range() {
        let mut rng = StdRng::seed_from_u64(5);
        let idx = sample(&mut rng, 50, 20).into_vec();
        assert_eq!(idx.len(), 20);
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 20);
        assert!(idx.iter().all(|&i| i < 50));
    }
}
