//! Offline API-compatible shim for `proptest`.
//!
//! The build environment has no registry access, so this vendored crate
//! implements the subset of proptest this workspace uses: the `proptest!`
//! macro (with `#![proptest_config(..)]`, `pat in strategy` bindings, and
//! `?`-compatible bodies), `prop_assert!`/`prop_assert_eq!`/`prop_assume!`,
//! range and collection strategies, and `Strategy::prop_map`.
//!
//! Differences from real proptest, deliberately accepted for a shim:
//! cases are generated from a seed derived from the test name (fully
//! deterministic across runs — there is no `PROPTEST_CASES`/persistence
//! machinery), and failing inputs are **not shrunk**; the failure message
//! instead reports the generated values via `Debug` where available.

use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Why a generated test case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case failed an assertion; carries the rendered message.
    Fail(String),
    /// The case was rejected by `prop_assume!` and should be retried.
    Reject(String),
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Builds a rejection with the given message.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "test case failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "test case rejected: {m}"),
        }
    }
}

/// Result type of a generated test case body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration (`cases` is the number of passing cases required).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Maximum rejected cases (via `prop_assume!`) tolerated globally.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

impl ProptestConfig {
    /// A config requiring `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }
}

/// A generator of random values of type [`Strategy::Value`].
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<F, U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Filters generated values, rejecting (and regenerating) mismatches.
    fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            f,
            reason,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
#[derive(Clone, Copy, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, F, U> Strategy for Map<S, F>
where
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy adapter produced by [`Strategy::prop_filter`].
#[derive(Clone, Copy, Debug)]
pub struct Filter<S, F> {
    inner: S,
    f: F,
    reason: &'static str,
}

impl<S: Strategy, F> Strategy for Filter<S, F>
where
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 consecutive values: {}",
            self.reason
        );
    }
}

/// A strategy that always yields clones of one value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut StdRng) -> f64 {
        rng.random_range(self.start..self.end)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut StdRng) -> f32 {
        rng.random_range(self.start as f64..self.end as f64) as f32
    }
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.start..self.end)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub mod bool {
    //! Boolean strategies.

    use super::Strategy;
    use rand::Rng;

    /// Strategy yielding a fair coin flip.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// Generates `true` or `false` with equal probability.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut rand::rngs::StdRng) -> bool {
            rng.random()
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::Strategy;
    use rand::Rng;

    /// Inclusive-exclusive bounds on a generated collection's size.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from a [`SizeRange`].
    #[derive(Clone, Copy, Debug)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// Generates vectors whose elements come from `elem` and whose length
    /// is drawn uniformly from `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut rand::rngs::StdRng) -> Vec<S::Value> {
            let n = if self.size.lo + 1 >= self.size.hi {
                self.size.lo
            } else {
                rng.random_range(self.size.lo..self.size.hi)
            };
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Drives one property: repeatedly generates cases via `body` until
/// `config.cases` succeed, panicking on the first failure.
///
/// Used by the [`proptest!`] macro; not part of the public proptest API.
pub fn run_property<F>(name: &str, config: ProptestConfig, mut body: F)
where
    F: FnMut(&mut StdRng) -> TestCaseResult,
{
    // Seed derived from the test name (FNV-1a) so each property sees a
    // distinct but fully reproducible stream.
    let mut seed: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        seed ^= b as u64;
        seed = seed.wrapping_mul(0x100000001b3);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut passed = 0u32;
    let mut rejected = 0u32;
    let mut case_index = 0u64;
    while passed < config.cases {
        case_index += 1;
        match body(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                if rejected > config.max_global_rejects {
                    panic!(
                        "property {name}: too many rejected cases \
                         ({rejected} rejects for {passed}/{} passes)",
                        config.cases
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "property {name} failed at case #{case_index} \
                     (seed {seed:#x}): {msg}"
                );
            }
        }
    }
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// panicking) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if !(*lhs == *rhs) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($lhs),
                stringify!($rhs),
                lhs,
                rhs
            )));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if *lhs == *rhs {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($lhs),
                stringify!($rhs),
                lhs
            )));
        }
    }};
}

/// Rejects the current case unless the precondition holds; the runner
/// retries with fresh inputs.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Defines property tests: each `fn name(bindings) { body }` becomes a
/// `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($config); $($rest)*);
    };
    (@run ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            $crate::run_property(stringify!($name), config, |rng| {
                $(
                    #[allow(unused_mut)]
                    let $pat = $crate::Strategy::generate(&($strategy), rng);
                )+
                #[allow(unused_mut)]
                let mut body = || -> $crate::TestCaseResult {
                    $body
                    #[allow(unreachable_code)]
                    ::core::result::Result::Ok(())
                };
                body()
            });
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()); $($rest)*);
    };
}

pub mod prelude {
    //! The glob-imported surface, mirroring `proptest::prelude`.
    /// Alias of this crate, so `prop::collection::vec(..)` resolves.
    pub use crate as prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy, TestCaseError, TestCaseResult,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..10, y in -1.0..1.0f64) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.0..1.0).contains(&y));
        }

        #[test]
        fn vec_strategy_sizes(v in prop::collection::vec(0u64..5, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn prop_map_applies(s in prop::collection::vec(0i64..100, 3).prop_map(|v| v.len())) {
            prop_assert_eq!(s, 3);
        }

        #[test]
        fn assume_rejects_and_retries(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }

        #[test]
        fn bool_any_generates(b in crate::bool::ANY) {
            let _ = b;
        }
    }

    #[test]
    #[should_panic(expected = "property")]
    fn failures_panic_with_context() {
        crate::run_property("always_fails", ProptestConfig::with_cases(4), |_rng| {
            Err(TestCaseError::fail("nope"))
        });
    }
}
