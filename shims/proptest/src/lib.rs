//! Offline API-compatible shim for `proptest`.
//!
//! The build environment has no registry access, so this vendored crate
//! implements the subset of proptest this workspace uses: the `proptest!`
//! macro (with `#![proptest_config(..)]`, `pat in strategy` bindings, and
//! `?`-compatible bodies), `prop_assert!`/`prop_assert_eq!`/`prop_assume!`,
//! range and collection strategies, and `Strategy::prop_map`.
//!
//! Failing inputs **are shrunk**, through every combinator. Each strategy
//! generates a value together with a strategy-private [`Strategy::Source`]
//! — the provenance the shrinker operates on (a miniature of real
//! proptest's `ValueTree`). Shrinking therefore happens in *source* space:
//! `prop_map` keeps its inner strategy's source, shrinks that, and re-maps
//! each candidate, so a `vec(..).prop_map(Point::new)` element minimizes
//! its coordinates like any plain vector. The runner greedily walks
//! candidates that still fail until none does, reporting the minimized
//! counterexample next to the original one. Integer and float ranges
//! shrink by binary search toward the in-range value closest to zero
//! (their lower bound when positive); `vec` strategies shrink their length
//! by halving toward the minimum size and then shrink elements pointwise;
//! tuples (one per `proptest!` binding) shrink one component at a time.
//!
//! Other differences from real proptest, deliberately accepted for a
//! shim: cases are generated from a seed derived from the test name
//! (fully deterministic across runs — there is no
//! `PROPTEST_CASES`/persistence machinery).

use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Why a generated test case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case failed an assertion; carries the rendered message.
    Fail(String),
    /// The case was rejected by `prop_assume!` and should be retried.
    Reject(String),
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Builds a rejection with the given message.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "test case failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "test case rejected: {m}"),
        }
    }
}

/// Result type of a generated test case body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration (`cases` is the number of passing cases required).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Maximum rejected cases (via `prop_assume!`) tolerated globally.
    pub max_global_rejects: u32,
    /// Cap on candidate evaluations during shrinking of a failing case.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65_536,
            max_shrink_iters: 4_096,
        }
    }
}

impl ProptestConfig {
    /// A config requiring `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }
}

/// A generator of random values of type [`Strategy::Value`].
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Strategy-private provenance of a generated value: whatever the
    /// strategy needs to re-derive shrink candidates. Combinators thread
    /// it through — [`Map`] stores its *inner* strategy's source, which is
    /// what lets shrinking pass through `prop_map` — and leaf strategies
    /// typically use the value itself.
    type Source: Clone;

    /// Generates one value together with its shrink source.
    fn generate_with_source(&self, rng: &mut StdRng) -> (Self::Value, Self::Source);

    /// Candidate simplifications of a failing value, derived from its
    /// source, most aggressive first — each paired with its own source so
    /// the runner can re-shrink from whichever candidate it adopts. The
    /// runner greedily adopts the first candidate that still fails, so a
    /// halving sequence (jump to the minimum, then successively smaller
    /// jumps back toward the failing value) converges like a binary
    /// search for monotone failure predicates. Default: no candidates
    /// (the value is already minimal).
    fn shrink_source(&self, source: &Self::Source) -> Vec<(Self::Value, Self::Source)> {
        let _ = source;
        Vec::new()
    }

    /// Generates one value (the source is discarded; shrinking callers use
    /// [`Strategy::generate_with_source`]).
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        self.generate_with_source(rng).0
    }

    /// Maps generated values through `f`.
    fn prop_map<F, U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Filters generated values, rejecting (and regenerating) mismatches.
    fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            f,
            reason,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    type Source = S::Source;
    fn generate_with_source(&self, rng: &mut StdRng) -> (Self::Value, Self::Source) {
        (**self).generate_with_source(rng)
    }
    fn shrink_source(&self, source: &Self::Source) -> Vec<(Self::Value, Self::Source)> {
        (**self).shrink_source(source)
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
///
/// Shrinks by **source tracking**: the pre-image of every generated value
/// is kept as the source, shrunk by the inner strategy, and each candidate
/// re-mapped through `f` — so mapped strategies minimize exactly as well
/// as their inputs do.
#[derive(Clone, Copy, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, F, U> Strategy for Map<S, F>
where
    F: Fn(S::Value) -> U,
{
    type Value = U;
    type Source = S::Source;
    fn generate_with_source(&self, rng: &mut StdRng) -> (U, S::Source) {
        let (value, source) = self.inner.generate_with_source(rng);
        ((self.f)(value), source)
    }
    fn shrink_source(&self, source: &S::Source) -> Vec<(U, S::Source)> {
        self.inner
            .shrink_source(source)
            .into_iter()
            .map(|(value, source)| ((self.f)(value), source))
            .collect()
    }
}

/// Strategy adapter produced by [`Strategy::prop_filter`].
#[derive(Clone, Copy, Debug)]
pub struct Filter<S, F> {
    inner: S,
    f: F,
    reason: &'static str,
}

impl<S: Strategy, F> Strategy for Filter<S, F>
where
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    type Source = S::Source;
    fn generate_with_source(&self, rng: &mut StdRng) -> (S::Value, S::Source) {
        for _ in 0..1_000 {
            let (value, source) = self.inner.generate_with_source(rng);
            if (self.f)(&value) {
                return (value, source);
            }
        }
        panic!(
            "prop_filter rejected 1000 consecutive values: {}",
            self.reason
        );
    }
    fn shrink_source(&self, source: &S::Source) -> Vec<(S::Value, S::Source)> {
        // Only candidates that still satisfy the filter are admissible.
        self.inner
            .shrink_source(source)
            .into_iter()
            .filter(|(value, _)| (self.f)(value))
            .collect()
    }
}

/// A strategy that always yields clones of one value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    type Source = ();
    fn generate_with_source(&self, _rng: &mut StdRng) -> (T, ()) {
        (self.0.clone(), ())
    }
}

/// Float shrink candidates: binary search from `value` toward the
/// in-range value closest to zero, most aggressive first — the float
/// analog of the integer halving shrinker. The walk is capped (the exact
/// threshold of a float predicate can need ~1000 halvings to pin down);
/// greedy re-shrinking from each adopted candidate restores convergence.
fn float_shrink_candidates(value: f64, lo: f64, hi: f64) -> Vec<f64> {
    let target = 0.0f64.clamp(lo, hi);
    if value == target {
        return Vec::new();
    }
    let mut out = Vec::new();
    // `hi` is the range's exclusive end: admissible as a direction to
    // shrink toward, never as a candidate itself.
    if target < hi {
        out.push(target);
    }
    let mut delta = value - target;
    for _ in 0..24 {
        delta /= 2.0;
        let candidate = value - delta;
        if candidate == value || candidate == target {
            break;
        }
        out.push(candidate);
    }
    out
}

impl Strategy for Range<f64> {
    type Value = f64;
    type Source = f64;
    fn generate_with_source(&self, rng: &mut StdRng) -> (f64, f64) {
        let v = rng.random_range(self.start..self.end);
        (v, v)
    }
    fn shrink_source(&self, &value: &f64) -> Vec<(f64, f64)> {
        float_shrink_candidates(value, self.start, self.end)
            .into_iter()
            .map(|c| (c, c))
            .collect()
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    type Source = f32;
    fn generate_with_source(&self, rng: &mut StdRng) -> (f32, f32) {
        let v = rng.random_range(self.start as f64..self.end as f64) as f32;
        (v, v)
    }
    fn shrink_source(&self, &value: &f32) -> Vec<(f32, f32)> {
        float_shrink_candidates(value as f64, self.start as f64, self.end as f64)
            .into_iter()
            .map(|c| (c as f32, c as f32))
            .filter(|&(c, _)| c != value)
            .collect()
    }
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            type Source = $t;
            fn generate_with_source(&self, rng: &mut StdRng) -> ($t, $t) {
                let v = rng.random_range(self.start..self.end);
                (v, v)
            }
            fn shrink_source(&self, &value: &$t) -> Vec<($t, $t)> {
                int_shrink_candidates(value, self.start)
                    .into_iter()
                    .map(|c| (c, c))
                    .collect()
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            type Source = $t;
            fn generate_with_source(&self, rng: &mut StdRng) -> ($t, $t) {
                let v = rng.random_range(self.clone());
                (v, v)
            }
            fn shrink_source(&self, &value: &$t) -> Vec<($t, $t)> {
                int_shrink_candidates(value, *self.start())
                    .into_iter()
                    .map(|c| (c, c))
                    .collect()
            }
        }

        impl IntShrink for $t {
            fn int_shrink(self, lo: Self) -> Vec<Self> {
                if self <= lo {
                    return Vec::new();
                }
                // Halving toward `lo`: jump straight to the minimum, then
                // back off by successively halved decrements. Greedy
                // first-failing-candidate descent over this list is a
                // binary search for the smallest failing value.
                let mut out = vec![lo];
                let Some(mut delta) = self.checked_sub(lo) else {
                    // Span exceeds the type (extreme signed ranges): the
                    // jump-to-minimum candidate alone still shrinks.
                    return out;
                };
                loop {
                    delta /= 2;
                    if delta == 0 {
                        break;
                    }
                    let candidate = self - delta;
                    if candidate != lo {
                        out.push(candidate);
                    }
                }
                out
            }
        }
    )*};
}

/// Halving-shrink support for the integer types with range strategies.
trait IntShrink: Sized {
    /// Candidates between `lo` and `self` (exclusive), most aggressive
    /// first; empty when `self` is already at `lo`.
    fn int_shrink(self, lo: Self) -> Vec<Self>;
}

fn int_shrink_candidates<T: IntShrink>(value: T, lo: T) -> Vec<T> {
    value.int_shrink(lo)
}

impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+)
        where
            $($name::Value: Clone),+
        {
            type Value = ($($name::Value,)+);
            // Each component's (value, source) pair: sibling values are
            // needed to rebuild the whole tuple around one component's
            // shrink candidate.
            type Source = ($(($name::Value, $name::Source),)+);
            fn generate_with_source(&self, rng: &mut StdRng) -> (Self::Value, Self::Source) {
                let source = ($(self.$idx.generate_with_source(rng),)+);
                (($(source.$idx.0.clone(),)+), source)
            }
            fn shrink_source(&self, source: &Self::Source) -> Vec<(Self::Value, Self::Source)> {
                let value_of = |s: &Self::Source| ($(s.$idx.0.clone(),)+);
                let mut out = Vec::new();
                $(
                    for candidate in self.$idx.shrink_source(&source.$idx.1) {
                        let mut next = source.clone();
                        next.$idx = candidate;
                        out.push((value_of(&next), next));
                    }
                )+
                out
            }
        }
    };
}

impl_strategy_tuple!(A: 0);
impl_strategy_tuple!(A: 0, B: 1);
impl_strategy_tuple!(A: 0, B: 1, C: 2);
impl_strategy_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_strategy_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_strategy_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
impl_strategy_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
impl_strategy_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);

pub mod bool {
    //! Boolean strategies.

    use super::Strategy;
    use rand::Rng;

    /// Strategy yielding a fair coin flip.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// Generates `true` or `false` with equal probability.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        type Source = bool;
        fn generate_with_source(&self, rng: &mut rand::rngs::StdRng) -> (bool, bool) {
            let v = rng.random();
            (v, v)
        }
        fn shrink_source(&self, &value: &bool) -> Vec<(bool, bool)> {
            if value {
                vec![(false, false)]
            } else {
                Vec::new()
            }
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::Strategy;
    use rand::Rng;

    /// Inclusive-exclusive bounds on a generated collection's size.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from a [`SizeRange`].
    #[derive(Clone, Copy, Debug)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// Generates vectors whose elements come from `elem` and whose length
    /// is drawn uniformly from `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Clone,
    {
        type Value = Vec<S::Value>;
        // One (value, source) pair per element, so pointwise shrinking can
        // re-derive each element's candidates — including through
        // `prop_map`ped elements like `vec(..).prop_map(Point::new)`.
        type Source = Vec<(S::Value, S::Source)>;
        fn generate_with_source(
            &self,
            rng: &mut rand::rngs::StdRng,
        ) -> (Vec<S::Value>, Self::Source) {
            let n = if self.size.lo + 1 >= self.size.hi {
                self.size.lo
            } else {
                rng.random_range(self.size.lo..self.size.hi)
            };
            let source: Vec<_> = (0..n)
                .map(|_| self.elem.generate_with_source(rng))
                .collect();
            (source.iter().map(|(v, _)| v.clone()).collect(), source)
        }
        fn shrink_source(&self, source: &Self::Source) -> Vec<(Self::Value, Self::Source)> {
            let value_of = |s: &[(S::Value, S::Source)]| -> Vec<S::Value> {
                s.iter().map(|(v, _)| v.clone()).collect()
            };
            let len = source.len();
            let min = self.size.lo.min(len);
            let mut out = Vec::new();
            // Length shrink by halving toward the minimum size (truncating
            // the tail): jump to the minimum first, then back off by
            // halved decrements — the same binary-search discipline as the
            // integer shrinker.
            if len > min {
                out.push((value_of(&source[..min]), source[..min].to_vec()));
                let mut delta = len - min;
                loop {
                    delta /= 2;
                    if delta == 0 {
                        break;
                    }
                    let l = len - delta;
                    if l != min {
                        out.push((value_of(&source[..l]), source[..l].to_vec()));
                    }
                }
            }
            // Pointwise element shrink at the (now minimal) length: one
            // candidate vector per element candidate.
            for (i, (_, elem_source)) in source.iter().enumerate() {
                for candidate in self.elem.shrink_source(elem_source) {
                    let mut next = source.clone();
                    next[i] = candidate;
                    out.push((value_of(&next), next));
                }
            }
            out
        }
    }
}

/// Drives one property: repeatedly generates value tuples from `strategy`
/// until `config.cases` succeed. On the first failure the value is shrunk
/// — candidates from [`Strategy::shrink_source`] are walked greedily,
/// adopting the first candidate that still fails and re-shrinking from its
/// source until no candidate fails (or `config.max_shrink_iters`
/// evaluations are spent) — and the panic reports both the original and
/// the minimized counterexample.
///
/// Used by the [`proptest!`] macro; not part of the public proptest API.
pub fn run_property<S, F>(name: &str, config: ProptestConfig, strategy: &S, test: F)
where
    S: Strategy,
    S::Value: Clone + std::fmt::Debug,
    F: Fn(S::Value) -> TestCaseResult,
{
    // Seed derived from the test name (FNV-1a) so each property sees a
    // distinct but fully reproducible stream.
    let mut seed: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        seed ^= b as u64;
        seed = seed.wrapping_mul(0x100000001b3);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut passed = 0u32;
    let mut rejected = 0u32;
    let mut case_index = 0u64;
    while passed < config.cases {
        case_index += 1;
        let (value, source) = strategy.generate_with_source(&mut rng);
        match test(value.clone()) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                if rejected > config.max_global_rejects {
                    panic!(
                        "property {name}: too many rejected cases \
                         ({rejected} rejects for {passed}/{} passes)",
                        config.cases
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                let (minimal, minimal_msg, steps, evals) = shrink_failure(
                    strategy,
                    &test,
                    value.clone(),
                    source,
                    msg,
                    config.max_shrink_iters,
                );
                panic!(
                    "property {name} failed at case #{case_index} \
                     (seed {seed:#x}): {minimal_msg}\n\
                     \x20   original failing input: {value:?}\n\
                     \x20   minimal failing input ({steps} shrink steps, \
                     {evals} candidate evaluations): {minimal:?}"
                );
            }
        }
    }
}

/// Greedy shrink descent: adopt the first candidate that still fails,
/// restart from its source, stop when no candidate fails or the evaluation
/// budget runs out. Rejected candidates (`prop_assume!`) count as
/// non-failing.
fn shrink_failure<S, F>(
    strategy: &S,
    test: &F,
    mut current: S::Value,
    mut source: S::Source,
    mut current_msg: String,
    max_iters: u32,
) -> (S::Value, String, u32, u32)
where
    S: Strategy,
    S::Value: Clone,
    F: Fn(S::Value) -> TestCaseResult,
{
    let mut evals = 0u32;
    let mut steps = 0u32;
    'descend: loop {
        for (cand_value, cand_source) in strategy.shrink_source(&source) {
            if evals >= max_iters {
                break 'descend;
            }
            evals += 1;
            if let Err(TestCaseError::Fail(msg)) = test(cand_value.clone()) {
                current = cand_value;
                source = cand_source;
                current_msg = msg;
                steps += 1;
                continue 'descend;
            }
        }
        break;
    }
    (current, current_msg, steps, evals)
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// panicking) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if !(*lhs == *rhs) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($lhs),
                stringify!($rhs),
                lhs,
                rhs
            )));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if *lhs == *rhs {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($lhs),
                stringify!($rhs),
                lhs
            )));
        }
    }};
}

/// Rejects the current case unless the precondition holds; the runner
/// retries with fresh inputs.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Defines property tests: each `fn name(bindings) { body }` becomes a
/// `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($config); $($rest)*);
    };
    (@run ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        #[allow(unused_mut)]
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            // One tuple strategy per test: generation AND shrinking treat
            // the bindings as a unit, so failing cases minimize across all
            // of them (one component at a time).
            let strategy = ($($strategy,)+);
            $crate::run_property(stringify!($name), config, &strategy, |($($pat,)+)| {
                let mut body = || -> $crate::TestCaseResult {
                    $body
                    #[allow(unreachable_code)]
                    ::core::result::Result::Ok(())
                };
                body()
            });
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()); $($rest)*);
    };
}

pub mod prelude {
    //! The glob-imported surface, mirroring `proptest::prelude`.
    /// Alias of this crate, so `prop::collection::vec(..)` resolves.
    pub use crate as prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy, TestCaseError, TestCaseResult,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..10, y in -1.0..1.0f64) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.0..1.0).contains(&y));
        }

        #[test]
        fn vec_strategy_sizes(v in prop::collection::vec(0u64..5, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn prop_map_applies(s in prop::collection::vec(0i64..100, 3).prop_map(|v| v.len())) {
            prop_assert_eq!(s, 3);
        }

        #[test]
        fn assume_rejects_and_retries(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }

        #[test]
        fn bool_any_generates(b in crate::bool::ANY) {
            let _ = b;
        }
    }

    #[test]
    #[should_panic(expected = "property")]
    fn failures_panic_with_context() {
        crate::run_property(
            "always_fails",
            ProptestConfig::with_cases(4),
            &(0u32..10,),
            |_v| Err(TestCaseError::fail("nope")),
        );
    }

    /// Captures the panic message of a seeded failing property.
    fn failing_property_message<S>(strategy: S, fails: impl Fn(&S::Value) -> bool) -> String
    where
        S: Strategy,
        S::Value: Clone + std::fmt::Debug,
    {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            crate::run_property(
                "seeded_shrink_case",
                ProptestConfig::with_cases(64),
                &strategy,
                |v| {
                    if fails(&v) {
                        Err(TestCaseError::fail(format!("failing value {v:?}")))
                    } else {
                        Ok(())
                    }
                },
            );
        }));
        let payload = result.expect_err("the property must fail");
        payload
            .downcast_ref::<String>()
            .expect("panic carries a String message")
            .clone()
    }

    #[test]
    fn integer_failure_shrinks_to_the_known_minimum() {
        // Fails for every n >= 37 in 0..10_000: the halving shrinker must
        // land exactly on 37, the minimal counterexample.
        let msg = failing_property_message((0usize..10_000,), |&(n,)| n >= 37);
        assert!(
            msg.contains("minimal failing input") && msg.contains("(37,)"),
            "expected minimized value 37 in:\n{msg}"
        );
        assert!(
            msg.contains("original failing input"),
            "report must keep the original case:\n{msg}"
        );
    }

    #[test]
    fn vec_failure_shrinks_length_and_elements_to_minimum() {
        // Fails whenever the vector has >= 3 elements: minimal failing
        // input is exactly three minimal elements.
        let msg = failing_property_message(
            (crate::collection::vec(0u64..100, 0..12),),
            |(v,): &(Vec<u64>,)| v.len() >= 3,
        );
        assert!(
            msg.contains("([0, 0, 0],)"),
            "expected [0, 0, 0] as the minimized vector in:\n{msg}"
        );
    }

    #[test]
    fn multi_binding_failure_shrinks_componentwise() {
        // Fails whenever a >= 20, regardless of b: the unique greedy fixed
        // point is (20, 0) — a binary-searched to its threshold, b shrunk
        // all the way to its floor because it never affects the failure.
        let msg = failing_property_message((0u32..100, 0u32..100), |&(a, _b)| a >= 20);
        assert!(
            msg.contains("(20, 0)"),
            "expected the minimal pair (20, 0) in:\n{msg}"
        );
    }

    #[test]
    fn shrink_respects_range_lower_bounds() {
        // The failure covers the whole range, so the minimum IS the lower
        // bound — shrinking must not escape the strategy's domain.
        let msg = failing_property_message((5usize..50,), |_| true);
        assert!(
            msg.contains("minimal failing input") && msg.contains("(5,)"),
            "expected the range floor 5 in:\n{msg}"
        );
    }

    #[test]
    fn filter_shrink_keeps_the_predicate() {
        use crate::Strategy as _;
        // Shrink candidates of a filtered strategy must all satisfy the
        // filter (halving produces odd decrements, which get dropped).
        let even = (0u32..1_000).prop_filter("even", |n| n % 2 == 0);
        let candidates = even.shrink_source(&100);
        assert!(!candidates.is_empty());
        assert!(candidates.iter().all(|(c, _)| c % 2 == 0), "{candidates:?}");
        assert!(candidates.iter().any(|&(c, _)| c == 0));
        // A filter away from the shrink path does not impede convergence.
        let bounded = (0u32..1_000).prop_filter("bounded", |&n| n < 900);
        let msg = failing_property_message((bounded,), |&(n,)| n >= 12);
        assert!(
            msg.contains("(12,)"),
            "expected minimized value 12 in:\n{msg}"
        );
    }

    #[test]
    fn int_shrink_candidate_order_is_halving() {
        use crate::Strategy as _;
        let s = 0usize..1_000;
        let values: Vec<usize> = s.shrink_source(&100).into_iter().map(|(v, _)| v).collect();
        assert_eq!(values, vec![0, 50, 75, 88, 94, 97, 99]);
        let values: Vec<usize> = s.shrink_source(&1).into_iter().map(|(v, _)| v).collect();
        assert_eq!(values, vec![0]);
        assert!(s.shrink_source(&0).is_empty());
        let inc = 3usize..=10;
        assert!(inc.shrink_source(&3).is_empty());
        let values: Vec<usize> = inc.shrink_source(&7).into_iter().map(|(v, _)| v).collect();
        assert_eq!(values, vec![3, 5, 6]);
    }

    #[test]
    fn prop_map_failure_shrinks_through_the_map() {
        use crate::Strategy as _;
        // The mapped strategy doubles its source; failing at >= 40 means
        // the *source* must binary-search to 20 and the report shows the
        // re-mapped minimum 40 — impossible without source tracking.
        let doubled = (0u32..1_000).prop_map(|n| n * 2);
        let msg = failing_property_message((doubled,), |&(n,)| n >= 40);
        assert!(
            msg.contains("minimal failing input") && msg.contains("(40,)"),
            "expected the mapped minimum 40 in:\n{msg}"
        );
    }

    #[test]
    fn mapped_elements_inside_a_vec_shrink_their_coordinates() {
        use crate::Strategy as _;
        // The arb_points shape: a vec of prop_map'ped "points". Failure
        // depends only on the first point's coordinate, so greedy descent
        // truncates to one element and minimizes its coordinate through
        // the map — each element shrinks from its own source.
        let points = crate::collection::vec(
            crate::collection::vec(0i64..1_000, 1).prop_map(|coords| coords),
            1..8,
        );
        let msg = failing_property_message((points,), |(v,): &(Vec<Vec<i64>>,)| {
            v.first().is_some_and(|p| p[0] >= 7)
        });
        assert!(
            msg.contains("([[7]],)"),
            "expected one single-coordinate point [[7]] in:\n{msg}"
        );
    }

    #[test]
    fn float_failure_shrinks_toward_zero() {
        // Fails at x >= 50 in 0.0..1000.0: the float halving shrinker must
        // converge to (just above) the threshold, not stay at the original
        // random failing value.
        let msg = failing_property_message((0.0..1_000.0f64,), |&(x,)| x >= 50.0);
        let minimal = msg
            .split("candidate evaluations): (")
            .nth(1)
            .and_then(|tail| tail.split(',').next())
            .and_then(|num| num.parse::<f64>().ok())
            .unwrap_or_else(|| panic!("cannot parse minimal value from:\n{msg}"));
        assert!(
            (50.0..50.001).contains(&minimal),
            "expected the minimum within [50, 50.001), got {minimal} in:\n{msg}"
        );
    }

    #[test]
    fn float_shrink_candidates_stay_in_range() {
        use crate::Strategy as _;
        // Mixed-sign range shrinks toward zero from both sides.
        let s = -8.0..8.0f64;
        for start in [6.5, -6.5] {
            let candidates = s.shrink_source(&start);
            assert!(!candidates.is_empty());
            assert!(candidates.iter().any(|&(c, _)| c == 0.0));
            for &(c, _) in &candidates {
                assert!((-8.0..8.0).contains(&c) && c.abs() < start.abs());
            }
        }
        // Positive-only range shrinks toward its floor, never below.
        let pos = 2.0..100.0f64;
        for &(c, _) in &pos.shrink_source(&64.0) {
            assert!((2.0..64.0).contains(&c));
        }
        assert!(pos.shrink_source(&2.0).is_empty());
        // Negative-only range shrinks toward the (excluded) upper end.
        let neg = -100.0..-2.0f64;
        let candidates = neg.shrink_source(&-64.0);
        assert!(!candidates.is_empty());
        for &(c, _) in &candidates {
            assert!((-64.0..-2.0).contains(&c), "{c}");
        }
    }
}
