//! Offline API-compatible shim for `proptest`.
//!
//! The build environment has no registry access, so this vendored crate
//! implements the subset of proptest this workspace uses: the `proptest!`
//! macro (with `#![proptest_config(..)]`, `pat in strategy` bindings, and
//! `?`-compatible bodies), `prop_assert!`/`prop_assert_eq!`/`prop_assume!`,
//! range and collection strategies, and `Strategy::prop_map`.
//!
//! Failing inputs **are shrunk**: every strategy can propose
//! smaller-or-simpler candidates via [`Strategy::shrink`], and the runner
//! greedily walks candidates that still fail until none does, reporting
//! the minimized counterexample next to the original one. Integer ranges
//! shrink by binary search toward their lower bound; `vec` strategies
//! shrink their length by halving toward the minimum size and then shrink
//! elements pointwise; tuples (one per `proptest!` binding) shrink one
//! component at a time. `prop_map` does not shrink (the shim keeps no
//! pre-image to re-map), and float ranges are left unshrunk — both
//! deliberate shim simplifications.
//!
//! Other differences from real proptest, deliberately accepted for a
//! shim: cases are generated from a seed derived from the test name
//! (fully deterministic across runs — there is no
//! `PROPTEST_CASES`/persistence machinery).

use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Why a generated test case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case failed an assertion; carries the rendered message.
    Fail(String),
    /// The case was rejected by `prop_assume!` and should be retried.
    Reject(String),
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Builds a rejection with the given message.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "test case failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "test case rejected: {m}"),
        }
    }
}

/// Result type of a generated test case body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration (`cases` is the number of passing cases required).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Maximum rejected cases (via `prop_assume!`) tolerated globally.
    pub max_global_rejects: u32,
    /// Cap on candidate evaluations during shrinking of a failing case.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65_536,
            max_shrink_iters: 4_096,
        }
    }
}

impl ProptestConfig {
    /// A config requiring `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }
}

/// A generator of random values of type [`Strategy::Value`].
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Candidate simplifications of a failing `value`, most aggressive
    /// first. The runner greedily adopts the first candidate that still
    /// fails and re-shrinks from there, so a halving sequence (jump to the
    /// minimum, then successively smaller jumps back toward `value`)
    /// converges like a binary search for monotone failure predicates.
    /// Default: no candidates (the value is already minimal).
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let _ = value;
        Vec::new()
    }

    /// Maps generated values through `f`.
    fn prop_map<F, U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Filters generated values, rejecting (and regenerating) mismatches.
    fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            f,
            reason,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        (**self).shrink(value)
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
#[derive(Clone, Copy, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, F, U> Strategy for Map<S, F>
where
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
    // No shrink: the shim keeps no pre-image of the mapped value, so it
    // cannot shrink the source and re-map (real proptest's ValueTree
    // machinery does; deliberately out of scope here).
}

/// Strategy adapter produced by [`Strategy::prop_filter`].
#[derive(Clone, Copy, Debug)]
pub struct Filter<S, F> {
    inner: S,
    f: F,
    reason: &'static str,
}

impl<S: Strategy, F> Strategy for Filter<S, F>
where
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 consecutive values: {}",
            self.reason
        );
    }
    fn shrink(&self, value: &S::Value) -> Vec<S::Value> {
        // Only candidates that still satisfy the filter are admissible.
        self.inner
            .shrink(value)
            .into_iter()
            .filter(|v| (self.f)(v))
            .collect()
    }
}

/// A strategy that always yields clones of one value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut StdRng) -> f64 {
        rng.random_range(self.start..self.end)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut StdRng) -> f32 {
        rng.random_range(self.start as f64..self.end as f64) as f32
    }
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.start..self.end)
            }
            fn shrink(&self, &value: &$t) -> Vec<$t> {
                int_shrink_candidates(value, self.start)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
            fn shrink(&self, &value: &$t) -> Vec<$t> {
                int_shrink_candidates(value, *self.start())
            }
        }

        impl IntShrink for $t {
            fn int_shrink(self, lo: Self) -> Vec<Self> {
                if self <= lo {
                    return Vec::new();
                }
                // Halving toward `lo`: jump straight to the minimum, then
                // back off by successively halved decrements. Greedy
                // first-failing-candidate descent over this list is a
                // binary search for the smallest failing value.
                let mut out = vec![lo];
                let Some(mut delta) = self.checked_sub(lo) else {
                    // Span exceeds the type (extreme signed ranges): the
                    // jump-to-minimum candidate alone still shrinks.
                    return out;
                };
                loop {
                    delta /= 2;
                    if delta == 0 {
                        break;
                    }
                    let candidate = self - delta;
                    if candidate != lo {
                        out.push(candidate);
                    }
                }
                out
            }
        }
    )*};
}

/// Halving-shrink support for the integer types with range strategies.
trait IntShrink: Sized {
    /// Candidates between `lo` and `self` (exclusive), most aggressive
    /// first; empty when `self` is already at `lo`.
    fn int_shrink(self, lo: Self) -> Vec<Self>;
}

fn int_shrink_candidates<T: IntShrink>(value: T, lo: T) -> Vec<T> {
    value.int_shrink(lo)
}

impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+)
        where
            $($name::Value: Clone),+
        {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for candidate in self.$idx.shrink(&value.$idx) {
                        let mut next = value.clone();
                        next.$idx = candidate;
                        out.push(next);
                    }
                )+
                out
            }
        }
    };
}

impl_strategy_tuple!(A: 0);
impl_strategy_tuple!(A: 0, B: 1);
impl_strategy_tuple!(A: 0, B: 1, C: 2);
impl_strategy_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_strategy_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_strategy_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
impl_strategy_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
impl_strategy_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);

pub mod bool {
    //! Boolean strategies.

    use super::Strategy;
    use rand::Rng;

    /// Strategy yielding a fair coin flip.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// Generates `true` or `false` with equal probability.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut rand::rngs::StdRng) -> bool {
            rng.random()
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::Strategy;
    use rand::Rng;

    /// Inclusive-exclusive bounds on a generated collection's size.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from a [`SizeRange`].
    #[derive(Clone, Copy, Debug)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// Generates vectors whose elements come from `elem` and whose length
    /// is drawn uniformly from `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Clone,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut rand::rngs::StdRng) -> Vec<S::Value> {
            let n = if self.size.lo + 1 >= self.size.hi {
                self.size.lo
            } else {
                rng.random_range(self.size.lo..self.size.hi)
            };
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
        fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
            let len = value.len();
            let min = self.size.lo.min(len);
            let mut out = Vec::new();
            // Length shrink by halving toward the minimum size (truncating
            // the tail): jump to the minimum first, then back off by
            // halved decrements — the same binary-search discipline as the
            // integer shrinker.
            if len > min {
                out.push(value[..min].to_vec());
                let mut delta = len - min;
                loop {
                    delta /= 2;
                    if delta == 0 {
                        break;
                    }
                    let l = len - delta;
                    if l != min {
                        out.push(value[..l].to_vec());
                    }
                }
            }
            // Pointwise element shrink at the (now minimal) length: one
            // candidate vector per element candidate.
            for (i, elem) in value.iter().enumerate() {
                for candidate in self.elem.shrink(elem) {
                    let mut next = value.clone();
                    next[i] = candidate;
                    out.push(next);
                }
            }
            out
        }
    }
}

/// Drives one property: repeatedly generates value tuples from `strategy`
/// until `config.cases` succeed. On the first failure the value is shrunk
/// — candidates from [`Strategy::shrink`] are walked greedily, adopting
/// the first candidate that still fails and re-shrinking from it until no
/// candidate fails (or `config.max_shrink_iters` evaluations are spent) —
/// and the panic reports both the original and the minimized
/// counterexample.
///
/// Used by the [`proptest!`] macro; not part of the public proptest API.
pub fn run_property<S, F>(name: &str, config: ProptestConfig, strategy: &S, test: F)
where
    S: Strategy,
    S::Value: Clone + std::fmt::Debug,
    F: Fn(S::Value) -> TestCaseResult,
{
    // Seed derived from the test name (FNV-1a) so each property sees a
    // distinct but fully reproducible stream.
    let mut seed: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        seed ^= b as u64;
        seed = seed.wrapping_mul(0x100000001b3);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut passed = 0u32;
    let mut rejected = 0u32;
    let mut case_index = 0u64;
    while passed < config.cases {
        case_index += 1;
        let value = strategy.generate(&mut rng);
        match test(value.clone()) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                if rejected > config.max_global_rejects {
                    panic!(
                        "property {name}: too many rejected cases \
                         ({rejected} rejects for {passed}/{} passes)",
                        config.cases
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                let (minimal, minimal_msg, steps, evals) =
                    shrink_failure(strategy, &test, value.clone(), msg, config.max_shrink_iters);
                panic!(
                    "property {name} failed at case #{case_index} \
                     (seed {seed:#x}): {minimal_msg}\n\
                     \x20   original failing input: {value:?}\n\
                     \x20   minimal failing input ({steps} shrink steps, \
                     {evals} candidate evaluations): {minimal:?}"
                );
            }
        }
    }
}

/// Greedy shrink descent: adopt the first candidate that still fails,
/// restart from it, stop when no candidate fails or the evaluation budget
/// runs out. Rejected candidates (`prop_assume!`) count as non-failing.
fn shrink_failure<S, F>(
    strategy: &S,
    test: &F,
    mut current: S::Value,
    mut current_msg: String,
    max_iters: u32,
) -> (S::Value, String, u32, u32)
where
    S: Strategy,
    S::Value: Clone,
    F: Fn(S::Value) -> TestCaseResult,
{
    let mut evals = 0u32;
    let mut steps = 0u32;
    'descend: loop {
        for candidate in strategy.shrink(&current) {
            if evals >= max_iters {
                break 'descend;
            }
            evals += 1;
            if let Err(TestCaseError::Fail(msg)) = test(candidate.clone()) {
                current = candidate;
                current_msg = msg;
                steps += 1;
                continue 'descend;
            }
        }
        break;
    }
    (current, current_msg, steps, evals)
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// panicking) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if !(*lhs == *rhs) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($lhs),
                stringify!($rhs),
                lhs,
                rhs
            )));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if *lhs == *rhs {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($lhs),
                stringify!($rhs),
                lhs
            )));
        }
    }};
}

/// Rejects the current case unless the precondition holds; the runner
/// retries with fresh inputs.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Defines property tests: each `fn name(bindings) { body }` becomes a
/// `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($config); $($rest)*);
    };
    (@run ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        #[allow(unused_mut)]
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            // One tuple strategy per test: generation AND shrinking treat
            // the bindings as a unit, so failing cases minimize across all
            // of them (one component at a time).
            let strategy = ($($strategy,)+);
            $crate::run_property(stringify!($name), config, &strategy, |($($pat,)+)| {
                let mut body = || -> $crate::TestCaseResult {
                    $body
                    #[allow(unreachable_code)]
                    ::core::result::Result::Ok(())
                };
                body()
            });
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()); $($rest)*);
    };
}

pub mod prelude {
    //! The glob-imported surface, mirroring `proptest::prelude`.
    /// Alias of this crate, so `prop::collection::vec(..)` resolves.
    pub use crate as prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy, TestCaseError, TestCaseResult,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..10, y in -1.0..1.0f64) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.0..1.0).contains(&y));
        }

        #[test]
        fn vec_strategy_sizes(v in prop::collection::vec(0u64..5, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn prop_map_applies(s in prop::collection::vec(0i64..100, 3).prop_map(|v| v.len())) {
            prop_assert_eq!(s, 3);
        }

        #[test]
        fn assume_rejects_and_retries(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }

        #[test]
        fn bool_any_generates(b in crate::bool::ANY) {
            let _ = b;
        }
    }

    #[test]
    #[should_panic(expected = "property")]
    fn failures_panic_with_context() {
        crate::run_property(
            "always_fails",
            ProptestConfig::with_cases(4),
            &(0u32..10,),
            |_v| Err(TestCaseError::fail("nope")),
        );
    }

    /// Captures the panic message of a seeded failing property.
    fn failing_property_message<S>(strategy: S, fails: impl Fn(&S::Value) -> bool) -> String
    where
        S: Strategy,
        S::Value: Clone + std::fmt::Debug,
    {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            crate::run_property(
                "seeded_shrink_case",
                ProptestConfig::with_cases(64),
                &strategy,
                |v| {
                    if fails(&v) {
                        Err(TestCaseError::fail(format!("failing value {v:?}")))
                    } else {
                        Ok(())
                    }
                },
            );
        }));
        let payload = result.expect_err("the property must fail");
        payload
            .downcast_ref::<String>()
            .expect("panic carries a String message")
            .clone()
    }

    #[test]
    fn integer_failure_shrinks_to_the_known_minimum() {
        // Fails for every n >= 37 in 0..10_000: the halving shrinker must
        // land exactly on 37, the minimal counterexample.
        let msg = failing_property_message((0usize..10_000,), |&(n,)| n >= 37);
        assert!(
            msg.contains("minimal failing input") && msg.contains("(37,)"),
            "expected minimized value 37 in:\n{msg}"
        );
        assert!(
            msg.contains("original failing input"),
            "report must keep the original case:\n{msg}"
        );
    }

    #[test]
    fn vec_failure_shrinks_length_and_elements_to_minimum() {
        // Fails whenever the vector has >= 3 elements: minimal failing
        // input is exactly three minimal elements.
        let msg = failing_property_message(
            (crate::collection::vec(0u64..100, 0..12),),
            |(v,): &(Vec<u64>,)| v.len() >= 3,
        );
        assert!(
            msg.contains("([0, 0, 0],)"),
            "expected [0, 0, 0] as the minimized vector in:\n{msg}"
        );
    }

    #[test]
    fn multi_binding_failure_shrinks_componentwise() {
        // Fails whenever a >= 20, regardless of b: the unique greedy fixed
        // point is (20, 0) — a binary-searched to its threshold, b shrunk
        // all the way to its floor because it never affects the failure.
        let msg = failing_property_message((0u32..100, 0u32..100), |&(a, _b)| a >= 20);
        assert!(
            msg.contains("(20, 0)"),
            "expected the minimal pair (20, 0) in:\n{msg}"
        );
    }

    #[test]
    fn shrink_respects_range_lower_bounds() {
        // The failure covers the whole range, so the minimum IS the lower
        // bound — shrinking must not escape the strategy's domain.
        let msg = failing_property_message((5usize..50,), |_| true);
        assert!(
            msg.contains("minimal failing input") && msg.contains("(5,)"),
            "expected the range floor 5 in:\n{msg}"
        );
    }

    #[test]
    fn filter_shrink_keeps_the_predicate() {
        use crate::Strategy as _;
        // Shrink candidates of a filtered strategy must all satisfy the
        // filter (halving produces odd decrements, which get dropped).
        let even = (0u32..1_000).prop_filter("even", |n| n % 2 == 0);
        let candidates = even.shrink(&100);
        assert!(!candidates.is_empty());
        assert!(candidates.iter().all(|c| c % 2 == 0), "{candidates:?}");
        assert!(candidates.contains(&0));
        // A filter away from the shrink path does not impede convergence.
        let bounded = (0u32..1_000).prop_filter("bounded", |&n| n < 900);
        let msg = failing_property_message((bounded,), |&(n,)| n >= 12);
        assert!(
            msg.contains("(12,)"),
            "expected minimized value 12 in:\n{msg}"
        );
    }

    #[test]
    fn int_shrink_candidate_order_is_halving() {
        use crate::Strategy as _;
        let s = 0usize..1_000;
        assert_eq!(s.shrink(&100), vec![0, 50, 75, 88, 94, 97, 99]);
        assert_eq!(s.shrink(&1), vec![0]);
        assert!(s.shrink(&0).is_empty());
        let inc = 3usize..=10;
        assert_eq!(inc.shrink(&3), Vec::<usize>::new());
        assert_eq!(inc.shrink(&7), vec![3, 5, 6]);
    }
}
