//! Offline API-compatible shim for `parking_lot`.
//!
//! Wraps `std::sync` primitives with parking_lot's non-poisoning interface:
//! `lock()` returns the guard directly (a poisoned std lock is recovered,
//! matching parking_lot's behaviour of not propagating panics as poison).

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader–writer lock whose guards never surface poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader–writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn mutex_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
