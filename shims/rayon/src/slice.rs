//! Parallel slice chunking (rayon's `rayon::slice` traits).
//!
//! `par_chunks` / `par_chunks_mut` are the chunk-friendly entry points the
//! workspace's hot kernels use: the caller picks the chunk granularity,
//! each chunk is one work unit for the pool, and per-chunk inner loops
//! stay plain sequential code the optimizer can vectorize.

use crate::ParIter;

/// Parallel chunked iteration over shared slices.
pub trait ParallelSlice<T: Sync> {
    /// Splits into contiguous chunks of at most `chunk_size` items (the
    /// last may be shorter), iterated in parallel in order.
    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParIter {
            items: self.chunks(chunk_size).collect(),
        }
    }
}

/// Parallel chunked iteration over exclusive slices.
pub trait ParallelSliceMut<T: Send> {
    /// Splits into contiguous mutable chunks of at most `chunk_size` items
    /// (the last may be shorter), iterated in parallel in order.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParIter {
            items: self.chunks_mut(chunk_size).collect(),
        }
    }
}
