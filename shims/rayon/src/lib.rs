//! Offline API-compatible shim for the `rayon` crate — with a real
//! work-stealing thread pool.
//!
//! The build environment has no registry access, so this vendored crate
//! provides rayon's entry points (`par_iter`, `par_iter_mut`,
//! `into_par_iter`, `par_chunks`, thread pools, `join`) backed by the
//! executor in `pool.rs`: per-worker deques with LIFO pop / FIFO steal
//! (crossbeam-deque discipline), steal-feedback-adaptive chunked splitting
//! of iterator jobs (see [`current_chunks_per_thread`]), and
//! blocking-by-participation so nested `ThreadPool::install` calls cannot
//! deadlock. See `pool.rs` for the scheduler itself. The default thread
//! count honours `RAYON_NUM_THREADS` like upstream rayon.
//!
//! ## How this deviates from upstream rayon
//!
//! * **Materialized sources, fused single map stage.** A parallel iterator
//!   here is a `Vec` of items ([`ParIter`]) plus at most one deferred
//!   per-item closure ([`ParMap`]). Chained `map` calls compose into one
//!   closure; other adaptors (`filter`, `flat_map_iter`, …) evaluate in
//!   parallel immediately and yield a new materialized `ParIter`. Upstream
//!   rayon instead fuses arbitrary adaptor pipelines lazily. The practical
//!   difference is an extra `O(n)` buffer per adaptor stage — irrelevant to
//!   this workspace, whose hot paths are all `source → map → reduce/collect`
//!   or `for_each`, which execute fused here exactly as in rayon.
//! * **Deterministic, chunk-ordered reductions.** Items are split into
//!   contiguous chunks; each chunk folds sequentially in input order and
//!   chunk results combine left-to-right. For the associative operations
//!   rayon's `reduce` contract requires (and everything this workspace
//!   uses: `min`/`max`/argmax-with-tie-break, order-preserving collects),
//!   the result is **bit-identical to sequential execution** regardless of
//!   thread count or scheduling. `sum`, `min_by` and `max_by` materialize
//!   the mapped values in parallel and fold them sequentially, so they
//!   match `Iterator` semantics exactly even for non-associative `f64`
//!   addition.
//! * **Order-based combinators are exact, not "any".** `find_any` /
//!   `position_any` return the *first* match (a legal rayon answer,
//!   strengthened to be deterministic). Small-bore combinators (`any`,
//!   `all`, `count`, …) run sequentially over the materialized items; the
//!   expensive stage — the map — is what parallelizes.
//! * **`install` runs on the calling thread.** The closure executes on the
//!   submitter, which participates in its own jobs; upstream moves it onto
//!   a worker. Observable semantics (`current_num_threads`, nesting,
//!   result values) are preserved, and the simulated-`ℓ` thread count the
//!   MapReduce memory model observes is honoured: a pool built with
//!   `num_threads(ℓ)` spawns `ℓ - 1` workers and reports `ℓ`.
//!
//! A pool (or the lazily-built global pool) only parallelizes when its
//! simulated thread count exceeds 1; single-thread pools run every
//! operation inline with no splitting, locking, or allocation beyond the
//! source materialization, so `ℓ = 1` behaves exactly like the old
//! sequential shim.

mod pool;
mod slice;

use std::sync::{Arc, Mutex, OnceLock};

pub use slice::{ParallelSlice, ParallelSliceMut};

/// The default parallelism: `RAYON_NUM_THREADS` when set to a positive
/// integer (matching upstream rayon's global-pool override — the CI
/// determinism matrix relies on it), otherwise the machine's available
/// parallelism (fallback 1). Read once per process.
fn machine_threads() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
    })
}

/// The global pool, built lazily the first time a parallel operation runs
/// outside any [`ThreadPool::install`] scope on a multicore machine.
static GLOBAL: OnceLock<pool::Pool> = OnceLock::new();

fn global_ctx() -> pool::Ctx {
    let threads = machine_threads();
    if threads <= 1 {
        return pool::Ctx {
            threads: 1,
            shared: None,
        };
    }
    let shared = Arc::clone(GLOBAL.get_or_init(|| pool::Pool::new(threads)).shared());
    pool::Ctx {
        threads,
        shared: Some(shared),
    }
}

fn current_context() -> pool::Ctx {
    pool::current_ctx().unwrap_or_else(global_ctx)
}

/// Number of threads of the current pool scope (the simulated parallelism
/// inside [`ThreadPool::install`], otherwise the machine's parallelism).
pub fn current_num_threads() -> usize {
    pool::current_ctx()
        .map(|c| c.threads)
        .unwrap_or_else(machine_threads)
}

/// The chunks-per-thread target of the current pool's adaptive splitter
/// (1 when execution is inline — single thread, no pool).
///
/// The splitter replaces the old fixed `CHUNKS_PER_THREAD = 4`: each pool
/// watches its workers' cross-deque steals and doubles the target (up to
/// 16) while steals are observed — idle workers rebalancing means finer
/// chunks would spread work better — and halves it (down to 2) once the
/// workers are saturated and stop stealing. See `Shared::chunks_per_thread`
/// in `pool.rs` for the feedback rule.
pub fn current_chunks_per_thread() -> usize {
    let ctx = current_context();
    if ctx.threads <= 1 {
        return 1;
    }
    ctx.shared
        .as_ref()
        .map(|s| s.chunks_per_thread())
        .unwrap_or(1)
}

/// The chunk length the adaptive splitter currently targets for a
/// `len`-item parallel scan: `ceil(len / (threads × chunks-per-thread))`,
/// clamped to at least 1. Callers that chunk manually (`par_chunks` /
/// `par_chunks_mut` with per-chunk base-index arithmetic) use this instead
/// of a hard-coded chunk constant; any positive chunk length yields the
/// same results for order-preserving chunked scans, so adaptivity here is
/// purely a performance knob.
pub fn adaptive_chunk_len(len: usize) -> usize {
    let ctx = current_context();
    if ctx.threads <= 1 || len <= 1 {
        return len.max(1);
    }
    let cpt = ctx
        .shared
        .as_ref()
        .map(|s| s.chunks_per_thread())
        .unwrap_or(1);
    let num_chunks = len.min(ctx.threads * cpt).max(1);
    len.div_ceil(num_chunks)
}

/// Splits `items` into contiguous chunks, runs `work(chunk)` for each on
/// the current pool, and returns the per-chunk results in chunk order.
/// The chunk *count* follows the pool's adaptive splitter, so the layout
/// may differ between runs; every consumer of these per-chunk results
/// combines them in chunk order (see the determinism notes in the crate
/// docs), so results never depend on the layout or on scheduling.
fn execute_chunked<T, R, W>(items: Vec<T>, work: W) -> Vec<R>
where
    T: Send,
    R: Send,
    W: Fn(Vec<T>) -> R + Sync,
{
    let len = items.len();
    let ctx = current_context();
    let num_chunks = if ctx.threads <= 1 || len <= 1 {
        1
    } else {
        let cpt = ctx
            .shared
            .as_ref()
            .map(|s| s.chunks_per_thread())
            .unwrap_or(1);
        len.min(ctx.threads * cpt)
    };
    if num_chunks <= 1 || ctx.shared.is_none() {
        return vec![work(items)];
    }
    let chunk_len = len.div_ceil(num_chunks);
    let num_chunks = len.div_ceil(chunk_len);

    // Split from the back so each `split_off` moves only one chunk.
    let mut rest = items;
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(num_chunks);
    for i in (0..num_chunks).rev() {
        chunks.push(rest.split_off(i * chunk_len));
    }
    chunks.reverse();

    let inputs: Vec<Mutex<Option<Vec<T>>>> =
        chunks.into_iter().map(|c| Mutex::new(Some(c))).collect();
    let outputs: Vec<Mutex<Option<R>>> = (0..num_chunks).map(|_| Mutex::new(None)).collect();
    let task = |ci: usize| {
        let chunk = inputs[ci]
            .lock()
            .unwrap()
            .take()
            .expect("chunk executed twice");
        let result = work(chunk);
        *outputs[ci].lock().unwrap() = Some(result);
    };
    ctx.shared
        .as_ref()
        .expect("checked above")
        .run_chunks(num_chunks, &task);
    outputs
        .into_iter()
        .map(|slot| slot.into_inner().unwrap().expect("chunk result missing"))
        .collect()
}

/// Error building a thread pool (never produced by this shim).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for [`ThreadPool`].
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// Creates a builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the pool's thread count.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = Some(n);
        self
    }

    /// Builds the pool, spawning `n - 1` worker threads (the thread calling
    /// [`ThreadPool::install`] is the remaining executor).
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = self
            .num_threads
            .filter(|&n| n > 0)
            .unwrap_or_else(machine_threads);
        Ok(ThreadPool {
            threads: n,
            pool: pool::Pool::new(n),
        })
    }
}

/// A work-stealing thread pool of a configured size.
///
/// Work installed into it runs on the calling thread, which participates
/// in the pool's scheduling alongside the pool's `n - 1` workers;
/// [`current_num_threads`] reports the configured size inside `install`.
pub struct ThreadPool {
    threads: usize,
    pool: pool::Pool,
}

impl ThreadPool {
    /// Runs `f` within the pool's scope: parallel operations inside use
    /// this pool's workers and observe its thread count.
    pub fn install<R: Send>(&self, f: impl FnOnce() -> R + Send) -> R {
        pool::with_ctx(
            pool::Ctx {
                threads: self.threads,
                shared: Some(Arc::clone(self.pool.shared())),
            },
            f,
        )
    }

    /// The pool's thread count.
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }
}

/// Runs two closures, potentially in parallel (the second may be stolen by
/// a pool worker while the caller runs the first), returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let ctx = current_context();
    if ctx.threads <= 1 || ctx.shared.is_none() {
        return (a(), b());
    }
    let slots = (Mutex::new(Some(a)), Mutex::new(Some(b)));
    let results: (Mutex<Option<RA>>, Mutex<Option<RB>>) = (Mutex::new(None), Mutex::new(None));
    let task = |i: usize| {
        if i == 0 {
            let f = slots.0.lock().unwrap().take().expect("join ran twice");
            *results.0.lock().unwrap() = Some(f());
        } else {
            let f = slots.1.lock().unwrap().take().expect("join ran twice");
            *results.1.lock().unwrap() = Some(f());
        }
    };
    ctx.shared
        .as_ref()
        .expect("checked above")
        .run_chunks(2, &task);
    (
        results
            .0
            .into_inner()
            .unwrap()
            .expect("join result missing"),
        results
            .1
            .into_inner()
            .unwrap()
            .expect("join result missing"),
    )
}

/// A parallel iterator over materialized items. Construct via the traits
/// in [`prelude`]; chain a closure with [`ParIter::map`] to get the fused
/// parallel map/reduce stage ([`ParMap`]).
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Maps each item through `f` (deferred: fused with the consuming
    /// operation and executed in parallel).
    pub fn map<F, R>(self, f: F) -> ParMap<T, F>
    where
        F: Fn(T) -> R + Sync,
        R: Send,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Pairs each item with its index.
    pub fn enumerate(self) -> ParIter<(usize, T)> {
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
        }
    }

    /// Keeps items matching `f` (parallel, order-preserving).
    pub fn filter<F>(self, f: F) -> ParIter<T>
    where
        F: Fn(&T) -> bool + Sync,
    {
        let kept = execute_chunked(self.items, |chunk| {
            chunk.into_iter().filter(|x| f(x)).collect::<Vec<T>>()
        });
        ParIter {
            items: kept.into_iter().flatten().collect(),
        }
    }

    /// Maps each item to a filtered option (parallel, order-preserving).
    pub fn filter_map<F, R>(self, f: F) -> ParIter<R>
    where
        F: Fn(T) -> Option<R> + Sync,
        R: Send,
    {
        let kept = execute_chunked(self.items, |chunk| {
            chunk.into_iter().filter_map(&f).collect::<Vec<R>>()
        });
        ParIter {
            items: kept.into_iter().flatten().collect(),
        }
    }

    /// Maps each item to a *serial* iterator and flattens (rayon's
    /// `flat_map_iter`); the outer map runs in parallel.
    pub fn flat_map_iter<F, U>(self, f: F) -> ParIter<U::Item>
    where
        F: Fn(T) -> U + Sync,
        U: IntoIterator,
        U::Item: Send,
    {
        let parts = execute_chunked(self.items, |chunk| {
            chunk.into_iter().flat_map(&f).collect::<Vec<U::Item>>()
        });
        ParIter {
            items: parts.into_iter().flatten().collect(),
        }
    }

    /// Zips with another parallel iterator.
    pub fn zip<U: Send>(self, other: ParIter<U>) -> ParIter<(T, U)> {
        ParIter {
            items: self.items.into_iter().zip(other.items).collect(),
        }
    }

    /// Chains another parallel iterator after this one.
    pub fn chain(mut self, other: ParIter<T>) -> ParIter<T> {
        self.items.extend(other.items);
        self
    }

    /// Runs `f` on every item (parallel).
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        execute_chunked(self.items, |chunk| chunk.into_iter().for_each(&f));
    }

    /// Folds all items starting from `identity()` (rayon's reduce
    /// contract: `identity()` must be a neutral element of the associative
    /// `op`). Chunks fold in input order and combine left-to-right, so for
    /// associative `op` the result is bit-identical to a sequential fold.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> T
    where
        ID: Fn() -> T + Sync,
        OP: Fn(T, T) -> T + Sync,
    {
        let partials = execute_chunked(self.items, |chunk| chunk.into_iter().fold(identity(), &op));
        partials.into_iter().fold(identity(), op)
    }

    /// Collects into any `FromIterator` collection (items are already
    /// materialized; this is a sequential repackaging).
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }

    /// Sums the items (sequential over the materialized items, matching
    /// `Iterator::sum` bit-for-bit even for floats).
    pub fn sum<S: std::iter::Sum<T>>(self) -> S {
        self.items.into_iter().sum()
    }

    /// Number of items.
    pub fn count(self) -> usize {
        self.items.len()
    }

    /// Minimum by a comparison function (`Iterator::min_by` semantics:
    /// first minimum wins ties).
    pub fn min_by<F>(self, f: F) -> Option<T>
    where
        F: FnMut(&T, &T) -> std::cmp::Ordering,
    {
        self.items.into_iter().min_by(f)
    }

    /// Maximum by a comparison function (`Iterator::max_by` semantics:
    /// last maximum wins ties).
    pub fn max_by<F>(self, f: F) -> Option<T>
    where
        F: FnMut(&T, &T) -> std::cmp::Ordering,
    {
        self.items.into_iter().max_by(f)
    }

    /// Maximum by a key function.
    pub fn max_by_key<K: Ord, F>(self, f: F) -> Option<T>
    where
        F: FnMut(&T) -> K,
    {
        self.items.into_iter().max_by_key(f)
    }

    /// Whether any item matches.
    pub fn any<F>(self, f: F) -> bool
    where
        F: FnMut(T) -> bool,
    {
        self.items.into_iter().any(f)
    }

    /// Whether all items match.
    pub fn all<F>(self, f: F) -> bool
    where
        F: FnMut(T) -> bool,
    {
        self.items.into_iter().all(f)
    }

    /// First position matching a predicate (rayon: any position; this
    /// shim: deterministically the first).
    pub fn position_any<F>(self, f: F) -> Option<usize>
    where
        F: FnMut(T) -> bool,
    {
        self.items.into_iter().position(f)
    }

    /// First item matching a predicate (rayon: any match; this shim:
    /// deterministically the first).
    pub fn find_any<F>(self, mut f: F) -> Option<T>
    where
        F: FnMut(&T) -> bool,
    {
        self.items.into_iter().find(|x| f(x))
    }
}

/// A parallel iterator with one fused deferred map stage: the closure runs
/// on the pool, fused into whichever consuming operation is called.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T, F, R> ParMap<T, F>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    /// Composes a further map into the fused stage.
    pub fn map<G, S>(self, g: G) -> ParMap<T, impl Fn(T) -> S + Sync>
    where
        G: Fn(R) -> S + Sync,
        S: Send,
    {
        let f = self.f;
        ParMap {
            items: self.items,
            f: move |x| g(f(x)),
        }
    }

    /// Applies the fused map in parallel, yielding a materialized iterator
    /// for combinators that need the mapped values.
    fn materialize(self) -> ParIter<R> {
        let f = self.f;
        let parts = execute_chunked(self.items, |chunk| {
            chunk.into_iter().map(&f).collect::<Vec<R>>()
        });
        ParIter {
            items: parts.into_iter().flatten().collect(),
        }
    }

    /// Runs the fused map and `g` on every item (parallel).
    pub fn for_each<G>(self, g: G)
    where
        G: Fn(R) + Sync,
    {
        let f = self.f;
        execute_chunked(self.items, |chunk| chunk.into_iter().for_each(|x| g(f(x))));
    }

    /// Fused map + fold per chunk, chunk results combined left-to-right
    /// (see [`ParIter::reduce`] for the determinism contract).
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> R
    where
        ID: Fn() -> R + Sync,
        OP: Fn(R, R) -> R + Sync,
    {
        let f = self.f;
        let partials = execute_chunked(self.items, |chunk| {
            chunk.into_iter().fold(identity(), |acc, x| op(acc, f(x)))
        });
        partials.into_iter().fold(identity(), op)
    }

    /// Parallel fused map, collected in input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        let f = self.f;
        let parts = execute_chunked(self.items, |chunk| {
            chunk.into_iter().map(&f).collect::<Vec<R>>()
        });
        parts.into_iter().flatten().collect()
    }

    /// Parallel fused map; the mapped values are summed sequentially in
    /// input order (bit-identical to `Iterator::sum`, floats included).
    pub fn sum<S: std::iter::Sum<R>>(self) -> S {
        self.materialize().sum()
    }

    /// Number of items. The fused map IS evaluated (matching rayon, where
    /// `.map(f).count()` runs `f` per item), so side effects in `f` are
    /// observed identically when swapping in the real crate.
    pub fn count(self) -> usize {
        self.materialize().count()
    }

    /// Pairs each mapped value with nothing extra — see [`ParIter`] for
    /// the remaining combinators, reached via parallel materialization.
    pub fn enumerate(self) -> ParIter<(usize, R)> {
        self.materialize().enumerate()
    }

    /// Keeps mapped values matching `g` (parallel map, then filter).
    pub fn filter<G>(self, g: G) -> ParIter<R>
    where
        G: Fn(&R) -> bool + Sync,
    {
        self.materialize().filter(g)
    }

    /// Filter-maps the mapped values.
    pub fn filter_map<G, S>(self, g: G) -> ParIter<S>
    where
        G: Fn(R) -> Option<S> + Sync,
        S: Send,
    {
        self.materialize().filter_map(g)
    }

    /// Flat-maps the mapped values through a serial iterator.
    pub fn flat_map_iter<G, U>(self, g: G) -> ParIter<U::Item>
    where
        G: Fn(R) -> U + Sync,
        U: IntoIterator,
        U::Item: Send,
    {
        self.materialize().flat_map_iter(g)
    }

    /// Minimum of the mapped values (`Iterator::min_by` tie semantics).
    pub fn min_by<G>(self, g: G) -> Option<R>
    where
        G: FnMut(&R, &R) -> std::cmp::Ordering,
    {
        self.materialize().min_by(g)
    }

    /// Maximum of the mapped values (`Iterator::max_by` tie semantics).
    pub fn max_by<G>(self, g: G) -> Option<R>
    where
        G: FnMut(&R, &R) -> std::cmp::Ordering,
    {
        self.materialize().max_by(g)
    }

    /// Maximum of the mapped values by a key function.
    pub fn max_by_key<K: Ord, G>(self, g: G) -> Option<R>
    where
        G: FnMut(&R) -> K,
    {
        self.materialize().max_by_key(g)
    }

    /// Whether any mapped value matches.
    pub fn any<G>(self, g: G) -> bool
    where
        G: FnMut(R) -> bool,
    {
        self.materialize().any(g)
    }

    /// Whether all mapped values match.
    pub fn all<G>(self, g: G) -> bool
    where
        G: FnMut(R) -> bool,
    {
        self.materialize().all(g)
    }

    /// First matching position among the mapped values.
    pub fn position_any<G>(self, g: G) -> Option<usize>
    where
        G: FnMut(R) -> bool,
    {
        self.materialize().position_any(g)
    }

    /// First matching mapped value.
    pub fn find_any<G>(self, g: G) -> Option<R>
    where
        G: FnMut(&R) -> bool,
    {
        self.materialize().find_any(g)
    }

    /// Zips the mapped values with another parallel iterator.
    pub fn zip<U: Send>(self, other: ParIter<U>) -> ParIter<(R, U)> {
        self.materialize().zip(other)
    }
}

pub mod iter {
    //! Parallel-iterator conversion traits (rayon's `rayon::iter` shape).

    use super::ParIter;

    /// Types convertible into a parallel iterator by value.
    pub trait IntoParallelIterator {
        /// Item type.
        type Item: Send;
        /// Converts into a parallel iterator (materializing the items).
        fn into_par_iter(self) -> ParIter<Self::Item>;
    }

    impl<T: IntoIterator> IntoParallelIterator for T
    where
        T::Item: Send,
    {
        type Item = T::Item;
        fn into_par_iter(self) -> ParIter<T::Item> {
            ParIter {
                items: self.into_iter().collect(),
            }
        }
    }

    /// Types whose references convert into a parallel iterator.
    pub trait IntoParallelRefIterator<'a> {
        /// Item type (a shared reference).
        type Item: Send + 'a;
        /// Borrowing parallel iterator.
        fn par_iter(&'a self) -> ParIter<Self::Item>;
    }

    impl<'a, T: 'a + ?Sized> IntoParallelRefIterator<'a> for T
    where
        &'a T: IntoIterator,
        <&'a T as IntoIterator>::Item: Send,
    {
        type Item = <&'a T as IntoIterator>::Item;
        fn par_iter(&'a self) -> ParIter<Self::Item> {
            ParIter {
                items: self.into_iter().collect(),
            }
        }
    }

    /// Types whose mutable references convert into a parallel iterator.
    pub trait IntoParallelRefMutIterator<'a> {
        /// Item type (an exclusive reference).
        type Item: Send + 'a;
        /// Mutably borrowing parallel iterator.
        fn par_iter_mut(&'a mut self) -> ParIter<Self::Item>;
    }

    impl<'a, T: 'a + ?Sized> IntoParallelRefMutIterator<'a> for T
    where
        &'a mut T: IntoIterator,
        <&'a mut T as IntoIterator>::Item: Send,
    {
        type Item = <&'a mut T as IntoIterator>::Item;
        fn par_iter_mut(&'a mut self) -> ParIter<Self::Item> {
            ParIter {
                items: self.into_iter().collect(),
            }
        }
    }
}

pub mod prelude {
    //! The traits users import wholesale, mirroring `rayon::prelude`.
    pub use crate::iter::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator,
    };
    pub use crate::slice::{ParallelSlice, ParallelSliceMut};
    pub use crate::{ParIter, ParMap};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn entry_points_and_combinators() {
        let v = vec![1i64, 2, 3, 4, 5];
        let doubled: Vec<i64> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8, 10]);

        let total = (0..10u64).into_par_iter().map(|x| x * x).sum::<u64>();
        assert_eq!(total, 285);

        let max = v
            .par_iter()
            .map(|&x| x as f64)
            .reduce(|| f64::NEG_INFINITY, f64::max);
        assert_eq!(max, 5.0);

        let mut w = vec![0u32; 4];
        w.par_iter_mut()
            .enumerate()
            .for_each(|(i, x)| *x = i as u32);
        assert_eq!(w, vec![0, 1, 2, 3]);

        let pairs: Vec<(usize, &i64)> = (0..5usize)
            .into_par_iter()
            .zip(v.par_iter())
            .filter(|&(i, _)| i % 2 == 0)
            .collect();
        assert_eq!(pairs.len(), 3);

        let flat: Vec<usize> = (0..3usize)
            .into_par_iter()
            .flat_map_iter(|i| 0..i)
            .collect();
        assert_eq!(flat, vec![0, 0, 1]);
    }

    #[test]
    fn pool_scopes_simulated_parallelism() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let outside = current_num_threads();
        assert_eq!(pool.install(current_num_threads), 3);
        let nested = ThreadPoolBuilder::new().num_threads(7).build().unwrap();
        let observed = pool.install(|| nested.install(current_num_threads));
        assert_eq!(observed, 7);
        assert_eq!(pool.install(current_num_threads), 3);
        assert_eq!(current_num_threads(), outside);
    }

    #[test]
    fn pool_really_executes_on_worker_threads() {
        use std::collections::BTreeSet;
        use std::sync::Mutex;
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let seen: Mutex<BTreeSet<String>> = Mutex::new(BTreeSet::new());
        pool.install(|| {
            (0..64usize).into_par_iter().for_each(|_| {
                let name = std::thread::current()
                    .name()
                    .unwrap_or("caller")
                    .to_string();
                seen.lock().unwrap().insert(name);
                // Give other executors a chance to claim chunks.
                std::thread::sleep(std::time::Duration::from_millis(1));
            });
        });
        // At least the caller ran chunks; on any machine the pool's workers
        // are eligible too (they may not win chunks on a loaded 1-cpu box,
        // so only the lower bound is asserted).
        assert!(!seen.lock().unwrap().is_empty());
    }

    #[test]
    fn par_chunks_surface() {
        let v: Vec<u64> = (0..1000).collect();
        let partial_sums: Vec<u64> = v.par_chunks(100).map(|c| c.iter().sum()).collect();
        assert_eq!(partial_sums.len(), 10);
        assert_eq!(partial_sums.iter().sum::<u64>(), 499_500);

        let mut w = vec![1u64; 1000];
        w.par_chunks_mut(64)
            .enumerate()
            .for_each(|(ci, chunk)| chunk.iter_mut().for_each(|x| *x += ci as u64));
        assert_eq!(w[0], 1);
        assert_eq!(w[999], 1 + 15);
    }

    #[test]
    fn join_returns_both_results() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let (a, b) = pool.install(|| join(|| 6 * 7, || "ok"));
        assert_eq!(a, 42);
        assert_eq!(b, "ok");
    }

    #[test]
    fn panics_propagate_to_the_submitter_with_payload() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.install(|| {
                (0..1000usize).into_par_iter().for_each(|i| {
                    if i == 777 {
                        panic!("boom");
                    }
                });
            })
        }));
        // The original payload (not a generic wrapper message) re-raises
        // on the submitter, so assert messages survive the pool boundary.
        let payload = result.unwrap_err();
        assert_eq!(payload.downcast_ref::<&str>(), Some(&"boom"));
        // The pool survives the panic and stays usable.
        let sum: usize = pool.install(|| (0..100usize).into_par_iter().sum());
        assert_eq!(sum, 4950);
    }
}
