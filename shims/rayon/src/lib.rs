//! Offline API-compatible shim for the `rayon` crate.
//!
//! The build environment has no registry access, so this vendored crate
//! provides rayon's entry points (`par_iter`, `par_iter_mut`,
//! `into_par_iter`, thread pools) with **sequential** execution: every
//! "parallel" iterator is a thin lazy wrapper over a standard iterator, and
//! `ThreadPool::install` runs its closure on the calling thread while
//! recording the configured parallelism in a thread-local so
//! [`current_num_threads`] reports the simulated processor count `ℓ` (which
//! the MapReduce memory-accounting model observes).
//!
//! Semantics match rayon for every combinator used in this workspace:
//! `reduce(identity, op)` folds from `identity()`, order-sensitive
//! operations see items in input order (a legal rayon schedule), and
//! side-effecting `for_each`/`map` closures observe each item exactly once.
//! Swapping in the real crate re-enables true parallelism without source
//! changes.

use std::cell::Cell;

thread_local! {
    static SIMULATED_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Number of threads of the current pool scope (the simulated parallelism
/// inside [`ThreadPool::install`], otherwise the machine's parallelism).
pub fn current_num_threads() -> usize {
    SIMULATED_THREADS.with(|t| {
        t.get().unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
    })
}

/// Error building a thread pool (never produced by this shim).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for [`ThreadPool`].
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// Creates a builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the pool's thread count.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = Some(n);
        self
    }

    /// Builds the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = self.num_threads.filter(|&n| n > 0).unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
        Ok(ThreadPool { num_threads: n })
    }
}

/// A scoped "thread pool": work installed into it runs on the calling
/// thread, with [`current_num_threads`] reporting the configured size.
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `f` within the pool's scope.
    pub fn install<R: Send>(&self, f: impl FnOnce() -> R + Send) -> R {
        SIMULATED_THREADS.with(|t| {
            let prev = t.replace(Some(self.num_threads));
            let out = f();
            t.set(prev);
            out
        })
    }

    /// The pool's thread count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

/// A "parallel" iterator: a lazy sequential wrapper with rayon's combinator
/// names. Construct via the traits in [`prelude`].
pub struct ParIter<I>(I);

impl<I: Iterator> ParIter<I> {
    /// Maps each item through `f`.
    pub fn map<F, R>(self, f: F) -> ParIter<std::iter::Map<I, F>>
    where
        F: FnMut(I::Item) -> R,
    {
        ParIter(self.0.map(f))
    }

    /// Pairs each item with its index.
    pub fn enumerate(self) -> ParIter<std::iter::Enumerate<I>> {
        ParIter(self.0.enumerate())
    }

    /// Keeps items matching `f`.
    pub fn filter<F>(self, f: F) -> ParIter<std::iter::Filter<I, F>>
    where
        F: FnMut(&I::Item) -> bool,
    {
        ParIter(self.0.filter(f))
    }

    /// Maps each item to a filtered option.
    pub fn filter_map<F, R>(self, f: F) -> ParIter<std::iter::FilterMap<I, F>>
    where
        F: FnMut(I::Item) -> Option<R>,
    {
        ParIter(self.0.filter_map(f))
    }

    /// Maps each item to a *serial* iterator and flattens (rayon's
    /// `flat_map_iter`).
    pub fn flat_map_iter<F, U>(self, f: F) -> ParIter<std::iter::FlatMap<I, U, F>>
    where
        F: FnMut(I::Item) -> U,
        U: IntoIterator,
    {
        ParIter(self.0.flat_map(f))
    }

    /// Zips with another parallel iterator.
    pub fn zip<J>(self, other: ParIter<J>) -> ParIter<std::iter::Zip<I, J>>
    where
        J: Iterator,
    {
        ParIter(self.0.zip(other.0))
    }

    /// Chains another parallel iterator after this one.
    pub fn chain<J>(self, other: ParIter<J>) -> ParIter<std::iter::Chain<I, J>>
    where
        J: Iterator<Item = I::Item>,
    {
        ParIter(self.0.chain(other.0))
    }

    /// Runs `f` on every item.
    pub fn for_each<F>(self, f: F)
    where
        F: FnMut(I::Item),
    {
        self.0.for_each(f)
    }

    /// Folds all items starting from `identity()` (rayon's reduce contract:
    /// `identity()` must be a neutral element of `op`).
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> I::Item
    where
        ID: Fn() -> I::Item,
        OP: Fn(I::Item, I::Item) -> I::Item,
    {
        self.0.fold(identity(), op)
    }

    /// Collects into any `FromIterator` collection.
    pub fn collect<C: FromIterator<I::Item>>(self) -> C {
        self.0.collect()
    }

    /// Sums the items.
    pub fn sum<S: std::iter::Sum<I::Item>>(self) -> S {
        self.0.sum()
    }

    /// Number of items.
    pub fn count(self) -> usize {
        self.0.count()
    }

    /// Minimum by a comparison function.
    pub fn min_by<F>(self, f: F) -> Option<I::Item>
    where
        F: FnMut(&I::Item, &I::Item) -> std::cmp::Ordering,
    {
        self.0.min_by(f)
    }

    /// Maximum by a comparison function.
    pub fn max_by<F>(self, f: F) -> Option<I::Item>
    where
        F: FnMut(&I::Item, &I::Item) -> std::cmp::Ordering,
    {
        self.0.max_by(f)
    }

    /// Maximum by a key function.
    pub fn max_by_key<K: Ord, F>(self, f: F) -> Option<I::Item>
    where
        F: FnMut(&I::Item) -> K,
    {
        self.0.max_by_key(f)
    }

    /// Whether any item matches.
    pub fn any<F>(mut self, f: F) -> bool
    where
        F: FnMut(I::Item) -> bool,
    {
        self.0.any(f)
    }

    /// Whether all items match.
    pub fn all<F>(mut self, f: F) -> bool
    where
        F: FnMut(I::Item) -> bool,
    {
        self.0.all(f)
    }

    /// First position matching a predicate (rayon: any position; this shim:
    /// the first).
    pub fn position_any<F>(mut self, f: F) -> Option<usize>
    where
        F: FnMut(I::Item) -> bool,
    {
        self.0.position(f)
    }

    /// First item matching a predicate (rayon: any match; this shim: the
    /// first).
    pub fn find_any<F>(mut self, mut f: F) -> Option<I::Item>
    where
        F: FnMut(&I::Item) -> bool,
    {
        self.0.find(|x| f(x))
    }
}

pub mod iter {
    //! Parallel-iterator conversion traits (rayon's `rayon::iter` shape).

    use super::ParIter;

    /// Types convertible into a parallel iterator by value.
    pub trait IntoParallelIterator {
        /// Item type.
        type Item;
        /// Underlying sequential iterator type.
        type Iter: Iterator<Item = Self::Item>;
        /// Converts into a parallel iterator.
        fn into_par_iter(self) -> ParIter<Self::Iter>;
    }

    impl<T: IntoIterator> IntoParallelIterator for T {
        type Item = T::Item;
        type Iter = T::IntoIter;
        fn into_par_iter(self) -> ParIter<Self::Iter> {
            ParIter(self.into_iter())
        }
    }

    /// Types whose references convert into a parallel iterator.
    pub trait IntoParallelRefIterator<'a> {
        /// Item type (a shared reference).
        type Item: 'a;
        /// Underlying sequential iterator type.
        type Iter: Iterator<Item = Self::Item>;
        /// Borrowing parallel iterator.
        fn par_iter(&'a self) -> ParIter<Self::Iter>;
    }

    impl<'a, T: 'a + ?Sized> IntoParallelRefIterator<'a> for T
    where
        &'a T: IntoIterator,
    {
        type Item = <&'a T as IntoIterator>::Item;
        type Iter = <&'a T as IntoIterator>::IntoIter;
        fn par_iter(&'a self) -> ParIter<Self::Iter> {
            ParIter(self.into_iter())
        }
    }

    /// Types whose mutable references convert into a parallel iterator.
    pub trait IntoParallelRefMutIterator<'a> {
        /// Item type (an exclusive reference).
        type Item: 'a;
        /// Underlying sequential iterator type.
        type Iter: Iterator<Item = Self::Item>;
        /// Mutably borrowing parallel iterator.
        fn par_iter_mut(&'a mut self) -> ParIter<Self::Iter>;
    }

    impl<'a, T: 'a + ?Sized> IntoParallelRefMutIterator<'a> for T
    where
        &'a mut T: IntoIterator,
    {
        type Item = <&'a mut T as IntoIterator>::Item;
        type Iter = <&'a mut T as IntoIterator>::IntoIter;
        fn par_iter_mut(&'a mut self) -> ParIter<Self::Iter> {
            ParIter(self.into_iter())
        }
    }
}

pub mod prelude {
    //! The traits users import wholesale, mirroring `rayon::prelude`.
    pub use crate::iter::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator,
    };
    pub use crate::ParIter;
}

/// Runs two closures (sequentially in this shim), returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    (a(), b())
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn entry_points_and_combinators() {
        let v = vec![1i64, 2, 3, 4, 5];
        let doubled: Vec<i64> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8, 10]);

        let total = (0..10u64).into_par_iter().map(|x| x * x).sum::<u64>();
        assert_eq!(total, 285);

        let max = v
            .par_iter()
            .map(|&x| x as f64)
            .reduce(|| f64::NEG_INFINITY, f64::max);
        assert_eq!(max, 5.0);

        let mut w = vec![0u32; 4];
        w.par_iter_mut()
            .enumerate()
            .for_each(|(i, x)| *x = i as u32);
        assert_eq!(w, vec![0, 1, 2, 3]);

        let pairs: Vec<(usize, &i64)> = (0..5usize)
            .into_par_iter()
            .zip(v.par_iter())
            .filter(|&(i, _)| i % 2 == 0)
            .collect();
        assert_eq!(pairs.len(), 3);

        let flat: Vec<usize> = (0..3usize)
            .into_par_iter()
            .flat_map_iter(|i| 0..i)
            .collect();
        assert_eq!(flat, vec![0, 0, 1]);
    }

    #[test]
    fn pool_scopes_simulated_parallelism() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let outside = current_num_threads();
        assert_eq!(pool.install(current_num_threads), 3);
        let nested = ThreadPoolBuilder::new().num_threads(7).build().unwrap();
        let observed = pool.install(|| nested.install(current_num_threads));
        assert_eq!(observed, 7);
        assert_eq!(pool.install(current_num_threads), 3);
        assert_eq!(current_num_threads(), outside);
    }
}
