//! The work-stealing executor behind the shim's parallel iterators.
//!
//! One [`Pool`] owns `threads - 1` long-lived worker threads (the thread
//! that submits a job is the remaining executor). Each worker has its own
//! deque of chunk-sized work units; a submitting thread scatters units
//! round-robin across the deques, keeps the first chunk for itself, and
//! then *participates*: it executes any unit it can find until its own
//! job's completion count drops to zero. Workers pop their own deque from
//! the back (LIFO, cache-warm) and steal from other deques' front (FIFO,
//! oldest first) — the crossbeam-deque discipline, implemented here with
//! one small mutex per deque because the units are coarse (hundreds of
//! items each), so queue contention is negligible against chunk runtime.
//!
//! Blocking-by-participation is what makes nested parallelism safe: a
//! worker that submits a sub-job while executing a unit simply executes
//! further units (its own sub-job's or anyone else's) until the sub-job
//! completes, so no thread ever parks while work it depends on is runnable
//! and nested `ThreadPool::install` calls cannot deadlock.
//!
//! Panics inside a unit are caught, flagged on the owning job, and
//! re-raised on the submitting thread once the job drains.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Bounds of the adaptive splitter, as log₂ of the chunks-per-thread
/// target. `MIN` (2 chunks/thread) is the coarsest layout that still lets
/// one steal rebalance a job; `MAX` (16 chunks/thread) caps the per-chunk
/// bookkeeping for very uneven workloads.
const MIN_SPLIT_SHIFT: u32 = 1;
const MAX_SPLIT_SHIFT: u32 = 4;
/// Starting point: 4 chunks/thread, the fixed `CHUNKS_PER_THREAD` the
/// splitter replaces.
const INIT_SPLIT_SHIFT: u32 = 2;
/// Jobs between feedback adjustments: long enough to smooth scheduling
/// noise, short enough to adapt within one figure sweep.
const ADJUST_WINDOW: usize = 8;

/// One chunk of one parallel job.
///
/// The raw job pointer is valid for exactly as long as units of that job
/// exist: the submitting thread keeps the [`JobCore`] alive on its stack
/// until `remaining` reaches zero, and a unit is popped at most once.
#[derive(Copy, Clone)]
struct Unit {
    job: *const JobCore,
    chunk: u32,
}

// SAFETY: `Unit` crosses threads by design; the pointed-to `JobCore` is
// kept alive by the submitting thread until every unit has executed (see
// `Shared::run_chunks`), and `task` is `Sync`.
unsafe impl Send for Unit {}

/// Shared state of one in-flight parallel job.
struct JobCore {
    /// The chunk executor. The `'static` lifetime is a lie told to the type
    /// system (see `run_chunks`); validity is guaranteed by the completion
    /// protocol.
    task: &'static (dyn Fn(usize) + Sync),
    /// Units not yet finished executing.
    remaining: AtomicUsize,
    /// First panic payload caught in a unit; re-raised by the submitter so
    /// the original assert/panic message survives the pool boundary.
    panic_payload: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

/// Executes one unit, catching panics so a worker thread survives them.
/// The thread completing a job's last unit posts a wakeup so a parked
/// submitter (see `run_chunks`) notices promptly.
///
/// # Safety
///
/// `unit.job` must point to a live `JobCore` (upheld by the completion
/// protocol described on [`Unit`]).
unsafe fn execute(unit: Unit, shared: &Shared) {
    let job = &*unit.job;
    let task = job.task;
    if let Err(payload) = catch_unwind(AssertUnwindSafe(|| task(unit.chunk as usize))) {
        let mut slot = job.panic_payload.lock().unwrap();
        if slot.is_none() {
            *slot = Some(payload);
        }
    }
    // Last touch of the JobCore: after this decrement the submitter may
    // free it. The wakeup goes through the pool-owned condvar, which
    // outlives every job, so notifying *after* the decrement is safe.
    if job.remaining.fetch_sub(1, Ordering::Release) == 1 {
        shared.notify();
    }
}

/// State shared between a pool's workers and its submitters.
pub(crate) struct Shared {
    /// One work deque per worker thread.
    deques: Vec<Mutex<VecDeque<Unit>>>,
    /// Wake generation: bumped on every submission so sleeping workers can
    /// detect work that arrived between their failed scan and their sleep.
    generation: Mutex<u64>,
    wake: Condvar,
    shutdown: AtomicBool,
    /// Round-robin scatter cursor for submissions.
    cursor: AtomicUsize,
    /// Cross-deque pops by *workers* (a worker whose own deque drained took
    /// a unit scattered to a sibling). Steals mean the static scatter was
    /// unbalanced relative to per-chunk runtimes — the signal the adaptive
    /// splitter reacts to. Submitter pops are not counted: a participating
    /// submitter has no deque, so its pops carry no imbalance information.
    steals: AtomicUsize,
    /// Steal count at the last feedback adjustment.
    steals_mark: AtomicUsize,
    /// Multi-chunk jobs completed (drives the adjustment window).
    jobs: AtomicUsize,
    /// log₂ of the current chunks-per-thread target, in
    /// `MIN_SPLIT_SHIFT..=MAX_SPLIT_SHIFT`.
    split_shift: AtomicU32,
}

impl Shared {
    /// Pops a unit: own deque back first (if a worker), then any deque's
    /// front (stealing).
    fn find_unit(&self, own: Option<usize>) -> Option<Unit> {
        if let Some(i) = own {
            if let Some(u) = self.deques[i].lock().unwrap().pop_back() {
                return Some(u);
            }
        }
        let n = self.deques.len();
        let start = own.unwrap_or_else(|| self.cursor.load(Ordering::Relaxed));
        for k in 0..n {
            let j = (start + k) % n;
            if Some(j) == own {
                continue;
            }
            if let Some(u) = self.deques[j].lock().unwrap().pop_front() {
                if own.is_some() {
                    self.steals.fetch_add(1, Ordering::Relaxed);
                }
                return Some(u);
            }
        }
        None
    }

    /// The splitter's current chunks-per-thread target.
    ///
    /// Rayon splits a task further whenever it observes the task being
    /// stolen (a thief proves idle capacity exists); this executor scatters
    /// chunks eagerly, so the equivalent feedback runs across jobs instead
    /// of within one: every [`ADJUST_WINDOW`] completed jobs, the target
    /// doubles (up to 16/thread) if any steal was observed in the window —
    /// workers ran dry and rebalanced, so finer chunks would have spread
    /// the work better — and halves (down to 2/thread) if none was: the
    /// workers were saturated by their own deques and extra chunks are
    /// pure bookkeeping. Only the chunk *layout* adapts; reductions stay
    /// chunk-ordered, so results remain bit-identical (see `lib.rs`).
    pub(crate) fn chunks_per_thread(&self) -> usize {
        1usize << self.split_shift.load(Ordering::Relaxed)
    }

    /// Records one completed multi-chunk job and adjusts the split target
    /// at window boundaries (see [`Shared::chunks_per_thread`]).
    fn record_job_feedback(&self) {
        let jobs = self.jobs.fetch_add(1, Ordering::Relaxed) + 1;
        if !jobs.is_multiple_of(ADJUST_WINDOW) {
            return;
        }
        let steals = self.steals.load(Ordering::Relaxed);
        let mark = self.steals_mark.swap(steals, Ordering::Relaxed);
        let stolen_in_window = steals.wrapping_sub(mark) > 0;
        let shift = self.split_shift.load(Ordering::Relaxed);
        if stolen_in_window && shift < MAX_SPLIT_SHIFT {
            self.split_shift.store(shift + 1, Ordering::Relaxed);
        } else if !stolen_in_window && shift > MIN_SPLIT_SHIFT {
            self.split_shift.store(shift - 1, Ordering::Relaxed);
        }
    }

    fn notify(&self) {
        *self.generation.lock().unwrap() += 1;
        self.wake.notify_all();
    }

    /// Runs `task(i)` for every `i in 0..num_chunks`, distributing chunks
    /// `1..` over the worker deques and executing chunk `0` (plus anything
    /// it can steal) on the calling thread. Returns when all chunks have
    /// finished; re-raises the first panic observed.
    pub(crate) fn run_chunks(self: &Arc<Self>, num_chunks: usize, task: &(dyn Fn(usize) + Sync)) {
        if num_chunks == 0 {
            return;
        }
        if num_chunks == 1 || self.deques.is_empty() {
            for i in 0..num_chunks {
                task(i);
            }
            return;
        }

        // SAFETY: widening the borrow to 'static is sound because this
        // function does not return until `remaining` hits zero, i.e. until
        // no live `Unit` (and therefore no worker) can reach `task` again.
        let task_static: &'static (dyn Fn(usize) + Sync) =
            unsafe { std::mem::transmute::<&(dyn Fn(usize) + Sync), _>(task) };
        let core = JobCore {
            task: task_static,
            remaining: AtomicUsize::new(num_chunks),
            panic_payload: Mutex::new(None),
        };

        let start = self.cursor.fetch_add(1, Ordering::Relaxed);
        for i in 1..num_chunks {
            let w = (start + i) % self.deques.len();
            self.deques[w].lock().unwrap().push_back(Unit {
                job: &core,
                chunk: i as u32,
            });
        }
        self.notify();

        // SAFETY: `core` is live for the whole loop below.
        unsafe {
            execute(
                Unit {
                    job: &core,
                    chunk: 0,
                },
                self,
            );
            // Participate until our job drains. Executing units of *other*
            // jobs here is deliberate: it is what keeps nested submissions
            // deadlock-free. With nothing runnable, park on the pool's
            // condvar (woken by new submissions and by the job's final
            // decrement in `execute`) instead of burning a core spinning.
            while core.remaining.load(Ordering::Acquire) > 0 {
                match self.find_unit(None) {
                    Some(unit) => execute(unit, self),
                    None => {
                        let guard = self.generation.lock().unwrap();
                        // Recheck under the lock: `notify` bumps the
                        // generation under this same lock, so a completion
                        // between the load above and this wait cannot be
                        // lost. The timeout is belt-and-braces only.
                        if core.remaining.load(Ordering::Acquire) > 0 {
                            let _ = self
                                .wake
                                .wait_timeout(guard, Duration::from_millis(1))
                                .unwrap();
                        }
                    }
                }
            }
        }
        self.record_job_feedback();
        let payload = core.panic_payload.lock().unwrap().take();
        if let Some(payload) = payload {
            std::panic::resume_unwind(payload);
        }
    }
}

/// The execution context a thread resolves parallel operations against:
/// the simulated thread count `ℓ` plus the pool (if any) carrying it.
#[derive(Clone)]
pub(crate) struct Ctx {
    pub(crate) threads: usize,
    pub(crate) shared: Option<Arc<Shared>>,
}

thread_local! {
    /// Innermost-first stack of installed contexts. Worker threads carry
    /// their home pool as the base entry so work executed *on* a pool
    /// resolves nested parallel operations to that same pool.
    static CONTEXT: RefCell<Vec<Ctx>> = const { RefCell::new(Vec::new()) };
}

/// The innermost context, if any.
pub(crate) fn current_ctx() -> Option<Ctx> {
    CONTEXT.with(|c| c.borrow().last().cloned())
}

/// Pushes `ctx` for the duration of `f` (panic-safe).
pub(crate) fn with_ctx<R>(ctx: Ctx, f: impl FnOnce() -> R) -> R {
    struct Guard;
    impl Drop for Guard {
        fn drop(&mut self) {
            CONTEXT.with(|c| {
                c.borrow_mut().pop();
            });
        }
    }
    CONTEXT.with(|c| c.borrow_mut().push(ctx));
    let _guard = Guard;
    f()
}

/// A work-stealing pool of `workers` threads (plus participating
/// submitters).
pub(crate) struct Pool {
    shared: Arc<Shared>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl Pool {
    /// Builds a pool whose jobs report `threads` as the simulated
    /// parallelism; `threads - 1` OS worker threads are spawned (the
    /// submitting thread is the remaining executor). `threads <= 1` spawns
    /// nothing and executes jobs inline.
    pub(crate) fn new(threads: usize) -> Pool {
        let workers = threads.saturating_sub(1);
        let shared = Arc::new(Shared {
            deques: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            generation: Mutex::new(0),
            wake: Condvar::new(),
            shutdown: AtomicBool::new(false),
            cursor: AtomicUsize::new(0),
            steals: AtomicUsize::new(0),
            steals_mark: AtomicUsize::new(0),
            jobs: AtomicUsize::new(0),
            split_shift: AtomicU32::new(INIT_SPLIT_SHIFT),
        });
        let handles = (0..workers)
            .map(|index| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("rayon-shim-{index}"))
                    .spawn(move || worker_main(shared, index, threads))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        Pool { shared, handles }
    }

    pub(crate) fn shared(&self) -> &Arc<Shared> {
        &self.shared
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.wake.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_main(shared: Arc<Shared>, index: usize, home_threads: usize) {
    // Everything a worker executes resolves nested parallelism to its home
    // pool (matching rayon, where workers belong to a registry).
    CONTEXT.with(|c| {
        c.borrow_mut().push(Ctx {
            threads: home_threads,
            shared: Some(Arc::clone(&shared)),
        })
    });
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        // Read the generation *before* scanning so a submission racing with
        // the failed scan bumps it and the sleep below falls through.
        let gen = *shared.generation.lock().unwrap();
        if let Some(unit) = shared.find_unit(Some(index)) {
            // SAFETY: units in deques always reference live jobs.
            unsafe { execute(unit, &shared) };
            continue;
        }
        let guard = shared.generation.lock().unwrap();
        if *guard == gen && !shared.shutdown.load(Ordering::Acquire) {
            // Timeout only as a belt-and-braces recheck; wakeups are posted
            // by `notify` under the same lock.
            let _ = shared
                .wake
                .wait_timeout(guard, Duration::from_millis(50))
                .unwrap();
        }
    }
}
