//! Concurrency suite for the work-stealing shim: parallel execution must be
//! observationally identical to sequential execution (a 1-thread pool runs
//! everything inline, so it is the sequential reference), and nested
//! `install` must never deadlock.

use rayon::prelude::*;
use rayon::{current_num_threads, ThreadPool, ThreadPoolBuilder};

const N: usize = 1_000_000;

fn pool(n: usize) -> ThreadPool {
    ThreadPoolBuilder::new().num_threads(n).build().unwrap()
}

/// Runs `f` on a 1-thread (sequential reference) and a 4-thread pool and
/// asserts identical results.
fn assert_matches_sequential<R: PartialEq + std::fmt::Debug + Send>(
    f: impl Fn() -> R + Send + Sync,
) {
    let sequential = pool(1).install(&f);
    let parallel = pool(4).install(&f);
    assert_eq!(sequential, parallel);
}

#[test]
fn map_collect_identical_over_1m_items() {
    assert_matches_sequential(|| {
        (0..N)
            .into_par_iter()
            .map(|i| (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .collect::<Vec<u64>>()
    });
}

#[test]
fn reduce_identical_over_1m_items() {
    // Integer sum: associative, so chunked combining must be exact.
    assert_matches_sequential(|| {
        (0..N as u64)
            .into_par_iter()
            .map(|x| x * 3 + 1)
            .reduce(|| 0, u64::wrapping_add)
    });
}

#[test]
fn float_minmax_reduce_identical_over_1m_items() {
    // f64 min/max are associative and commutative: bit-identical under any
    // chunking. This is the shape of every hot reduction in the workspace.
    assert_matches_sequential(|| {
        (0..N)
            .into_par_iter()
            .map(|i| ((i as f64) * 0.731).sin())
            .reduce(|| f64::NEG_INFINITY, f64::max)
    });
}

#[test]
fn argmax_with_tie_break_identical_over_1m_items() {
    // The GMM farthest-point pattern: (index, value) argmax where earlier
    // indices win ties. Lots of ties by construction (i % 1000).
    assert_matches_sequential(|| {
        (0..N)
            .into_par_iter()
            .map(|i| (i, (i % 1000) as f64))
            .reduce(
                || (usize::MAX, f64::NEG_INFINITY),
                |a, b| if a.1 >= b.1 { a } else { b },
            )
    });
}

#[test]
fn for_each_writes_identical_over_1m_items() {
    assert_matches_sequential(|| {
        let mut v = vec![0u32; N];
        v.par_iter_mut()
            .enumerate()
            .for_each(|(i, x)| *x = (i as u32).rotate_left(7));
        v
    });
}

#[test]
fn filter_and_flat_map_preserve_input_order() {
    assert_matches_sequential(|| {
        (0..100_000usize)
            .into_par_iter()
            .filter(|&x| x % 7 == 0)
            .collect::<Vec<usize>>()
    });
    assert_matches_sequential(|| {
        (0..10_000usize)
            .into_par_iter()
            .flat_map_iter(|i| (0..i % 5).map(move |j| i * 10 + j))
            .collect::<Vec<usize>>()
    });
}

#[test]
fn float_sum_matches_iterator_exactly() {
    // Non-associative f64 addition: the shim sums mapped values
    // sequentially in input order, so the result must equal Iterator::sum
    // bit-for-bit on any pool.
    let expected: f64 = (0..N).map(|i| 1.0 / (i as f64 + 1.0)).sum();
    let got: f64 = pool(4).install(|| (0..N).into_par_iter().map(|i| 1.0 / (i as f64 + 1.0)).sum());
    assert_eq!(expected.to_bits(), got.to_bits());
}

#[test]
fn nested_install_does_not_deadlock() {
    // Parallel work that, inside each chunk, installs another pool and runs
    // more parallel work — the MapReduce engine's reducer shape.
    let outer = pool(4);
    let inner = pool(3);
    let total: u64 = outer.install(|| {
        (0..64u64)
            .into_par_iter()
            .map(|i| {
                inner.install(|| {
                    assert_eq!(current_num_threads(), 3);
                    (0..1000u64).into_par_iter().map(|j| i + j).sum::<u64>()
                })
            })
            .sum()
    });
    let expected: u64 = (0..64u64)
        .map(|i| (0..1000u64).map(|j| i + j).sum::<u64>())
        .sum();
    assert_eq!(total, expected);
}

#[test]
fn nested_same_pool_does_not_deadlock() {
    // Submitting to the pool from within the pool's own job (workers and
    // the participating caller both re-enter the scheduler).
    let p = pool(4);
    let total: u64 = p.install(|| {
        (0..32u64)
            .into_par_iter()
            .map(|i| {
                (0..2000u64)
                    .into_par_iter()
                    .map(|j| i * j % 97)
                    .sum::<u64>()
            })
            .sum()
    });
    let expected: u64 = (0..32u64)
        .map(|i| (0..2000u64).map(|j| i * j % 97).sum::<u64>())
        .sum();
    assert_eq!(total, expected);
}

#[test]
fn concurrent_submissions_from_many_threads() {
    // One shared pool hammered from 8 OS threads at once.
    let p = std::sync::Arc::new(pool(4));
    let handles: Vec<_> = (0..8)
        .map(|t| {
            let p = std::sync::Arc::clone(&p);
            std::thread::spawn(move || {
                p.install(|| {
                    (0..50_000u64)
                        .into_par_iter()
                        .map(|x| x ^ t)
                        .reduce(|| 0, u64::wrapping_add)
                })
            })
        })
        .collect();
    for (t, h) in handles.into_iter().enumerate() {
        let got = h.join().unwrap();
        let expected = (0..50_000u64).map(|x| x ^ t as u64).sum::<u64>();
        assert_eq!(got, expected);
    }
}

#[test]
fn par_chunks_matches_sequential_chunking() {
    assert_matches_sequential(|| {
        let v: Vec<u64> = (0..N as u64).collect();
        v.par_chunks(4096)
            .map(|c| c.iter().copied().fold(0u64, u64::wrapping_add))
            .collect::<Vec<u64>>()
    });
}

#[test]
fn adaptive_splitter_stays_within_bounds_under_load() {
    // Hammer a pool with deliberately uneven jobs (per-item cost grows with
    // the index, so late chunks are much heavier): whatever the steal
    // feedback does, the target must stay inside [2, 16] chunks/thread and
    // results must remain bit-identical to sequential execution.
    let p = pool(4);
    for round in 0..64u64 {
        let got: u64 = p.install(|| {
            (0..20_000u64)
                .into_par_iter()
                .map(|i| {
                    let spin = (i / 1000) % 7; // uneven per-item cost
                    (0..spin).fold(i ^ round, |a, b| a.wrapping_mul(b | 1))
                })
                .reduce(|| 0, u64::wrapping_add)
        });
        let expected: u64 = (0..20_000u64)
            .map(|i| {
                let spin = (i / 1000) % 7;
                (0..spin).fold(i ^ round, |a, b| a.wrapping_mul(b | 1))
            })
            .fold(0, u64::wrapping_add);
        assert_eq!(got, expected, "divergence in round {round}");
        let cpt = p.install(rayon::current_chunks_per_thread);
        assert!(
            (2..=16).contains(&cpt),
            "chunks/thread out of bounds: {cpt}"
        );
    }
}

#[test]
fn adaptive_chunk_len_is_positive_and_covers_the_input() {
    let p = pool(4);
    p.install(|| {
        for len in [0usize, 1, 2, 7, 100, 10_000] {
            let chunk = rayon::adaptive_chunk_len(len);
            assert!(chunk >= 1, "chunk length 0 for len = {len}");
            assert!(chunk <= len.max(1), "chunk {chunk} exceeds len {len}");
        }
    });
    // Inline (1-thread) execution never splits.
    assert_eq!(pool(1).install(|| rayon::adaptive_chunk_len(5_000)), 5_000);
    assert_eq!(pool(1).install(rayon::current_chunks_per_thread), 1);
}

#[test]
fn adaptive_layout_changes_never_change_results() {
    // Interleave saturating jobs (no steals → coarsen) with tiny uneven
    // jobs (steals → refine) and check a pinned reduction after every
    // adjustment window; the layout may move, the value may not.
    let p = pool(3);
    let reference: u64 = (0..50_000u64).map(|x| x.rotate_left(11) ^ 0xA5A5).sum();
    for _ in 0..40 {
        let got: u64 = p.install(|| {
            (0..50_000u64)
                .into_par_iter()
                .map(|x| x.rotate_left(11) ^ 0xA5A5)
                .reduce(|| 0, u64::wrapping_add)
        });
        assert_eq!(got, reference);
        // A micro-job whose chunks all land on one worker invites steals.
        let tiny: Vec<u64> = p.install(|| (0..16u64).into_par_iter().map(|x| x * x).collect());
        assert_eq!(tiny, (0..16u64).map(|x| x * x).collect::<Vec<_>>());
    }
}
