//! Offline API-compatible shim for `crossbeam` (channel module only).
//!
//! Backed by `std::sync::mpsc::sync_channel`, which provides the same
//! bounded blocking-send semantics the workspace relies on (`bounded(0)` is
//! a rendezvous channel in both implementations). Multi-consumer cloning of
//! `Receiver` — a crossbeam extra that std lacks — is intentionally not
//! exposed; nothing in the workspace uses it.

pub mod channel {
    //! Bounded multi-producer channels.

    use std::sync::mpsc;

    /// The sending half of a bounded channel.
    pub struct Sender<T>(mpsc::SyncSender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    /// Error returned when sending into a disconnected channel.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T: std::fmt::Debug> std::error::Error for SendError<T> {}

    /// Error returned when receiving from an empty, disconnected channel.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("receiving on an empty, disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    impl<T> Sender<T> {
        /// Sends `value`, blocking while the channel is full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// The receiving half of a bounded channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Receives a value, blocking while the channel is empty.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Attempts to receive without blocking.
        pub fn try_recv(&self) -> Result<T, mpsc::TryRecvError> {
            self.0.try_recv()
        }

        /// Blocking iterator over received values, ending on disconnect.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            self.0.iter()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::IntoIter<T>;
        fn into_iter(self) -> Self::IntoIter {
            self.0.into_iter()
        }
    }

    /// Creates a bounded channel of the given capacity (`0` = rendezvous).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(tx), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn bounded_roundtrip_in_order() {
            let (tx, rx) = bounded(4);
            let producer = std::thread::spawn(move || {
                for i in 0..100u32 {
                    tx.send(i).unwrap();
                }
            });
            let got: Vec<u32> = rx.iter().collect();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
            producer.join().unwrap();
        }

        #[test]
        fn send_fails_after_disconnect() {
            let (tx, rx) = bounded(1);
            drop(rx);
            assert_eq!(tx.send(7u32), Err(SendError(7)));
        }

        #[test]
        fn cloned_senders_feed_one_receiver() {
            let (tx, rx) = bounded(8);
            let tx2 = tx.clone();
            let a = std::thread::spawn(move || (0..50u32).for_each(|i| tx.send(i).unwrap()));
            let b = std::thread::spawn(move || (50..100u32).for_each(|i| tx2.send(i).unwrap()));
            let mut got: Vec<u32> = rx.iter().collect();
            got.sort_unstable();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
            a.join().unwrap();
            b.join().unwrap();
        }
    }
}
