//! Concurrent-writer safety: the store's write-temp-then-atomic-rename
//! discipline means racing writers to one cache key can only ever leave
//! one writer's *complete* bytes — a reader observes some fully valid
//! version, never a torn or interleaved file.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use kcenter_metric::DistanceMatrix;
use kcenter_store::ArtifactStore;

fn tmp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir()
        .join("kcenter-store-concurrency")
        .join(format!("{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A recognizable matrix: every entry carries the writer's tag so a read
/// can be attributed (and a mixed read detected).
fn tagged_matrix(tag: f64) -> DistanceMatrix {
    let n = 64usize;
    let data: Vec<f64> = (0..n * (n - 1) / 2).map(|i| tag + i as f64).collect();
    DistanceMatrix::from_condensed(n, data)
}

#[test]
fn two_writers_one_key_never_corrupt_the_entry() {
    const KEY: u128 = 0xDEAD_BEEF;
    const ROUNDS: usize = 200;

    let store = ArtifactStore::open(tmp_dir("two-writers")).unwrap();
    let a = tagged_matrix(1_000_000.0);
    let b = tagged_matrix(2_000_000.0);
    // Seed the key so readers never see "no entry yet".
    store.store_matrix(KEY, &a).unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    let writers: Vec<_> = [a.clone(), b.clone()]
        .into_iter()
        .map(|m| {
            let store = store.clone();
            std::thread::spawn(move || {
                for _ in 0..ROUNDS {
                    store.store_matrix(KEY, &m).unwrap();
                }
            })
        })
        .collect();

    let reader = {
        let store = store.clone();
        let stop = Arc::clone(&stop);
        let (a, b) = (a.clone(), b.clone());
        std::thread::spawn(move || {
            let mut reads = 0usize;
            while !stop.load(Ordering::Relaxed) {
                let m = store
                    .load_matrix(KEY)
                    .expect("entry must always decode while writers race");
                // The loaded matrix must be exactly one writer's version.
                assert!(
                    m == a || m == b,
                    "read a matrix that is neither writer's version"
                );
                reads += 1;
            }
            reads
        })
    };

    for w in writers {
        w.join().expect("writer thread");
    }
    stop.store(true, Ordering::Relaxed);
    let reads = reader.join().expect("reader thread");
    assert!(reads > 0, "reader must have observed the entry");

    // After the dust settles: exactly one entry for the key, fully valid.
    let settled = store.load_matrix(KEY).expect("entry survives the race");
    assert!(settled == a || settled == b);
    assert_eq!(store.stat().unwrap().matrix.entries, 1);
}

#[test]
fn distinct_keys_do_not_interfere() {
    let store = ArtifactStore::open(tmp_dir("distinct-keys")).unwrap();
    let handles: Vec<_> = (0u128..8)
        .map(|key| {
            let store = store.clone();
            std::thread::spawn(move || {
                let m = tagged_matrix(key as f64 * 10_000.0);
                for _ in 0..50 {
                    store.store_matrix(key, &m).unwrap();
                    let back = store.load_matrix(key).expect("own key must hit");
                    assert_eq!(back, m);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("writer thread");
    }
    assert_eq!(store.stat().unwrap().matrix.entries, 8);
}
