//! Property tests for the artifact codec: encode → decode must be the
//! identity on the *bit patterns* of every `f64`, and decoding must turn
//! arbitrary corruption into a clean [`DecodeError`] — never a panic,
//! never a silently wrong value.

use kcenter_metric::{DistanceMatrix, Point};
use kcenter_store::codec::{
    decode_coreset, decode_matrix, decode_solution, encode_coreset, encode_matrix, encode_solution,
    StoredSolution,
};
use proptest::prelude::*;

/// Condensed matrix entries with *arbitrary bit patterns* (including NaN
/// payloads, infinities, subnormals, -0.0): the codec ships raw bits and
/// must not normalize them.
fn arb_matrix() -> impl Strategy<Value = DistanceMatrix> {
    prop::collection::vec(0u64..u64::MAX, 0..67).prop_map(|bits| {
        // Largest n with n(n-1)/2 <= len, so every generated length maps
        // onto a valid condensed matrix.
        let mut n = 0usize;
        while (n + 1) * n / 2 <= bits.len() {
            n += 1;
        }
        let entries = n * n.saturating_sub(1) / 2;
        let data: Vec<f64> = bits[..entries].iter().map(|&b| f64::from_bits(b)).collect();
        DistanceMatrix::from_condensed(n, data)
    })
}

/// Finite-coordinate points of one fixed dimension plus weights.
fn arb_coreset(dim: usize) -> impl Strategy<Value = (Vec<Point>, Vec<u64>)> {
    prop::collection::vec(
        (prop::collection::vec(-1e12..1e12f64, dim), 0u64..u64::MAX),
        0..40,
    )
    .prop_map(|rows| {
        rows.into_iter()
            .map(|(coords, w)| (Point::new(coords), w))
            .unzip()
    })
}

fn bits_of(points: &[Point]) -> Vec<Vec<u64>> {
    points
        .iter()
        .map(|p| p.coords().iter().map(|c| c.to_bits()).collect())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matrix_round_trip_is_bitwise(m in arb_matrix()) {
        let bytes = encode_matrix(&m);
        let back = decode_matrix(&bytes).expect("valid encoding must decode");
        prop_assert_eq!(back.len(), m.len());
        prop_assert_eq!(back.condensed().len(), m.condensed().len());
        for (a, b) in back.condensed().iter().zip(m.condensed()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn coreset_round_trip_is_bitwise((points, weights) in arb_coreset(3)) {
        let bytes = encode_coreset(&points, &weights);
        let (p2, w2) = decode_coreset(&bytes).expect("valid encoding must decode");
        prop_assert_eq!(&w2, &weights);
        prop_assert_eq!(bits_of(&p2), bits_of(&points));
    }

    #[test]
    fn solution_round_trip_is_bitwise(
        (points, _) in arb_coreset(2),
        radius in 0.0..1e9f64,
        uncovered in 0u64..u64::MAX,
        evals in 0u64..u64::MAX,
    ) {
        let solution = StoredSolution {
            centers: points,
            radius,
            uncovered_weight: uncovered,
            evaluations: evals,
        };
        let back = decode_solution(&encode_solution(&solution))
            .expect("valid encoding must decode");
        prop_assert_eq!(back.radius.to_bits(), solution.radius.to_bits());
        prop_assert_eq!(back.uncovered_weight, solution.uncovered_weight);
        prop_assert_eq!(back.evaluations, solution.evaluations);
        prop_assert_eq!(bits_of(&back.centers), bits_of(&solution.centers));
    }

    #[test]
    fn any_truncation_is_a_clean_miss(m in arb_matrix(), frac in 0.0..1.0f64) {
        let bytes = encode_matrix(&m);
        let cut = ((bytes.len() as f64) * frac) as usize;
        // Strictly shorter than the valid encoding.
        let cut = cut.min(bytes.len().saturating_sub(1));
        prop_assert!(decode_matrix(&bytes[..cut]).is_err());
    }

    #[test]
    fn any_single_byte_flip_is_a_clean_miss(
        m in arb_matrix(),
        pos_frac in 0.0..1.0f64,
        flip in 1u8..=255,
    ) {
        let mut bytes = encode_matrix(&m);
        let pos = ((bytes.len() as f64) * pos_frac) as usize;
        let pos = pos.min(bytes.len() - 1);
        bytes[pos] ^= flip;
        // Header flips fail structurally; payload flips fail the
        // checksum. Either way: an error, never a panic, never data.
        prop_assert!(decode_matrix(&bytes).is_err(), "flip at {pos} undetected");
    }

    #[test]
    fn decoding_arbitrary_garbage_never_panics(
        bytes in prop::collection::vec(0u8..=255, 0..200)
    ) {
        let _ = decode_matrix(&bytes);
        let _ = decode_coreset(&bytes);
        let _ = decode_solution(&bytes);
    }
}
