//! End-to-end wiring of the persistent store under `CachedOracle`: a
//! process with the backend installed builds each fingerprinted matrix at
//! most once *ever* — later oracles (standing in for later processes; the
//! cross-process case is covered by the cache-determinism suite in
//! `tests/fig_golden.rs`) load it, bitwise identical, with zero builds.
//!
//! One `#[test]` on purpose: `install_at` installs a process-global
//! backend and the hit/miss counters are process-global too, so the
//! scenario controls its ordering explicitly instead of racing sibling
//! tests.

use kcenter_metric::{
    matrix_build_count, store_hit_count, store_miss_count, CachedOracle, Euclidean, Manhattan,
    Metric, Point,
};

fn points() -> Vec<Point> {
    (0..40)
        .map(|i| Point::new(vec![(i as f64 * 3.7) % 29.0, (i as f64 * 1.3) % 7.0]))
        .collect()
}

#[test]
fn cached_oracle_round_trips_through_the_installed_store() {
    let dir = std::env::temp_dir()
        .join("kcenter-store-wiring")
        .join(std::process::id().to_string());
    let _ = std::fs::remove_dir_all(&dir);
    let store = kcenter_store::install_at(&dir).expect("install store");
    assert!(kcenter_metric::matrix_persistence_installed());

    // Cold: the first oracle misses the store, prices the matrix, and
    // persists it.
    let cold = CachedOracle::new(points(), &Euclidean, usize::MAX);
    let cold_matrix = cold.matrix().expect("below threshold").clone();
    assert_eq!(cold.build_count(), 1);
    assert_eq!(cold.load_count(), 0);
    assert_eq!(store_miss_count(), 1);
    assert_eq!(store_hit_count(), 0);
    assert_eq!(store.stat().unwrap().matrix.entries, 1);

    // Warm: a *fresh* handle family over the same points loads instead of
    // building — and the loaded matrix is bitwise the built one.
    let builds_before = matrix_build_count();
    let warm = CachedOracle::new(points(), &Euclidean, usize::MAX);
    let warm_matrix = warm.matrix().expect("below threshold");
    assert_eq!(warm.build_count(), 0, "warm oracle must not build");
    assert_eq!(warm.load_count(), 1);
    assert_eq!(store_hit_count(), 1);
    assert_eq!(
        matrix_build_count(),
        builds_before,
        "a store hit must not increment the build counter"
    );
    assert_eq!(warm_matrix.condensed().len(), cold_matrix.condensed().len());
    for (a, b) in warm_matrix.condensed().iter().zip(cold_matrix.condensed()) {
        assert_eq!(a.to_bits(), b.to_bits());
    }

    // Every lookup through the warm oracle agrees bitwise with direct
    // metric evaluation — the loaded cache is semantically transparent.
    let pts = points();
    for i in 0..pts.len() {
        for j in 0..pts.len() {
            assert_eq!(
                warm.cmp_dist(i, j).to_bits(),
                Euclidean.cmp_distance(&pts[i], &pts[j]).to_bits()
            );
        }
    }

    // A different metric over the same points is a different fingerprint:
    // it must miss, build, and persist its own entry.
    let manhattan = CachedOracle::new(points(), &Manhattan, usize::MAX);
    let _ = manhattan.matrix().expect("below threshold");
    assert_eq!(manhattan.build_count(), 1);
    assert_eq!(store_miss_count(), 2);
    assert_eq!(store.stat().unwrap().matrix.entries, 2);

    // Oracles above their cache threshold never touch the store.
    let (hits, misses) = (store_hit_count(), store_miss_count());
    let uncached = CachedOracle::new(points(), &Euclidean, 0);
    assert!(uncached.matrix().is_none());
    let _ = uncached.cmp_dist(0, 1);
    assert_eq!((store_hit_count(), store_miss_count()), (hits, misses));

    // A corrupted entry on disk degrades to a clean rebuild (miss), not a
    // failure: truncate every matrix entry in the cache dir.
    for entry in std::fs::read_dir(store.dir()).unwrap() {
        let path = entry.unwrap().path();
        std::fs::write(&path, b"garbage").unwrap();
    }
    let recovered = CachedOracle::new(points(), &Euclidean, usize::MAX);
    let recovered_matrix = recovered.matrix().expect("below threshold");
    assert_eq!(recovered.build_count(), 1, "corrupt entry must rebuild");
    for (a, b) in recovered_matrix
        .condensed()
        .iter()
        .zip(cold_matrix.condensed())
    {
        assert_eq!(a.to_bits(), b.to_bits());
    }
}
