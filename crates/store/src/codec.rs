//! The compact binary codec behind the artifact store.
//!
//! Every artifact file is a fixed 32-byte header followed by a payload:
//!
//! ```text
//! offset  size  field
//! 0       8     magic     b"KCARTC01"
//! 8       4     version   u32 LE — CODEC_VERSION, bumped on any layout change
//! 12      4     kind      u32 LE — ArtifactKind discriminant
//! 16      8     len       u64 LE — payload byte length
//! 24      8     checksum  u64 LE — fingerprint::checksum64 of the payload
//! 32      len   payload
//! ```
//!
//! All multi-byte values are little-endian; `f64`s travel as raw bit
//! patterns (`to_bits`/`from_bits`), so decoding reproduces every value —
//! including `-0.0` and subnormals — **bitwise**. That is load-bearing:
//! the determinism CI matrix asserts a warm-cache run is bit-identical to
//! the cold run that populated the cache.
//!
//! Decoding is total: any malformed input (truncation, flipped bytes,
//! version or kind mismatch, inconsistent element counts) yields a
//! [`DecodeError`], never a panic. The store maps every error to a clean
//! cache miss.

use kcenter_metric::fingerprint::checksum64;
use kcenter_metric::{DistanceMatrix, Point};

/// File magic: identifies k-center artifact cache entries.
pub const MAGIC: [u8; 8] = *b"KCARTC01";

/// Codec format version. Bump on **any** incompatible change to the header
/// or a payload layout; old entries then decode to a clean miss and are
/// transparently re-derived and overwritten.
pub const CODEC_VERSION: u32 = 1;

/// Size of the fixed header preceding every payload.
pub const HEADER_LEN: usize = 32;

/// What an artifact file contains.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArtifactKind {
    /// A condensed [`DistanceMatrix`] (proxy-scale pairwise distances).
    Matrix,
    /// A weighted coreset: points plus proxy weights.
    Coreset,
    /// A solved clustering: centers plus the solved radius/accounting.
    Solution,
    /// A point shard: one MapReduce partition's unweighted input points,
    /// the multi-process executor's on-disk interchange format.
    Shard,
    /// A streaming session: one tenant/stream's resumable doubling-coreset
    /// state (centers, weights, `ϕ`, processed count) — the serve layer's
    /// evict/restore interchange format.
    Session,
}

impl ArtifactKind {
    /// All kinds, for store statistics.
    pub const ALL: [ArtifactKind; 5] = [
        ArtifactKind::Matrix,
        ArtifactKind::Coreset,
        ArtifactKind::Solution,
        ArtifactKind::Shard,
        ArtifactKind::Session,
    ];

    /// Stable on-disk discriminant.
    pub fn tag(self) -> u32 {
        match self {
            ArtifactKind::Matrix => 1,
            ArtifactKind::Coreset => 2,
            ArtifactKind::Solution => 3,
            ArtifactKind::Shard => 4,
            ArtifactKind::Session => 5,
        }
    }

    /// File-name prefix (also the human-readable name in `cache stat`).
    pub fn name(self) -> &'static str {
        match self {
            ArtifactKind::Matrix => "matrix",
            ArtifactKind::Coreset => "coreset",
            ArtifactKind::Solution => "solution",
            ArtifactKind::Shard => "shard",
            ArtifactKind::Session => "session",
        }
    }

    fn from_tag(tag: u32) -> Option<ArtifactKind> {
        ArtifactKind::ALL.into_iter().find(|k| k.tag() == tag)
    }
}

/// Why a decode was rejected. Every variant is a *clean miss* from the
/// store's perspective; the distinctions exist for tests and diagnostics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// Input shorter than the fixed header, or payload shorter than the
    /// header's declared length.
    Truncated,
    /// Magic bytes did not match [`MAGIC`].
    BadMagic,
    /// Header version differs from [`CODEC_VERSION`].
    VersionMismatch {
        /// The version found in the file.
        found: u32,
    },
    /// The entry holds a different [`ArtifactKind`] than requested.
    KindMismatch,
    /// Payload checksum did not match the header.
    ChecksumMismatch,
    /// Payload structure inconsistent (bad element counts, trailing bytes,
    /// or values the target type rejects, e.g. non-finite coordinates).
    Malformed,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "truncated artifact"),
            DecodeError::BadMagic => write!(f, "not a k-center artifact (bad magic)"),
            DecodeError::VersionMismatch { found } => {
                write!(f, "codec version {found} != {CODEC_VERSION}")
            }
            DecodeError::KindMismatch => write!(f, "artifact kind mismatch"),
            DecodeError::ChecksumMismatch => write!(f, "payload checksum mismatch"),
            DecodeError::Malformed => write!(f, "malformed payload"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// A solved clustering as the store persists it: the concrete artifact
/// behind `radius_search::CoresetSolution` / CLI results.
#[derive(Clone, Debug, PartialEq)]
pub struct StoredSolution {
    /// The selected centers.
    pub centers: Vec<Point>,
    /// The solved radius (coreset `r̃min` or measured objective, per the
    /// producer's convention).
    pub radius: f64,
    /// Weight left uncovered at `radius` (0 when not applicable).
    pub uncovered_weight: u64,
    /// `OutliersCluster` evaluations the original solve performed.
    pub evaluations: u64,
}

// ---------------------------------------------------------------------------
// Primitive writers/readers
// ---------------------------------------------------------------------------

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

/// Sequential payload reader; all failures collapse to `Malformed` (the
/// checksum has already vouched for the bytes, so a structural error means
/// a codec bug or a forged checksum — either way, a miss).
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        let end = self.pos.checked_add(8).ok_or(DecodeError::Malformed)?;
        let bytes = self.buf.get(self.pos..end).ok_or(DecodeError::Malformed)?;
        self.pos = end;
        Ok(u64::from_le_bytes(bytes.try_into().expect("8-byte slice")))
    }

    fn f64(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn len(&mut self) -> Result<usize, DecodeError> {
        usize::try_from(self.u64()?).map_err(|_| DecodeError::Malformed)
    }

    fn finish(&self) -> Result<(), DecodeError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(DecodeError::Malformed)
        }
    }
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

fn frame(kind: ArtifactKind, payload: Vec<u8>) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&CODEC_VERSION.to_le_bytes());
    out.extend_from_slice(&kind.tag().to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&checksum64(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Validates the header and checksum, returning the payload slice.
fn unframe(kind: ArtifactKind, bytes: &[u8]) -> Result<&[u8], DecodeError> {
    if bytes.len() < HEADER_LEN {
        return Err(DecodeError::Truncated);
    }
    if bytes[0..8] != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != CODEC_VERSION {
        return Err(DecodeError::VersionMismatch { found: version });
    }
    let tag = u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes"));
    if ArtifactKind::from_tag(tag) != Some(kind) {
        return Err(DecodeError::KindMismatch);
    }
    let len = u64::from_le_bytes(bytes[16..24].try_into().expect("8 bytes"));
    let payload = &bytes[HEADER_LEN..];
    if u64::try_from(payload.len()) != Ok(len) {
        // Shorter *or* longer than declared: either way the file is not
        // what the writer produced.
        return Err(DecodeError::Truncated);
    }
    let expected = u64::from_le_bytes(bytes[24..32].try_into().expect("8 bytes"));
    if checksum64(payload) != expected {
        return Err(DecodeError::ChecksumMismatch);
    }
    Ok(payload)
}

// ---------------------------------------------------------------------------
// DistanceMatrix
// ---------------------------------------------------------------------------

/// Encodes a condensed [`DistanceMatrix`] (framed, checksummed).
pub fn encode_matrix(matrix: &DistanceMatrix) -> Vec<u8> {
    let condensed = matrix.condensed();
    let mut payload = Vec::with_capacity(8 + 8 * condensed.len());
    put_u64(&mut payload, matrix.len() as u64);
    for &d in condensed {
        put_f64(&mut payload, d);
    }
    frame(ArtifactKind::Matrix, payload)
}

/// Fully validated layout of a matrix entry: everything needed to view the
/// condensed `f64` payload in place (the mmap-backed warm-load path) or to
/// decode it into an owned buffer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MatrixLayout {
    /// Number of points.
    pub n: usize,
    /// Number of condensed entries, `n·(n-1)/2`.
    pub entries: usize,
    /// Byte offset of the first condensed `f64` within the whole entry
    /// (header + count prefix); always 8-byte aligned, so a page-aligned
    /// mapping of the file can reinterpret the payload as `&[f64]`.
    pub data_offset: usize,
}

/// Validates a matrix entry — framing, checksum, and entry-count
/// consistency — without materializing the entries.
pub fn validate_matrix(bytes: &[u8]) -> Result<MatrixLayout, DecodeError> {
    let payload = unframe(ArtifactKind::Matrix, bytes)?;
    let mut r = Reader::new(payload);
    let n = r.len()?;
    let entries = n
        .checked_mul(n.saturating_sub(1))
        .map(|e| e / 2)
        .ok_or(DecodeError::Malformed)?;
    // The count must be consistent with the payload size before a caller
    // commits to allocating (or mapping) `entries` slots.
    if payload.len() != 8 + entries.checked_mul(8).ok_or(DecodeError::Malformed)? {
        return Err(DecodeError::Malformed);
    }
    Ok(MatrixLayout {
        n,
        entries,
        data_offset: HEADER_LEN + 8,
    })
}

/// Decodes a [`DistanceMatrix`], bitwise-equal to what was encoded.
pub fn decode_matrix(bytes: &[u8]) -> Result<DistanceMatrix, DecodeError> {
    let layout = validate_matrix(bytes)?;
    let mut r = Reader::new(&bytes[layout.data_offset..]);
    let mut data = Vec::with_capacity(layout.entries);
    for _ in 0..layout.entries {
        data.push(r.f64()?);
    }
    r.finish()?;
    Ok(DistanceMatrix::from_condensed(layout.n, data))
}

// ---------------------------------------------------------------------------
// Weighted coreset
// ---------------------------------------------------------------------------

/// Encodes a weighted coreset as parallel points/weights arrays.
///
/// # Panics
///
/// Panics if `points` and `weights` lengths differ, or the points are not
/// all of one dimension — both are structural invariants of every coreset
/// in the workspace.
pub fn encode_coreset(points: &[Point], weights: &[u64]) -> Vec<u8> {
    assert_eq!(
        points.len(),
        weights.len(),
        "weights misaligned with points"
    );
    let dim = points.first().map_or(0, Point::dim);
    let mut payload = Vec::with_capacity(16 + points.len() * (8 * dim + 8));
    put_u64(&mut payload, points.len() as u64);
    put_u64(&mut payload, dim as u64);
    for (p, &w) in points.iter().zip(weights) {
        assert_eq!(p.dim(), dim, "mixed-dimension coreset");
        for &c in p.coords() {
            put_f64(&mut payload, c);
        }
        put_u64(&mut payload, w);
    }
    frame(ArtifactKind::Coreset, payload)
}

/// Decodes a weighted coreset. Coordinates are validated through
/// [`Point::try_new`], so a forged payload of non-finite values is a
/// [`DecodeError::Malformed`] miss, not a downstream panic.
pub fn decode_coreset(bytes: &[u8]) -> Result<(Vec<Point>, Vec<u64>), DecodeError> {
    let payload = unframe(ArtifactKind::Coreset, bytes)?;
    let mut r = Reader::new(payload);
    let n = r.len()?;
    let dim = r.len()?;
    if n > 0 && dim == 0 {
        return Err(DecodeError::Malformed);
    }
    let per_point = dim.checked_mul(8).and_then(|b| b.checked_add(8));
    let body = n.checked_mul(per_point.ok_or(DecodeError::Malformed)?);
    if Some(payload.len()) != body.and_then(|b| b.checked_add(16)) {
        return Err(DecodeError::Malformed);
    }
    let mut points = Vec::with_capacity(n);
    let mut weights = Vec::with_capacity(n);
    for _ in 0..n {
        let mut coords = Vec::with_capacity(dim);
        for _ in 0..dim {
            coords.push(r.f64()?);
        }
        points.push(Point::try_new(coords).map_err(|_| DecodeError::Malformed)?);
        weights.push(r.u64()?);
    }
    r.finish()?;
    Ok((points, weights))
}

// ---------------------------------------------------------------------------
// Point shard
// ---------------------------------------------------------------------------

/// Fully validated layout of a shard entry: point count, dimension, and the
/// byte offset of the coordinate block — everything a mapped reader needs
/// to walk the coordinates in place.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardLayout {
    /// Number of points in the shard.
    pub n: usize,
    /// Dimension of every point.
    pub dim: usize,
    /// Byte offset of the first coordinate within the whole entry; always
    /// 8-byte aligned (header + two `u64` prefixes), so a page-aligned
    /// mapping can reinterpret the coordinate block as `&[f64]`.
    pub coords_offset: usize,
}

/// Encodes a point shard — one MapReduce partition's input points — as a
/// framed, checksummed entry whose coordinate block is a single contiguous
/// 8-byte-aligned run of `f64` bit patterns (mmap-friendly).
///
/// # Panics
///
/// Panics on mixed-dimension points (a structural invariant of every
/// dataset in the workspace).
pub fn encode_shard(points: &[Point]) -> Vec<u8> {
    let dim = points.first().map_or(0, Point::dim);
    let mut payload = Vec::with_capacity(16 + points.len() * 8 * dim);
    put_u64(&mut payload, points.len() as u64);
    put_u64(&mut payload, dim as u64);
    for p in points {
        assert_eq!(p.dim(), dim, "mixed-dimension shard");
        for &c in p.coords() {
            put_f64(&mut payload, c);
        }
    }
    frame(ArtifactKind::Shard, payload)
}

/// Validates a shard entry — framing, checksum, count consistency —
/// without materializing the points.
pub fn validate_shard(bytes: &[u8]) -> Result<ShardLayout, DecodeError> {
    let payload = unframe(ArtifactKind::Shard, bytes)?;
    let mut r = Reader::new(payload);
    let n = r.len()?;
    let dim = r.len()?;
    if n > 0 && dim == 0 {
        return Err(DecodeError::Malformed);
    }
    let coords = n
        .checked_mul(dim)
        .and_then(|c| c.checked_mul(8))
        .ok_or(DecodeError::Malformed)?;
    if payload.len() != 16 + coords {
        return Err(DecodeError::Malformed);
    }
    Ok(ShardLayout {
        n,
        dim,
        coords_offset: HEADER_LEN + 16,
    })
}

/// Validates a shard's coordinate block for finiteness — the same invariant
/// [`Point::try_new`] enforces — without materializing points.
///
/// Zero-copy readers that view a mapped shard's coordinate block directly
/// (e.g. building a `PointSet` over the mapping) must call this after
/// [`validate_shard`]: the checksum vouches for the *bytes*, not for the
/// values, and a forged entry of non-finite coordinates must surface as a
/// [`DecodeError::Malformed`] miss — never as NaN-poisoned distances.
pub fn validate_shard_coords(coords: &[f64]) -> Result<(), DecodeError> {
    if coords.iter().all(|c| c.is_finite()) {
        Ok(())
    } else {
        Err(DecodeError::Malformed)
    }
}

/// Decodes a point shard. Coordinates are validated through
/// [`Point::try_new`], so a forged payload of non-finite values is a
/// [`DecodeError::Malformed`] miss, not a downstream panic.
pub fn decode_shard(bytes: &[u8]) -> Result<Vec<Point>, DecodeError> {
    let layout = validate_shard(bytes)?;
    let mut r = Reader::new(&bytes[layout.coords_offset..]);
    let mut points = Vec::with_capacity(layout.n);
    for _ in 0..layout.n {
        let mut coords = Vec::with_capacity(layout.dim);
        for _ in 0..layout.dim {
            coords.push(r.f64()?);
        }
        points.push(Point::try_new(coords).map_err(|_| DecodeError::Malformed)?);
    }
    r.finish()?;
    Ok(points)
}

// ---------------------------------------------------------------------------
// Solution
// ---------------------------------------------------------------------------

/// Encodes a [`StoredSolution`].
///
/// # Panics
///
/// Panics on mixed-dimension centers (a structural invariant of every
/// solution in the workspace).
pub fn encode_solution(solution: &StoredSolution) -> Vec<u8> {
    let dim = solution.centers.first().map_or(0, Point::dim);
    let mut payload = Vec::with_capacity(40 + solution.centers.len() * 8 * dim);
    put_u64(&mut payload, solution.centers.len() as u64);
    put_u64(&mut payload, dim as u64);
    for p in &solution.centers {
        assert_eq!(p.dim(), dim, "mixed-dimension centers");
        for &c in p.coords() {
            put_f64(&mut payload, c);
        }
    }
    put_f64(&mut payload, solution.radius);
    put_u64(&mut payload, solution.uncovered_weight);
    put_u64(&mut payload, solution.evaluations);
    frame(ArtifactKind::Solution, payload)
}

/// Decodes a [`StoredSolution`], bitwise-equal on the radius and every
/// center coordinate.
pub fn decode_solution(bytes: &[u8]) -> Result<StoredSolution, DecodeError> {
    let payload = unframe(ArtifactKind::Solution, bytes)?;
    let mut r = Reader::new(payload);
    let n = r.len()?;
    let dim = r.len()?;
    if n > 0 && dim == 0 {
        return Err(DecodeError::Malformed);
    }
    let body = n.checked_mul(dim.checked_mul(8).ok_or(DecodeError::Malformed)?);
    if Some(payload.len()) != body.and_then(|b| b.checked_add(16 + 24)) {
        return Err(DecodeError::Malformed);
    }
    let mut centers = Vec::with_capacity(n);
    for _ in 0..n {
        let mut coords = Vec::with_capacity(dim);
        for _ in 0..dim {
            coords.push(r.f64()?);
        }
        centers.push(Point::try_new(coords).map_err(|_| DecodeError::Malformed)?);
    }
    let radius = r.f64()?;
    if radius.is_nan() {
        return Err(DecodeError::Malformed);
    }
    let uncovered_weight = r.u64()?;
    let evaluations = r.u64()?;
    r.finish()?;
    Ok(StoredSolution {
        centers,
        radius,
        uncovered_weight,
        evaluations,
    })
}

// ---------------------------------------------------------------------------
// Streaming session
// ---------------------------------------------------------------------------

/// A streaming session as the store persists it: the resumable state of
/// one tenant/stream's `WeightedDoublingCoreset`, plus the budget `τ` it
/// was built with (a restore under a different `τ` must be rejected, not
/// silently re-interpreted).
#[derive(Clone, Debug, PartialEq)]
pub struct StoredSession {
    /// The coreset budget `τ` the session was created with.
    pub tau: u64,
    /// Whether the `τ + 1`-point initialization has completed.
    pub initialized: bool,
    /// The lower bound `ϕ` at snapshot time.
    pub phi: f64,
    /// Total stream items processed at snapshot time.
    pub processed: u64,
    /// The centers (buffered points when not yet initialized).
    pub centers: Vec<Point>,
    /// Weights aligned with `centers`.
    pub weights: Vec<u64>,
}

/// Encodes a [`StoredSession`] (framed, checksummed, `f64`s as raw bits).
///
/// # Panics
///
/// Panics if `centers` and `weights` lengths differ or the centers are not
/// all of one dimension — structural invariants of every live session.
pub fn encode_session(session: &StoredSession) -> Vec<u8> {
    assert_eq!(
        session.centers.len(),
        session.weights.len(),
        "weights misaligned with centers"
    );
    let dim = session.centers.first().map_or(0, Point::dim);
    let mut payload = Vec::with_capacity(48 + session.centers.len() * (8 * dim + 8));
    put_u64(&mut payload, session.centers.len() as u64);
    put_u64(&mut payload, dim as u64);
    put_u64(&mut payload, session.tau);
    put_u64(&mut payload, u64::from(session.initialized));
    put_f64(&mut payload, session.phi);
    put_u64(&mut payload, session.processed);
    for (p, &w) in session.centers.iter().zip(&session.weights) {
        assert_eq!(p.dim(), dim, "mixed-dimension session");
        for &c in p.coords() {
            put_f64(&mut payload, c);
        }
        put_u64(&mut payload, w);
    }
    frame(ArtifactKind::Session, payload)
}

/// Decodes a [`StoredSession`], bitwise-equal on `ϕ` and every coordinate.
///
/// Decoding is total: truncation, flipped bytes, inconsistent counts, a
/// non-`{0,1}` initialized flag, a non-finite or negative `ϕ`, or forged
/// non-finite coordinates all yield a clean [`DecodeError`]. Algorithmic
/// invariants beyond structure (weight accounting, center separation) are
/// the restore path's job — `WeightedDoublingCoreset::from_snapshot` gates
/// them.
pub fn decode_session(bytes: &[u8]) -> Result<StoredSession, DecodeError> {
    let payload = unframe(ArtifactKind::Session, bytes)?;
    let mut r = Reader::new(payload);
    let n = r.len()?;
    let dim = r.len()?;
    if n > 0 && dim == 0 {
        return Err(DecodeError::Malformed);
    }
    let tau = r.u64()?;
    if tau == 0 {
        return Err(DecodeError::Malformed);
    }
    let initialized = match r.u64()? {
        0 => false,
        1 => true,
        _ => return Err(DecodeError::Malformed),
    };
    let phi = r.f64()?;
    if !phi.is_finite() || phi < 0.0 {
        return Err(DecodeError::Malformed);
    }
    let processed = r.u64()?;
    let per_point = dim.checked_mul(8).and_then(|b| b.checked_add(8));
    let body = n.checked_mul(per_point.ok_or(DecodeError::Malformed)?);
    if Some(payload.len()) != body.and_then(|b| b.checked_add(48)) {
        return Err(DecodeError::Malformed);
    }
    let mut centers = Vec::with_capacity(n);
    let mut weights = Vec::with_capacity(n);
    for _ in 0..n {
        let mut coords = Vec::with_capacity(dim);
        for _ in 0..dim {
            coords.push(r.f64()?);
        }
        centers.push(Point::try_new(coords).map_err(|_| DecodeError::Malformed)?);
        weights.push(r.u64()?);
    }
    r.finish()?;
    Ok(StoredSession {
        tau,
        initialized,
        phi,
        processed,
        centers,
        weights,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcenter_metric::Euclidean;

    fn pts(coords: &[&[f64]]) -> Vec<Point> {
        coords.iter().map(|c| Point::new(c.to_vec())).collect()
    }

    #[test]
    fn matrix_round_trip_is_bitwise_on_special_values() {
        // Build a real matrix, then smuggle in bit-pattern-sensitive
        // values via from_condensed: -0.0, subnormal, MAX, tiny.
        let data = vec![
            -0.0,
            f64::MIN_POSITIVE / 2.0, // subnormal
            f64::MAX,
            1e-300,
            3.5,
            0.1 + 0.2, // not exactly 0.3
        ];
        let m = DistanceMatrix::from_condensed(4, data.clone());
        let bytes = encode_matrix(&m);
        let back = decode_matrix(&bytes).expect("round trip");
        assert_eq!(back.len(), 4);
        for (a, b) in back.condensed().iter().zip(&data) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn empty_and_singleton_matrices_round_trip() {
        for n in [0usize, 1] {
            let m = DistanceMatrix::from_condensed(n, Vec::new());
            let back = decode_matrix(&encode_matrix(&m)).expect("round trip");
            assert_eq!(back.len(), n);
        }
    }

    #[test]
    fn coreset_round_trip() {
        let points = pts(&[&[1.0, 2.0], &[-0.0, 4.5], &[1e-12, -3.0]]);
        let weights = vec![3u64, u64::MAX, 1];
        let bytes = encode_coreset(&points, &weights);
        let (p2, w2) = decode_coreset(&bytes).expect("round trip");
        assert_eq!(w2, weights);
        assert_eq!(p2.len(), points.len());
        for (a, b) in p2.iter().zip(&points) {
            for (ca, cb) in a.coords().iter().zip(b.coords()) {
                assert_eq!(ca.to_bits(), cb.to_bits());
            }
        }
    }

    #[test]
    fn solution_round_trip() {
        let s = StoredSolution {
            centers: pts(&[&[0.5, 1.5], &[2.5, -3.5]]),
            radius: 17.25,
            uncovered_weight: 42,
            evaluations: 13,
        };
        let back = decode_solution(&encode_solution(&s)).expect("round trip");
        assert_eq!(back, s);
    }

    #[test]
    fn truncation_is_a_clean_error_at_every_length() {
        let m = DistanceMatrix::build(&pts(&[&[0.0], &[1.0], &[5.0]]), &Euclidean);
        let bytes = encode_matrix(&m);
        for cut in 0..bytes.len() {
            let err = decode_matrix(&bytes[..cut]).expect_err("truncated must fail");
            assert!(
                matches!(err, DecodeError::Truncated),
                "cut at {cut}: {err:?}"
            );
        }
        assert!(decode_matrix(&bytes).is_ok());
    }

    #[test]
    fn extended_file_is_rejected() {
        let m = DistanceMatrix::build(&pts(&[&[0.0], &[1.0]]), &Euclidean);
        let mut bytes = encode_matrix(&m);
        bytes.push(0);
        assert_eq!(decode_matrix(&bytes), Err(DecodeError::Truncated));
    }

    #[test]
    fn payload_corruption_fails_the_checksum() {
        let m = DistanceMatrix::build(&pts(&[&[0.0], &[1.0], &[5.0]]), &Euclidean);
        let mut bytes = encode_matrix(&m);
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        assert_eq!(decode_matrix(&bytes), Err(DecodeError::ChecksumMismatch));
    }

    #[test]
    fn version_and_magic_mismatches_are_detected() {
        let m = DistanceMatrix::build(&pts(&[&[0.0], &[1.0]]), &Euclidean);
        let good = encode_matrix(&m);

        let mut wrong_version = good.clone();
        wrong_version[8] = CODEC_VERSION as u8 + 1;
        assert_eq!(
            decode_matrix(&wrong_version),
            Err(DecodeError::VersionMismatch {
                found: CODEC_VERSION + 1
            })
        );

        let mut wrong_magic = good.clone();
        wrong_magic[0] = b'X';
        assert_eq!(decode_matrix(&wrong_magic), Err(DecodeError::BadMagic));
    }

    #[test]
    fn kind_confusion_is_detected() {
        let coreset = encode_coreset(&pts(&[&[1.0]]), &[1]);
        assert_eq!(decode_matrix(&coreset), Err(DecodeError::KindMismatch));
        let m = encode_matrix(&DistanceMatrix::from_condensed(0, Vec::new()));
        assert_eq!(decode_coreset(&m), Err(DecodeError::KindMismatch));
        assert_eq!(decode_solution(&m), Err(DecodeError::KindMismatch));
        assert_eq!(decode_shard(&m), Err(DecodeError::KindMismatch));
        let shard = encode_shard(&pts(&[&[1.0]]));
        assert_eq!(decode_coreset(&shard), Err(DecodeError::KindMismatch));
    }

    #[test]
    fn shard_round_trip_is_bitwise() {
        let points = pts(&[&[1.0, -0.0], &[1e-300, 2.5], &[0.1 + 0.2, -7.0]]);
        let bytes = encode_shard(&points);
        let back = decode_shard(&bytes).expect("round trip");
        assert_eq!(back.len(), points.len());
        for (a, b) in back.iter().zip(&points) {
            for (ca, cb) in a.coords().iter().zip(b.coords()) {
                assert_eq!(ca.to_bits(), cb.to_bits());
            }
        }
        // Empty shard round-trips too (an empty partition writes no points).
        assert_eq!(
            decode_shard(&encode_shard(&[])).unwrap(),
            Vec::<Point>::new()
        );
    }

    #[test]
    fn shard_layout_is_aligned_and_consistent() {
        let points = pts(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let bytes = encode_shard(&points);
        let layout = validate_shard(&bytes).unwrap();
        assert_eq!(
            layout,
            ShardLayout {
                n: 2,
                dim: 2,
                coords_offset: 48
            }
        );
        assert_eq!(layout.coords_offset % 8, 0);
        assert_eq!(
            bytes.len(),
            layout.coords_offset + 8 * layout.n * layout.dim
        );
        // Matrix layout alignment too.
        let m = encode_matrix(&DistanceMatrix::from_condensed(3, vec![1.0, 2.0, 3.0]));
        let ml = validate_matrix(&m).unwrap();
        assert_eq!(
            ml,
            MatrixLayout {
                n: 3,
                entries: 3,
                data_offset: 40
            }
        );
        assert_eq!(ml.data_offset % 8, 0);
    }

    #[test]
    fn shard_truncation_and_corruption_are_clean_errors() {
        let bytes = encode_shard(&pts(&[&[0.5], &[1.5], &[9.0]]));
        for cut in 0..bytes.len() {
            assert!(decode_shard(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        let mut flipped = bytes.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x01;
        assert_eq!(decode_shard(&flipped), Err(DecodeError::ChecksumMismatch));
        // Forged checksum over a non-finite coordinate: Malformed, no panic.
        let mut payload = Vec::new();
        put_u64(&mut payload, 1);
        put_u64(&mut payload, 1);
        put_f64(&mut payload, f64::NAN);
        let forged = frame(ArtifactKind::Shard, payload);
        assert_eq!(decode_shard(&forged), Err(DecodeError::Malformed));
        // n > 0 with dim = 0 is structurally impossible.
        let mut payload = Vec::new();
        put_u64(&mut payload, 3);
        put_u64(&mut payload, 0);
        let forged = frame(ArtifactKind::Shard, payload);
        assert_eq!(decode_shard(&forged), Err(DecodeError::Malformed));
    }

    #[test]
    fn coordinate_block_validation_matches_try_new() {
        assert!(validate_shard_coords(&[]).is_ok());
        assert!(validate_shard_coords(&[1.0, -0.0, 1e-300, f64::MAX]).is_ok());
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert_eq!(
                validate_shard_coords(&[0.0, bad, 1.0]),
                Err(DecodeError::Malformed)
            );
        }
    }

    #[test]
    fn forged_checksum_over_nonfinite_coords_is_malformed_not_a_panic() {
        // Hand-build a coreset payload with an infinite coordinate and a
        // *valid* checksum: Point::try_new must reject it cleanly.
        let mut payload = Vec::new();
        put_u64(&mut payload, 1); // n
        put_u64(&mut payload, 1); // dim
        put_f64(&mut payload, f64::INFINITY);
        put_u64(&mut payload, 1); // weight
        let bytes = frame(ArtifactKind::Coreset, payload);
        assert_eq!(decode_coreset(&bytes), Err(DecodeError::Malformed));
    }

    fn sample_session() -> StoredSession {
        StoredSession {
            tau: 4,
            initialized: true,
            phi: 0.1 + 0.2, // not exactly 0.3 — bit pattern must survive
            processed: 19,
            centers: pts(&[&[1.0, -0.0], &[1e-300, 2.5], &[f64::MAX, -7.0]]),
            weights: vec![7, 11, 1],
        }
    }

    #[test]
    fn session_round_trip_is_bitwise() {
        let s = sample_session();
        let back = decode_session(&encode_session(&s)).expect("round trip");
        assert_eq!(back.tau, s.tau);
        assert_eq!(back.initialized, s.initialized);
        assert_eq!(back.phi.to_bits(), s.phi.to_bits());
        assert_eq!(back.processed, s.processed);
        assert_eq!(back.weights, s.weights);
        for (a, b) in back.centers.iter().zip(&s.centers) {
            for (ca, cb) in a.coords().iter().zip(b.coords()) {
                assert_eq!(ca.to_bits(), cb.to_bits());
            }
        }
        // An uninitialized (pure buffer) session round-trips too.
        let buffered = StoredSession {
            tau: 8,
            initialized: false,
            phi: 0.0,
            processed: 2,
            centers: pts(&[&[1.0], &[2.0]]),
            weights: vec![1, 1],
        };
        assert_eq!(
            decode_session(&encode_session(&buffered)).unwrap(),
            buffered
        );
    }

    #[test]
    fn session_truncation_is_a_clean_error_at_every_length() {
        let bytes = encode_session(&sample_session());
        for cut in 0..bytes.len() {
            assert!(decode_session(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        assert!(decode_session(&bytes).is_ok());
    }

    #[test]
    fn session_byte_flip_fails_the_checksum() {
        let good = encode_session(&sample_session());
        // Flip one bit at a time through the payload: every flip must be a
        // checksum mismatch, never a panic or a silent success.
        for pos in HEADER_LEN..good.len() {
            let mut bytes = good.clone();
            bytes[pos] ^= 0x01;
            assert_eq!(
                decode_session(&bytes),
                Err(DecodeError::ChecksumMismatch),
                "flip at {pos}"
            );
        }
    }

    #[test]
    fn session_forged_payloads_are_malformed() {
        // Non-finite phi behind a valid checksum.
        let mut forged = sample_session();
        forged.phi = f64::NAN;
        // encode_session writes raw bits, so the frame checksums fine; the
        // decoder must still reject the value.
        assert_eq!(
            decode_session(&encode_session(&forged)),
            Err(DecodeError::Malformed)
        );
        // Non-finite coordinate.
        let mut payload = Vec::new();
        put_u64(&mut payload, 1); // n
        put_u64(&mut payload, 1); // dim
        put_u64(&mut payload, 4); // tau
        put_u64(&mut payload, 1); // initialized
        put_f64(&mut payload, 0.5); // phi
        put_u64(&mut payload, 3); // processed
        put_f64(&mut payload, f64::INFINITY);
        put_u64(&mut payload, 3); // weight
        assert_eq!(
            decode_session(&frame(ArtifactKind::Session, payload.clone())),
            Err(DecodeError::Malformed)
        );
        // A zero tau can never have produced a session.
        let mut zero_tau = payload.clone();
        zero_tau[16..24].copy_from_slice(&0u64.to_le_bytes());
        assert_eq!(
            decode_session(&frame(ArtifactKind::Session, zero_tau)),
            Err(DecodeError::Malformed)
        );
        // An initialized flag outside {0, 1}.
        let mut bad_flag = payload;
        bad_flag[24..32].copy_from_slice(&2u64.to_le_bytes());
        assert_eq!(
            decode_session(&frame(ArtifactKind::Session, bad_flag)),
            Err(DecodeError::Malformed)
        );
    }

    #[test]
    fn session_kind_confusion_is_detected() {
        let session = encode_session(&sample_session());
        assert_eq!(decode_coreset(&session), Err(DecodeError::KindMismatch));
        assert_eq!(decode_matrix(&session), Err(DecodeError::KindMismatch));
        let coreset = encode_coreset(&pts(&[&[1.0]]), &[1]);
        assert_eq!(decode_session(&coreset), Err(DecodeError::KindMismatch));
    }

    #[test]
    fn inconsistent_counts_are_malformed() {
        // Declare n = 100 but supply 1 entry.
        let mut payload = Vec::new();
        put_u64(&mut payload, 100);
        put_f64(&mut payload, 1.0);
        let bytes = frame(ArtifactKind::Matrix, payload);
        assert_eq!(decode_matrix(&bytes), Err(DecodeError::Malformed));
    }
}
