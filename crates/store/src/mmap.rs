//! Read-only memory mapping for zero-copy warm loads (Linux,
//! little-endian).
//!
//! Warm matrix loads used to pay two copies: `fs::read` into a byte buffer,
//! then an element-wise decode into a fresh `Vec<f64>`. The store's codec
//! deliberately lays every `f64` block out contiguously at an 8-byte-aligned
//! offset in little-endian bit patterns, so on a little-endian machine a
//! page-aligned mapping of the file *is* the condensed buffer: after header
//! and checksum validation the [`DistanceMatrix`] simply views the mapping
//! ([`DistanceMatrix::from_shared`]) and both copies disappear.
//!
//! The binding calls `mmap`/`munmap` through the C runtime directly (the
//! workspace vendors no external crates); everything is gated to Linux and
//! falls back to `read` + decode elsewhere — or on *any* mapping failure.
//!
//! Safety against concurrent store activity: entries are only ever replaced
//! by `rename` (a new inode) and removed by `unlink`, and a mapping keeps
//! its inode alive, so a mapped entry can never be truncated or rewritten
//! under the reader — the `SIGBUS` hazard of mapping mutable files does not
//! apply to this store's discipline.
//!
//! [`DistanceMatrix`]: kcenter_metric::DistanceMatrix
//! [`DistanceMatrix::from_shared`]: kcenter_metric::DistanceMatrix::from_shared

use std::fs::File;
use std::io;
use std::os::fd::AsRawFd;
use std::path::Path;

use kcenter_metric::StableF64s;

mod sys {
    use core::ffi::{c_int, c_void};

    pub const PROT_READ: c_int = 1;
    pub const MAP_PRIVATE: c_int = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }
}

/// A private, read-only memory mapping of an entire file.
pub struct MappedFile {
    ptr: *mut core::ffi::c_void,
    len: usize,
}

// SAFETY: the mapping is read-only and owned exclusively by this value;
// sharing immutable views across threads cannot race.
unsafe impl Send for MappedFile {}
unsafe impl Sync for MappedFile {}

impl MappedFile {
    /// Maps `path` read-only in its entirety.
    pub fn open(path: &Path) -> io::Result<MappedFile> {
        let file = File::open(path)?;
        let len = usize::try_from(file.metadata()?.len())
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "file too large to map"))?;
        if len == 0 {
            // Zero-length mmap is EINVAL; an empty file can never hold a
            // valid artifact anyway.
            return Err(io::Error::new(io::ErrorKind::InvalidData, "empty file"));
        }
        // SAFETY: a fresh private read-only mapping of a file we opened;
        // length and fd are valid, and the result is checked below.
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 {
            return Err(io::Error::last_os_error());
        }
        Ok(MappedFile { ptr, len })
    }

    /// The mapped bytes.
    pub fn bytes(&self) -> &[u8] {
        // SAFETY: `ptr` is a live PROT_READ mapping of exactly `len` bytes,
        // backed by an inode that rename/unlink cannot shrink (see module
        // docs), so every byte stays readable for the mapping's lifetime.
        unsafe { std::slice::from_raw_parts(self.ptr as *const u8, self.len) }
    }
}

impl Drop for MappedFile {
    fn drop(&mut self) {
        // SAFETY: unmapping the exact region this value mapped.
        unsafe {
            let _ = sys::munmap(self.ptr, self.len);
        }
    }
}

/// A validated `f64` block inside a [`MappedFile`]: the stable buffer a
/// [`kcenter_metric::DistanceMatrix`] can view without copying.
pub struct MappedF64s {
    map: MappedFile,
    /// Byte offset of the block; checked 8-aligned at construction.
    offset: usize,
    /// Number of `f64` values in the block.
    count: usize,
}

impl MappedF64s {
    /// Views `count` `f64`s at byte `offset` of `map`.
    ///
    /// Returns `None` (caller falls back to the decode path) unless the
    /// block lies within the mapping and is 8-byte aligned — `mmap` returns
    /// page-aligned bases, so alignment reduces to the offset, but the
    /// check keeps the unsafe view locally justified.
    pub fn new(map: MappedFile, offset: usize, count: usize) -> Option<MappedF64s> {
        let bytes = count.checked_mul(8)?;
        let end = offset.checked_add(bytes)?;
        if end > map.bytes().len()
            || !offset.is_multiple_of(8)
            || !(map.ptr as usize).is_multiple_of(8)
        {
            return None;
        }
        Some(MappedF64s { map, offset, count })
    }
}

// SAFETY: the mapping is immutable, address-stable for the value's
// lifetime, and bounds/alignment were validated in `new`; every call views
// the same block.
unsafe impl StableF64s for MappedF64s {
    fn stable_f64s(&self) -> &[f64] {
        // SAFETY: offset/count validated in `new`; on a little-endian
        // target (this module's cfg gate) the stored little-endian bit
        // patterns are `f64`s verbatim.
        unsafe {
            std::slice::from_raw_parts(
                self.map.bytes().as_ptr().add(self.offset) as *const f64,
                self.count,
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("kcenter-store-mmap");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}", std::process::id()))
    }

    #[test]
    fn maps_a_file_and_reads_back_bytes() {
        let path = tmp("roundtrip");
        std::fs::write(&path, [1u8, 2, 3, 4, 5]).unwrap();
        let map = MappedFile::open(&path).unwrap();
        assert_eq!(map.bytes(), &[1, 2, 3, 4, 5]);
    }

    #[test]
    fn empty_and_missing_files_error_cleanly() {
        let path = tmp("empty");
        std::fs::write(&path, b"").unwrap();
        assert!(MappedFile::open(&path).is_err());
        assert!(MappedFile::open(Path::new("/nonexistent/nowhere.kca")).is_err());
    }

    #[test]
    fn mapping_survives_unlink() {
        let path = tmp("unlinked");
        std::fs::write(&path, 7.25f64.to_le_bytes()).unwrap();
        let map = MappedFile::open(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        let f64s = MappedF64s::new(map, 0, 1).unwrap();
        assert_eq!(f64s.stable_f64s(), &[7.25]);
    }

    #[test]
    fn f64_view_rejects_bad_bounds_and_alignment() {
        let path = tmp("bounds");
        let mut bytes = Vec::new();
        for v in [1.0f64, 2.0, 3.0] {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        std::fs::write(&path, &bytes).unwrap();
        assert!(MappedF64s::new(MappedFile::open(&path).unwrap(), 0, 4).is_none());
        assert!(MappedF64s::new(MappedFile::open(&path).unwrap(), 4, 1).is_none());
        assert!(MappedF64s::new(MappedFile::open(&path).unwrap(), usize::MAX, 1).is_none());
        let ok = MappedF64s::new(MappedFile::open(&path).unwrap(), 8, 2).unwrap();
        assert_eq!(ok.stable_f64s(), &[2.0, 3.0]);
    }
}
