#![warn(missing_docs)]
//! Persistent, content-addressed artifact cache for the k-center workspace.
//!
//! The in-process [`kcenter_metric::CachedOracle`] guarantees each coreset
//! is priced into a proxy-scale distance matrix at most once *per process*;
//! this crate extends the guarantee across processes. Artifacts —
//! [`DistanceMatrix`] caches, weighted coresets, solved clusterings — are
//! stored one-per-file in a cache directory, addressed by a deterministic
//! 128-bit fingerprint of their inputs (point coordinate bits + metric
//! identity for matrices via [`Metric::cache_fingerprint`]; dataset
//! seed/spec + parameters for spec-keyed artifacts via
//! [`kcenter_metric::Fingerprint`]), and encoded with a versioned,
//! checksummed binary codec ([`codec`]) whose decode path turns *any*
//! corruption into a clean miss.
//!
//! Activation is strictly opt-in: nothing touches the disk unless a binary
//! calls [`install_from_env`] (honouring `KCENTER_CACHE_DIR`) or
//! [`install_at`], so tests and library consumers keep the pure in-process
//! behaviour. Once installed, every layer that resolves a `CachedOracle` —
//! `radius_search::solve_coreset{,_cached}`, MapReduce round 2, the 2-pass
//! and streaming finalizations, the figure binaries, the CLI — reads warm
//! matrices from disk (`store_hit_count()` rises, `matrix_build_count()`
//! stays 0) and persists cold ones on the way out.
//!
//! Writes are crash- and race-safe: an entry is written to a unique
//! temporary file and atomically `rename`d into place, so concurrent
//! writers to one key can only ever leave one writer's complete bytes.
//!
//! [`Metric::cache_fingerprint`]: kcenter_metric::Metric::cache_fingerprint

pub mod codec;
#[cfg(all(target_os = "linux", target_endian = "little"))]
pub mod mmap;

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use kcenter_metric::{DistanceMatrix, MatrixPersistence, Point};

pub use codec::{ArtifactKind, DecodeError, StoredSession, StoredSolution, CODEC_VERSION};
pub use kcenter_metric::{store_hit_count, store_miss_count, Fingerprint};

/// Process-wide count of matrix loads served zero-copy from a memory
/// mapping (always 0 on targets without the mmap fast path), kept in the
/// shared metrics registry under `store.mmap.loads`. Tests use it to
/// prove warm loads actually take the mapped path.
fn mmap_loads() -> &'static kcenter_obs::Counter {
    static COUNTER: std::sync::OnceLock<kcenter_obs::Counter> = std::sync::OnceLock::new();
    COUNTER.get_or_init(|| kcenter_obs::counter("store.mmap.loads"))
}

/// Number of matrix loads this process served through the mmap fast path.
pub fn store_mmap_load_count() -> usize {
    mmap_loads().get() as usize
}

/// Environment variable naming the cache directory; unset or empty means
/// the persistent store is off (the default, notably for tests).
pub const CACHE_DIR_ENV: &str = "KCENTER_CACHE_DIR";

/// File extension of every artifact entry.
const ARTIFACT_EXT: &str = "kca";

/// Per-process sequence for unique temporary file names.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// A handle on one cache directory. Cloning is cheap (the handle is just
/// the path); all methods are safe to call from many threads and many
/// processes against the same directory.
#[derive(Clone, Debug)]
pub struct ArtifactStore {
    dir: PathBuf,
}

/// Entry count and byte total for one artifact kind.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KindStat {
    /// Number of entries of this kind.
    pub entries: usize,
    /// Total size of those entries in bytes.
    pub bytes: u64,
}

/// Snapshot of a cache directory's contents, per kind.
#[derive(Clone, Debug, Default)]
pub struct StoreStat {
    /// Distance-matrix entries.
    pub matrix: KindStat,
    /// Weighted-coreset entries.
    pub coreset: KindStat,
    /// Solution entries.
    pub solution: KindStat,
    /// Point-shard entries.
    pub shard: KindStat,
    /// Streaming-session entries.
    pub session: KindStat,
}

impl StoreStat {
    /// The stat bucket for `kind`.
    pub fn kind(&self, kind: ArtifactKind) -> KindStat {
        match kind {
            ArtifactKind::Matrix => self.matrix,
            ArtifactKind::Coreset => self.coreset,
            ArtifactKind::Solution => self.solution,
            ArtifactKind::Shard => self.shard,
            ArtifactKind::Session => self.session,
        }
    }

    /// Total entries across all kinds.
    pub fn total_entries(&self) -> usize {
        ArtifactKind::ALL
            .into_iter()
            .map(|k| self.kind(k).entries)
            .sum()
    }

    /// Total bytes across all kinds.
    pub fn total_bytes(&self) -> u64 {
        ArtifactKind::ALL
            .into_iter()
            .map(|k| self.kind(k).bytes)
            .sum()
    }
}

impl ArtifactStore {
    /// Opens (creating if necessary) the store at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<ArtifactStore> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(ArtifactStore { dir })
    }

    /// Opens the store named by `KCENTER_CACHE_DIR`, or `None` when the
    /// variable is unset/empty. An unusable directory is reported on
    /// stderr and treated as "no store" — a cache must never turn into a
    /// hard failure of the computation it accelerates.
    pub fn from_env() -> Option<ArtifactStore> {
        let dir = std::env::var(CACHE_DIR_ENV).ok()?;
        if dir.trim().is_empty() {
            return None;
        }
        match ArtifactStore::open(&dir) {
            Ok(store) => Some(store),
            Err(err) => {
                eprintln!("kcenter-store: cannot open {CACHE_DIR_ENV}={dir}: {err} (cache off)");
                None
            }
        }
    }

    /// The cache directory this store reads and writes.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn entry_path(&self, kind: ArtifactKind, fingerprint: u128) -> PathBuf {
        self.dir
            .join(format!("{}-{fingerprint:032x}.{ARTIFACT_EXT}", kind.name()))
    }

    /// The on-disk path of the entry for `(kind, fingerprint)` — whether
    /// or not it currently exists. Consumers that can read the artifact
    /// format in place (the exec coordinator points workers straight at
    /// cached shard entries) use this to share the file instead of
    /// copying bytes out of the store.
    pub fn artifact_path(&self, kind: ArtifactKind, fingerprint: u128) -> PathBuf {
        self.entry_path(kind, fingerprint)
    }

    /// Resolves a bare entry file name inside this store's directory —
    /// the shared-storage hook remote executor workers use to pick their
    /// shards up from a coordinator's content-addressed `@store/NAME`
    /// references (store entries have stable, fingerprint-derived names,
    /// so the same reference resolves to the same bytes on every host
    /// mounting the store). `None` unless `name` is a single plain path
    /// component: non-empty, no separators, not `.`/`..` — a wire-provided
    /// name must never escape the store directory.
    pub fn entry_by_name(&self, name: &str) -> Option<PathBuf> {
        if name.is_empty()
            || name.contains('/')
            || name.contains('\\')
            || name == "."
            || name == ".."
        {
            return None;
        }
        Some(self.dir.join(name))
    }

    /// Reads and fully validates one entry; any failure (absent entry,
    /// truncation, checksum/version/kind mismatch) is a clean `None`.
    fn load_raw(&self, kind: ArtifactKind, fingerprint: u128) -> Option<Vec<u8>> {
        let bytes = std::fs::read(self.entry_path(kind, fingerprint)).ok()?;
        Some(bytes)
    }

    /// Atomically installs `bytes` as the entry for `(kind, fingerprint)`:
    /// the encoded artifact is written to a unique temporary file in the
    /// same directory and `rename`d into place, so a reader (or a racing
    /// writer) observes either the previous complete entry or this one —
    /// never a partial write.
    fn store_raw(
        &self,
        kind: ArtifactKind,
        fingerprint: u128,
        bytes: &[u8],
    ) -> std::io::Result<()> {
        let tmp = self.dir.join(format!(
            "tmp-{}-{fingerprint:032x}-{}-{}",
            kind.name(),
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed),
        ));
        std::fs::write(&tmp, bytes)?;
        let dest = self.entry_path(kind, fingerprint);
        std::fs::rename(&tmp, &dest).inspect_err(|_| {
            let _ = std::fs::remove_file(&tmp);
        })
    }

    /// Loads the distance matrix stored under `fingerprint`, if present
    /// and valid.
    ///
    /// On Linux (little-endian) the entry is memory-mapped and — after
    /// full header/checksum validation — served **zero-copy**: the matrix
    /// views the mapping directly ([`DistanceMatrix::from_shared`]) instead
    /// of decoding into an owned buffer. Any mapping or validation failure
    /// falls back to the read-and-decode path, whose answer is canonical.
    pub fn load_matrix(&self, fingerprint: u128) -> Option<DistanceMatrix> {
        let path = self.entry_path(ArtifactKind::Matrix, fingerprint);
        #[cfg(all(target_os = "linux", target_endian = "little"))]
        if let Some(matrix) = Self::load_matrix_mapped(&path) {
            mmap_loads().inc();
            return Some(matrix);
        }
        let bytes = std::fs::read(path).ok()?;
        codec::decode_matrix(&bytes).ok()
    }

    /// The mmap fast path behind [`ArtifactStore::load_matrix`]: any
    /// failure is a `None` and the caller re-answers via read + decode.
    #[cfg(all(target_os = "linux", target_endian = "little"))]
    fn load_matrix_mapped(path: &Path) -> Option<DistanceMatrix> {
        let map = mmap::MappedFile::open(path).ok()?;
        let layout = codec::validate_matrix(map.bytes()).ok()?;
        let block = mmap::MappedF64s::new(map, layout.data_offset, layout.entries)?;
        Some(DistanceMatrix::from_shared(layout.n, Arc::new(block)))
    }

    /// Persists a distance matrix under `fingerprint`.
    pub fn store_matrix(&self, fingerprint: u128, matrix: &DistanceMatrix) -> std::io::Result<()> {
        self.store_raw(
            ArtifactKind::Matrix,
            fingerprint,
            &codec::encode_matrix(matrix),
        )
    }

    /// Loads the weighted coreset stored under `fingerprint`.
    pub fn load_coreset(&self, fingerprint: u128) -> Option<(Vec<Point>, Vec<u64>)> {
        let bytes = self.load_raw(ArtifactKind::Coreset, fingerprint)?;
        codec::decode_coreset(&bytes).ok()
    }

    /// Persists a weighted coreset under `fingerprint`.
    ///
    /// # Panics
    ///
    /// Panics if `points` and `weights` lengths differ.
    pub fn store_coreset(
        &self,
        fingerprint: u128,
        points: &[Point],
        weights: &[u64],
    ) -> std::io::Result<()> {
        self.store_raw(
            ArtifactKind::Coreset,
            fingerprint,
            &codec::encode_coreset(points, weights),
        )
    }

    /// Loads the solution stored under `fingerprint`.
    pub fn load_solution(&self, fingerprint: u128) -> Option<StoredSolution> {
        let bytes = self.load_raw(ArtifactKind::Solution, fingerprint)?;
        codec::decode_solution(&bytes).ok()
    }

    /// Persists a solution under `fingerprint`.
    pub fn store_solution(
        &self,
        fingerprint: u128,
        solution: &StoredSolution,
    ) -> std::io::Result<()> {
        self.store_raw(
            ArtifactKind::Solution,
            fingerprint,
            &codec::encode_solution(solution),
        )
    }

    /// Loads the point shard stored under `fingerprint`.
    pub fn load_shard(&self, fingerprint: u128) -> Option<Vec<Point>> {
        let bytes = self.load_raw(ArtifactKind::Shard, fingerprint)?;
        codec::decode_shard(&bytes).ok()
    }

    /// Persists a point shard under `fingerprint`.
    ///
    /// # Panics
    ///
    /// Panics on mixed-dimension points.
    pub fn store_shard(&self, fingerprint: u128, points: &[Point]) -> std::io::Result<()> {
        self.store_raw(
            ArtifactKind::Shard,
            fingerprint,
            &codec::encode_shard(points),
        )
    }

    /// Loads the streaming session stored under `fingerprint`.
    pub fn load_session(&self, fingerprint: u128) -> Option<StoredSession> {
        let bytes = self.load_raw(ArtifactKind::Session, fingerprint)?;
        codec::decode_session(&bytes).ok()
    }

    /// Persists a streaming session under `fingerprint`.
    ///
    /// # Panics
    ///
    /// Panics if the session's `centers` and `weights` lengths differ.
    pub fn store_session(&self, fingerprint: u128, session: &StoredSession) -> std::io::Result<()> {
        self.store_raw(
            ArtifactKind::Session,
            fingerprint,
            &codec::encode_session(session),
        )
    }

    /// Whether `name` is one of this store's artifact entries
    /// (`{kind}-{32 hex}.kca`); returns its kind.
    fn classify_entry(name: &str) -> Option<ArtifactKind> {
        let stem = name.strip_suffix(&format!(".{ARTIFACT_EXT}"))?;
        for kind in ArtifactKind::ALL {
            if let Some(hex) = stem
                .strip_prefix(kind.name())
                .and_then(|s| s.strip_prefix('-'))
            {
                if hex.len() == 32 && hex.bytes().all(|b| b.is_ascii_hexdigit()) {
                    return Some(kind);
                }
            }
        }
        None
    }

    /// Whether `name` is a leftover temporary file from an interrupted
    /// write (cleared by [`ArtifactStore::clear`], never read). Matches
    /// only the store's own temp shape (`tmp-{kind}-…`): a user file that
    /// merely happens to start with `tmp-` in a misconfigured directory
    /// is not ours to delete.
    fn is_stale_tmp(name: &str) -> bool {
        ArtifactKind::ALL
            .into_iter()
            .any(|kind| name.starts_with(&format!("tmp-{}-", kind.name())))
    }

    /// Per-kind entry counts and sizes. Unrecognized files in the
    /// directory are ignored.
    pub fn stat(&self) -> std::io::Result<StoreStat> {
        let mut stat = StoreStat::default();
        for entry in std::fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(kind) = Self::classify_entry(&name.to_string_lossy()) else {
                continue;
            };
            let bytes = entry.metadata().map(|m| m.len()).unwrap_or(0);
            let bucket = match kind {
                ArtifactKind::Matrix => &mut stat.matrix,
                ArtifactKind::Coreset => &mut stat.coreset,
                ArtifactKind::Solution => &mut stat.solution,
                ArtifactKind::Shard => &mut stat.shard,
                ArtifactKind::Session => &mut stat.session,
            };
            bucket.entries += 1;
            bucket.bytes += bytes;
        }
        Ok(stat)
    }

    /// Removes every artifact entry (and stale temporary file) from the
    /// cache directory, returning how many files were deleted. Files the
    /// store does not recognize are left alone — `clear` on a
    /// misconfigured directory must never eat unrelated data.
    pub fn clear(&self) -> std::io::Result<usize> {
        let mut removed = 0usize;
        for entry in std::fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if Self::classify_entry(&name).is_some() || Self::is_stale_tmp(&name) {
                std::fs::remove_file(entry.path())?;
                removed += 1;
            }
        }
        Ok(removed)
    }

    /// Evicts least-recently-written artifact entries until the directory's
    /// artifact bytes fit within `max_bytes` — the size budget that makes
    /// `KCENTER_CACHE_DIR` safe to leave enabled on long-lived hosts.
    ///
    /// Eviction is LRU by file modification time (ties broken by name for
    /// determinism); stale temporary files from interrupted writes are
    /// always removed first and never count against the budget. Files the
    /// store does not recognize are untouched, like [`ArtifactStore::clear`].
    /// An entry that vanishes mid-prune (a concurrent `clear`/prune) is
    /// skipped, not an error.
    pub fn prune(&self, max_bytes: u64) -> std::io::Result<PruneReport> {
        let mut report = PruneReport::default();
        let mut entries: Vec<(std::time::SystemTime, String, u64, PathBuf)> = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy().into_owned();
            if Self::is_stale_tmp(&name) {
                if std::fs::remove_file(entry.path()).is_ok() {
                    report.removed += 1;
                }
                continue;
            }
            if Self::classify_entry(&name).is_none() {
                continue;
            }
            let meta = match entry.metadata() {
                Ok(meta) => meta,
                Err(_) => continue, // vanished under a concurrent sweep
            };
            let mtime = meta.modified().unwrap_or(std::time::SystemTime::UNIX_EPOCH);
            entries.push((mtime, name, meta.len(), entry.path()));
        }
        entries.sort_by(|a, b| (a.0, &a.1).cmp(&(b.0, &b.1)));
        let mut total: u64 = entries.iter().map(|e| e.2).sum();
        for (_, _, bytes, path) in &entries {
            if total <= max_bytes {
                report.remaining_entries += 1;
                continue;
            }
            match std::fs::remove_file(path) {
                Ok(()) => {
                    report.removed += 1;
                    report.removed_bytes += bytes;
                    total -= bytes;
                }
                // Vanished under a concurrent sweep: its bytes are gone
                // either way, just not on this call's account.
                Err(err) if err.kind() == std::io::ErrorKind::NotFound => total -= bytes,
                // Unremovable (permissions, etc.): the file still occupies
                // disk, so it must stay on the remaining side — the report
                // must never claim a budget the directory does not meet.
                Err(_) => report.remaining_entries += 1,
            }
        }
        report.remaining_bytes = total;
        Ok(report)
    }
}

/// What [`ArtifactStore::prune`] did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PruneReport {
    /// Files deleted (artifact entries plus stale temporaries).
    pub removed: usize,
    /// Artifact bytes reclaimed (temporaries not counted).
    pub removed_bytes: u64,
    /// Artifact entries left in the directory.
    pub remaining_entries: usize,
    /// Artifact bytes left in the directory.
    pub remaining_bytes: u64,
}

/// [`MatrixPersistence`] backend over an [`ArtifactStore`]: what
/// [`install_from_env`]/[`install_at`] hang under
/// [`kcenter_metric::CachedOracle`].
pub struct StoreBackend {
    store: ArtifactStore,
}

impl StoreBackend {
    /// Wraps a store as a matrix-persistence backend.
    pub fn new(store: ArtifactStore) -> StoreBackend {
        StoreBackend { store }
    }
}

impl MatrixPersistence for StoreBackend {
    fn load(&self, fingerprint: u128) -> Option<DistanceMatrix> {
        self.store.load_matrix(fingerprint)
    }

    fn store(&self, fingerprint: u128, matrix: &DistanceMatrix) {
        // Best-effort: a full disk or permission error costs persistence,
        // never the run.
        if let Err(err) = self.store_matrix_checked(fingerprint, matrix) {
            eprintln!("kcenter-store: failed to persist matrix: {err}");
        }
    }
}

impl StoreBackend {
    fn store_matrix_checked(
        &self,
        fingerprint: u128,
        matrix: &DistanceMatrix,
    ) -> std::io::Result<()> {
        self.store.store_matrix(fingerprint, matrix)
    }
}

/// Installs the disk-backed matrix persistence at `dir` for the whole
/// process and returns the store handle. A later call (or a competing
/// [`install_from_env`]) is a no-op on the global hook but still returns a
/// usable handle for direct artifact access.
pub fn install_at(dir: impl Into<PathBuf>) -> std::io::Result<ArtifactStore> {
    let store = ArtifactStore::open(dir)?;
    kcenter_metric::install_matrix_persistence(Arc::new(StoreBackend::new(store.clone())));
    Ok(store)
}

/// Installs disk-backed matrix persistence from `KCENTER_CACHE_DIR`, if
/// set; the standard first line of every figure/bench binary and the CLI.
/// Returns the active store handle, or `None` when caching is off.
pub fn install_from_env() -> Option<ArtifactStore> {
    let store = ArtifactStore::from_env()?;
    kcenter_metric::install_matrix_persistence(Arc::new(StoreBackend::new(store.clone())));
    Some(store)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcenter_metric::Euclidean;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("kcenter-store-unit")
            .join(format!("{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_matrix() -> DistanceMatrix {
        let points: Vec<Point> = (0..6).map(|i| Point::new(vec![i as f64 * 1.25])).collect();
        DistanceMatrix::build_cmp(&points, &Euclidean)
    }

    #[test]
    fn store_and_reload_matrix() {
        let store = ArtifactStore::open(tmp_dir("matrix")).unwrap();
        let m = sample_matrix();
        assert!(store.load_matrix(7).is_none(), "empty store must miss");
        store.store_matrix(7, &m).unwrap();
        let back = store.load_matrix(7).expect("hit after store");
        assert_eq!(back.condensed(), m.condensed());
        assert!(store.load_matrix(8).is_none(), "other keys still miss");
    }

    #[test]
    fn entry_by_name_resolves_only_plain_components() {
        let store = ArtifactStore::open(tmp_dir("by-name")).unwrap();
        let shard = store.artifact_path(ArtifactKind::Shard, 0xabcd);
        let name = shard.file_name().unwrap().to_str().unwrap();
        // The round trip the remote executor path relies on: entry path →
        // bare name → same entry path.
        assert_eq!(store.entry_by_name(name), Some(shard));
        for hostile in ["", ".", "..", "a/b", "../x", "a\\b"] {
            assert_eq!(store.entry_by_name(hostile), None, "{hostile:?} accepted");
        }
    }

    #[test]
    fn corrupt_entry_is_a_clean_miss() {
        let store = ArtifactStore::open(tmp_dir("corrupt")).unwrap();
        let m = sample_matrix();
        store.store_matrix(1, &m).unwrap();
        let path = store.entry_path(ArtifactKind::Matrix, 1);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(store.load_matrix(1).is_none());
        // Truncated file on disk.
        std::fs::write(&path, &bytes[..10]).unwrap();
        assert!(store.load_matrix(1).is_none());
        // Empty file on disk.
        std::fs::write(&path, b"").unwrap();
        assert!(store.load_matrix(1).is_none());
    }

    #[test]
    fn stat_and_clear_account_all_kinds() {
        let store = ArtifactStore::open(tmp_dir("stat")).unwrap();
        store.store_matrix(1, &sample_matrix()).unwrap();
        store
            .store_coreset(2, &[Point::new(vec![1.0])], &[3])
            .unwrap();
        store
            .store_solution(
                3,
                &StoredSolution {
                    centers: vec![Point::new(vec![0.0])],
                    radius: 1.0,
                    uncovered_weight: 0,
                    evaluations: 1,
                },
            )
            .unwrap();
        // Unrelated files must be ignored by stat and survive clear —
        // including one that merely starts with "tmp-" but is not the
        // store's temp shape.
        std::fs::write(store.dir().join("README.txt"), b"not an artifact").unwrap();
        std::fs::write(store.dir().join("tmp-backup.tar"), b"user data").unwrap();
        // A stale tmp file of the store's own shape must be cleared.
        std::fs::write(store.dir().join("tmp-matrix-dead"), b"partial").unwrap();

        let stat = store.stat().unwrap();
        assert_eq!(stat.matrix.entries, 1);
        assert_eq!(stat.coreset.entries, 1);
        assert_eq!(stat.solution.entries, 1);
        assert_eq!(stat.total_entries(), 3);
        assert!(stat.total_bytes() > 0);

        let removed = store.clear().unwrap();
        assert_eq!(removed, 4, "3 entries + 1 stale tmp");
        assert_eq!(store.stat().unwrap().total_entries(), 0);
        assert!(store.dir().join("README.txt").exists());
        assert!(store.dir().join("tmp-backup.tar").exists());
    }

    #[test]
    fn overwrite_replaces_the_entry() {
        let store = ArtifactStore::open(tmp_dir("overwrite")).unwrap();
        let m1 = DistanceMatrix::from_condensed(2, vec![1.0]);
        let m2 = DistanceMatrix::from_condensed(2, vec![2.0]);
        store.store_matrix(9, &m1).unwrap();
        store.store_matrix(9, &m2).unwrap();
        assert_eq!(store.load_matrix(9).unwrap().condensed(), &[2.0]);
        assert_eq!(store.stat().unwrap().matrix.entries, 1);
    }

    #[test]
    fn from_env_requires_the_variable() {
        // The test harness never sets KCENTER_CACHE_DIR; mutate a private
        // copy of the lookup instead of the process env (tests run
        // multi-threaded and setenv is process-global).
        if std::env::var(CACHE_DIR_ENV).is_err() {
            assert!(ArtifactStore::from_env().is_none());
        }
    }

    #[test]
    fn shard_store_and_reload() {
        let store = ArtifactStore::open(tmp_dir("shard")).unwrap();
        let points: Vec<Point> = (0..5)
            .map(|i| Point::new(vec![i as f64, -0.5 * i as f64]))
            .collect();
        assert!(store.load_shard(11).is_none());
        store.store_shard(11, &points).unwrap();
        let back = store.load_shard(11).expect("hit after store");
        assert_eq!(back, points);
        let stat = store.stat().unwrap();
        assert_eq!(stat.shard.entries, 1);
        assert_eq!(stat.total_entries(), 1);
        assert_eq!(store.clear().unwrap(), 1);
    }

    #[cfg(all(target_os = "linux", target_endian = "little"))]
    #[test]
    fn warm_matrix_load_takes_the_mmap_path_bitwise() {
        let store = ArtifactStore::open(tmp_dir("mmap-load")).unwrap();
        let m = sample_matrix();
        store.store_matrix(21, &m).unwrap();
        let before = store_mmap_load_count();
        let back = store.load_matrix(21).expect("hit");
        assert!(
            store_mmap_load_count() > before,
            "warm load must take the mmap fast path"
        );
        assert!(back.is_externally_backed(), "no decode copy on warm loads");
        assert_eq!(back.len(), m.len());
        for (a, b) in back.condensed().iter().zip(m.condensed()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // A corrupted entry must fail cleanly through both paths.
        let path = store.entry_path(ArtifactKind::Matrix, 21);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(store.load_matrix(21).is_none());
    }

    #[test]
    fn prune_evicts_oldest_first_within_budget() {
        let store = ArtifactStore::open(tmp_dir("prune")).unwrap();
        // Three same-size matrix entries with strictly increasing mtimes.
        let m = sample_matrix();
        for fp in [1u128, 2, 3] {
            store.store_matrix(fp, &m).unwrap();
            let path = store.entry_path(ArtifactKind::Matrix, fp);
            // Space the mtimes out explicitly: filesystem timestamp
            // granularity is too coarse to rely on write order.
            let when = std::time::SystemTime::UNIX_EPOCH
                + std::time::Duration::from_secs(1_000_000 + fp as u64 * 1000);
            let file = std::fs::File::options().append(true).open(&path).unwrap();
            file.set_modified(when).unwrap();
        }
        // An unrelated file and a stale tmp; only the tmp may be removed.
        std::fs::write(store.dir().join("notes.txt"), b"keep me").unwrap();
        std::fs::write(store.dir().join("tmp-matrix-dead"), b"partial").unwrap();

        let entry_bytes = store.stat().unwrap().matrix.bytes / 3;
        // Budget for exactly two entries: the oldest (fp = 1) must go.
        let report = store.prune(2 * entry_bytes).unwrap();
        assert_eq!(report.removed, 2, "oldest entry + stale tmp");
        assert_eq!(report.removed_bytes, entry_bytes);
        assert_eq!(report.remaining_entries, 2);
        assert_eq!(report.remaining_bytes, 2 * entry_bytes);
        assert!(store.load_matrix(1).is_none(), "oldest evicted");
        assert!(store.load_matrix(2).is_some());
        assert!(store.load_matrix(3).is_some());
        assert!(store.dir().join("notes.txt").exists());

        // A generous budget removes nothing.
        let report = store.prune(u64::MAX).unwrap();
        assert_eq!(report.removed, 0);
        assert_eq!(report.remaining_entries, 2);

        // A zero budget empties the store.
        let report = store.prune(0).unwrap();
        assert_eq!(report.removed, 2);
        assert_eq!(report.remaining_entries, 0);
        assert_eq!(report.remaining_bytes, 0);
        assert_eq!(store.stat().unwrap().total_entries(), 0);
    }

    #[test]
    fn classify_entry_rejects_lookalikes() {
        assert_eq!(
            ArtifactStore::classify_entry(&format!("matrix-{:032x}.kca", 5u128)),
            Some(ArtifactKind::Matrix)
        );
        assert_eq!(ArtifactStore::classify_entry("matrix-xyz.kca"), None);
        assert_eq!(ArtifactStore::classify_entry("matrix-05.kca"), None);
        assert_eq!(ArtifactStore::classify_entry("weights-aa.kca"), None);
        assert_eq!(
            ArtifactStore::classify_entry(&format!("matrix-{:032x}.bin", 5u128)),
            None
        );
    }
}
