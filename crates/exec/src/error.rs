//! Failure modes of the multi-process executor.
//!
//! A distributed round has failure modes the in-process engine cannot
//! exhibit — a worker crashes, hangs, or writes a truncated artifact — and
//! every one of them must surface as a clean, attributed error at the
//! coordinator, never a hang or a panic. The crashed-worker test suite
//! injects each mode and pins this contract.

use std::fmt;
use std::path::PathBuf;
use std::time::Duration;

use kcenter_core::InputError;

/// Why a multi-process execution failed.
#[derive(Debug)]
pub enum ExecError {
    /// The clustering configuration was invalid (same validation as the
    /// in-process engines).
    Input(InputError),
    /// Filesystem work (work directory, shard files) failed.
    Io(std::io::Error),
    /// A worker process could not be spawned.
    Spawn {
        /// Partition whose worker failed to start.
        partition: usize,
        /// The underlying spawn error.
        source: std::io::Error,
    },
    /// A worker exited unsuccessfully.
    WorkerFailed {
        /// Partition the worker was processing.
        partition: usize,
        /// Exit code, if the process exited normally (`None` = killed by
        /// a signal, or a remote worker whose connection was lost).
        code: Option<i32>,
        /// The worker's captured stderr (its error report), or a
        /// description of the lost connection for remote workers.
        stderr: String,
    },
    /// A worker rejected (or failed) the protocol `hello` handshake —
    /// a version or configuration-fingerprint mismatch. Deterministic:
    /// never retried.
    HelloRejected {
        /// The offending worker's endpoint (`pid N` / `tcp://host:port`).
        worker: String,
        /// Why the handshake failed.
        reason: String,
    },
    /// A worker did not finish within the configured timeout and was
    /// killed.
    WorkerTimeout {
        /// Partition of (one of) the timed-out worker(s).
        partition: usize,
        /// The timeout that elapsed.
        timeout: Duration,
    },
    /// A worker exited successfully but its result artifact is missing,
    /// truncated, or corrupt.
    BadArtifact {
        /// Partition whose artifact failed validation.
        partition: usize,
        /// Path of the offending artifact.
        path: PathBuf,
        /// What the codec rejected.
        reason: String,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Input(err) => write!(f, "{err}"),
            ExecError::Io(err) => write!(f, "executor i/o failure: {err}"),
            ExecError::Spawn { partition, source } => {
                write!(f, "cannot spawn worker for partition {partition}: {source}")
            }
            ExecError::WorkerFailed {
                partition,
                code,
                stderr,
            } => {
                write!(f, "worker for partition {partition} ")?;
                match code {
                    Some(code) => write!(f, "exited with code {code}")?,
                    None => write!(f, "died (killed by a signal or lost its connection)")?,
                }
                let stderr = stderr.trim();
                if !stderr.is_empty() {
                    write!(f, ": {stderr}")?;
                }
                Ok(())
            }
            ExecError::HelloRejected { worker, reason } => {
                write!(f, "{worker} rejected the protocol handshake: {reason}")
            }
            ExecError::WorkerTimeout { partition, timeout } => write!(
                f,
                "worker for partition {partition} exceeded the {:.1}s timeout and was killed",
                timeout.as_secs_f64()
            ),
            ExecError::BadArtifact {
                partition,
                path,
                reason,
            } => write!(
                f,
                "worker for partition {partition} produced an invalid artifact {}: {reason}",
                path.display()
            ),
        }
    }
}

impl std::error::Error for ExecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExecError::Input(err) => Some(err),
            ExecError::Io(err) | ExecError::Spawn { source: err, .. } => Some(err),
            _ => None,
        }
    }
}

impl From<InputError> for ExecError {
    fn from(err: InputError) -> Self {
        ExecError::Input(err)
    }
}

impl From<std::io::Error> for ExecError {
    fn from(err: std::io::Error) -> Self {
        ExecError::Io(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_every_variant() {
        let cases: Vec<(ExecError, &str)> = vec![
            (ExecError::Input(InputError::EmptyInput), "empty"),
            (
                ExecError::Io(std::io::Error::other("disk full")),
                "disk full",
            ),
            (
                ExecError::Spawn {
                    partition: 2,
                    source: std::io::Error::new(std::io::ErrorKind::NotFound, "no binary"),
                },
                "partition 2",
            ),
            (
                ExecError::WorkerFailed {
                    partition: 1,
                    code: Some(101),
                    stderr: "boom".into(),
                },
                "code 101: boom",
            ),
            (
                ExecError::WorkerFailed {
                    partition: 1,
                    code: None,
                    stderr: String::new(),
                },
                "killed by a signal or lost its connection",
            ),
            (
                ExecError::HelloRejected {
                    worker: "worker at tcp://10.0.0.7:4700".into(),
                    reason: "config fingerprint mismatch".into(),
                },
                "tcp://10.0.0.7:4700",
            ),
            (
                ExecError::WorkerTimeout {
                    partition: 0,
                    timeout: Duration::from_secs(2),
                },
                "timeout",
            ),
            (
                ExecError::BadArtifact {
                    partition: 3,
                    path: PathBuf::from("/tmp/x.kca"),
                    reason: "truncated artifact".into(),
                },
                "truncated",
            ),
        ];
        for (err, needle) in cases {
            let text = err.to_string();
            assert!(text.contains(needle), "{text:?} missing {needle:?}");
        }
    }
}
