//! Standalone worker binary for the multi-process executor.
//!
//! Production deployments usually re-invoke their own binary in a hidden
//! worker mode (the `kcenter` CLI's `worker` subcommand does exactly
//! that); this standalone entry exists so the executor's process-level
//! tests can spawn a real worker without depending on another crate's
//! binary.

fn main() {
    std::process::exit(kcenter_exec::worker_main(std::env::args().skip(1)));
}
