#![deny(missing_docs)]
//! True multi-process MapReduce executor for coreset-based k-center.
//!
//! The `kcenter-mapreduce` engine *simulates* the paper's MapReduce model
//! inside one process: partitions are in-memory slices, "reducers" are
//! closures on a thread pool. This crate provides the real thing — the
//! deployment shape of the composable-coreset line (Indyk et al.) under
//! the MRC execution model (Karloff–Suri–Vassilvitskii):
//!
//! * a **coordinator** ([`coordinator`]) that shards the dataset into
//!   per-worker files, maintains a persistent [`coordinator::WorkerFleet`]
//!   of framed workers, supervises them (crash, disconnect, timeout,
//!   torn-artifact handling with bounded replay), and reduces the
//!   collected coresets through the existing round-2 paths;
//! * a **worker** ([`worker`]) that mmap-loads its shard, runs the shared
//!   round-1 kernel with its own rayon pool, and atomically writes a
//!   weighted coreset back through the store codec;
//! * a **transport seam** ([`transport`]) behind which the fleet talks to
//!   workers: the default child-process pipe backend, and TCP backends
//!   ([`transport::TcpDialTransport`], [`transport::TcpAcceptTransport`])
//!   for workers started independently with `--listen`/`--connect` that
//!   pick their shards up from a shared [`kcenter_store::ArtifactStore`]
//!   via `@store/NAME` references;
//! * a **wire protocol** ([`protocol`]) whose every value round-trips
//!   bit-exactly, with a versioned `hello` handshake that rejects
//!   mismatched workers, and an on-disk **shard format** ([`shard`])
//!   reusing `kcenter-store`'s versioned, checksummed codec.
//!
//! The normative wire contract — frame layout, verbs, handshake, error
//! replies, float formatting — is documented in `docs/PROTOCOL.md` at the
//! repository root.
//!
//! The headline guarantee: a multi-process run is **bit-identical** to
//! the in-process engines on the same seeded input — same centers (to the
//! coordinate bit), same radius (to the `f64` bit) — because partitioning
//! rules, the round-1 kernel, the codec, and collection order are all
//! shared and deterministic. The guarantee holds **across transports**:
//! the `exec-determinism` CI job pins pipe workers at 1 and 4 processes,
//! and the `tcp-determinism` job pins TCP-to-localhost workers against
//! the same bytes.

pub mod coordinator;
pub mod error;
pub mod protocol;
pub mod shard;
pub mod transport;
pub mod worker;

pub use coordinator::{
    exec_mr_kcenter, exec_mr_kcenter_on, exec_mr_outliers, exec_mr_outliers_on, ExecConfig,
    ExecKCenterResult, ExecOutliersResult, ExecReport, WorkerCommand, WorkerFleet, WorkerStat,
};
pub use error::ExecError;
pub use protocol::MetricKind;
pub use transport::{TcpAcceptTransport, TcpDialTransport, Transport, TransportSpec};
pub use worker::worker_main;
