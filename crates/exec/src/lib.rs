#![warn(missing_docs)]
//! True multi-process MapReduce executor for coreset-based k-center.
//!
//! The `kcenter-mapreduce` engine *simulates* the paper's MapReduce model
//! inside one process: partitions are in-memory slices, "reducers" are
//! closures on a thread pool. This crate provides the real thing — the
//! deployment shape of the composable-coreset line (Indyk et al.) under
//! the MRC execution model (Karloff–Suri–Vassilvitskii):
//!
//! * a **coordinator** ([`coordinator`]) that shards the dataset into
//!   per-worker files, spawns one worker **OS process** per partition,
//!   supervises them (crash, signal, timeout, torn-artifact handling),
//!   and reduces the collected coresets through the existing round-2
//!   paths;
//! * a **worker** ([`worker`]) that mmap-loads its shard, runs the shared
//!   round-1 kernel with its own rayon pool, and atomically writes a
//!   weighted coreset back through the store codec;
//! * a **wire protocol** ([`protocol`]) whose every value round-trips
//!   bit-exactly, and an on-disk **shard format** ([`shard`]) reusing
//!   `kcenter-store`'s versioned, checksummed codec.
//!
//! The headline guarantee: a multi-process run is **bit-identical** to
//! the in-process engines on the same seeded input — same centers (to the
//! coordinate bit), same radius (to the `f64` bit) — because partitioning
//! rules, the round-1 kernel, the codec, and collection order are all
//! shared and deterministic. The `exec-determinism` CI job pins this at 1
//! and 4 worker processes.

pub mod coordinator;
pub mod error;
pub mod protocol;
pub mod shard;
pub mod worker;

pub use coordinator::{
    exec_mr_kcenter, exec_mr_kcenter_on, exec_mr_outliers, exec_mr_outliers_on, ExecConfig,
    ExecKCenterResult, ExecOutliersResult, ExecReport, WorkerCommand, WorkerFleet, WorkerStat,
};
pub use error::ExecError;
pub use protocol::MetricKind;
pub use worker::worker_main;
