//! The coordinator ↔ worker wire protocol.
//!
//! Workers are plain OS processes; everything they need arrives as
//! command-line flags and everything they produce is an on-disk artifact
//! plus one machine-parsable stdout line. All values round-trip exactly:
//! integers as decimal, `f64`s through Rust's shortest-round-trip
//! formatting (guaranteed bit-exact on re-parse), metrics by their stable
//! cache name — so a worker reconstructs precisely the sub-problem the
//! coordinator carved out, and bit-identical results follow from the
//! shared round-1 kernel.

use kcenter_core::coreset::CoresetSpec;
use kcenter_metric::{Chebyshev, CosineAngular, Euclidean, Manhattan, Metric, Point};

/// The metrics the executor can name across a process boundary.
///
/// The in-process engines are generic over any [`Metric`]; a worker
/// process, however, must *reconstruct* its metric from a name, so the
/// executor supports exactly the workspace's named point metrics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    /// L2 — the paper's experimental metric.
    Euclidean,
    /// L1.
    Manhattan,
    /// L∞.
    Chebyshev,
    /// Angular distance (proper metric over embeddings).
    CosineAngular,
}

impl MetricKind {
    /// Every supported metric.
    pub const ALL: [MetricKind; 4] = [
        MetricKind::Euclidean,
        MetricKind::Manhattan,
        MetricKind::Chebyshev,
        MetricKind::CosineAngular,
    ];

    /// Stable wire name (matches the metric's cache-fingerprint name).
    pub fn name(self) -> &'static str {
        match self {
            MetricKind::Euclidean => "euclidean",
            MetricKind::Manhattan => "manhattan",
            MetricKind::Chebyshev => "chebyshev",
            MetricKind::CosineAngular => "cosine-angular",
        }
    }

    /// Parses a wire name.
    pub fn parse(s: &str) -> Option<MetricKind> {
        Self::ALL.into_iter().find(|k| k.name() == s)
    }

    /// Runs `f` with the named metric as a trait object — convenient for
    /// one-off evaluations. Hot paths (the worker's round-1 build, the
    /// coordinator's round 2) instead dispatch through
    /// [`crate::with_metric!`] so the kernels stay monomorphized.
    pub fn with<R>(self, f: impl FnOnce(&dyn Metric<Point>) -> R) -> R {
        match self {
            MetricKind::Euclidean => f(&Euclidean),
            MetricKind::Manhattan => f(&Manhattan),
            MetricKind::Chebyshev => f(&Chebyshev),
            MetricKind::CosineAngular => f(&CosineAngular),
        }
    }
}

/// Expands to a `match` over a [`MetricKind`] that binds the **concrete**
/// metric value to `$m` in `$body` — the zero-cost counterpart of
/// [`MetricKind::with`] for distance-kernel call sites, where a vtable
/// call per pair would be measurable.
#[macro_export]
macro_rules! with_metric {
    ($kind:expr, $m:ident => $body:expr) => {
        match $kind {
            $crate::protocol::MetricKind::Euclidean => {
                let $m = &::kcenter_metric::Euclidean;
                $body
            }
            $crate::protocol::MetricKind::Manhattan => {
                let $m = &::kcenter_metric::Manhattan;
                $body
            }
            $crate::protocol::MetricKind::Chebyshev => {
                let $m = &::kcenter_metric::Chebyshev;
                $body
            }
            $crate::protocol::MetricKind::CosineAngular => {
                let $m = &::kcenter_metric::CosineAngular;
                $body
            }
        }
    };
}

/// Formats a [`CoresetSpec`] for the wire (`mult:µ`, `fixed:τ`, `eps:ε`).
pub fn format_spec(spec: &CoresetSpec) -> String {
    match *spec {
        CoresetSpec::EpsStop { eps } => format!("eps:{eps}"),
        CoresetSpec::Fixed { tau } => format!("fixed:{tau}"),
        CoresetSpec::Multiplier { mu } => format!("mult:{mu}"),
    }
}

/// Parses a wire-format [`CoresetSpec`].
pub fn parse_spec(s: &str) -> Option<CoresetSpec> {
    let (kind, value) = s.split_once(':')?;
    Some(match kind {
        "eps" => CoresetSpec::EpsStop {
            eps: value.parse().ok()?,
        },
        "fixed" => CoresetSpec::Fixed {
            tau: value.parse().ok()?,
        },
        "mult" => CoresetSpec::Multiplier {
            mu: value.parse().ok()?,
        },
        _ => return None,
    })
}

/// Prefix of the worker's machine-parsable stdout report line.
pub const REPORT_PREFIX: &str = "kcenter-exec-worker:";

/// What a worker reports on stdout after a successful build.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WorkerReport {
    /// Points in the shard.
    pub points: usize,
    /// Coreset points written.
    pub coreset: usize,
    /// In-worker wall clock of the build (shard load → artifact rename),
    /// in microseconds.
    pub build_micros: u64,
}

impl WorkerReport {
    /// The stdout line a worker prints.
    pub fn to_line(self) -> String {
        format!(
            "{REPORT_PREFIX} points={} coreset={} build_micros={}",
            self.points, self.coreset, self.build_micros
        )
    }

    /// Parses a worker's stdout, tolerating any surrounding noise lines.
    pub fn parse(stdout: &str) -> Option<WorkerReport> {
        let line = stdout
            .lines()
            .find(|l| l.trim_start().starts_with(REPORT_PREFIX))?;
        let mut points = None;
        let mut coreset = None;
        let mut build_micros = None;
        for field in line.trim_start()[REPORT_PREFIX.len()..].split_whitespace() {
            let (key, value) = field.split_once('=')?;
            match key {
                "points" => points = value.parse().ok(),
                "coreset" => coreset = value.parse().ok(),
                "build_micros" => build_micros = value.parse().ok(),
                _ => {}
            }
        }
        Some(WorkerReport {
            points: points?,
            coreset: coreset?,
            build_micros: build_micros?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_names_round_trip() {
        for kind in MetricKind::ALL {
            assert_eq!(MetricKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(MetricKind::parse("hamming"), None);
        // `with` hands back the matching concrete metric.
        let a = Point::new(vec![0.0, 0.0]);
        let b = Point::new(vec![3.0, 4.0]);
        assert_eq!(MetricKind::Euclidean.with(|m| m.distance(&a, &b)), 5.0);
        assert_eq!(MetricKind::Manhattan.with(|m| m.distance(&a, &b)), 7.0);
        assert_eq!(MetricKind::Chebyshev.with(|m| m.distance(&a, &b)), 4.0);
    }

    #[test]
    fn spec_wire_format_round_trips_exactly() {
        let specs = [
            CoresetSpec::Multiplier { mu: 8 },
            CoresetSpec::Fixed { tau: 1234 },
            CoresetSpec::EpsStop { eps: 0.1 }, // 0.1 is not dyadic: bit-exactness matters
            CoresetSpec::EpsStop {
                eps: 1.0 / 3.0 + f64::EPSILON,
            },
        ];
        for spec in specs {
            let wire = format_spec(&spec);
            let back = parse_spec(&wire).unwrap();
            match (spec, back) {
                (CoresetSpec::EpsStop { eps: a }, CoresetSpec::EpsStop { eps: b }) => {
                    assert_eq!(a.to_bits(), b.to_bits(), "eps drifted through the wire")
                }
                (a, b) => assert_eq!(a, b),
            }
        }
        assert_eq!(parse_spec("mult"), None);
        assert_eq!(parse_spec("mult:x"), None);
        assert_eq!(parse_spec("weird:1"), None);
    }

    #[test]
    fn report_line_round_trips_and_tolerates_noise() {
        let report = WorkerReport {
            points: 1000,
            coreset: 40,
            build_micros: 12345,
        };
        let stdout = format!("some banner\n{}\ntrailing", report.to_line());
        assert_eq!(WorkerReport::parse(&stdout), Some(report));
        assert_eq!(WorkerReport::parse("no report here"), None);
        assert_eq!(WorkerReport::parse("kcenter-exec-worker: points=1"), None);
    }
}
