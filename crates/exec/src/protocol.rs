//! The coordinator ↔ worker wire protocol.
//!
//! Workers are plain OS processes. A **one-shot** worker receives
//! everything as command-line flags and produces an on-disk artifact plus
//! one machine-parsable stdout line. A **persistent** worker (`--serve`)
//! instead speaks a length-delimited request/response framing over
//! stdin/stdout — each frame is a list of strings, and a request frame
//! carries exactly the flag list a one-shot invocation would have
//! received, so both modes parse with the same [`crate::worker::WorkerArgs`]
//! code. All values round-trip exactly: integers as decimal, `f64`s
//! through Rust's shortest-round-trip formatting (guaranteed bit-exact on
//! re-parse), metrics by their stable cache name — so a worker
//! reconstructs precisely the sub-problem the coordinator carved out, and
//! bit-identical results follow from the shared round-1 kernel.
//!
//! # Frame layout
//!
//! ```text
//! [u32 LE payload_len] [u32 LE part_count] ([u32 LE len][utf-8 bytes])*
//! ```
//!
//! The leading payload length lets a reader pull one complete frame with
//! two reads and reject oversized garbage before allocating; a clean EOF
//! **between** frames is `Ok(None)` (the peer hung up), while EOF inside
//! a frame is an error (a torn write).
//!
//! # Request / response verbs
//!
//! * `["hello", proto=…, version=…, config=…]` — the handshake a
//!   coordinator opens every persistent connection with; see
//!   [`hello_request`] and `docs/PROTOCOL.md` §Handshake.
//! * `["coreset", …flags]` — run one round-1 coreset build (flags are
//!   [`crate::worker::WorkerArgs::to_args`]).
//! * `["merge", --left L, --right R, --out O]` — compose two coreset
//!   artifacts (left-then-right, order-preserving) into one.
//! * `["probe", VAR]` — report whether env var `VAR` is set in the worker
//!   process (regression surface for the coordinator's env hygiene).
//! * `["shutdown"]` — end this connection cleanly (`["shutdown",
//!   "process"]` additionally exits a socket-serving worker process).
//!
//! Replies: `["ok", k=v…]` with [`WorkerReport`]-shaped fields,
//! `["ok", "hello", k=v…]` for an accepted handshake,
//! `["ok", "set", value]` / `["ok", "unset"]` for probes,
//! `["err-hello", reason]` for a rejected handshake (the worker then
//! closes the connection),
//! `["err-artifact", path, reason]` when a job's *input* artifact failed
//! to decode (the coordinator attributes it to the producing partition),
//! and `["err", message]` for anything else.
//!
//! The normative wire contract — including the handshake's rejection
//! rules and the float-formatting guarantees — lives in
//! `docs/PROTOCOL.md`.

use std::io::{Read, Write};

use kcenter_core::coreset::CoresetSpec;
use kcenter_metric::{Chebyshev, CosineAngular, Euclidean, Manhattan, Metric, Point};

/// The metrics the executor can name across a process boundary.
///
/// The in-process engines are generic over any [`Metric`]; a worker
/// process, however, must *reconstruct* its metric from a name, so the
/// executor supports exactly the workspace's named point metrics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    /// L2 — the paper's experimental metric.
    Euclidean,
    /// L1.
    Manhattan,
    /// L∞.
    Chebyshev,
    /// Angular distance (proper metric over embeddings).
    CosineAngular,
}

impl MetricKind {
    /// Every supported metric.
    pub const ALL: [MetricKind; 4] = [
        MetricKind::Euclidean,
        MetricKind::Manhattan,
        MetricKind::Chebyshev,
        MetricKind::CosineAngular,
    ];

    /// Stable wire name (matches the metric's cache-fingerprint name).
    pub fn name(self) -> &'static str {
        match self {
            MetricKind::Euclidean => "euclidean",
            MetricKind::Manhattan => "manhattan",
            MetricKind::Chebyshev => "chebyshev",
            MetricKind::CosineAngular => "cosine-angular",
        }
    }

    /// Parses a wire name.
    pub fn parse(s: &str) -> Option<MetricKind> {
        Self::ALL.into_iter().find(|k| k.name() == s)
    }

    /// Runs `f` with the named metric as a trait object — convenient for
    /// one-off evaluations. Hot paths (the worker's round-1 build, the
    /// coordinator's round 2) instead dispatch through
    /// [`crate::with_metric!`] so the kernels stay monomorphized.
    pub fn with<R>(self, f: impl FnOnce(&dyn Metric<Point>) -> R) -> R {
        match self {
            MetricKind::Euclidean => f(&Euclidean),
            MetricKind::Manhattan => f(&Manhattan),
            MetricKind::Chebyshev => f(&Chebyshev),
            MetricKind::CosineAngular => f(&CosineAngular),
        }
    }
}

/// Expands to a `match` over a [`MetricKind`] that binds the **concrete**
/// metric value to `$m` in `$body` — the zero-cost counterpart of
/// [`MetricKind::with`] for distance-kernel call sites, where a vtable
/// call per pair would be measurable.
#[macro_export]
macro_rules! with_metric {
    ($kind:expr, $m:ident => $body:expr) => {
        match $kind {
            $crate::protocol::MetricKind::Euclidean => {
                let $m = &::kcenter_metric::Euclidean;
                $body
            }
            $crate::protocol::MetricKind::Manhattan => {
                let $m = &::kcenter_metric::Manhattan;
                $body
            }
            $crate::protocol::MetricKind::Chebyshev => {
                let $m = &::kcenter_metric::Chebyshev;
                $body
            }
            $crate::protocol::MetricKind::CosineAngular => {
                let $m = &::kcenter_metric::CosineAngular;
                $body
            }
        }
    };
}

/// Formats a [`CoresetSpec`] for the wire (`mult:µ`, `fixed:τ`, `eps:ε`).
pub fn format_spec(spec: &CoresetSpec) -> String {
    match *spec {
        CoresetSpec::EpsStop { eps } => format!("eps:{eps}"),
        CoresetSpec::Fixed { tau } => format!("fixed:{tau}"),
        CoresetSpec::Multiplier { mu } => format!("mult:{mu}"),
    }
}

/// Parses a wire-format [`CoresetSpec`].
pub fn parse_spec(s: &str) -> Option<CoresetSpec> {
    let (kind, value) = s.split_once(':')?;
    Some(match kind {
        "eps" => CoresetSpec::EpsStop {
            eps: value.parse().ok()?,
        },
        "fixed" => CoresetSpec::Fixed {
            tau: value.parse().ok()?,
        },
        "mult" => CoresetSpec::Multiplier {
            mu: value.parse().ok()?,
        },
        _ => return None,
    })
}

/// Upper bound on a single frame's payload. Requests are flag lists and
/// replies are short reports — anything near this limit is corruption,
/// not traffic (artifacts travel through the filesystem, never the pipe).
pub const MAX_FRAME_BYTES: usize = 16 << 20;

/// Writes one length-delimited frame and flushes, so a blocked reader on
/// the other end of the pipe wakes immediately.
///
/// # Errors
///
/// Any transport error (a closed pipe surfaces as `BrokenPipe`, which the
/// fleet treats as worker death), or `InvalidInput` for a frame that
/// would exceed [`MAX_FRAME_BYTES`].
pub fn write_frame<W: Write>(w: &mut W, parts: &[String]) -> std::io::Result<()> {
    let payload_len = 4 + parts.iter().map(|p| 4 + p.len()).sum::<usize>();
    if payload_len > MAX_FRAME_BYTES {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!("frame payload of {payload_len} bytes exceeds {MAX_FRAME_BYTES}"),
        ));
    }
    let mut buf = Vec::with_capacity(4 + payload_len);
    buf.extend_from_slice(&(payload_len as u32).to_le_bytes());
    buf.extend_from_slice(&(parts.len() as u32).to_le_bytes());
    for part in parts {
        buf.extend_from_slice(&(part.len() as u32).to_le_bytes());
        buf.extend_from_slice(part.as_bytes());
    }
    w.write_all(&buf)?;
    w.flush()
}

/// Reads one frame, or `Ok(None)` on a clean EOF between frames.
///
/// # Errors
///
/// `UnexpectedEof` for EOF *inside* a frame (a torn write),
/// `InvalidData` for an oversized or structurally malformed payload
/// (bad counts, non-UTF-8 parts).
pub fn read_frame<R: Read>(r: &mut R) -> std::io::Result<Option<Vec<String>>> {
    let mut len_bytes = [0u8; 4];
    // A clean hang-up arrives exactly here: zero bytes at a frame start.
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut len_bytes[filled..])? {
            0 if filled == 0 => return Ok(None),
            0 => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "EOF inside a frame length header",
                ))
            }
            n => filled += n,
        }
    }
    let payload_len = u32::from_le_bytes(len_bytes) as usize;
    if !(4..=MAX_FRAME_BYTES).contains(&payload_len) {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("implausible frame payload length {payload_len}"),
        ));
    }
    let mut payload = vec![0u8; payload_len];
    r.read_exact(&mut payload)?;
    let bad = |what: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, what.to_string());
    let count = u32::from_le_bytes(payload[0..4].try_into().unwrap()) as usize;
    let mut parts = Vec::with_capacity(count.min(1024));
    let mut at = 4;
    for _ in 0..count {
        if at + 4 > payload.len() {
            return Err(bad("frame part count overruns the payload"));
        }
        let len = u32::from_le_bytes(payload[at..at + 4].try_into().unwrap()) as usize;
        at += 4;
        if at + len > payload.len() {
            return Err(bad("frame part length overruns the payload"));
        }
        let part = std::str::from_utf8(&payload[at..at + len])
            .map_err(|_| bad("frame part is not UTF-8"))?;
        parts.push(part.to_string());
        at += len;
    }
    if at != payload.len() {
        return Err(bad("trailing bytes after the last frame part"));
    }
    Ok(Some(parts))
}

/// Version of the framed protocol itself. Bumped on any incompatible
/// change to the frame layout, the verb set, or a verb's semantics; a
/// worker speaking a different version rejects the handshake rather than
/// risking an undefined merge.
pub const PROTOCOL_VERSION: u32 = 1;

/// Pulls `key=value` out of a hello frame's fields.
fn hello_field<'a>(parts: &'a [String], key: &str) -> Option<&'a str> {
    let prefix = format!("{key}=");
    parts.iter().find_map(|p| p.strip_prefix(&prefix))
}

/// The handshake frame a coordinator opens every persistent connection
/// with: `["hello", "proto=1", "version=<crate>", "config=<fp|any>"]`.
///
/// `config` is the coordinator's 128-bit configuration fingerprint as 32
/// lowercase hex digits, or the literal `any` when it does not pin one —
/// a worker started with `--pin-config` rejects both a mismatched
/// fingerprint and an unpinned coordinator.
pub fn hello_request(config: Option<u128>) -> Vec<String> {
    vec![
        "hello".into(),
        format!("proto={PROTOCOL_VERSION}"),
        format!("version={}", env!("CARGO_PKG_VERSION")),
        match config {
            Some(fp) => format!("config={fp:032x}"),
            None => "config=any".into(),
        },
    ]
}

/// The worker's side of the handshake: validates a `hello` request
/// against this worker's protocol version and (optionally) pinned
/// configuration fingerprint.
///
/// # Errors
///
/// A human-readable rejection reason — sent back as
/// `["err-hello", reason]` before the worker closes the connection.
pub fn check_hello_request(parts: &[String], pinned_config: Option<u128>) -> Result<(), String> {
    let proto: u32 = hello_field(parts, "proto")
        .and_then(|v| v.parse().ok())
        .ok_or("hello carries no parsable proto= field")?;
    if proto != PROTOCOL_VERSION {
        return Err(format!(
            "protocol version mismatch: coordinator speaks v{proto}, this worker speaks v{PROTOCOL_VERSION}"
        ));
    }
    if let Some(pin) = pinned_config {
        match hello_field(parts, "config") {
            Some("any") | None => {
                return Err(format!(
                    "this worker is pinned to config {pin:032x} but the coordinator announced none"
                ))
            }
            Some(hex) => {
                let announced = u128::from_str_radix(hex, 16)
                    .map_err(|_| format!("unparsable config fingerprint {hex:?}"))?;
                if announced != pin {
                    return Err(format!(
                        "config fingerprint mismatch: coordinator announced {hex}, \
                         this worker is pinned to {pin:032x}"
                    ));
                }
            }
        }
    }
    Ok(())
}

/// The `["ok", "hello", k=v…]` frame a worker acknowledges an accepted
/// handshake with.
pub fn hello_ack() -> Vec<String> {
    vec![
        "ok".into(),
        "hello".into(),
        format!("proto={PROTOCOL_VERSION}"),
        format!("version={}", env!("CARGO_PKG_VERSION")),
    ]
}

/// The coordinator's side of the handshake: validates the first frame a
/// worker sends back after `hello`.
///
/// # Errors
///
/// The rejection reason (the worker's own, for an `err-hello` reply; a
/// coordinator-side diagnosis for a malformed or wrong-version ack).
pub fn parse_hello_ack(parts: &[String]) -> Result<(), String> {
    match (
        parts.first().map(String::as_str),
        parts.get(1).map(String::as_str),
    ) {
        (Some("ok"), Some("hello")) => {
            let proto: u32 = hello_field(parts, "proto")
                .and_then(|v| v.parse().ok())
                .ok_or("hello ack carries no parsable proto= field")?;
            if proto != PROTOCOL_VERSION {
                return Err(format!(
                    "protocol version mismatch: worker speaks v{proto}, \
                     this coordinator speaks v{PROTOCOL_VERSION}"
                ));
            }
            Ok(())
        }
        (Some("err-hello"), reason) => Err(reason.map_or_else(
            || "handshake rejected without a reason".to_string(),
            str::to_string,
        )),
        _ => Err(format!("malformed hello reply: {parts:?}")),
    }
}

/// Prefix of the worker's machine-parsable stdout report line.
pub const REPORT_PREFIX: &str = "kcenter-exec-worker:";

/// What a worker reports on stdout after a successful build.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WorkerReport {
    /// Points in the shard.
    pub points: usize,
    /// Coreset points written.
    pub coreset: usize,
    /// In-worker wall clock of the build (shard load → artifact rename),
    /// in microseconds.
    pub build_micros: u64,
}

impl WorkerReport {
    /// The stdout line a worker prints.
    pub fn to_line(self) -> String {
        format!(
            "{REPORT_PREFIX} points={} coreset={} build_micros={}",
            self.points, self.coreset, self.build_micros
        )
    }

    /// The `["ok", k=v…]` reply frame a persistent worker sends.
    pub fn to_reply(self) -> Vec<String> {
        vec![
            "ok".into(),
            format!("points={}", self.points),
            format!("coreset={}", self.coreset),
            format!("build_micros={}", self.build_micros),
        ]
    }

    /// Parses an `["ok", k=v…]` reply frame (the reverse of
    /// [`WorkerReport::to_reply`]).
    pub fn from_reply(parts: &[String]) -> Option<WorkerReport> {
        if parts.first().map(String::as_str) != Some("ok") {
            return None;
        }
        let mut points = None;
        let mut coreset = None;
        let mut build_micros = None;
        for field in &parts[1..] {
            let (key, value) = field.split_once('=')?;
            match key {
                "points" => points = value.parse().ok(),
                "coreset" => coreset = value.parse().ok(),
                "build_micros" => build_micros = value.parse().ok(),
                _ => {}
            }
        }
        Some(WorkerReport {
            points: points?,
            coreset: coreset?,
            build_micros: build_micros?,
        })
    }

    /// The `["ok", k=v…]` reply frame a persistent worker sends, with
    /// observability extras appended (see [`WorkerTelemetry`]).
    pub fn to_reply_with(self, telemetry: &WorkerTelemetry) -> Vec<String> {
        let mut reply = self.to_reply();
        reply.extend(telemetry.reply_fields());
        reply
    }

    /// Parses a worker's stdout, tolerating any surrounding noise lines.
    pub fn parse(stdout: &str) -> Option<WorkerReport> {
        let line = stdout
            .lines()
            .find(|l| l.trim_start().starts_with(REPORT_PREFIX))?;
        let mut points = None;
        let mut coreset = None;
        let mut build_micros = None;
        for field in line.trim_start()[REPORT_PREFIX.len()..].split_whitespace() {
            let (key, value) = field.split_once('=')?;
            match key {
                "points" => points = value.parse().ok(),
                "coreset" => coreset = value.parse().ok(),
                "build_micros" => build_micros = value.parse().ok(),
                _ => {}
            }
        }
        Some(WorkerReport {
            points: points?,
            coreset: coreset?,
            build_micros: build_micros?,
        })
    }
}

/// Observability extras a persistent worker piggybacks on an `ok` job
/// reply, next to the [`WorkerReport`] fields.
///
/// Wire form (§2 of `docs/PROTOCOL.md` — unknown reply keys are ignored,
/// so these fields ride along without a protocol bump):
///
/// * `span=<id>` — the coordinator's span context (`--span` on the job
///   flags) echoed back, attributing the reply to the round it belongs
///   to even in captured frame logs.
/// * `m.<name>=<delta>` — how much the worker's own metrics registry
///   counter `<name>` grew while running this job (zero deltas are not
///   sent). The coordinator folds these into its registry under
///   `exec.worker.<name>`, producing one merged cross-process view.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WorkerTelemetry {
    /// The job's span context, echoed from the request.
    pub span: Option<u64>,
    /// `(counter name, delta)` pairs, in registry (sorted) order.
    pub counters: Vec<(String, u64)>,
}

impl WorkerTelemetry {
    /// The deltas between two [`kcenter_obs::counter_values`] snapshots
    /// taken around a job, with `span` echoed from the request.
    pub fn from_counter_snapshots(
        span: Option<u64>,
        before: &[(String, u64)],
        after: &[(String, u64)],
    ) -> WorkerTelemetry {
        let counters = after
            .iter()
            .filter_map(|(name, now)| {
                let was = before
                    .iter()
                    .find(|(n, _)| n == name)
                    .map_or(0, |&(_, v)| v);
                let delta = now.saturating_sub(was);
                (delta > 0).then(|| (name.clone(), delta))
            })
            .collect();
        WorkerTelemetry { span, counters }
    }

    /// The `k=v` reply parts these extras append to an `ok` frame.
    pub fn reply_fields(&self) -> Vec<String> {
        let mut fields = Vec::with_capacity(self.counters.len() + 1);
        if let Some(span) = self.span {
            fields.push(format!("span={span}"));
        }
        for (name, delta) in &self.counters {
            fields.push(format!("m.{name}={delta}"));
        }
        fields
    }

    /// Extracts the telemetry fields from an `ok` reply frame (absent
    /// fields — an older worker — parse as the empty default).
    pub fn from_reply(parts: &[String]) -> WorkerTelemetry {
        let mut telemetry = WorkerTelemetry::default();
        for field in parts.iter().skip(1) {
            let Some((key, value)) = field.split_once('=') else {
                continue;
            };
            if key == "span" {
                telemetry.span = value.parse().ok();
            } else if let Some(name) = key.strip_prefix("m.") {
                if let Ok(delta) = value.parse() {
                    telemetry.counters.push((name.to_string(), delta));
                }
            }
        }
        telemetry
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_names_round_trip() {
        for kind in MetricKind::ALL {
            assert_eq!(MetricKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(MetricKind::parse("hamming"), None);
        // `with` hands back the matching concrete metric.
        let a = Point::new(vec![0.0, 0.0]);
        let b = Point::new(vec![3.0, 4.0]);
        assert_eq!(MetricKind::Euclidean.with(|m| m.distance(&a, &b)), 5.0);
        assert_eq!(MetricKind::Manhattan.with(|m| m.distance(&a, &b)), 7.0);
        assert_eq!(MetricKind::Chebyshev.with(|m| m.distance(&a, &b)), 4.0);
    }

    #[test]
    fn spec_wire_format_round_trips_exactly() {
        let specs = [
            CoresetSpec::Multiplier { mu: 8 },
            CoresetSpec::Fixed { tau: 1234 },
            CoresetSpec::EpsStop { eps: 0.1 }, // 0.1 is not dyadic: bit-exactness matters
            CoresetSpec::EpsStop {
                eps: 1.0 / 3.0 + f64::EPSILON,
            },
        ];
        for spec in specs {
            let wire = format_spec(&spec);
            let back = parse_spec(&wire).unwrap();
            match (spec, back) {
                (CoresetSpec::EpsStop { eps: a }, CoresetSpec::EpsStop { eps: b }) => {
                    assert_eq!(a.to_bits(), b.to_bits(), "eps drifted through the wire")
                }
                (a, b) => assert_eq!(a, b),
            }
        }
        assert_eq!(parse_spec("mult"), None);
        assert_eq!(parse_spec("mult:x"), None);
        assert_eq!(parse_spec("weird:1"), None);
    }

    #[test]
    fn frames_round_trip_exactly() {
        let cases: Vec<Vec<String>> = vec![
            vec![],
            vec!["shutdown".into()],
            vec!["probe".into(), "KCENTER_CACHE_DIR".into()],
            vec!["coreset".into(), String::new(), "πδ≠ascii".into()],
            vec!["x".repeat(10_000)],
        ];
        let mut wire = Vec::new();
        for parts in &cases {
            write_frame(&mut wire, parts).unwrap();
        }
        let mut reader = wire.as_slice();
        for parts in &cases {
            assert_eq!(read_frame(&mut reader).unwrap().as_ref(), Some(parts));
        }
        // Clean EOF between frames.
        assert_eq!(read_frame(&mut reader).unwrap(), None);
    }

    #[test]
    fn torn_and_malformed_frames_are_errors_not_hangs() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &["ok".to_string(), "points=3".to_string()]).unwrap();
        // EOF inside the payload.
        for cut in 1..wire.len() {
            let mut torn = &wire[..cut];
            assert!(read_frame(&mut torn).is_err(), "cut at {cut} not rejected");
        }
        // Oversized length word.
        let mut huge = ((MAX_FRAME_BYTES + 1) as u32).to_le_bytes().to_vec();
        huge.extend_from_slice(&[0; 8]);
        assert!(read_frame(&mut huge.as_slice()).is_err());
        // Part length overrunning the payload.
        let mut overrun = Vec::new();
        overrun.extend_from_slice(&12u32.to_le_bytes()); // payload_len
        overrun.extend_from_slice(&1u32.to_le_bytes()); // one part
        overrun.extend_from_slice(&100u32.to_le_bytes()); // of length 100?!
        overrun.extend_from_slice(&[0; 4]);
        assert!(read_frame(&mut overrun.as_slice()).is_err());
        // Non-UTF-8 part bytes.
        let mut binary = Vec::new();
        binary.extend_from_slice(&10u32.to_le_bytes());
        binary.extend_from_slice(&1u32.to_le_bytes());
        binary.extend_from_slice(&2u32.to_le_bytes());
        binary.extend_from_slice(&[0xFF, 0xFE]);
        assert!(read_frame(&mut binary.as_slice()).is_err());
        // Oversized writes are refused before touching the transport.
        let mut sink = Vec::new();
        assert!(write_frame(&mut sink, &["y".repeat(MAX_FRAME_BYTES)]).is_err());
        assert!(sink.is_empty());
    }

    #[test]
    fn hello_handshake_accepts_matching_peers() {
        let request = hello_request(None);
        assert!(check_hello_request(&request, None).is_ok());
        let pinned = hello_request(Some(0xdead_beef));
        assert!(check_hello_request(&pinned, Some(0xdead_beef)).is_ok());
        // An unpinned worker accepts any announced config.
        assert!(check_hello_request(&pinned, None).is_ok());
        assert!(parse_hello_ack(&hello_ack()).is_ok());
    }

    #[test]
    fn hello_handshake_rejects_mismatches_with_reasons() {
        // Config fingerprint mismatch.
        let err = check_hello_request(&hello_request(Some(0x1234)), Some(0x5678)).unwrap_err();
        assert!(err.contains("mismatch"), "{err:?}");
        // A pinned worker refuses an unpinned coordinator.
        let err = check_hello_request(&hello_request(None), Some(0x5678)).unwrap_err();
        assert!(err.contains("announced none"), "{err:?}");
        // Protocol version mismatch, both directions.
        let old = vec!["hello".to_string(), "proto=0".to_string()];
        assert!(check_hello_request(&old, None)
            .unwrap_err()
            .contains("protocol version mismatch"));
        let old_ack = vec![
            "ok".to_string(),
            "hello".to_string(),
            "proto=999".to_string(),
        ];
        assert!(parse_hello_ack(&old_ack)
            .unwrap_err()
            .contains("protocol version mismatch"));
        // err-hello replies surface the worker's own reason.
        let rejected = vec!["err-hello".to_string(), "wrong tau".to_string()];
        assert_eq!(parse_hello_ack(&rejected).unwrap_err(), "wrong tau");
        // Anything else is malformed.
        assert!(parse_hello_ack(&["ok".to_string()]).is_err());
    }

    #[test]
    fn report_reply_frames_round_trip() {
        let report = WorkerReport {
            points: 512,
            coreset: 64,
            build_micros: 987,
        };
        assert_eq!(WorkerReport::from_reply(&report.to_reply()), Some(report));
        assert_eq!(WorkerReport::from_reply(&["err".to_string()]), None);
        assert_eq!(
            WorkerReport::from_reply(&["ok".to_string(), "points=1".to_string()]),
            None
        );
    }

    #[test]
    fn telemetry_rides_ok_replies_and_older_peers_interoperate() {
        let report = WorkerReport {
            points: 512,
            coreset: 64,
            build_micros: 987,
        };
        let before = vec![("metric.matrix.builds".to_string(), 2)];
        let after = vec![
            ("metric.matrix.builds".to_string(), 5),
            ("metric.store.hits".to_string(), 0),
            ("store.mmap.loads".to_string(), 1),
        ];
        let telemetry = WorkerTelemetry::from_counter_snapshots(Some(42), &before, &after);
        // Zero deltas are dropped; new-in-after counters diff against 0.
        assert_eq!(
            telemetry.counters,
            vec![
                ("metric.matrix.builds".to_string(), 3),
                ("store.mmap.loads".to_string(), 1),
            ]
        );
        let reply = report.to_reply_with(&telemetry);
        // The report parser ignores the extra fields (older coordinator)…
        assert_eq!(WorkerReport::from_reply(&reply), Some(report));
        // …and the telemetry parser recovers them exactly.
        assert_eq!(WorkerTelemetry::from_reply(&reply), telemetry);
        // A bare reply (older worker) parses to the empty default.
        assert_eq!(
            WorkerTelemetry::from_reply(&report.to_reply()),
            WorkerTelemetry::default()
        );
    }

    #[test]
    fn report_line_round_trips_and_tolerates_noise() {
        let report = WorkerReport {
            points: 1000,
            coreset: 40,
            build_micros: 12345,
        };
        let stdout = format!("some banner\n{}\ntrailing", report.to_line());
        assert_eq!(WorkerReport::parse(&stdout), Some(report));
        assert_eq!(WorkerReport::parse("no report here"), None);
        assert_eq!(WorkerReport::parse("kcenter-exec-worker: points=1"), None);
    }
}
