//! The worker half of the executor: what runs inside each spawned process.
//!
//! A worker is the multi-process counterpart of one round-1 reducer: it
//! loads its shard (mmap-backed where available), runs the **same**
//! weighted-coreset kernel the in-process engines call
//! ([`build_weighted_coreset`]) with the start index the coordinator
//! derived from the engine's seeded rule, and atomically writes the
//! weighted coreset back through the store codec. Determinism across the
//! process boundary therefore reduces to determinism of the shared kernel
//! — which is chunk-order invariant under any thread count (pinned by the
//! fig-golden suite), so each worker is free to size its own rayon pool
//! (`RAYON_NUM_THREADS` is honoured per process).
//!
//! Binaries expose the worker by delegating a hidden subcommand to
//! [`worker_main`]; the CLI's is `kcenter worker …`, the bench harness
//! re-invokes itself with `exec-worker …`, and the crate ships a
//! standalone `kcenter-exec-worker` binary for the process-level tests.
//!
//! # Remote modes
//!
//! Beyond the pipe-served `--serve` loop, [`worker_main`] understands
//! two TCP modes for cross-host fleets (see `docs/PROTOCOL.md`):
//!
//! * `--listen ADDR` — bind `ADDR` (`host:port`; port 0 picks a free
//!   port), print `kcenter-exec-worker: listening on <addr>` to stdout,
//!   and serve framed connections one at a time, forever. A connection
//!   loss only ends that connection — the coordinator's
//!   reconnect-with-backoff finds the same worker again.
//! * `--connect ADDR` — dial a listening coordinator and serve that one
//!   connection.
//!
//! Both accept `--store DIR` (the shared artifact store that
//! `@store/NAME` job references resolve against) and `--pin-config HEX`
//! (reject any coordinator whose `hello` announces a different — or no —
//! configuration fingerprint).
//!
//! # Fault injection (tests only)
//!
//! The environment variable `KCENTER_EXEC_FAULT` makes a worker misbehave
//! on purpose so the coordinator's failure handling can be pinned by
//! tests: `crash` exits non-zero before doing any work, `truncate` writes
//! half of the result artifact, `hang` sleeps far past any reasonable
//! timeout (after accepting a connection, in the TCP modes — the
//! hung-remote case the per-run deadline must contain), `crash-job:N`
//! lets a persistent worker serve `N-1` jobs normally and then die
//! mid-stream on the `N`th without replying — the kill-mid-stream case
//! the fleet must contain by respawn + replay — and `drop-conn:N` severs
//! the connection at the `N`th job while keeping a `--listen` process
//! alive, which is the reconnect-and-replay case. Counters are
//! per-connection. Production coordinators never set it.

use std::io::{BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use kcenter_core::coreset::{build_weighted_coreset, CoresetSpec};
use kcenter_metric::{Metric, Point, PointRef};
use kcenter_store::{codec, ArtifactStore};

use crate::protocol::{
    check_hello_request, hello_ack, parse_spec, read_frame, write_frame, MetricKind, WorkerReport,
    WorkerTelemetry,
};
use crate::shard::{read_coreset_artifact, read_shard_set, write_artifact_atomic};
use crate::with_metric;

/// Environment variable enabling deliberate worker misbehaviour in tests.
pub const FAULT_ENV: &str = "KCENTER_EXEC_FAULT";

/// A parsed worker invocation.
#[derive(Clone, Debug, PartialEq)]
pub struct WorkerArgs {
    /// Input shard file.
    pub shard: PathBuf,
    /// Output artifact path (weighted coreset).
    pub out: PathBuf,
    /// Metric to price distances with.
    pub metric: MetricKind,
    /// Coreset base for this partition (already clamped by the
    /// coordinator to the partition size where the algorithm requires it).
    pub base: usize,
    /// Coreset sizing rule.
    pub spec: CoresetSpec,
    /// GMM start index within the shard.
    pub start: usize,
    /// Coordinator span context (`--span`): opaque to the build, echoed
    /// back as `span=` on the reply so the coordinator can stitch this
    /// job into its merged trace timeline.
    pub span: Option<u64>,
}

impl WorkerArgs {
    /// The flag list a coordinator appends to its worker command.
    pub fn to_args(&self) -> Vec<String> {
        let mut args = vec![
            "--shard".into(),
            self.shard.to_string_lossy().into_owned(),
            "--out".into(),
            self.out.to_string_lossy().into_owned(),
            "--metric".into(),
            self.metric.name().into(),
            "--base".into(),
            self.base.to_string(),
            "--spec".into(),
            crate::protocol::format_spec(&self.spec),
            "--start".into(),
            self.start.to_string(),
        ];
        if let Some(span) = self.span {
            args.push("--span".into());
            args.push(span.to_string());
        }
        args
    }

    /// Parses the flag list (the reverse of [`WorkerArgs::to_args`]).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for unknown flags, missing values,
    /// or malformed numbers — printed to the worker's stderr, which the
    /// coordinator captures into its failure report.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<WorkerArgs, String> {
        let mut shard = None;
        let mut out = None;
        let mut metric = None;
        let mut base = None;
        let mut spec = None;
        let mut start = None;
        let mut span = None;
        let mut iter = args.into_iter();
        while let Some(flag) = iter.next() {
            let mut value = || {
                iter.next()
                    .ok_or_else(|| format!("{flag} requires a value"))
            };
            match flag.as_str() {
                "--shard" => shard = Some(PathBuf::from(value()?)),
                "--out" => out = Some(PathBuf::from(value()?)),
                "--metric" => {
                    let v = value()?;
                    metric =
                        Some(MetricKind::parse(&v).ok_or_else(|| format!("unknown metric {v:?}"))?)
                }
                "--base" => {
                    let v = value()?;
                    base = Some(v.parse().map_err(|_| format!("bad --base {v:?}"))?)
                }
                "--spec" => {
                    let v = value()?;
                    spec = Some(parse_spec(&v).ok_or_else(|| format!("bad --spec {v:?}"))?)
                }
                "--start" => {
                    let v = value()?;
                    start = Some(v.parse().map_err(|_| format!("bad --start {v:?}"))?)
                }
                "--span" => {
                    let v = value()?;
                    span = Some(v.parse().map_err(|_| format!("bad --span {v:?}"))?)
                }
                other => return Err(format!("unknown worker flag {other:?}")),
            }
        }
        Ok(WorkerArgs {
            shard: shard.ok_or("worker requires --shard")?,
            out: out.ok_or("worker requires --out")?,
            metric: metric.ok_or("worker requires --metric")?,
            base: base.ok_or("worker requires --base")?,
            spec: spec.ok_or("worker requires --spec")?,
            start: start.ok_or("worker requires --start")?,
            span,
        })
    }
}

/// Runs one worker: shard in, weighted-coreset artifact out.
///
/// # Errors
///
/// Returns a message describing the failure (unreadable/corrupt shard,
/// out-of-range start, unwritable output).
pub fn run_worker(args: &WorkerArgs) -> Result<WorkerReport, String> {
    let started = Instant::now();
    // The shard is viewed as a `PointSet` — on the mmap path the kernel
    // reads coordinates straight out of the page cache (zero copies); the
    // `PointRef` views are 16-byte fat pointers into that block.
    let set = read_shard_set(&args.shard).map_err(|e| e.to_string())?;
    if set.is_empty() {
        return Err("shard holds no points (empty partitions are not dispatched)".into());
    }
    if args.start >= set.len() {
        return Err(format!(
            "start index {} out of range for {} points",
            args.start,
            set.len()
        ));
    }
    if args.base == 0 {
        return Err("coreset base must be positive".into());
    }
    let points: Vec<PointRef<'_>> = set.iter().collect();
    let (coreset_points, weights) = with_metric!(args.metric, metric => {
        build_round1_coreset(&points, metric, args.base, &args.spec, args.start)
    });
    let bytes = codec::encode_coreset(&coreset_points, &weights);
    if let Ok(fault) = std::env::var(FAULT_ENV) {
        if fault == "truncate" {
            // Deliberately leave a torn artifact at the final path: the
            // coordinator must classify it as BadArtifact, never hang or
            // panic.
            std::fs::write(&args.out, &bytes[..bytes.len() / 2])
                .map_err(|e| format!("cannot write truncated artifact: {e}"))?;
            return Ok(WorkerReport {
                points: points.len(),
                coreset: coreset_points.len(),
                build_micros: started.elapsed().as_micros() as u64,
            });
        }
    }
    write_artifact_atomic(&args.out, &bytes)
        .map_err(|e| format!("cannot write artifact {}: {e}", args.out.display()))?;
    Ok(WorkerReport {
        points: points.len(),
        coreset: coreset_points.len(),
        build_micros: started.elapsed().as_micros() as u64,
    })
}

/// The round-1 kernel, shared verbatim with the in-process engines:
/// [`build_weighted_coreset`] on the shard's `PointRef` views (so the
/// GMM scan runs the block kernels over the mapped coordinate block),
/// coreset points materialized as owned [`Point`]s only at the artifact
/// boundary, weights split into the parallel array.
fn build_round1_coreset<'a, M: Metric<PointRef<'a>>>(
    points: &[PointRef<'a>],
    metric: &M,
    base: usize,
    spec: &CoresetSpec,
    start: usize,
) -> (Vec<Point>, Vec<u64>) {
    let build = build_weighted_coreset(points, metric, base, spec, start);
    let mut coreset_points = Vec::with_capacity(build.coreset.len());
    let mut weights = Vec::with_capacity(build.coreset.len());
    for wp in build.coreset.points {
        coreset_points.push(wp.point.to_point());
        weights.push(wp.weight);
    }
    (coreset_points, weights)
}

/// A parsed merge invocation: compose two coreset artifacts into one.
#[derive(Clone, Debug, PartialEq)]
pub struct MergeArgs {
    /// Left input artifact (earlier partitions).
    pub left: PathBuf,
    /// Right input artifact (later partitions).
    pub right: PathBuf,
    /// Output artifact path.
    pub out: PathBuf,
    /// Coordinator span context (`--span`), echoed back as `span=` on
    /// the reply — see [`WorkerArgs::span`].
    pub span: Option<u64>,
}

impl MergeArgs {
    /// The flag list a coordinator puts in a `merge` request frame.
    pub fn to_args(&self) -> Vec<String> {
        let mut args = vec![
            "--left".into(),
            self.left.to_string_lossy().into_owned(),
            "--right".into(),
            self.right.to_string_lossy().into_owned(),
            "--out".into(),
            self.out.to_string_lossy().into_owned(),
        ];
        if let Some(span) = self.span {
            args.push("--span".into());
            args.push(span.to_string());
        }
        args
    }

    /// Parses the flag list (the reverse of [`MergeArgs::to_args`]).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<MergeArgs, String> {
        let mut left = None;
        let mut right = None;
        let mut out = None;
        let mut span = None;
        let mut iter = args.into_iter();
        while let Some(flag) = iter.next() {
            let mut value = || {
                iter.next()
                    .ok_or_else(|| format!("{flag} requires a value"))
            };
            match flag.as_str() {
                "--left" => left = Some(PathBuf::from(value()?)),
                "--right" => right = Some(PathBuf::from(value()?)),
                "--out" => out = Some(PathBuf::from(value()?)),
                "--span" => {
                    let v = value()?;
                    span = Some(v.parse().map_err(|_| format!("bad --span {v:?}"))?)
                }
                other => return Err(format!("unknown merge flag {other:?}")),
            }
        }
        Ok(MergeArgs {
            left: left.ok_or("merge requires --left")?,
            right: right.ok_or("merge requires --right")?,
            out: out.ok_or("merge requires --out")?,
            span,
        })
    }
}

/// Why a serve-mode job failed, shaped for the reply frame.
enum JobFailure {
    /// An *input* artifact did not decode — the coordinator attributes
    /// this to the partition that produced it, exactly like a bad
    /// artifact it read itself.
    BadArtifact { path: PathBuf, reason: String },
    /// Anything else (bad flags, unwritable output, …).
    Other(String),
}

impl JobFailure {
    fn to_reply(&self) -> Vec<String> {
        match self {
            JobFailure::BadArtifact { path, reason } => vec![
                "err-artifact".into(),
                path.to_string_lossy().into_owned(),
                reason.clone(),
            ],
            JobFailure::Other(msg) => vec!["err".into(), msg.clone()],
        }
    }
}

/// Runs one merge job: reads both weighted-coreset artifacts, composes
/// them left-then-right (order-preserving concatenation — the composition
/// law that makes the reduction tree bit-identical to a flat round 2),
/// and atomically writes the union artifact.
fn run_merge(args: &MergeArgs) -> Result<WorkerReport, JobFailure> {
    let started = Instant::now();
    let read = |path: &PathBuf| {
        read_coreset_artifact(path).map_err(|err| JobFailure::BadArtifact {
            path: path.clone(),
            reason: err.to_string(),
        })
    };
    let (mut points, mut weights) = read(&args.left)?;
    let (right_points, right_weights) = read(&args.right)?;
    let inputs = points.len() + right_points.len();
    points.extend(right_points);
    weights.extend(right_weights);
    let bytes = codec::encode_coreset(&points, &weights);
    write_artifact_atomic(&args.out, &bytes).map_err(|e| {
        JobFailure::Other(format!("cannot write artifact {}: {e}", args.out.display()))
    })?;
    Ok(WorkerReport {
        points: inputs,
        coreset: points.len(),
        build_micros: started.elapsed().as_micros() as u64,
    })
}

/// Options of a persistent serving loop (pipe or socket).
#[derive(Default)]
struct ServeOptions {
    /// Shared artifact store that `@store/NAME` job references resolve
    /// against (`--store`).
    store: Option<ArtifactStore>,
    /// Configuration fingerprint this worker insists on seeing in every
    /// `hello` (`--pin-config`).
    pinned_config: Option<u128>,
}

/// How one serving loop over a connection ended.
enum ServeOutcome {
    /// Clean end of this connection: EOF, `shutdown`, or a rejected
    /// `hello`. A listening worker accepts the next connection.
    CloseConnection,
    /// Injected `drop-conn:N` fault: sever without replying, keep a
    /// listening process alive (the reconnect-and-replay case).
    DropConnection,
    /// End the whole process with this exit code (`shutdown process`,
    /// injected crashes, protocol errors).
    Exit(i32),
}

/// Resolves a job path, dereferencing `@store/NAME` references against
/// the worker's shared artifact store.
fn resolve_job_path(path: &Path, store: Option<&ArtifactStore>) -> Result<PathBuf, String> {
    let text = path.to_string_lossy();
    match text.strip_prefix("@store/") {
        None => Ok(path.to_path_buf()),
        Some(name) => {
            let store = store.ok_or_else(|| {
                format!("job references {text} but this worker was started without --store")
            })?;
            store
                .entry_by_name(name)
                .ok_or_else(|| format!("invalid store reference {text:?}"))
        }
    }
}

/// The persistent-worker loop over one framed connection: serves job
/// requests until a clean EOF or a `shutdown` request.
///
/// Protocol errors (torn frames, an unwritable reply channel) surface as
/// [`ServeOutcome::Exit`] with a distinct code; the coordinator observes
/// the death and contains it like any other worker failure.
fn serve_streams<R: Read, W: Write>(
    input: &mut R,
    output: &mut W,
    opts: &ServeOptions,
) -> ServeOutcome {
    // `crash-job:N` / `drop-conn:N`: misbehave on the N-th job of this
    // connection without replying — the respawned (or reconnected)
    // successor restarts its counter, so the replayed job succeeds and
    // the fleet's containment is observable end to end.
    let fault = std::env::var(FAULT_ENV).ok();
    let fault_job = |prefix: &str| -> Option<u64> {
        fault
            .as_deref()
            .and_then(|f| f.strip_prefix(prefix)?.parse().ok())
    };
    let crash_on_job = fault_job("crash-job:");
    let drop_on_job = fault_job("drop-conn:");
    let mut jobs_served = 0u64;
    loop {
        let parts = match read_frame(input) {
            Ok(Some(parts)) => parts,
            Ok(None) => return ServeOutcome::CloseConnection, // coordinator hung up
            Err(err) => {
                eprintln!("kcenter-exec-worker: bad request frame: {err}");
                return ServeOutcome::Exit(3);
            }
        };
        let verb = parts.first().map(String::as_str).unwrap_or("");
        let reply = match verb {
            "hello" => match check_hello_request(&parts, opts.pinned_config) {
                Ok(()) => hello_ack(),
                Err(reason) => {
                    // Reject, then close: a mismatched coordinator must
                    // never be served a job.
                    eprintln!("kcenter-exec-worker: rejected hello: {reason}");
                    let _ = write_frame(output, &["err-hello".to_string(), reason]);
                    return ServeOutcome::CloseConnection;
                }
            },
            "shutdown" => {
                if parts.get(1).map(String::as_str) == Some("process") {
                    // Used by tests (and deliberate teardowns) to stop a
                    // `--listen` worker remotely; acknowledged so the
                    // requester can wait for it.
                    let _ = write_frame(output, &["ok".to_string(), "bye".to_string()]);
                    return ServeOutcome::Exit(0);
                }
                return ServeOutcome::CloseConnection;
            }
            "probe" => match parts.get(1) {
                Some(var) => match std::env::var(var) {
                    Ok(value) => vec!["ok".into(), "set".into(), value],
                    Err(_) => vec!["ok".into(), "unset".into()],
                },
                None => vec!["err".into(), "probe requires a variable name".into()],
            },
            "coreset" | "merge" => {
                jobs_served += 1;
                if crash_on_job == Some(jobs_served) {
                    eprintln!(
                        "kcenter-exec-worker: injected crash ({FAULT_ENV}=crash-job:{jobs_served})"
                    );
                    return ServeOutcome::Exit(101);
                }
                if drop_on_job == Some(jobs_served) {
                    eprintln!(
                        "kcenter-exec-worker: injected disconnect ({FAULT_ENV}=drop-conn:{jobs_served})"
                    );
                    return ServeOutcome::DropConnection;
                }
                let flags = parts[1..].to_vec();
                // Successful replies piggyback telemetry: the `--span`
                // context echoed back plus the deltas of this process's
                // registry counters across the job (`m.<name>=<delta>`),
                // which the coordinator folds into its own registry.
                let counters_before = kcenter_obs::counter_values();
                if verb == "coreset" {
                    match parse_coreset_job(flags, opts) {
                        Ok(args) => match run_worker(&args) {
                            Ok(report) => {
                                report.to_reply_with(&WorkerTelemetry::from_counter_snapshots(
                                    args.span,
                                    &counters_before,
                                    &kcenter_obs::counter_values(),
                                ))
                            }
                            Err(msg) => JobFailure::Other(msg).to_reply(),
                        },
                        Err(failure) => failure.to_reply(),
                    }
                } else {
                    match parse_merge_job(flags, opts) {
                        Ok(args) => match run_merge(&args) {
                            Ok(report) => {
                                report.to_reply_with(&WorkerTelemetry::from_counter_snapshots(
                                    args.span,
                                    &counters_before,
                                    &kcenter_obs::counter_values(),
                                ))
                            }
                            Err(failure) => failure.to_reply(),
                        },
                        Err(failure) => failure.to_reply(),
                    }
                }
            }
            other => vec!["err".into(), format!("unknown request verb {other:?}")],
        };
        if let Err(err) = write_frame(output, &reply) {
            eprintln!("kcenter-exec-worker: cannot write reply frame: {err}");
            return ServeOutcome::Exit(3);
        }
    }
}

/// Parses a `coreset` job's flags and resolves its `@store/` references.
fn parse_coreset_job(flags: Vec<String>, opts: &ServeOptions) -> Result<WorkerArgs, JobFailure> {
    let mut args = WorkerArgs::parse(flags).map_err(JobFailure::Other)?;
    args.shard = resolve_job_path(&args.shard, opts.store.as_ref()).map_err(JobFailure::Other)?;
    args.out = resolve_job_path(&args.out, opts.store.as_ref()).map_err(JobFailure::Other)?;
    Ok(args)
}

/// Parses a `merge` job's flags and resolves its `@store/` references.
fn parse_merge_job(flags: Vec<String>, opts: &ServeOptions) -> Result<MergeArgs, JobFailure> {
    let mut args = MergeArgs::parse(flags).map_err(JobFailure::Other)?;
    args.left = resolve_job_path(&args.left, opts.store.as_ref()).map_err(JobFailure::Other)?;
    args.right = resolve_job_path(&args.right, opts.store.as_ref()).map_err(JobFailure::Other)?;
    args.out = resolve_job_path(&args.out, opts.store.as_ref()).map_err(JobFailure::Other)?;
    Ok(args)
}

/// The stdin/stdout (`--serve`) persistent loop — the pipe transport's
/// worker half, exit-code compatible with the pre-transport serve loop.
fn serve() -> i32 {
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut input = stdin.lock();
    let mut output = stdout.lock();
    match serve_streams(&mut input, &mut output, &ServeOptions::default()) {
        // A pipe worker's connection IS its life: close = clean exit.
        ServeOutcome::CloseConnection | ServeOutcome::DropConnection => 0,
        ServeOutcome::Exit(code) => code,
    }
}

/// Serves one established TCP connection.
fn serve_tcp_connection(stream: TcpStream, opts: &ServeOptions) -> ServeOutcome {
    let _ = stream.set_nodelay(true);
    if std::env::var(FAULT_ENV).as_deref() == Ok("hang") {
        // The hung-remote case: the connection is up, frames never come.
        // The coordinator's per-run deadline must contain this.
        eprintln!("kcenter-exec-worker: injected hang ({FAULT_ENV}=hang)");
        std::thread::sleep(Duration::from_secs(3600));
    }
    let mut reader = match stream.try_clone() {
        Ok(read_half) => BufReader::new(read_half),
        Err(err) => {
            eprintln!("kcenter-exec-worker: cannot clone connection: {err}");
            return ServeOutcome::CloseConnection;
        }
    };
    let mut writer = stream;
    serve_streams(&mut reader, &mut writer, opts)
}

/// `--listen ADDR`: bind, announce the resolved address on stdout, and
/// serve framed connections one at a time until told to exit.
fn run_listen(addr: &str, opts: &ServeOptions) -> i32 {
    let listener = match TcpListener::bind(addr) {
        Ok(listener) => listener,
        Err(err) => {
            eprintln!("kcenter-exec-worker: cannot bind {addr}: {err}");
            return 2;
        }
    };
    match listener.local_addr() {
        Ok(local) => {
            // The line coordinators/tests parse to learn a port-0 bind.
            println!("kcenter-exec-worker: listening on {local}");
            let _ = std::io::stdout().flush();
        }
        Err(err) => eprintln!("kcenter-exec-worker: cannot resolve bound address: {err}"),
    }
    loop {
        let (stream, _) = match listener.accept() {
            Ok(accepted) => accepted,
            Err(err) => {
                eprintln!("kcenter-exec-worker: accept failed: {err}");
                continue;
            }
        };
        match serve_tcp_connection(stream, opts) {
            // The listener outlives its connections: a loss (or a
            // rejected hello) only ends that connection, so the
            // coordinator's reconnect finds this same worker again.
            ServeOutcome::CloseConnection | ServeOutcome::DropConnection => continue,
            ServeOutcome::Exit(code) => return code,
        }
    }
}

/// `--connect ADDR`: dial a listening coordinator (with a short retry
/// window, since the worker may start first) and serve that connection.
fn run_connect(addr: &str, opts: &ServeOptions) -> i32 {
    let mut delay = Duration::from_millis(50);
    let mut stream = None;
    for attempt in 0..8 {
        if attempt > 0 {
            std::thread::sleep(delay);
            delay = delay.saturating_mul(2);
        }
        match TcpStream::connect(addr) {
            Ok(connected) => {
                stream = Some(connected);
                break;
            }
            Err(err) if attempt == 7 => {
                eprintln!("kcenter-exec-worker: cannot connect to {addr}: {err}");
                return 2;
            }
            Err(_) => {}
        }
    }
    let Some(stream) = stream else { return 2 };
    match serve_tcp_connection(stream, opts) {
        ServeOutcome::CloseConnection | ServeOutcome::DropConnection => 0,
        ServeOutcome::Exit(code) => code,
    }
}

/// Parsed remote-mode invocation (`--listen`/`--connect`).
struct RemoteArgs {
    listen: Option<String>,
    connect: Option<String>,
    store: Option<PathBuf>,
    pin_config: Option<u128>,
}

impl RemoteArgs {
    fn parse(args: Vec<String>) -> Result<RemoteArgs, String> {
        let mut listen = None;
        let mut connect = None;
        let mut store = None;
        let mut pin_config = None;
        let mut iter = args.into_iter();
        while let Some(flag) = iter.next() {
            let mut value = || {
                iter.next()
                    .ok_or_else(|| format!("{flag} requires a value"))
            };
            match flag.as_str() {
                "--listen" => listen = Some(value()?),
                "--connect" => connect = Some(value()?),
                "--store" => store = Some(PathBuf::from(value()?)),
                "--pin-config" => {
                    let v = value()?;
                    pin_config = Some(
                        u128::from_str_radix(&v, 16)
                            .map_err(|_| format!("bad --pin-config {v:?} (expected hex)"))?,
                    )
                }
                other => return Err(format!("unknown remote worker flag {other:?}")),
            }
        }
        if listen.is_some() == connect.is_some() {
            return Err("remote worker requires exactly one of --listen or --connect".into());
        }
        Ok(RemoteArgs {
            listen,
            connect,
            store,
            pin_config,
        })
    }
}

/// Remote-mode entry: `--listen`/`--connect` plus `--store`/`--pin-config`.
fn remote_main(args: Vec<String>) -> i32 {
    // `crash` fires before the bind: the coordinator's dial (or accept)
    // fails outright, the attributed-spawn-error case.
    if std::env::var(FAULT_ENV).as_deref() == Ok("crash") {
        eprintln!("kcenter-exec-worker: injected crash ({FAULT_ENV}=crash)");
        return 101;
    }
    let parsed = match RemoteArgs::parse(args) {
        Ok(parsed) => parsed,
        Err(msg) => {
            eprintln!("kcenter-exec-worker: {msg}");
            return 2;
        }
    };
    let store = match parsed.store {
        Some(dir) => match ArtifactStore::open(&dir) {
            Ok(store) => Some(store),
            Err(err) => {
                eprintln!(
                    "kcenter-exec-worker: cannot open --store {}: {err}",
                    dir.display()
                );
                return 2;
            }
        },
        None => None,
    };
    let opts = ServeOptions {
        store,
        pinned_config: parsed.pin_config,
    };
    match (parsed.listen, parsed.connect) {
        (Some(addr), None) => run_listen(&addr, &opts),
        (None, Some(addr)) => run_connect(&addr, &opts),
        _ => unreachable!("RemoteArgs::parse enforces exactly one mode"),
    }
}

/// Full worker entry point for binaries: parses flags, applies the fault
/// hooks, runs the build, prints the report line, and returns the process
/// exit code (0 on success).
///
/// `--serve` as the first argument enters the persistent-worker loop
/// instead: framed requests on stdin, framed replies on stdout, until
/// EOF or `shutdown`.
pub fn worker_main<I: IntoIterator<Item = String>>(args: I) -> i32 {
    let argv: Vec<String> = args.into_iter().collect();
    if argv.iter().any(|a| a == "--listen" || a == "--connect") {
        // Remote modes stage the faults differently: `crash` fires
        // before the bind (attributed spawn/dial failure), `hang` fires
        // after the accept (the per-run deadline's case).
        return remote_main(argv);
    }
    match std::env::var(FAULT_ENV).as_deref() {
        Ok("crash") => {
            eprintln!("kcenter-exec-worker: injected crash ({FAULT_ENV}=crash)");
            return 101;
        }
        Ok("hang") => {
            eprintln!("kcenter-exec-worker: injected hang ({FAULT_ENV}=hang)");
            std::thread::sleep(Duration::from_secs(3600));
        }
        _ => {}
    }
    let mut args = argv.into_iter().peekable();
    if args.peek().map(String::as_str) == Some("--serve") {
        return serve();
    }
    let parsed = match WorkerArgs::parse(args) {
        Ok(parsed) => parsed,
        Err(msg) => {
            eprintln!("kcenter-exec-worker: {msg}");
            return 2;
        }
    };
    match run_worker(&parsed) {
        Ok(report) => {
            println!("{}", report.to_line());
            0
        }
        Err(msg) => {
            eprintln!("kcenter-exec-worker: {msg}");
            1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcenter_metric::Euclidean;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("kcenter-exec-worker");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}", std::process::id()))
    }

    fn args_round_trip(args: &WorkerArgs) -> WorkerArgs {
        WorkerArgs::parse(args.to_args()).unwrap()
    }

    #[test]
    fn worker_args_round_trip() {
        let args = WorkerArgs {
            shard: PathBuf::from("/tmp/shard-00001.kca"),
            out: PathBuf::from("/tmp/coreset-00001.kca"),
            metric: MetricKind::CosineAngular,
            base: 23,
            spec: CoresetSpec::EpsStop { eps: 0.1 },
            start: 7,
            span: Some(42),
        };
        assert_eq!(args_round_trip(&args), args);
        let spanless = WorkerArgs { span: None, ..args };
        assert_eq!(args_round_trip(&spanless), spanless);
    }

    #[test]
    fn worker_args_reject_malformed_input() {
        let ok = WorkerArgs {
            shard: "s".into(),
            out: "o".into(),
            metric: MetricKind::Euclidean,
            base: 1,
            spec: CoresetSpec::Multiplier { mu: 1 },
            start: 0,
            span: None,
        };
        for missing in [
            "--shard", "--out", "--metric", "--base", "--spec", "--start",
        ] {
            let mut flags = ok.to_args();
            let at = flags.iter().position(|f| f == missing).unwrap();
            flags.drain(at..at + 2);
            assert!(WorkerArgs::parse(flags).is_err(), "{missing} not required");
        }
        let mut flags = ok.to_args();
        flags.push("--bogus".into());
        assert!(WorkerArgs::parse(flags).is_err());
        let mut flags = ok.to_args();
        flags.pop();
        assert!(WorkerArgs::parse(flags).is_err(), "dangling value accepted");
    }

    #[test]
    fn run_worker_matches_in_process_kernel_bitwise() {
        let points: Vec<Point> = (0..120)
            .map(|i| Point::new(vec![(i % 30) as f64, (i / 30) as f64]))
            .collect();
        let shard = tmp("kernel-shard.kca");
        let out = tmp("kernel-out.kca");
        crate::shard::write_shard(&shard, &points).unwrap();
        let args = WorkerArgs {
            shard,
            out: out.clone(),
            metric: MetricKind::Euclidean,
            base: 4,
            spec: CoresetSpec::Multiplier { mu: 2 },
            start: 3,
            span: None,
        };
        let report = run_worker(&args).unwrap();
        assert_eq!(report.points, 120);
        assert_eq!(report.coreset, 8);
        let (got_points, got_weights) = crate::shard::read_coreset_artifact(&out).unwrap();
        let reference = build_weighted_coreset(
            &points,
            &Euclidean,
            4,
            &CoresetSpec::Multiplier { mu: 2 },
            3,
        );
        assert_eq!(got_weights, reference.coreset.weights());
        for (a, b) in got_points.iter().zip(reference.coreset.points_only()) {
            for (ca, cb) in a.coords().iter().zip(b.coords()) {
                assert_eq!(ca.to_bits(), cb.to_bits());
            }
        }
    }

    #[test]
    fn merge_args_round_trip_and_reject_malformed_input() {
        let args = MergeArgs {
            left: PathBuf::from("/tmp/a.kca"),
            right: PathBuf::from("/tmp/b.kca"),
            out: PathBuf::from("/tmp/c.kca"),
            span: Some(7),
        };
        assert_eq!(MergeArgs::parse(args.to_args()).unwrap(), args);
        for missing in ["--left", "--right", "--out"] {
            let mut flags = args.to_args();
            let at = flags.iter().position(|f| f == missing).unwrap();
            flags.drain(at..at + 2);
            assert!(MergeArgs::parse(flags).is_err(), "{missing} not required");
        }
        let mut flags = args.to_args();
        flags.push("--bogus".into());
        assert!(MergeArgs::parse(flags).is_err());
    }

    #[test]
    fn run_merge_concatenates_left_then_right_bitwise() {
        let left_points = vec![Point::new(vec![1.5, -0.0]), Point::new(vec![1e-300, 2.0])];
        let right_points = vec![Point::new(vec![-7.25, 0.1])];
        let left = tmp("merge-left.kca");
        let right = tmp("merge-right.kca");
        let out = tmp("merge-out.kca");
        write_artifact_atomic(&left, &codec::encode_coreset(&left_points, &[3, 4])).unwrap();
        write_artifact_atomic(&right, &codec::encode_coreset(&right_points, &[9])).unwrap();
        let report = run_merge(&MergeArgs {
            left,
            right,
            out: out.clone(),
            span: None,
        })
        .map_err(|f| f.to_reply().join(" "))
        .unwrap();
        assert_eq!(report.points, 3);
        assert_eq!(report.coreset, 3);
        let (points, weights) = crate::shard::read_coreset_artifact(&out).unwrap();
        assert_eq!(weights, vec![3, 4, 9]);
        let expected: Vec<&Point> = left_points.iter().chain(&right_points).collect();
        for (a, b) in points.iter().zip(expected) {
            for (ca, cb) in a.coords().iter().zip(b.coords()) {
                assert_eq!(ca.to_bits(), cb.to_bits());
            }
        }
    }

    #[test]
    fn run_merge_attributes_bad_input_artifacts() {
        let good = tmp("merge-good.kca");
        let torn = tmp("merge-torn.kca");
        let out = tmp("merge-err-out.kca");
        let bytes = codec::encode_coreset(&[Point::new(vec![1.0])], &[1]);
        write_artifact_atomic(&good, &bytes).unwrap();
        std::fs::write(&torn, &bytes[..bytes.len() / 2]).unwrap();
        let failure = run_merge(&MergeArgs {
            left: good,
            right: torn.clone(),
            out,
            span: None,
        })
        .expect_err("torn input must fail");
        match failure {
            JobFailure::BadArtifact { path, .. } => assert_eq!(path, torn),
            JobFailure::Other(msg) => panic!("expected artifact attribution, got {msg:?}"),
        }
    }

    #[test]
    fn run_worker_rejects_bad_inputs_cleanly() {
        let shard = tmp("bad-shard.kca");
        let out = tmp("bad-out.kca");
        crate::shard::write_shard(&shard, &[Point::new(vec![1.0]), Point::new(vec![2.0])]).unwrap();
        let base = WorkerArgs {
            shard: shard.clone(),
            out,
            metric: MetricKind::Euclidean,
            base: 1,
            spec: CoresetSpec::Multiplier { mu: 1 },
            start: 0,
            span: None,
        };
        let missing = WorkerArgs {
            shard: "/nonexistent/shard.kca".into(),
            ..base.clone()
        };
        assert!(run_worker(&missing).is_err());
        let out_of_range = WorkerArgs {
            start: 2,
            ..base.clone()
        };
        assert!(run_worker(&out_of_range)
            .unwrap_err()
            .contains("out of range"));
        let zero_base = WorkerArgs { base: 0, ..base };
        assert!(run_worker(&zero_base).is_err());
    }
}
