//! The worker half of the executor: what runs inside each spawned process.
//!
//! A worker is the multi-process counterpart of one round-1 reducer: it
//! loads its shard (mmap-backed where available), runs the **same**
//! weighted-coreset kernel the in-process engines call
//! ([`build_weighted_coreset`]) with the start index the coordinator
//! derived from the engine's seeded rule, and atomically writes the
//! weighted coreset back through the store codec. Determinism across the
//! process boundary therefore reduces to determinism of the shared kernel
//! — which is chunk-order invariant under any thread count (pinned by the
//! fig-golden suite), so each worker is free to size its own rayon pool
//! (`RAYON_NUM_THREADS` is honoured per process).
//!
//! Binaries expose the worker by delegating a hidden subcommand to
//! [`worker_main`]; the CLI's is `kcenter worker …`, the bench harness
//! re-invokes itself with `exec-worker …`, and the crate ships a
//! standalone `kcenter-exec-worker` binary for the process-level tests.
//!
//! # Fault injection (tests only)
//!
//! The environment variable `KCENTER_EXEC_FAULT` makes a worker misbehave
//! on purpose so the coordinator's failure handling can be pinned by
//! tests: `crash` exits non-zero before doing any work, `truncate` writes
//! half of the result artifact, `hang` sleeps far past any reasonable
//! timeout, and `crash-job:N` lets a persistent worker serve `N-1` jobs
//! normally and then die mid-stream on the `N`th without replying — the
//! kill-mid-stream case the fleet must contain by respawn + replay.
//! Production coordinators never set it.

use std::path::PathBuf;
use std::time::Instant;

use kcenter_core::coreset::{build_weighted_coreset, CoresetSpec};
use kcenter_metric::{Metric, Point, PointRef};
use kcenter_store::codec;

use crate::protocol::{parse_spec, read_frame, write_frame, MetricKind, WorkerReport};
use crate::shard::{read_coreset_artifact, read_shard_set, write_artifact_atomic};
use crate::with_metric;

/// Environment variable enabling deliberate worker misbehaviour in tests.
pub const FAULT_ENV: &str = "KCENTER_EXEC_FAULT";

/// A parsed worker invocation.
#[derive(Clone, Debug, PartialEq)]
pub struct WorkerArgs {
    /// Input shard file.
    pub shard: PathBuf,
    /// Output artifact path (weighted coreset).
    pub out: PathBuf,
    /// Metric to price distances with.
    pub metric: MetricKind,
    /// Coreset base for this partition (already clamped by the
    /// coordinator to the partition size where the algorithm requires it).
    pub base: usize,
    /// Coreset sizing rule.
    pub spec: CoresetSpec,
    /// GMM start index within the shard.
    pub start: usize,
}

impl WorkerArgs {
    /// The flag list a coordinator appends to its worker command.
    pub fn to_args(&self) -> Vec<String> {
        vec![
            "--shard".into(),
            self.shard.to_string_lossy().into_owned(),
            "--out".into(),
            self.out.to_string_lossy().into_owned(),
            "--metric".into(),
            self.metric.name().into(),
            "--base".into(),
            self.base.to_string(),
            "--spec".into(),
            crate::protocol::format_spec(&self.spec),
            "--start".into(),
            self.start.to_string(),
        ]
    }

    /// Parses the flag list (the reverse of [`WorkerArgs::to_args`]).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for unknown flags, missing values,
    /// or malformed numbers — printed to the worker's stderr, which the
    /// coordinator captures into its failure report.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<WorkerArgs, String> {
        let mut shard = None;
        let mut out = None;
        let mut metric = None;
        let mut base = None;
        let mut spec = None;
        let mut start = None;
        let mut iter = args.into_iter();
        while let Some(flag) = iter.next() {
            let mut value = || {
                iter.next()
                    .ok_or_else(|| format!("{flag} requires a value"))
            };
            match flag.as_str() {
                "--shard" => shard = Some(PathBuf::from(value()?)),
                "--out" => out = Some(PathBuf::from(value()?)),
                "--metric" => {
                    let v = value()?;
                    metric =
                        Some(MetricKind::parse(&v).ok_or_else(|| format!("unknown metric {v:?}"))?)
                }
                "--base" => {
                    let v = value()?;
                    base = Some(v.parse().map_err(|_| format!("bad --base {v:?}"))?)
                }
                "--spec" => {
                    let v = value()?;
                    spec = Some(parse_spec(&v).ok_or_else(|| format!("bad --spec {v:?}"))?)
                }
                "--start" => {
                    let v = value()?;
                    start = Some(v.parse().map_err(|_| format!("bad --start {v:?}"))?)
                }
                other => return Err(format!("unknown worker flag {other:?}")),
            }
        }
        Ok(WorkerArgs {
            shard: shard.ok_or("worker requires --shard")?,
            out: out.ok_or("worker requires --out")?,
            metric: metric.ok_or("worker requires --metric")?,
            base: base.ok_or("worker requires --base")?,
            spec: spec.ok_or("worker requires --spec")?,
            start: start.ok_or("worker requires --start")?,
        })
    }
}

/// Runs one worker: shard in, weighted-coreset artifact out.
///
/// # Errors
///
/// Returns a message describing the failure (unreadable/corrupt shard,
/// out-of-range start, unwritable output).
pub fn run_worker(args: &WorkerArgs) -> Result<WorkerReport, String> {
    let started = Instant::now();
    // The shard is viewed as a `PointSet` — on the mmap path the kernel
    // reads coordinates straight out of the page cache (zero copies); the
    // `PointRef` views are 16-byte fat pointers into that block.
    let set = read_shard_set(&args.shard).map_err(|e| e.to_string())?;
    if set.is_empty() {
        return Err("shard holds no points (empty partitions are not dispatched)".into());
    }
    if args.start >= set.len() {
        return Err(format!(
            "start index {} out of range for {} points",
            args.start,
            set.len()
        ));
    }
    if args.base == 0 {
        return Err("coreset base must be positive".into());
    }
    let points: Vec<PointRef<'_>> = set.iter().collect();
    let (coreset_points, weights) = with_metric!(args.metric, metric => {
        build_round1_coreset(&points, metric, args.base, &args.spec, args.start)
    });
    let bytes = codec::encode_coreset(&coreset_points, &weights);
    if let Ok(fault) = std::env::var(FAULT_ENV) {
        if fault == "truncate" {
            // Deliberately leave a torn artifact at the final path: the
            // coordinator must classify it as BadArtifact, never hang or
            // panic.
            std::fs::write(&args.out, &bytes[..bytes.len() / 2])
                .map_err(|e| format!("cannot write truncated artifact: {e}"))?;
            return Ok(WorkerReport {
                points: points.len(),
                coreset: coreset_points.len(),
                build_micros: started.elapsed().as_micros() as u64,
            });
        }
    }
    write_artifact_atomic(&args.out, &bytes)
        .map_err(|e| format!("cannot write artifact {}: {e}", args.out.display()))?;
    Ok(WorkerReport {
        points: points.len(),
        coreset: coreset_points.len(),
        build_micros: started.elapsed().as_micros() as u64,
    })
}

/// The round-1 kernel, shared verbatim with the in-process engines:
/// [`build_weighted_coreset`] on the shard's `PointRef` views (so the
/// GMM scan runs the block kernels over the mapped coordinate block),
/// coreset points materialized as owned [`Point`]s only at the artifact
/// boundary, weights split into the parallel array.
fn build_round1_coreset<'a, M: Metric<PointRef<'a>>>(
    points: &[PointRef<'a>],
    metric: &M,
    base: usize,
    spec: &CoresetSpec,
    start: usize,
) -> (Vec<Point>, Vec<u64>) {
    let build = build_weighted_coreset(points, metric, base, spec, start);
    let mut coreset_points = Vec::with_capacity(build.coreset.len());
    let mut weights = Vec::with_capacity(build.coreset.len());
    for wp in build.coreset.points {
        coreset_points.push(wp.point.to_point());
        weights.push(wp.weight);
    }
    (coreset_points, weights)
}

/// A parsed merge invocation: compose two coreset artifacts into one.
#[derive(Clone, Debug, PartialEq)]
pub struct MergeArgs {
    /// Left input artifact (earlier partitions).
    pub left: PathBuf,
    /// Right input artifact (later partitions).
    pub right: PathBuf,
    /// Output artifact path.
    pub out: PathBuf,
}

impl MergeArgs {
    /// The flag list a coordinator puts in a `merge` request frame.
    pub fn to_args(&self) -> Vec<String> {
        vec![
            "--left".into(),
            self.left.to_string_lossy().into_owned(),
            "--right".into(),
            self.right.to_string_lossy().into_owned(),
            "--out".into(),
            self.out.to_string_lossy().into_owned(),
        ]
    }

    /// Parses the flag list (the reverse of [`MergeArgs::to_args`]).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<MergeArgs, String> {
        let mut left = None;
        let mut right = None;
        let mut out = None;
        let mut iter = args.into_iter();
        while let Some(flag) = iter.next() {
            let mut value = || {
                iter.next()
                    .ok_or_else(|| format!("{flag} requires a value"))
            };
            match flag.as_str() {
                "--left" => left = Some(PathBuf::from(value()?)),
                "--right" => right = Some(PathBuf::from(value()?)),
                "--out" => out = Some(PathBuf::from(value()?)),
                other => return Err(format!("unknown merge flag {other:?}")),
            }
        }
        Ok(MergeArgs {
            left: left.ok_or("merge requires --left")?,
            right: right.ok_or("merge requires --right")?,
            out: out.ok_or("merge requires --out")?,
        })
    }
}

/// Why a serve-mode job failed, shaped for the reply frame.
enum JobFailure {
    /// An *input* artifact did not decode — the coordinator attributes
    /// this to the partition that produced it, exactly like a bad
    /// artifact it read itself.
    BadArtifact { path: PathBuf, reason: String },
    /// Anything else (bad flags, unwritable output, …).
    Other(String),
}

impl JobFailure {
    fn to_reply(&self) -> Vec<String> {
        match self {
            JobFailure::BadArtifact { path, reason } => vec![
                "err-artifact".into(),
                path.to_string_lossy().into_owned(),
                reason.clone(),
            ],
            JobFailure::Other(msg) => vec!["err".into(), msg.clone()],
        }
    }
}

/// Runs one merge job: reads both weighted-coreset artifacts, composes
/// them left-then-right (order-preserving concatenation — the composition
/// law that makes the reduction tree bit-identical to a flat round 2),
/// and atomically writes the union artifact.
fn run_merge(args: &MergeArgs) -> Result<WorkerReport, JobFailure> {
    let started = Instant::now();
    let read = |path: &PathBuf| {
        read_coreset_artifact(path).map_err(|err| JobFailure::BadArtifact {
            path: path.clone(),
            reason: err.to_string(),
        })
    };
    let (mut points, mut weights) = read(&args.left)?;
    let (right_points, right_weights) = read(&args.right)?;
    let inputs = points.len() + right_points.len();
    points.extend(right_points);
    weights.extend(right_weights);
    let bytes = codec::encode_coreset(&points, &weights);
    write_artifact_atomic(&args.out, &bytes).map_err(|e| {
        JobFailure::Other(format!("cannot write artifact {}: {e}", args.out.display()))
    })?;
    Ok(WorkerReport {
        points: inputs,
        coreset: points.len(),
        build_micros: started.elapsed().as_micros() as u64,
    })
}

/// The persistent-worker loop: serves framed job requests on
/// stdin/stdout until a clean EOF or a `shutdown` request.
///
/// Protocol errors (torn frames, unwritable stdout) end the process with
/// a distinct exit code; the coordinator observes the death and contains
/// it like any other worker failure.
fn serve() -> i32 {
    // `crash-job:N`: die mid-stream on the N-th job without replying —
    // the respawned replacement restarts its counter, so the replayed
    // job succeeds and the fleet's containment is observable end to end.
    let crash_on_job: Option<u64> = std::env::var(FAULT_ENV)
        .ok()
        .and_then(|f| f.strip_prefix("crash-job:")?.parse().ok());
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut input = stdin.lock();
    let mut output = stdout.lock();
    let mut jobs_served = 0u64;
    loop {
        let parts = match read_frame(&mut input) {
            Ok(Some(parts)) => parts,
            Ok(None) => return 0, // coordinator hung up
            Err(err) => {
                eprintln!("kcenter-exec-worker: bad request frame: {err}");
                return 3;
            }
        };
        let verb = parts.first().map(String::as_str).unwrap_or("");
        let reply = match verb {
            "shutdown" => return 0,
            "probe" => match parts.get(1) {
                Some(var) => match std::env::var(var) {
                    Ok(value) => vec!["ok".into(), "set".into(), value],
                    Err(_) => vec!["ok".into(), "unset".into()],
                },
                None => vec!["err".into(), "probe requires a variable name".into()],
            },
            "coreset" | "merge" => {
                jobs_served += 1;
                if crash_on_job == Some(jobs_served) {
                    eprintln!(
                        "kcenter-exec-worker: injected crash ({FAULT_ENV}=crash-job:{jobs_served})"
                    );
                    return 101;
                }
                let flags = parts[1..].to_vec();
                if verb == "coreset" {
                    match WorkerArgs::parse(flags).map_err(JobFailure::Other) {
                        Ok(args) => match run_worker(&args) {
                            Ok(report) => report.to_reply(),
                            Err(msg) => JobFailure::Other(msg).to_reply(),
                        },
                        Err(failure) => failure.to_reply(),
                    }
                } else {
                    match MergeArgs::parse(flags).map_err(JobFailure::Other) {
                        Ok(args) => match run_merge(&args) {
                            Ok(report) => report.to_reply(),
                            Err(failure) => failure.to_reply(),
                        },
                        Err(failure) => failure.to_reply(),
                    }
                }
            }
            other => vec!["err".into(), format!("unknown request verb {other:?}")],
        };
        if let Err(err) = write_frame(&mut output, &reply) {
            eprintln!("kcenter-exec-worker: cannot write reply frame: {err}");
            return 3;
        }
    }
}

/// Full worker entry point for binaries: parses flags, applies the fault
/// hooks, runs the build, prints the report line, and returns the process
/// exit code (0 on success).
///
/// `--serve` as the first argument enters the persistent-worker loop
/// instead: framed requests on stdin, framed replies on stdout, until
/// EOF or `shutdown`.
pub fn worker_main<I: IntoIterator<Item = String>>(args: I) -> i32 {
    match std::env::var(FAULT_ENV).as_deref() {
        Ok("crash") => {
            eprintln!("kcenter-exec-worker: injected crash ({FAULT_ENV}=crash)");
            return 101;
        }
        Ok("hang") => {
            eprintln!("kcenter-exec-worker: injected hang ({FAULT_ENV}=hang)");
            std::thread::sleep(std::time::Duration::from_secs(3600));
        }
        _ => {}
    }
    let mut args = args.into_iter().peekable();
    if args.peek().map(String::as_str) == Some("--serve") {
        return serve();
    }
    let parsed = match WorkerArgs::parse(args) {
        Ok(parsed) => parsed,
        Err(msg) => {
            eprintln!("kcenter-exec-worker: {msg}");
            return 2;
        }
    };
    match run_worker(&parsed) {
        Ok(report) => {
            println!("{}", report.to_line());
            0
        }
        Err(msg) => {
            eprintln!("kcenter-exec-worker: {msg}");
            1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcenter_metric::Euclidean;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("kcenter-exec-worker");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}", std::process::id()))
    }

    fn args_round_trip(args: &WorkerArgs) -> WorkerArgs {
        WorkerArgs::parse(args.to_args()).unwrap()
    }

    #[test]
    fn worker_args_round_trip() {
        let args = WorkerArgs {
            shard: PathBuf::from("/tmp/shard-00001.kca"),
            out: PathBuf::from("/tmp/coreset-00001.kca"),
            metric: MetricKind::CosineAngular,
            base: 23,
            spec: CoresetSpec::EpsStop { eps: 0.1 },
            start: 7,
        };
        assert_eq!(args_round_trip(&args), args);
    }

    #[test]
    fn worker_args_reject_malformed_input() {
        let ok = WorkerArgs {
            shard: "s".into(),
            out: "o".into(),
            metric: MetricKind::Euclidean,
            base: 1,
            spec: CoresetSpec::Multiplier { mu: 1 },
            start: 0,
        };
        for missing in [
            "--shard", "--out", "--metric", "--base", "--spec", "--start",
        ] {
            let mut flags = ok.to_args();
            let at = flags.iter().position(|f| f == missing).unwrap();
            flags.drain(at..at + 2);
            assert!(WorkerArgs::parse(flags).is_err(), "{missing} not required");
        }
        let mut flags = ok.to_args();
        flags.push("--bogus".into());
        assert!(WorkerArgs::parse(flags).is_err());
        let mut flags = ok.to_args();
        flags.pop();
        assert!(WorkerArgs::parse(flags).is_err(), "dangling value accepted");
    }

    #[test]
    fn run_worker_matches_in_process_kernel_bitwise() {
        let points: Vec<Point> = (0..120)
            .map(|i| Point::new(vec![(i % 30) as f64, (i / 30) as f64]))
            .collect();
        let shard = tmp("kernel-shard.kca");
        let out = tmp("kernel-out.kca");
        crate::shard::write_shard(&shard, &points).unwrap();
        let args = WorkerArgs {
            shard,
            out: out.clone(),
            metric: MetricKind::Euclidean,
            base: 4,
            spec: CoresetSpec::Multiplier { mu: 2 },
            start: 3,
        };
        let report = run_worker(&args).unwrap();
        assert_eq!(report.points, 120);
        assert_eq!(report.coreset, 8);
        let (got_points, got_weights) = crate::shard::read_coreset_artifact(&out).unwrap();
        let reference = build_weighted_coreset(
            &points,
            &Euclidean,
            4,
            &CoresetSpec::Multiplier { mu: 2 },
            3,
        );
        assert_eq!(got_weights, reference.coreset.weights());
        for (a, b) in got_points.iter().zip(reference.coreset.points_only()) {
            for (ca, cb) in a.coords().iter().zip(b.coords()) {
                assert_eq!(ca.to_bits(), cb.to_bits());
            }
        }
    }

    #[test]
    fn merge_args_round_trip_and_reject_malformed_input() {
        let args = MergeArgs {
            left: PathBuf::from("/tmp/a.kca"),
            right: PathBuf::from("/tmp/b.kca"),
            out: PathBuf::from("/tmp/c.kca"),
        };
        assert_eq!(MergeArgs::parse(args.to_args()).unwrap(), args);
        for missing in ["--left", "--right", "--out"] {
            let mut flags = args.to_args();
            let at = flags.iter().position(|f| f == missing).unwrap();
            flags.drain(at..at + 2);
            assert!(MergeArgs::parse(flags).is_err(), "{missing} not required");
        }
        let mut flags = args.to_args();
        flags.push("--bogus".into());
        assert!(MergeArgs::parse(flags).is_err());
    }

    #[test]
    fn run_merge_concatenates_left_then_right_bitwise() {
        let left_points = vec![Point::new(vec![1.5, -0.0]), Point::new(vec![1e-300, 2.0])];
        let right_points = vec![Point::new(vec![-7.25, 0.1])];
        let left = tmp("merge-left.kca");
        let right = tmp("merge-right.kca");
        let out = tmp("merge-out.kca");
        write_artifact_atomic(&left, &codec::encode_coreset(&left_points, &[3, 4])).unwrap();
        write_artifact_atomic(&right, &codec::encode_coreset(&right_points, &[9])).unwrap();
        let report = run_merge(&MergeArgs {
            left,
            right,
            out: out.clone(),
        })
        .map_err(|f| f.to_reply().join(" "))
        .unwrap();
        assert_eq!(report.points, 3);
        assert_eq!(report.coreset, 3);
        let (points, weights) = crate::shard::read_coreset_artifact(&out).unwrap();
        assert_eq!(weights, vec![3, 4, 9]);
        let expected: Vec<&Point> = left_points.iter().chain(&right_points).collect();
        for (a, b) in points.iter().zip(expected) {
            for (ca, cb) in a.coords().iter().zip(b.coords()) {
                assert_eq!(ca.to_bits(), cb.to_bits());
            }
        }
    }

    #[test]
    fn run_merge_attributes_bad_input_artifacts() {
        let good = tmp("merge-good.kca");
        let torn = tmp("merge-torn.kca");
        let out = tmp("merge-err-out.kca");
        let bytes = codec::encode_coreset(&[Point::new(vec![1.0])], &[1]);
        write_artifact_atomic(&good, &bytes).unwrap();
        std::fs::write(&torn, &bytes[..bytes.len() / 2]).unwrap();
        let failure = run_merge(&MergeArgs {
            left: good,
            right: torn.clone(),
            out,
        })
        .expect_err("torn input must fail");
        match failure {
            JobFailure::BadArtifact { path, .. } => assert_eq!(path, torn),
            JobFailure::Other(msg) => panic!("expected artifact attribution, got {msg:?}"),
        }
    }

    #[test]
    fn run_worker_rejects_bad_inputs_cleanly() {
        let shard = tmp("bad-shard.kca");
        let out = tmp("bad-out.kca");
        crate::shard::write_shard(&shard, &[Point::new(vec![1.0]), Point::new(vec![2.0])]).unwrap();
        let base = WorkerArgs {
            shard: shard.clone(),
            out,
            metric: MetricKind::Euclidean,
            base: 1,
            spec: CoresetSpec::Multiplier { mu: 1 },
            start: 0,
        };
        let missing = WorkerArgs {
            shard: "/nonexistent/shard.kca".into(),
            ..base.clone()
        };
        assert!(run_worker(&missing).is_err());
        let out_of_range = WorkerArgs {
            start: 2,
            ..base.clone()
        };
        assert!(run_worker(&out_of_range)
            .unwrap_err()
            .contains("out of range"));
        let zero_base = WorkerArgs { base: 0, ..base };
        assert!(run_worker(&zero_base).is_err());
    }
}
