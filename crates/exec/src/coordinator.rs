//! The coordinator: shards a dataset, schedules jobs onto a persistent
//! worker fleet, and reduces their results — bit-identical to the
//! in-process engines.
//!
//! Execution mirrors the paper's 2-round structure end to end:
//!
//! 1. **Shard.** The input is partitioned with exactly the engine's
//!    partitioner (`Chunked`, seeded random, or adversarial) and each
//!    non-empty partition becomes a shard file — freshly written into the
//!    work directory, or **reused from the artifact store** when a
//!    content-addressed entry for the identical partition already exists
//!    (a seeded re-run performs zero shard writes).
//! 2. **Round 1, out of process.** Partitions are queued onto a
//!    [`WorkerFleet`] of long-lived workers speaking the framed
//!    request/response protocol (`docs/PROTOCOL.md`) over a pluggable
//!    [`Transport`] — child-process pipes
//!    by default, or TCP to workers started independently on this or
//!    other hosts. The fleet is bounded (`--procs ≫ cores` queues
//!    instead of oversubscribing), reused across rounds and across
//!    repeated runs (spawn + rayon pool warmup amortized), and
//!    self-healing: a worker that dies mid-job is respawned (pipe) or
//!    reconnected with bounded backoff (TCP) and the job replayed.
//!    Every connection opens with a protocol `hello` carrying version +
//!    configuration fingerprints, so a mismatched worker is rejected
//!    with an attributed error instead of an undefined merge.
//! 3. **Round 2, as a reduction tree.** Coreset artifacts compose
//!    **pairwise on workers** up a tree — adjacent nodes merge, the odd
//!    node carries forward — until one root artifact remains; only that
//!    root is read by the coordinator, so coordinator-resident state is
//!    independent of the partition count. Composition is order-preserving
//!    concatenation in partition-index order, which is associative, so
//!    the tree's union is **bit-identical** to the flat all-at-once
//!    collection. The final solve runs on the root union through the
//!    existing round-2 paths (`gmm_select`, or the radius search over a
//!    [`CachedOracle`]).
//!
//! **Determinism.** Every stage is bitwise deterministic: partitioning is
//! seeded, the round-1 kernel is chunk-order invariant under any thread
//! count, the codec round-trips `f64`s by bit pattern, and both the
//! collection order and the reduction-tree shape are fixed by partition
//! index. The cross-check tests (and the `exec-determinism` CI job)
//! assert the final centers and radius are **bit-identical** to
//! [`mr_kcenter`] / [`mr_kcenter_outliers`] on the same input — fresh
//! fleet or reused, cold shards or cached.
//!
//! [`mr_kcenter`]: kcenter_core::mapreduce_kcenter::mr_kcenter
//! [`mr_kcenter_outliers`]: kcenter_core::mapreduce_outliers::mr_kcenter_outliers
//!
//! **Failure handling.** A worker that exits non-zero, dies on a signal,
//! overruns the timeout, or produces/consumes a truncated artifact
//! surfaces as a clean [`ExecError`] with the offending partition
//! attributed; mid-job death is first contained by respawn + replay and
//! only becomes an error once the retry budget is exhausted. On any
//! error the fleet is torn down and the work directory removed (unless
//! kept for debugging).
//!
//! **Environment hygiene.** Workers inherit the coordinator's
//! environment *minus* `KCENTER_EXEC_FAULT` and `KCENTER_CACHE_DIR`:
//! fault injection must be asked for, and a fleet worker silently
//! opening the ambient artifact cache would diverge in accounting from
//! the in-process engines. Tests (and deliberate deployments) opt back
//! in through [`WorkerCommand::env`], which is applied after the strip.

use std::collections::VecDeque;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::time::{Duration, Instant};

use kcenter_core::coreset::{CoresetSpec, WeightedCoreset, WeightedPoint};
use kcenter_core::gmm::gmm_select;
use kcenter_core::mapreduce_kcenter::MrKCenterConfig;
use kcenter_core::mapreduce_outliers::MrOutliersConfig;
use kcenter_core::radius_search::solve_coreset_cached;
use kcenter_core::solution::{radius, radius_with_outliers};
use kcenter_core::Clustering;
use kcenter_mapreduce::{partition_dataset, Chunked};
use kcenter_metric::{CachedOracle, Fingerprint, Point};
use kcenter_store::{ArtifactKind, ArtifactStore};

use crate::error::ExecError;
use crate::protocol::{hello_request, parse_hello_ack, MetricKind, WorkerReport, WorkerTelemetry};
use crate::shard::{read_coreset_artifact, read_shard_set, write_shard};
use crate::transport::{
    FrameTx, LinkControl, PipeTransport, TcpAcceptTransport, TcpDialTransport, Transport,
    TransportSpec,
};
use crate::with_metric;
use crate::worker::{MergeArgs, WorkerArgs};

pub use crate::transport::WorkerCommand;

/// Per-process sequence for unique work-directory names.
static RUN_SEQ: AtomicU64 = AtomicU64::new(0);

/// Fingerprint domain for content-addressed shard entries. The key folds
/// the partition's own coordinates, so identical partitions (same
/// dataset, same partitioner, same seed) land on the same entry and the
/// entry is self-describing — a cache hit *is* the shard.
const SHARD_FINGERPRINT_DOMAIN: &str = "kcenter-exec/shard/v1";

/// Multi-process execution options.
#[derive(Clone, Debug)]
pub struct ExecConfig {
    /// How to spawn workers.
    pub worker: WorkerCommand,
    /// Work directory for shards and result artifacts. `None` creates a
    /// unique directory under the system temp dir.
    pub work_dir: Option<PathBuf>,
    /// Per-run wall-clock limit: if any job is still outstanding when it
    /// elapses, the fleet is killed and the run fails cleanly.
    pub timeout: Duration,
    /// Keep the work directory (for debugging) instead of removing it.
    pub keep_work_dir: bool,
    /// Fleet size cap. `None` sizes the fleet to the machine
    /// (`available_parallelism`), so `--procs ≫ cores` queues partitions
    /// onto a fixed fleet instead of oversubscribing the box.
    pub max_workers: Option<usize>,
    /// Content-addressed shard reuse: when set, partition shards are
    /// stored in (and served from) this artifact store instead of being
    /// rewritten into the work directory on every run. A seeded re-run
    /// performs **zero** shard writes ([`ExecReport::shard_writes`]).
    pub shard_store: Option<ArtifactStore>,
    /// How many times a job is replayed after its worker dies mid-job
    /// before the run fails. A worker that *reports* an error (as opposed
    /// to dying) fails the run immediately — errors are deterministic,
    /// deaths may not be.
    pub job_retries: usize,
    /// Which transport carries the frames: child-process pipes (the
    /// default, using [`ExecConfig::worker`]) or TCP to independently
    /// started workers. Results are bit-identical across backends.
    pub transport: TransportSpec,
    /// Configuration fingerprint announced in the protocol `hello`. A
    /// worker pinned (via `--pin-config`) to a different fingerprint —
    /// or to any fingerprint, when this is `None` — rejects the
    /// handshake and the run fails with an attributed
    /// [`ExecError::HelloRejected`].
    pub config_fingerprint: Option<u128>,
}

impl ExecConfig {
    /// Options with the default timeout (10 minutes), a fresh temp work
    /// directory, a machine-sized fleet, no shard store, and 2 replays.
    pub fn new(worker: WorkerCommand) -> ExecConfig {
        ExecConfig {
            worker,
            work_dir: None,
            timeout: Duration::from_secs(600),
            keep_work_dir: false,
            max_workers: None,
            shard_store: None,
            job_retries: 2,
            transport: TransportSpec::Pipe,
            config_fingerprint: None,
        }
    }
}

/// Per-partition accounting (one entry per round-1 job, whatever worker
/// process ended up running it).
#[derive(Clone, Debug)]
pub struct WorkerStat {
    /// Partition the job processed.
    pub partition: usize,
    /// Points in its shard.
    pub shard_points: usize,
    /// Coreset points it produced.
    pub coreset_size: usize,
    /// Dispatch-to-reply wall clock, measured by the coordinator.
    pub wall: Duration,
    /// In-worker build wall clock (shard load → artifact rename), as
    /// reported by the worker itself.
    pub build: Duration,
}

/// Execution accounting shared by both algorithms.
#[derive(Clone, Debug, Default)]
pub struct ExecReport {
    /// Size of each non-empty partition's coreset, in partition order.
    pub coreset_sizes: Vec<usize>,
    /// `|T|`, the size of the reduction tree's root union.
    pub union_size: usize,
    /// Per-partition accounting, in partition order.
    pub workers: Vec<WorkerStat>,
    /// Wall clock of round 1 (shard + schedule + reduce to the root).
    pub round1_time: Duration,
    /// Wall clock of round 2 (solve on the union).
    pub round2_time: Duration,
    /// Shard files written this run (0 on a warm content-addressed run).
    pub shard_writes: usize,
    /// Partitions served from an existing store entry without a write.
    pub shard_reuses: usize,
    /// Worker processes spawned during this run; 0 when a warm fleet
    /// already had every worker it needed.
    pub workers_spawned: usize,
    /// Workers respawned after dying mid-job (replays, not new work).
    pub worker_respawns: usize,
    /// Remote connections re-established after a loss during this run
    /// (always 0 on the pipe transport, which respawns processes
    /// instead).
    pub reconnects: usize,
    /// Pairwise merge jobs executed up the reduction tree.
    pub merge_jobs: usize,
}

/// Result of a multi-process k-center run (the executor's counterpart of
/// [`kcenter_core::mapreduce_kcenter::MrKCenterResult`]).
#[derive(Clone, Debug)]
pub struct ExecKCenterResult {
    /// Final centers and the radius they achieve on the full input.
    pub clustering: Clustering<Point>,
    /// Execution accounting.
    pub report: ExecReport,
}

/// Result of a multi-process k-center-with-outliers run (the executor's
/// counterpart of [`kcenter_core::mapreduce_outliers::MrOutliersResult`]).
#[derive(Clone, Debug)]
pub struct ExecOutliersResult {
    /// Final centers and the objective `r_{T,Z_T}(S)` on the full input.
    pub clustering: Clustering<Point>,
    /// The radius found on the coreset by the search.
    pub r_min: f64,
    /// Weight left uncovered on the coreset at `r_min`.
    pub uncovered_weight: u64,
    /// Coreset base used per partition (before per-partition clamping).
    pub base: usize,
    /// `OutliersCluster` evaluations in the radius search.
    pub search_evaluations: usize,
    /// Execution accounting.
    pub report: ExecReport,
}

/// Removes the work directory on drop unless told to keep it.
struct WorkDirGuard {
    path: PathBuf,
    keep: bool,
}

impl Drop for WorkDirGuard {
    fn drop(&mut self) {
        if !self.keep {
            let _ = std::fs::remove_dir_all(&self.path);
        }
    }
}

/// What a worker's reader thread feeds the scheduling loop.
enum FleetEvent {
    /// One complete reply frame from the identified worker.
    Frame { worker: u64, parts: Vec<String> },
    /// The worker's reply stream ended (clean EOF, torn frame, or an
    /// expired read deadline): the link is dead. The scheduler reaps it
    /// and replays its job.
    Eof { worker: u64 },
}

/// One live worker link under fleet supervision.
struct FleetWorker {
    /// Fleet-unique id, so stale events from reaped workers are ignored.
    id: u64,
    /// Request channel; `None` once shutdown closed it.
    tx: Option<Box<dyn FrameTx>>,
    /// Liveness and teardown for this link.
    control: Box<dyn LinkControl>,
    /// Whether the `hello` sent at connect time is still unacknowledged;
    /// the first frame from such a worker must be a valid hello ack.
    awaiting_hello: bool,
    /// Index of the job this worker is running, if any.
    busy_with: Option<usize>,
    /// When the current job was dispatched.
    dispatched: Instant,
}

/// One request destined for the fleet, with the metadata needed to
/// attribute its failures.
struct FleetJob {
    /// Partition charged with this job's failures (for merges: the first
    /// partition under the tree node).
    partition: usize,
    /// The request frame.
    request: Vec<String>,
    /// Input artifacts by producing partition: a worker's
    /// `err-artifact` reply is matched against these paths so a torn
    /// round-1 artifact discovered by a *merge* worker is attributed to
    /// the partition that wrote it.
    inputs: Vec<(String, usize)>,
    /// Trace span context carried by the request (`--span`): the parent
    /// under which the coordinator records this job's merged worker span.
    span: Option<u64>,
}

/// A persistent, bounded fleet of workers behind a [`Transport`].
///
/// Workers are connected lazily up to the cap, kept alive across jobs,
/// rounds, and runs (hand the same fleet to [`exec_mr_kcenter_on`] /
/// [`exec_mr_outliers_on`] to amortize spawn + pool warmup), and torn
/// down on [`WorkerFleet::shutdown`] or drop. A worker that dies mid-job
/// is reaped and its job replayed on a fresh link — a respawned child
/// process on the pipe backend, a reconnect-with-backoff on TCP — up to
/// the configured retry budget.
///
/// Every new link opens with the protocol `hello`; the first frame back
/// must be a valid ack or the run fails with an attributed
/// [`ExecError::HelloRejected`].
pub struct WorkerFleet {
    transport: Box<dyn Transport>,
    cap: usize,
    hello_config: Option<u128>,
    workers: Vec<FleetWorker>,
    tx: mpsc::Sender<FleetEvent>,
    rx: mpsc::Receiver<FleetEvent>,
    next_id: u64,
    spawned_total: usize,
    respawned_total: usize,
}

impl WorkerFleet {
    /// A pipe-backed fleet that spawns workers with `command`, capped at
    /// `max_workers` (`None` = the machine's `available_parallelism`).
    pub fn new(command: WorkerCommand, max_workers: Option<usize>) -> WorkerFleet {
        WorkerFleet::with_transport(Box::new(PipeTransport::new(command)), max_workers)
    }

    /// A fleet over an explicit transport backend, capped at
    /// `max_workers` (`None` = the machine's `available_parallelism`).
    pub fn with_transport(
        transport: Box<dyn Transport>,
        max_workers: Option<usize>,
    ) -> WorkerFleet {
        let cap = max_workers
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
            .max(1);
        let (tx, rx) = mpsc::channel();
        WorkerFleet {
            transport,
            cap,
            hello_config: None,
            workers: Vec::new(),
            tx,
            rx,
            next_id: 0,
            spawned_total: 0,
            respawned_total: 0,
        }
    }

    /// A fleet sized, commanded, and transported per `exec` (the shape
    /// the one-shot entry points use). The TCP dial backend caps the
    /// fleet at its address count; a bad `TcpAccept` bind address
    /// surfaces as a spawn error on the first run, not here.
    pub fn from_config(exec: &ExecConfig) -> WorkerFleet {
        // Frame-level deadlines for remote links: a read may legitimately
        // wait as long as the longest job, so the read deadline tracks
        // the run timeout with headroom; writes are small and must never
        // stall long.
        let read_deadline = Some(exec.timeout + Duration::from_secs(5));
        let write_deadline = Some(Duration::from_secs(30));
        let mut fleet = match &exec.transport {
            TransportSpec::Pipe => WorkerFleet::new(exec.worker.clone(), exec.max_workers),
            TransportSpec::TcpConnect { addrs } => {
                let cap = exec.max_workers.unwrap_or(addrs.len()).min(addrs.len());
                let transport = TcpDialTransport::new(addrs.clone())
                    .with_deadlines(read_deadline, write_deadline);
                WorkerFleet::with_transport(Box::new(transport), Some(cap.max(1)))
            }
            TransportSpec::TcpAccept { bind } => {
                let transport = TcpAcceptTransport::lazy(bind.clone(), exec.timeout)
                    .with_deadlines(read_deadline, write_deadline);
                WorkerFleet::with_transport(Box::new(transport), exec.max_workers)
            }
        };
        fleet.hello_config = exec.config_fingerprint;
        fleet
    }

    /// Workers currently alive.
    pub fn live_workers(&self) -> usize {
        self.workers.len()
    }

    /// Worker links established over this fleet's lifetime (process
    /// spawns on the pipe backend, connections on TCP).
    pub fn spawned_total(&self) -> usize {
        self.spawned_total
    }

    /// Remote connections re-established after a loss over this fleet's
    /// lifetime (always 0 on the pipe backend).
    pub fn reconnects_total(&self) -> usize {
        self.transport.reconnects()
    }

    /// Whether the transport crosses a host boundary (see
    /// [`Transport::is_remote`]).
    fn is_remote(&self) -> bool {
        self.transport.is_remote()
    }

    /// Connects one worker link, opens it with the protocol `hello`, and
    /// wires its replies into the event channel.
    fn spawn_worker(&mut self) -> std::io::Result<()> {
        let link = self.transport.connect()?;
        let id = self.next_id;
        self.next_id += 1;
        let mut tx = link.tx;
        // The handshake goes out immediately; its ack is validated
        // asynchronously by the scheduling loop (the first frame from an
        // `awaiting_hello` worker), so connect stays non-blocking and a
        // worker that dies before acking takes the normal EOF path.
        let _ = tx.send(&hello_request(self.hello_config));
        let mut rx = link.rx;
        let events = self.tx.clone();
        std::thread::spawn(move || loop {
            match rx.recv() {
                Ok(Some(parts)) => {
                    if events
                        .send(FleetEvent::Frame { worker: id, parts })
                        .is_err()
                    {
                        return; // fleet dropped
                    }
                }
                Ok(None) | Err(_) => {
                    let _ = events.send(FleetEvent::Eof { worker: id });
                    return;
                }
            }
        });
        self.workers.push(FleetWorker {
            id,
            tx: Some(tx),
            control: link.control,
            awaiting_hello: true,
            busy_with: None,
            dispatched: Instant::now(),
        });
        self.spawned_total += 1;
        Ok(())
    }

    /// Reaps a dead worker by position: tears the link down and collects
    /// the post-mortem. Returns (exit code, stderr/diagnostic text).
    fn reap_worker(&mut self, at: usize) -> (Option<i32>, String) {
        let mut worker = self.workers.swap_remove(at);
        if let Some(mut tx) = worker.tx.take() {
            tx.close();
        }
        worker.control.kill();
        worker.control.reap()
    }

    /// Validates the first frame from a worker whose `hello` is
    /// outstanding. `Ok` consumed a valid ack; `Err` is the attributed
    /// rejection.
    fn take_hello_ack(&mut self, at: usize, parts: &[String]) -> Result<(), ExecError> {
        match parse_hello_ack(parts) {
            Ok(()) => {
                self.workers[at].awaiting_hello = false;
                Ok(())
            }
            Err(reason) => Err(ExecError::HelloRejected {
                worker: self.workers[at].control.describe(),
                reason,
            }),
        }
    }

    /// Kills every worker immediately — the error-path cleanup, so a
    /// failed run leaves no processes behind and the next run on this
    /// fleet starts from a clean (lazily respawned) state.
    fn kill_all(&mut self) {
        while !self.workers.is_empty() {
            let at = self.workers.len() - 1;
            let _ = self.reap_worker(at);
        }
    }

    /// Dispatches pending jobs onto idle workers, spawning up to the cap.
    fn assign_pending(
        &mut self,
        pending: &mut VecDeque<usize>,
        jobs: &[FleetJob],
        attempts: &mut [usize],
    ) -> Result<(), ExecError> {
        while let Some(&job_idx) = pending.front() {
            let idle = self.workers.iter().position(|w| w.busy_with.is_none());
            let at = match idle {
                Some(at) => at,
                None if self.workers.len() < self.cap => {
                    self.spawn_worker().map_err(|source| ExecError::Spawn {
                        partition: jobs[job_idx].partition,
                        source,
                    })?;
                    self.workers.len() - 1
                }
                None => break, // fleet saturated; wait for a reply
            };
            pending.pop_front();
            attempts[job_idx] += 1;
            let worker = &mut self.workers[at];
            worker.busy_with = Some(job_idx);
            worker.dispatched = Instant::now();
            if let Some(tx) = worker.tx.as_mut() {
                // A failed send means the link is dead or dying; leave
                // the job assigned — the reader thread's EOF event will
                // reap it and replay the job through the normal path.
                let _ = tx.send(&jobs[job_idx].request);
            }
        }
        Ok(())
    }

    /// Runs a batch of jobs to completion, respawning/replaying through
    /// mid-job worker deaths, and returns each job's report and
    /// dispatch-to-reply wall clock, in job order.
    fn run_jobs(
        &mut self,
        jobs: &[FleetJob],
        deadline: Instant,
        timeout: Duration,
        retries: usize,
    ) -> Result<Vec<(WorkerReport, Duration)>, ExecError> {
        let result = self.run_jobs_inner(jobs, deadline, timeout, retries);
        if result.is_err() {
            self.kill_all();
        }
        result
    }

    fn run_jobs_inner(
        &mut self,
        jobs: &[FleetJob],
        deadline: Instant,
        timeout: Duration,
        retries: usize,
    ) -> Result<Vec<(WorkerReport, Duration)>, ExecError> {
        let mut pending: VecDeque<usize> = (0..jobs.len()).collect();
        let mut attempts = vec![0usize; jobs.len()];
        let mut results: Vec<Option<(WorkerReport, Duration)>> = vec![None; jobs.len()];
        let mut completed = 0usize;
        while completed < jobs.len() {
            self.assign_pending(&mut pending, jobs, &mut attempts)?;
            let now = Instant::now();
            let timeout_error = |fleet: &WorkerFleet| {
                let partition = fleet
                    .workers
                    .iter()
                    .find_map(|w| w.busy_with.map(|j| jobs[j].partition))
                    .unwrap_or_else(|| jobs.first().map_or(0, |j| j.partition));
                ExecError::WorkerTimeout { partition, timeout }
            };
            if now >= deadline {
                return Err(timeout_error(self));
            }
            let event = match self.rx.recv_timeout(deadline - now) {
                Ok(event) => event,
                Err(mpsc::RecvTimeoutError::Timeout) => return Err(timeout_error(self)),
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    unreachable!("fleet holds its own sender")
                }
            };
            match event {
                FleetEvent::Frame { worker, parts } => {
                    // Stale frames from workers reaped in a previous run
                    // (or a worker we never assigned) are ignored.
                    let Some(at) = self.workers.iter().position(|w| w.id == worker) else {
                        continue;
                    };
                    if self.workers[at].awaiting_hello {
                        // The first frame back must be the hello ack; a
                        // rejection is deterministic and attributed, so
                        // it fails the run rather than being retried.
                        self.take_hello_ack(at, &parts)?;
                        continue;
                    }
                    let Some(job_idx) = self.workers[at].busy_with.take() else {
                        continue;
                    };
                    let dispatched = self.workers[at].dispatched;
                    let wall = dispatched.elapsed();
                    let job = &jobs[job_idx];
                    match parts.first().map(String::as_str) {
                        Some("ok") => match WorkerReport::from_reply(&parts) {
                            Some(report) => {
                                // Merge the worker's piggybacked telemetry
                                // into this process's registry and trace:
                                // counter deltas fold in under
                                // `exec.worker.<name>`, and the job itself
                                // becomes a per-worker span parented to
                                // the round that dispatched it.
                                let telemetry = WorkerTelemetry::from_reply(&parts);
                                for (name, delta) in &telemetry.counters {
                                    kcenter_obs::counter(&format!("exec.worker.{name}"))
                                        .add(*delta);
                                }
                                let verb = job.request.first().map_or("job", String::as_str);
                                kcenter_obs::record_span(kcenter_obs::SpanRecord {
                                    name: &format!("exec.worker.{verb}"),
                                    parent: job.span,
                                    worker: Some(job.partition as u64),
                                    start: Some(dispatched),
                                    dur: wall,
                                    fields: &[
                                        ("points".to_string(), report.points.to_string()),
                                        ("coreset".to_string(), report.coreset.to_string()),
                                        (
                                            "build_micros".to_string(),
                                            report.build_micros.to_string(),
                                        ),
                                    ],
                                });
                                results[job_idx] = Some((report, wall));
                                completed += 1;
                            }
                            None => {
                                return Err(ExecError::WorkerFailed {
                                    partition: job.partition,
                                    code: None,
                                    stderr: format!("malformed ok reply: {parts:?}"),
                                })
                            }
                        },
                        Some("err-artifact") => {
                            let path = parts.get(1).cloned().unwrap_or_default();
                            let reason = parts.get(2).cloned().unwrap_or_default();
                            let partition = job
                                .inputs
                                .iter()
                                .find(|(p, _)| *p == path)
                                .map_or(job.partition, |&(_, part)| part);
                            return Err(ExecError::BadArtifact {
                                partition,
                                path: PathBuf::from(path),
                                reason,
                            });
                        }
                        _ => {
                            // `err` replies are deterministic worker-side
                            // failures (bad input, unwritable output):
                            // replaying cannot help, so fail now. Code 1
                            // mirrors the one-shot worker's exit code for
                            // the same failures.
                            let message = match parts.first().map(String::as_str) {
                                Some("err") => parts.get(1).cloned().unwrap_or_default(),
                                _ => format!("unexpected reply frame: {parts:?}"),
                            };
                            return Err(ExecError::WorkerFailed {
                                partition: job.partition,
                                code: Some(1),
                                stderr: message,
                            });
                        }
                    }
                }
                FleetEvent::Eof { worker } => {
                    let Some(at) = self.workers.iter().position(|w| w.id == worker) else {
                        continue; // already reaped
                    };
                    let job_idx = self.workers[at].busy_with;
                    let (code, stderr) = self.reap_worker(at);
                    if let Some(job_idx) = job_idx {
                        if attempts[job_idx] > retries {
                            return Err(ExecError::WorkerFailed {
                                partition: jobs[job_idx].partition,
                                code,
                                stderr,
                            });
                        }
                        // Contained: replay the partition on a fresh
                        // worker (spawned by the next assign pass).
                        self.respawned_total += 1;
                        pending.push_front(job_idx);
                    }
                }
            }
        }
        Ok(results
            .into_iter()
            .map(|r| r.expect("completed implies recorded"))
            .collect())
    }

    /// Asks a (possibly fresh) worker whether `var` is set in its
    /// environment — the regression surface for the coordinator's env
    /// strip. Returns the value when set.
    pub fn probe_env(&mut self, var: &str) -> Result<Option<String>, ExecError> {
        if self.workers.is_empty() {
            self.spawn_worker().map_err(|source| ExecError::Spawn {
                partition: 0,
                source,
            })?;
        }
        let at = self
            .workers
            .iter()
            .position(|w| w.busy_with.is_none())
            .expect("probe requires an idle worker");
        let id = self.workers[at].id;
        if let Some(tx) = self.workers[at].tx.as_mut() {
            let _ = tx.send(&["probe".to_string(), var.to_string()]);
        }
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            let now = Instant::now();
            if now >= deadline {
                return Err(ExecError::WorkerTimeout {
                    partition: 0,
                    timeout: Duration::from_secs(30),
                });
            }
            match self.rx.recv_timeout(deadline - now) {
                Ok(FleetEvent::Frame { worker, parts }) if worker == id => {
                    if let Some(at) = self.workers.iter().position(|w| w.id == id) {
                        if self.workers[at].awaiting_hello {
                            self.take_hello_ack(at, &parts)?;
                            continue;
                        }
                    }
                    return match (
                        parts.first().map(String::as_str),
                        parts.get(1).map(String::as_str),
                    ) {
                        (Some("ok"), Some("set")) => {
                            Ok(parts.get(2).cloned().or(Some(String::new())))
                        }
                        (Some("ok"), Some("unset")) => Ok(None),
                        _ => Err(ExecError::WorkerFailed {
                            partition: 0,
                            code: None,
                            stderr: format!("malformed probe reply: {parts:?}"),
                        }),
                    };
                }
                Ok(FleetEvent::Eof { worker }) if worker == id => {
                    let at = self.workers.iter().position(|w| w.id == worker);
                    let (code, stderr) = match at {
                        Some(at) => self.reap_worker(at),
                        None => (None, String::new()),
                    };
                    return Err(ExecError::WorkerFailed {
                        partition: 0,
                        code,
                        stderr,
                    });
                }
                Ok(_) => continue, // stale event from an earlier run
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    return Err(ExecError::WorkerTimeout {
                        partition: 0,
                        timeout: Duration::from_secs(30),
                    })
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    unreachable!("fleet holds its own sender")
                }
            }
        }
    }

    /// Shuts the fleet down cooperatively: every worker is sent a
    /// `shutdown` request and its request channel closed, given a short
    /// grace period to wind down, then torn down. Remote `--listen`
    /// workers outlive this — `shutdown` only ends their connection, so
    /// the same worker pool can serve the next coordinator.
    pub fn shutdown(&mut self) {
        for worker in &mut self.workers {
            if let Some(mut tx) = worker.tx.take() {
                let _ = tx.send(&["shutdown".to_string()]);
                tx.close();
            }
        }
        let grace = Instant::now() + Duration::from_secs(2);
        while !self.workers.is_empty() && Instant::now() < grace {
            self.workers.retain_mut(|worker| !worker.control.exited());
            if !self.workers.is_empty() {
                std::thread::sleep(Duration::from_millis(5));
            }
        }
        self.kill_all();
    }
}

impl Drop for WorkerFleet {
    fn drop(&mut self) {
        self.kill_all();
    }
}

/// Runs the multi-process 2-round k-center algorithm (the executor twin
/// of [`kcenter_core::mapreduce_kcenter::mr_kcenter`]) on a one-shot
/// fleet: spawn, run, shut down. Use [`exec_mr_kcenter_on`] to reuse a
/// warm fleet across runs.
///
/// # Errors
///
/// [`ExecError::Input`] for the same invalid configurations the
/// in-process engine rejects; the executor-specific variants for worker
/// spawn/crash/timeout/artifact failures.
pub fn exec_mr_kcenter(
    points: &[Point],
    metric: MetricKind,
    config: &MrKCenterConfig,
    exec: &ExecConfig,
) -> Result<ExecKCenterResult, ExecError> {
    let mut fleet = WorkerFleet::from_config(exec);
    let result = exec_mr_kcenter_on(&mut fleet, points, metric, config, exec);
    fleet.shutdown();
    result
}

/// As [`exec_mr_kcenter`], but scheduling onto an existing fleet — the
/// persistent-fleet entry point: repeated runs reuse the live workers
/// (0 spawns when the fleet is already large enough) and remain
/// bit-identical to a fresh-spawn run.
///
/// # Errors
///
/// As [`exec_mr_kcenter`].
pub fn exec_mr_kcenter_on(
    fleet: &mut WorkerFleet,
    points: &[Point],
    metric: MetricKind,
    config: &MrKCenterConfig,
    exec: &ExecConfig,
) -> Result<ExecKCenterResult, ExecError> {
    config.validate(points.len())?;
    // Round timing runs through obs spans: the same measurement feeds the
    // `exec.round1.micros` / `exec.round2.micros` histograms, the JSONL
    // trace (when enabled), and the `ExecReport` fields.
    let mut round1_span = kcenter_obs::span!("exec.round1", "algo" => "kcenter");
    let round1_ctx = round1_span.id();
    let partitions = nonempty_partitions(partition_dataset(points, config.ell, &Chunked));
    let jobs: Vec<JobSpec> = partitions
        .iter()
        .map(|(part, members)| JobSpec {
            partition: *part,
            base: config.k,
            start: config.round1_start(*part, members.len()),
        })
        .collect();
    let mut round = run_distributed_round(
        fleet,
        &partitions,
        &jobs,
        metric,
        config.coreset,
        exec,
        Some(round1_ctx),
    )?;
    round1_span.add_field("partitions", partitions.len());
    let round1_time = round1_span.finish();

    let round2_span = kcenter_obs::span!("exec.round2", "algo" => "kcenter");
    let union = std::mem::take(&mut round.union_points);
    let (centers, final_radius) = with_metric!(metric, m => {
        let selected = gmm_select(&union, m, config.k, 0);
        let centers: Vec<Point> = selected.centers.into_iter().map(|i| union[i].clone()).collect();
        let final_radius = radius(points, &centers, m);
        (centers, final_radius)
    });
    let round2_time = round2_span.field("union", union.len()).finish();

    Ok(ExecKCenterResult {
        clustering: Clustering {
            centers,
            radius: final_radius,
        },
        report: round.into_report(union.len(), round1_time, round2_time),
    })
}

/// Runs the multi-process 2-round k-center-with-outliers algorithm
/// (the executor twin of
/// [`kcenter_core::mapreduce_outliers::mr_kcenter_outliers`]),
/// deterministic or randomized per the configuration, on a one-shot
/// fleet. Use [`exec_mr_outliers_on`] to reuse a warm fleet.
///
/// # Errors
///
/// As [`exec_mr_kcenter`].
pub fn exec_mr_outliers(
    points: &[Point],
    metric: MetricKind,
    config: &MrOutliersConfig,
    exec: &ExecConfig,
) -> Result<ExecOutliersResult, ExecError> {
    let mut fleet = WorkerFleet::from_config(exec);
    let result = exec_mr_outliers_on(&mut fleet, points, metric, config, exec);
    fleet.shutdown();
    result
}

/// As [`exec_mr_outliers`], but scheduling onto an existing fleet.
///
/// # Errors
///
/// As [`exec_mr_kcenter`].
pub fn exec_mr_outliers_on(
    fleet: &mut WorkerFleet,
    points: &[Point],
    metric: MetricKind,
    config: &MrOutliersConfig,
    exec: &ExecConfig,
) -> Result<ExecOutliersResult, ExecError> {
    config.validate(points.len())?;
    let n = points.len();
    let base = config.coreset_base(n);

    let mut round1_span = kcenter_obs::span!("exec.round1", "algo" => "outliers");
    let round1_ctx = round1_span.id();
    let partitioner = config.partitioner();
    let partitions =
        nonempty_partitions(partition_dataset(points, config.ell, partitioner.as_ref()));
    let jobs: Vec<JobSpec> = partitions
        .iter()
        .map(|(part, members)| JobSpec {
            partition: *part,
            base: base.min(members.len()),
            start: config.round1_start(*part, members.len()),
        })
        .collect();
    let round = run_distributed_round(
        fleet,
        &partitions,
        &jobs,
        metric,
        config.coreset,
        exec,
        Some(round1_ctx),
    )?;
    round1_span.add_field("partitions", partitions.len());
    let round1_time = round1_span.finish();

    let round2_span = kcenter_obs::span!("exec.round2", "algo" => "outliers");
    let coreset: WeightedCoreset<Point> = round
        .union_points
        .iter()
        .zip(&round.union_weights)
        .map(|(p, &w)| WeightedPoint {
            point: p.clone(),
            weight: w,
        })
        .collect();
    let union_size = coreset.len();
    let (solution, final_radius) = with_metric!(metric, m => {
        // Same round-2 shape as the in-process reducer: price the union
        // into one oracle (which consults the persistent store when
        // installed) and search the radius on it.
        let oracle = CachedOracle::new(coreset.points_only(), m, config.matrix_threshold);
        let solution = solve_coreset_cached(
            &oracle,
            &coreset.weights(),
            config.k,
            config.z as u64,
            config.eps_hat,
            config.search,
        );
        let final_radius = radius_with_outliers(points, &solution.centers, config.z, m);
        (solution, final_radius)
    });
    let round2_time = round2_span.field("union", union_size).finish();

    Ok(ExecOutliersResult {
        clustering: Clustering {
            centers: solution.centers,
            radius: final_radius,
        },
        r_min: solution.r_min,
        uncovered_weight: solution.uncovered_weight,
        base,
        search_evaluations: solution.evaluations,
        report: round.into_report(union_size, round1_time, round2_time),
    })
}

/// Per-partition worker parameters the algorithm layer computes.
struct JobSpec {
    partition: usize,
    base: usize,
    start: usize,
}

/// Everything the distributed phase (round 1 + reduction tree) produces.
struct RoundData {
    union_points: Vec<Point>,
    union_weights: Vec<u64>,
    coreset_sizes: Vec<usize>,
    workers: Vec<WorkerStat>,
    shard_writes: usize,
    shard_reuses: usize,
    workers_spawned: usize,
    worker_respawns: usize,
    reconnects: usize,
    merge_jobs: usize,
}

impl RoundData {
    fn into_report(
        self,
        union_size: usize,
        round1_time: Duration,
        round2_time: Duration,
    ) -> ExecReport {
        ExecReport {
            coreset_sizes: self.coreset_sizes,
            union_size,
            workers: self.workers,
            round1_time,
            round2_time,
            shard_writes: self.shard_writes,
            shard_reuses: self.shard_reuses,
            workers_spawned: self.workers_spawned,
            worker_respawns: self.worker_respawns,
            reconnects: self.reconnects,
            merge_jobs: self.merge_jobs,
        }
    }
}

/// Drops empty partitions, keeping each partition's id — the exact shape
/// of the in-process shuffle, whose `BTreeMap` grouping only ever sees
/// keys with at least one member and visits them in ascending order.
fn nonempty_partitions(buckets: Vec<Vec<Point>>) -> Vec<(usize, Vec<Point>)> {
    buckets
        .into_iter()
        .enumerate()
        .filter(|(_, members)| !members.is_empty())
        .collect()
}

/// Content fingerprint of one partition's shard (coordinates by bit
/// pattern, length-prefixed), under the executor's shard domain.
fn shard_fingerprint(members: &[Point]) -> u128 {
    let mut fp = Fingerprint::with_domain(SHARD_FINGERPRINT_DOMAIN);
    fp.write_usize(members.len());
    for p in members {
        fp.write_f64s(p.coords());
    }
    fp.finish()
}

/// Materializes one partition's shard file: served from the store when a
/// valid content-addressed entry exists, (re-)stored when absent or
/// corrupt, or written into the work directory when no store is
/// configured. Returns (path, reused).
fn materialize_shard(
    store: Option<&ArtifactStore>,
    work_dir: &Path,
    part: usize,
    members: &[Point],
) -> std::io::Result<(PathBuf, bool)> {
    if let Some(store) = store {
        let fp = shard_fingerprint(members);
        let path = store.artifact_path(ArtifactKind::Shard, fp);
        // A hit is trusted only after validation: a corrupt or truncated
        // entry (crash mid-rename cannot cause this, but disk rot or a
        // meddling process can) is silently re-sharded — the cache may
        // change cost, never correctness.
        if path.is_file() {
            if let Ok(set) = read_shard_set(&path) {
                if set.len() == members.len() {
                    return Ok((path, true));
                }
            }
        }
        if store.store_shard(fp, members).is_ok() && path.is_file() {
            return Ok((path, false));
        }
        // Unusable store directory: fall through to the work dir.
    }
    let path = work_dir.join(format!("shard-{part:05}.kca"));
    write_shard(&path, members)?;
    Ok((path, false))
}

/// The distributed phase: shard (with content-addressed reuse), run
/// round 1 on the fleet, and reduce the per-partition coresets pairwise
/// up the tree until one root artifact remains, which is the only
/// artifact the coordinator reads.
fn run_distributed_round(
    fleet: &mut WorkerFleet,
    partitions: &[(usize, Vec<Point>)],
    jobs: &[JobSpec],
    metric: MetricKind,
    spec: CoresetSpec,
    exec: &ExecConfig,
    parent_span: Option<u64>,
) -> Result<RoundData, ExecError> {
    let spawned_before = fleet.spawned_total;
    let respawned_before = fleet.respawned_total;
    let reconnects_before = fleet.reconnects_total();
    let work_dir = match &exec.work_dir {
        Some(dir) => dir.clone(),
        None => std::env::temp_dir().join(format!(
            "kcenter-exec-{}-{}",
            std::process::id(),
            RUN_SEQ.fetch_add(1, Ordering::Relaxed)
        )),
    };
    std::fs::create_dir_all(&work_dir)?;
    let guard = WorkDirGuard {
        path: work_dir.clone(),
        keep: exec.keep_work_dir,
    };
    let deadline = Instant::now() + exec.timeout;

    // Shard: one input file per non-empty partition, store-served where
    // the content-addressed entry already exists.
    let mut shard_writes = 0usize;
    let mut shard_reuses = 0usize;
    let mut round1_jobs = Vec::with_capacity(jobs.len());
    let mut outs = Vec::with_capacity(jobs.len());
    // Remote workers cannot dereference this host's absolute paths, but
    // a shard that lives in the (shared) artifact store has a stable,
    // content-addressed file name — so remote jobs reference it as
    // `@store/NAME` and the worker resolves that against its own
    // `--store` root. Work-dir paths (coreset/merge artifacts) stay
    // absolute: cross-host runs put the work dir on shared storage too.
    let remote = fleet.is_remote();
    let store_relative = |shard: &Path| -> PathBuf {
        if remote {
            if let Some(store) = exec.shard_store.as_ref() {
                if shard.parent() == Some(store.dir()) {
                    if let Some(name) = shard.file_name() {
                        return PathBuf::from(format!("@store/{}", name.to_string_lossy()));
                    }
                }
            }
        }
        shard.to_path_buf()
    };
    for ((part, members), job) in partitions.iter().zip(jobs) {
        debug_assert_eq!(*part, job.partition);
        let (shard, reused) =
            materialize_shard(exec.shard_store.as_ref(), &work_dir, *part, members)?;
        if reused {
            shard_reuses += 1;
        } else {
            shard_writes += 1;
        }
        let shard = store_relative(&shard);
        let out = work_dir.join(format!("coreset-{part:05}.kca"));
        let args = WorkerArgs {
            shard,
            out: out.clone(),
            metric,
            base: job.base,
            spec,
            start: job.start,
            span: parent_span,
        };
        let mut request = vec!["coreset".to_string()];
        request.extend(args.to_args());
        round1_jobs.push(FleetJob {
            partition: *part,
            request,
            inputs: Vec::new(),
            span: parent_span,
        });
        outs.push(out);
    }

    // Round 1 on the fleet.
    let round1_results = fleet.run_jobs(&round1_jobs, deadline, exec.timeout, exec.job_retries)?;
    let mut workers = Vec::with_capacity(jobs.len());
    let mut coreset_sizes = Vec::with_capacity(jobs.len());
    for ((part, members), (report, wall)) in partitions.iter().zip(&round1_results) {
        workers.push(WorkerStat {
            partition: *part,
            shard_points: if report.points > 0 {
                report.points
            } else {
                members.len()
            },
            coreset_size: report.coreset,
            wall: *wall,
            build: Duration::from_micros(report.build_micros),
        });
        coreset_sizes.push(report.coreset);
    }

    // Reduction tree: adjacent pairs merge on workers, the odd node
    // carries forward, level by level, in partition-index order — the
    // parenthesization-invariant composition that keeps the root union
    // bit-identical to a flat concatenation.
    let mut merge_jobs_total = 0usize;
    let mut nodes: Vec<(usize, PathBuf)> = partitions
        .iter()
        .map(|(part, _)| *part)
        .zip(outs.iter().cloned())
        .collect();
    let mut level = 0usize;
    while nodes.len() > 1 {
        let mut merge_jobs = Vec::new();
        let mut next: Vec<(usize, PathBuf)> = Vec::with_capacity(nodes.len().div_ceil(2));
        let mut it = nodes.into_iter();
        let mut i = 0usize;
        while let Some((left_part, left_path)) = it.next() {
            match it.next() {
                Some((right_part, right_path)) => {
                    let out = work_dir.join(format!("merge-{level}-{i:05}.kca"));
                    let args = MergeArgs {
                        left: left_path.clone(),
                        right: right_path.clone(),
                        out: out.clone(),
                        span: parent_span,
                    };
                    let mut request = vec!["merge".to_string()];
                    request.extend(args.to_args());
                    merge_jobs.push(FleetJob {
                        partition: left_part,
                        request,
                        inputs: vec![
                            (left_path.to_string_lossy().into_owned(), left_part),
                            (right_path.to_string_lossy().into_owned(), right_part),
                        ],
                        span: parent_span,
                    });
                    next.push((left_part, out));
                    i += 1;
                }
                None => next.push((left_part, left_path)), // odd node carries
            }
        }
        merge_jobs_total += merge_jobs.len();
        fleet.run_jobs(&merge_jobs, deadline, exec.timeout, exec.job_retries)?;
        nodes = next;
        level += 1;
    }

    // Only the root crosses back into the coordinator.
    let (root_part, root_path) = nodes
        .pop()
        .expect("at least one non-empty partition (validated)");
    let (union_points, union_weights) =
        read_coreset_artifact(&root_path).map_err(|err| ExecError::BadArtifact {
            partition: root_part,
            path: root_path.clone(),
            reason: err.to_string(),
        })?;
    drop(guard);
    let workers_spawned = fleet.spawned_total - spawned_before;
    let worker_respawns = fleet.respawned_total - respawned_before;
    let reconnects = fleet.reconnects_total() - reconnects_before;
    // The same accounting that lands in `ExecReport` accumulates into the
    // process-wide registry, under the executor's counter family.
    let obs = kcenter_obs::registry();
    obs.counter("exec.jobs.coreset")
        .add(round1_jobs.len() as u64);
    obs.counter("exec.jobs.merge").add(merge_jobs_total as u64);
    obs.counter("exec.shards.written").add(shard_writes as u64);
    obs.counter("exec.shards.reused").add(shard_reuses as u64);
    obs.counter("exec.workers.spawned")
        .add(workers_spawned as u64);
    obs.counter("exec.workers.respawned")
        .add(worker_respawns as u64);
    obs.counter("exec.reconnects").add(reconnects as u64);
    Ok(RoundData {
        union_points,
        union_weights,
        coreset_sizes,
        workers,
        shard_writes,
        shard_reuses,
        workers_spawned,
        worker_respawns,
        reconnects,
        merge_jobs: merge_jobs_total,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nonempty_partitions_keep_ids() {
        let buckets = vec![
            vec![Point::new(vec![1.0])],
            Vec::new(),
            vec![Point::new(vec![2.0]), Point::new(vec![3.0])],
        ];
        let parts = nonempty_partitions(buckets);
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].0, 0);
        assert_eq!(parts[1].0, 2);
        assert_eq!(parts[1].1.len(), 2);
    }

    #[test]
    fn invalid_configs_fail_before_any_process_work() {
        let points: Vec<Point> = (0..10).map(|i| Point::new(vec![i as f64])).collect();
        let exec = ExecConfig::new(WorkerCommand::new("/nonexistent/worker", &[]));
        let bad = MrKCenterConfig {
            k: 0,
            ell: 2,
            coreset: CoresetSpec::Multiplier { mu: 1 },
            seed: 0,
        };
        assert!(matches!(
            exec_mr_kcenter(&points, MetricKind::Euclidean, &bad, &exec),
            Err(ExecError::Input(_))
        ));
        let mut bad_outliers =
            MrOutliersConfig::deterministic(2, 1, 0, CoresetSpec::Multiplier { mu: 1 });
        bad_outliers.ell = 0;
        assert!(matches!(
            exec_mr_outliers(&points, MetricKind::Euclidean, &bad_outliers, &exec),
            Err(ExecError::Input(_))
        ));
    }

    #[test]
    fn shard_fingerprints_are_content_sensitive() {
        let a = vec![Point::new(vec![1.0, 2.0]), Point::new(vec![3.0, 4.0])];
        let b = vec![Point::new(vec![1.0, 2.0]), Point::new(vec![3.0, 5.0])];
        let reordered = vec![Point::new(vec![3.0, 4.0]), Point::new(vec![1.0, 2.0])];
        let signed_zero = vec![Point::new(vec![-0.0, 2.0]), Point::new(vec![3.0, 4.0])];
        let fp = shard_fingerprint(&a);
        assert_eq!(fp, shard_fingerprint(&a.clone()));
        assert_ne!(fp, shard_fingerprint(&b));
        assert_ne!(fp, shard_fingerprint(&reordered));
        assert_ne!(fp, shard_fingerprint(&signed_zero));
    }

    #[test]
    fn fleet_cap_defaults_to_at_least_one() {
        let fleet = WorkerFleet::new(WorkerCommand::new("/bin/true", &[]), Some(0));
        assert_eq!(fleet.cap, 1);
        let sized = WorkerFleet::new(WorkerCommand::new("/bin/true", &[]), Some(7));
        assert_eq!(sized.cap, 7);
        let auto = WorkerFleet::new(WorkerCommand::new("/bin/true", &[]), None);
        assert!(auto.cap >= 1);
    }
}
