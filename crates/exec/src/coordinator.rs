//! The coordinator: shards a dataset, spawns real worker processes, and
//! reduces their results — bit-identical to the in-process engines.
//!
//! Execution mirrors the paper's 2-round structure end to end:
//!
//! 1. **Shard.** The input is partitioned with exactly the engine's
//!    partitioner (`Chunked`, seeded random, or adversarial) and each
//!    non-empty partition is written to a shard file in the work
//!    directory.
//! 2. **Round 1, out of process.** One worker OS process per partition is
//!    spawned from the configured [`WorkerCommand`] (typically the current
//!    binary re-invoked with a hidden subcommand). Each worker mmap-loads
//!    its shard, runs the shared round-1 kernel with its own rayon pool,
//!    and atomically writes a weighted-coreset artifact.
//! 3. **Round 2, in the coordinator.** Artifacts are collected in
//!    ascending partition order — the same order the in-process shuffle
//!    produces — and the union is solved through the existing round-2
//!    paths (`gmm_select`, or the radius search over a [`CachedOracle`],
//!    which also consults the persistent matrix store when one is
//!    installed).
//!
//! **Determinism.** Every stage is bitwise deterministic: partitioning is
//! seeded, the round-1 kernel is chunk-order invariant under any thread
//! count, the codec round-trips `f64`s by bit pattern, and collection
//! order is fixed. The cross-check tests (and the `exec-determinism` CI
//! job) assert the final centers and radius are **bit-identical** to
//! [`mr_kcenter`] / [`mr_kcenter_outliers`] on the same input.
//!
//! [`mr_kcenter`]: kcenter_core::mapreduce_kcenter::mr_kcenter
//! [`mr_kcenter_outliers`]: kcenter_core::mapreduce_outliers::mr_kcenter_outliers
//!
//! **Failure handling.** A worker that exits non-zero, dies on a signal,
//! overruns the timeout, or leaves a truncated artifact surfaces as a
//! clean [`ExecError`]; remaining workers are killed and the work
//! directory is removed (unless kept for debugging).

use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use kcenter_core::coreset::{CoresetSpec, WeightedCoreset, WeightedPoint};
use kcenter_core::gmm::gmm_select;
use kcenter_core::mapreduce_kcenter::MrKCenterConfig;
use kcenter_core::mapreduce_outliers::MrOutliersConfig;
use kcenter_core::radius_search::solve_coreset_cached;
use kcenter_core::solution::{radius, radius_with_outliers};
use kcenter_core::Clustering;
use kcenter_mapreduce::{partition_dataset, Chunked};
use kcenter_metric::{CachedOracle, Point};

use crate::error::ExecError;
use crate::protocol::{MetricKind, WorkerReport};
use crate::shard::{read_coreset_artifact, write_shard};
use crate::with_metric;
use crate::worker::WorkerArgs;

/// Per-process sequence for unique work-directory names.
static RUN_SEQ: AtomicU64 = AtomicU64::new(0);

/// How to invoke a worker process: a program plus fixed leading arguments
/// (the per-partition worker flags are appended) and extra environment
/// variables (set on top of the inherited environment).
#[derive(Clone, Debug)]
pub struct WorkerCommand {
    /// Program to execute.
    pub program: PathBuf,
    /// Leading arguments (e.g. a hidden `worker` subcommand).
    pub args: Vec<String>,
    /// Extra environment for the workers (e.g. `RAYON_NUM_THREADS`, or
    /// the fault-injection hook in tests).
    pub env: Vec<(String, String)>,
}

impl WorkerCommand {
    /// A worker command from an explicit program and leading arguments.
    pub fn new(program: impl Into<PathBuf>, args: &[&str]) -> WorkerCommand {
        WorkerCommand {
            program: program.into(),
            args: args.iter().map(|s| s.to_string()).collect(),
            env: Vec::new(),
        }
    }

    /// Re-invokes the **current executable** with the given leading
    /// arguments — the standard deployment shape: one binary, a hidden
    /// worker mode.
    pub fn current_exe(args: &[&str]) -> std::io::Result<WorkerCommand> {
        Ok(WorkerCommand::new(std::env::current_exe()?, args))
    }

    /// Adds an environment variable for every spawned worker.
    pub fn env(mut self, key: impl Into<String>, value: impl Into<String>) -> WorkerCommand {
        self.env.push((key.into(), value.into()));
        self
    }
}

/// Multi-process execution options.
#[derive(Clone, Debug)]
pub struct ExecConfig {
    /// How to spawn workers.
    pub worker: WorkerCommand,
    /// Work directory for shards and result artifacts. `None` creates a
    /// unique directory under the system temp dir.
    pub work_dir: Option<PathBuf>,
    /// Per-round wall-clock limit: if any worker is still running when it
    /// elapses, the fleet is killed and the run fails cleanly.
    pub timeout: Duration,
    /// Keep the work directory (for debugging) instead of removing it.
    pub keep_work_dir: bool,
}

impl ExecConfig {
    /// Options with the default timeout (10 minutes) and a fresh temp
    /// work directory.
    pub fn new(worker: WorkerCommand) -> ExecConfig {
        ExecConfig {
            worker,
            work_dir: None,
            timeout: Duration::from_secs(600),
            keep_work_dir: false,
        }
    }
}

/// Per-worker accounting.
#[derive(Clone, Debug)]
pub struct WorkerStat {
    /// Partition the worker processed.
    pub partition: usize,
    /// Points in its shard.
    pub shard_points: usize,
    /// Coreset points it produced.
    pub coreset_size: usize,
    /// Spawn-to-exit wall clock, measured by the coordinator.
    pub wall: Duration,
    /// In-worker build wall clock (shard load → artifact rename), as
    /// reported by the worker itself; zero if the report line was absent.
    pub build: Duration,
}

/// Execution accounting shared by both algorithms.
#[derive(Clone, Debug, Default)]
pub struct ExecReport {
    /// Size of each non-empty partition's coreset, in partition order.
    pub coreset_sizes: Vec<usize>,
    /// `|T|`, the size of the collected union.
    pub union_size: usize,
    /// Per-worker accounting, in partition order.
    pub workers: Vec<WorkerStat>,
    /// Wall clock of round 1 (shard + spawn + collect).
    pub round1_time: Duration,
    /// Wall clock of round 2 (solve on the union).
    pub round2_time: Duration,
}

/// Result of a multi-process k-center run (the executor's counterpart of
/// [`kcenter_core::mapreduce_kcenter::MrKCenterResult`]).
#[derive(Clone, Debug)]
pub struct ExecKCenterResult {
    /// Final centers and the radius they achieve on the full input.
    pub clustering: Clustering<Point>,
    /// Execution accounting.
    pub report: ExecReport,
}

/// Result of a multi-process k-center-with-outliers run (the executor's
/// counterpart of [`kcenter_core::mapreduce_outliers::MrOutliersResult`]).
#[derive(Clone, Debug)]
pub struct ExecOutliersResult {
    /// Final centers and the objective `r_{T,Z_T}(S)` on the full input.
    pub clustering: Clustering<Point>,
    /// The radius found on the coreset by the search.
    pub r_min: f64,
    /// Weight left uncovered on the coreset at `r_min`.
    pub uncovered_weight: u64,
    /// Coreset base used per partition (before per-partition clamping).
    pub base: usize,
    /// `OutliersCluster` evaluations in the radius search.
    pub search_evaluations: usize,
    /// Execution accounting.
    pub report: ExecReport,
}

/// Removes the work directory on drop unless told to keep it.
struct WorkDirGuard {
    path: PathBuf,
    keep: bool,
}

impl Drop for WorkDirGuard {
    fn drop(&mut self) {
        if !self.keep {
            let _ = std::fs::remove_dir_all(&self.path);
        }
    }
}

/// One spawned worker under supervision: the child plus the threads
/// draining its stdout/stderr. Draining runs **concurrently** with the
/// worker — a worker that emits more than the pipe capacity (a full
/// backtrace, verbose diagnostics) must never block on `write(2)` and
/// masquerade as a timeout.
struct Running {
    partition: usize,
    child: Child,
    started: Instant,
    stdout: std::thread::JoinHandle<Vec<u8>>,
    stderr: std::thread::JoinHandle<Vec<u8>>,
}

impl Running {
    fn spawn(partition: usize, command: &mut Command) -> Result<Running, std::io::Error> {
        fn drain<R: std::io::Read + Send + 'static>(stream: R) -> std::thread::JoinHandle<Vec<u8>> {
            std::thread::spawn(move || {
                let mut stream = stream;
                let mut bytes = Vec::new();
                let _ = stream.read_to_end(&mut bytes);
                bytes
            })
        }
        let mut child = command
            .stdin(Stdio::null())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()?;
        let stdout = drain(child.stdout.take().expect("stdout was piped"));
        let stderr = drain(child.stderr.take().expect("stderr was piped"));
        Ok(Running {
            partition,
            child,
            started: Instant::now(),
            stdout,
            stderr,
        })
    }

    /// Reaps an exited worker: joins the drain threads and returns
    /// (wall, stdout, stderr).
    fn reap(mut self) -> (Duration, Vec<u8>, Vec<u8>) {
        let wall = self.started.elapsed();
        // The child already exited (try_wait returned a status); this
        // cannot block, and the drain threads see EOF promptly.
        let _ = self.child.wait();
        let stdout = self.stdout.join().unwrap_or_default();
        let stderr = self.stderr.join().unwrap_or_default();
        (wall, stdout, stderr)
    }
}

/// Kills every still-running child on drop, so no error path can leak
/// worker processes.
struct Fleet {
    running: Vec<Running>,
}

impl Drop for Fleet {
    fn drop(&mut self) {
        for running in &mut self.running {
            let _ = running.child.kill();
            let _ = running.child.wait();
        }
    }
}

/// One collected worker outcome.
struct WorkerOutcome {
    partition: usize,
    stat: WorkerStat,
    artifact: PathBuf,
}

/// Runs the multi-process 2-round k-center algorithm (the executor twin
/// of [`kcenter_core::mapreduce_kcenter::mr_kcenter`]): round 1 on real
/// worker processes, round 2 and the final objective in the coordinator.
///
/// # Errors
///
/// [`ExecError::Input`] for the same invalid configurations the
/// in-process engine rejects; the executor-specific variants for worker
/// spawn/crash/timeout/artifact failures.
pub fn exec_mr_kcenter(
    points: &[Point],
    metric: MetricKind,
    config: &MrKCenterConfig,
    exec: &ExecConfig,
) -> Result<ExecKCenterResult, ExecError> {
    config.validate(points.len())?;
    let round1_started = Instant::now();
    let partitions = nonempty_partitions(partition_dataset(points, config.ell, &Chunked));
    let jobs: Vec<WorkerJob> = partitions
        .iter()
        .map(|(part, members)| WorkerJob {
            partition: *part,
            base: config.k,
            start: config.round1_start(*part, members.len()),
        })
        .collect();
    let collected = run_round1(&partitions, &jobs, metric, config.coreset, exec)?;
    let round1_time = round1_started.elapsed();

    let round2_started = Instant::now();
    let union: Vec<Point> = collected
        .coresets
        .iter()
        .flat_map(|(p, _)| p.iter().cloned())
        .collect();
    let (centers, final_radius) = with_metric!(metric, m => {
        let selected = gmm_select(&union, m, config.k, 0);
        let centers: Vec<Point> = selected.centers.into_iter().map(|i| union[i].clone()).collect();
        let final_radius = radius(points, &centers, m);
        (centers, final_radius)
    });
    let round2_time = round2_started.elapsed();

    Ok(ExecKCenterResult {
        clustering: Clustering {
            centers,
            radius: final_radius,
        },
        report: ExecReport {
            coreset_sizes: collected.coresets.iter().map(|(p, _)| p.len()).collect(),
            union_size: union.len(),
            workers: collected.workers,
            round1_time,
            round2_time,
        },
    })
}

/// Runs the multi-process 2-round k-center-with-outliers algorithm
/// (the executor twin of
/// [`kcenter_core::mapreduce_outliers::mr_kcenter_outliers`]),
/// deterministic or randomized
/// per the configuration.
///
/// # Errors
///
/// As [`exec_mr_kcenter`].
pub fn exec_mr_outliers(
    points: &[Point],
    metric: MetricKind,
    config: &MrOutliersConfig,
    exec: &ExecConfig,
) -> Result<ExecOutliersResult, ExecError> {
    config.validate(points.len())?;
    let n = points.len();
    let base = config.coreset_base(n);

    let round1_started = Instant::now();
    let partitioner = config.partitioner();
    let partitions =
        nonempty_partitions(partition_dataset(points, config.ell, partitioner.as_ref()));
    let jobs: Vec<WorkerJob> = partitions
        .iter()
        .map(|(part, members)| WorkerJob {
            partition: *part,
            base: base.min(members.len()),
            start: config.round1_start(*part, members.len()),
        })
        .collect();
    let collected = run_round1(&partitions, &jobs, metric, config.coreset, exec)?;
    let round1_time = round1_started.elapsed();

    let round2_started = Instant::now();
    let coreset: WeightedCoreset<Point> = collected
        .coresets
        .iter()
        .flat_map(|(points, weights)| {
            points.iter().zip(weights).map(|(p, &w)| WeightedPoint {
                point: p.clone(),
                weight: w,
            })
        })
        .collect();
    let union_size = coreset.len();
    let (solution, final_radius) = with_metric!(metric, m => {
        // Same round-2 shape as the in-process reducer: price the union
        // into one oracle (which consults the persistent store when
        // installed) and search the radius on it.
        let oracle = CachedOracle::new(coreset.points_only(), m, config.matrix_threshold);
        let solution = solve_coreset_cached(
            &oracle,
            &coreset.weights(),
            config.k,
            config.z as u64,
            config.eps_hat,
            config.search,
        );
        let final_radius = radius_with_outliers(points, &solution.centers, config.z, m);
        (solution, final_radius)
    });
    let round2_time = round2_started.elapsed();

    Ok(ExecOutliersResult {
        clustering: Clustering {
            centers: solution.centers,
            radius: final_radius,
        },
        r_min: solution.r_min,
        uncovered_weight: solution.uncovered_weight,
        base,
        search_evaluations: solution.evaluations,
        report: ExecReport {
            coreset_sizes: collected.coresets.iter().map(|(p, _)| p.len()).collect(),
            union_size,
            workers: collected.workers,
            round1_time,
            round2_time,
        },
    })
}

/// Per-partition worker parameters the algorithm layer computes.
struct WorkerJob {
    partition: usize,
    base: usize,
    start: usize,
}

/// Round-1 results: weighted coresets in partition order plus accounting.
struct Collected {
    coresets: Vec<(Vec<Point>, Vec<u64>)>,
    workers: Vec<WorkerStat>,
}

/// Drops empty partitions, keeping each partition's id — the exact shape
/// of the in-process shuffle, whose `BTreeMap` grouping only ever sees
/// keys with at least one member and visits them in ascending order.
fn nonempty_partitions(buckets: Vec<Vec<Point>>) -> Vec<(usize, Vec<Point>)> {
    buckets
        .into_iter()
        .enumerate()
        .filter(|(_, members)| !members.is_empty())
        .collect()
}

/// Shards, spawns, supervises, and collects one round of workers.
fn run_round1(
    partitions: &[(usize, Vec<Point>)],
    jobs: &[WorkerJob],
    metric: MetricKind,
    spec: CoresetSpec,
    exec: &ExecConfig,
) -> Result<Collected, ExecError> {
    let work_dir = match &exec.work_dir {
        Some(dir) => dir.clone(),
        None => std::env::temp_dir().join(format!(
            "kcenter-exec-{}-{}",
            std::process::id(),
            RUN_SEQ.fetch_add(1, Ordering::Relaxed)
        )),
    };
    std::fs::create_dir_all(&work_dir)?;
    let guard = WorkDirGuard {
        path: work_dir.clone(),
        keep: exec.keep_work_dir,
    };

    // Shard: one input file per non-empty partition.
    let mut worker_args = Vec::with_capacity(jobs.len());
    for ((part, members), job) in partitions.iter().zip(jobs) {
        debug_assert_eq!(*part, job.partition);
        let shard = work_dir.join(format!("shard-{part:05}.kca"));
        let out = work_dir.join(format!("coreset-{part:05}.kca"));
        write_shard(&shard, members)?;
        worker_args.push(WorkerArgs {
            shard,
            out,
            metric,
            base: job.base,
            spec,
            start: job.start,
        });
    }

    // Spawn the fleet: one OS process per partition.
    let mut fleet = Fleet {
        running: Vec::with_capacity(worker_args.len()),
    };
    for ((part, _), args) in partitions.iter().zip(&worker_args) {
        let mut command = Command::new(&exec.worker.program);
        command
            .args(&exec.worker.args)
            .args(args.to_args())
            // The fault-injection hook must be *asked for*, never ambient:
            // a stray KCENTER_EXEC_FAULT left in the coordinator's
            // environment (say, from a debugging session) must not make
            // every worker crash or hang. Tests opt in explicitly through
            // `WorkerCommand::env`, which is applied after the strip.
            .env_remove(crate::worker::FAULT_ENV)
            .envs(exec.worker.env.iter().map(|(k, v)| (k, v)));
        let running = Running::spawn(*part, &mut command).map_err(|source| ExecError::Spawn {
            partition: *part,
            source,
        })?;
        fleet.running.push(running);
    }

    // Supervise: poll until every worker exits, the deadline passes, or a
    // worker fails (in which case the fleet guard kills the rest).
    let deadline = Instant::now() + exec.timeout;
    let mut outcomes: Vec<WorkerOutcome> = Vec::with_capacity(worker_args.len());
    while !fleet.running.is_empty() {
        if Instant::now() > deadline {
            let partition = fleet.running[0].partition;
            return Err(ExecError::WorkerTimeout {
                partition,
                timeout: exec.timeout,
            });
        }
        let mut progressed = false;
        let mut i = 0;
        while i < fleet.running.len() {
            match fleet.running[i].child.try_wait() {
                Ok(Some(status)) => {
                    progressed = true;
                    let running = fleet.running.swap_remove(i);
                    let partition = running.partition;
                    let (wall, stdout, stderr) = running.reap();
                    if !status.success() {
                        return Err(ExecError::WorkerFailed {
                            partition,
                            code: status.code(),
                            stderr: String::from_utf8_lossy(&stderr).into_owned(),
                        });
                    }
                    let stdout = String::from_utf8_lossy(&stdout);
                    let report = WorkerReport::parse(&stdout);
                    let job = jobs
                        .iter()
                        .position(|j| j.partition == partition)
                        .expect("outcome for a job we spawned");
                    outcomes.push(WorkerOutcome {
                        partition,
                        stat: WorkerStat {
                            partition,
                            shard_points: report.map_or(partitions[job].1.len(), |r| r.points),
                            coreset_size: report.map_or(0, |r| r.coreset),
                            wall,
                            build: Duration::from_micros(report.map_or(0, |r| r.build_micros)),
                        },
                        artifact: worker_args[job].out.clone(),
                    });
                }
                Ok(None) => i += 1,
                Err(err) => return Err(ExecError::Io(err)),
            }
        }
        if !progressed {
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    // Collect in ascending partition order — the shuffle's key order.
    outcomes.sort_by_key(|o| o.partition);
    let mut coresets = Vec::with_capacity(outcomes.len());
    let mut workers = Vec::with_capacity(outcomes.len());
    for outcome in outcomes {
        let (points, weights) =
            read_coreset_artifact(&outcome.artifact).map_err(|err| ExecError::BadArtifact {
                partition: outcome.partition,
                path: outcome.artifact.clone(),
                reason: err.to_string(),
            })?;
        let mut stat = outcome.stat;
        if stat.coreset_size == 0 {
            stat.coreset_size = points.len();
        }
        workers.push(stat);
        coresets.push((points, weights));
    }
    drop(guard);
    Ok(Collected { coresets, workers })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nonempty_partitions_keep_ids() {
        let buckets = vec![
            vec![Point::new(vec![1.0])],
            Vec::new(),
            vec![Point::new(vec![2.0]), Point::new(vec![3.0])],
        ];
        let parts = nonempty_partitions(buckets);
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].0, 0);
        assert_eq!(parts[1].0, 2);
        assert_eq!(parts[1].1.len(), 2);
    }

    #[test]
    fn invalid_configs_fail_before_any_process_work() {
        let points: Vec<Point> = (0..10).map(|i| Point::new(vec![i as f64])).collect();
        let exec = ExecConfig::new(WorkerCommand::new("/nonexistent/worker", &[]));
        let bad = MrKCenterConfig {
            k: 0,
            ell: 2,
            coreset: CoresetSpec::Multiplier { mu: 1 },
            seed: 0,
        };
        assert!(matches!(
            exec_mr_kcenter(&points, MetricKind::Euclidean, &bad, &exec),
            Err(ExecError::Input(_))
        ));
        let mut bad_outliers =
            MrOutliersConfig::deterministic(2, 1, 0, CoresetSpec::Multiplier { mu: 1 });
        bad_outliers.ell = 0;
        assert!(matches!(
            exec_mr_outliers(&points, MetricKind::Euclidean, &bad_outliers, &exec),
            Err(ExecError::Input(_))
        ));
    }
}
