//! On-disk point shards: the executor's input interchange format.
//!
//! The coordinator writes one shard file per worker (partition) using the
//! store codec's `Shard` kind — versioned, checksummed, coordinates laid
//! out as one contiguous 8-byte-aligned little-endian `f64` block — and
//! each worker loads its shard back. On Linux the load memory-maps the
//! file and views the coordinate block in place as a [`PointSet`] — the
//! shard's on-disk point-major layout *is* the `PointSet` layout, so the
//! distance kernels run over the page cache with **zero** copies;
//! elsewhere, or on any mapping failure, it falls back to `read` + decode
//! into an owned set. Both paths produce bit-identical coordinates and
//! reject any corruption — including forged non-finite values, which the
//! checksum cannot catch — as a clean [`DecodeError`].

use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use kcenter_metric::{Point, PointSet};
use kcenter_store::codec::{self, DecodeError};

/// Per-process sequence for unique temporary shard/artifact names.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// Why a shard (or worker-result artifact) could not be loaded.
#[derive(Debug)]
pub enum ShardError {
    /// The file could not be read.
    Io(io::Error),
    /// The file's contents failed codec validation.
    Decode(DecodeError),
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::Io(err) => write!(f, "cannot read shard: {err}"),
            ShardError::Decode(err) => write!(f, "invalid shard: {err}"),
        }
    }
}

impl std::error::Error for ShardError {}

/// Atomically writes `bytes` at `path` (unique temp file + rename), so a
/// reader — or a crash — can only ever observe a complete file.
pub fn write_artifact_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let dir = path.parent().unwrap_or_else(|| Path::new("."));
    let tmp: PathBuf = dir.join(format!(
        "tmp-shard-{}-{}",
        std::process::id(),
        TMP_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::write(&tmp, bytes)?;
    std::fs::rename(&tmp, path).inspect_err(|_| {
        let _ = std::fs::remove_file(&tmp);
    })
}

/// Writes `points` as a shard file at `path` (atomic temp + rename).
pub fn write_shard(path: &Path, points: &[Point]) -> io::Result<()> {
    write_artifact_atomic(path, &codec::encode_shard(points))
}

/// Loads a shard file as owned [`Point`]s (one allocation per point).
///
/// Thin compatibility wrapper over [`read_shard_set`]; prefer the set for
/// anything that feeds the distance kernels.
pub fn read_shard(path: &Path) -> Result<Vec<Point>, ShardError> {
    read_shard_set(path).map(|set| set.to_points())
}

/// Loads a shard file as a [`PointSet`], memory-mapping it when the
/// platform allows.
///
/// On the mmap path the returned set *is* the mapped coordinate block —
/// the `f64` run validated by [`codec::validate_shard`] (framing,
/// checksum) and [`codec::validate_shard_coords`] (finiteness, the same
/// invariant `Point::try_new` enforces) — so shard bytes flow into the
/// block distance kernels with zero copies. Any mapping failure falls
/// back to the canonical `read` + decode path (which also classifies the
/// error) and an owned coordinate block; both paths are bitwise
/// identical.
pub fn read_shard_set(path: &Path) -> Result<PointSet, ShardError> {
    #[cfg(all(target_os = "linux", target_endian = "little"))]
    if let Some(set) = read_shard_set_mapped(path) {
        return Ok(set);
    }
    let bytes = std::fs::read(path).map_err(ShardError::Io)?;
    let points = codec::decode_shard(&bytes).map_err(ShardError::Decode)?;
    Ok(PointSet::from_points(&points))
}

/// The mmap fast path: validate the mapped entry (structure *and*
/// coordinate finiteness), then view the coordinate block in place. Any
/// failure returns `None` and the caller re-answers through the canonical
/// read + decode path (which also classifies the error).
#[cfg(all(target_os = "linux", target_endian = "little"))]
fn read_shard_set_mapped(path: &Path) -> Option<PointSet> {
    use std::sync::Arc;

    use kcenter_metric::StableF64s;
    use kcenter_store::mmap::{MappedF64s, MappedFile};

    let map = MappedFile::open(path).ok()?;
    let layout = codec::validate_shard(map.bytes()).ok()?;
    if layout.n == 0 {
        return Some(PointSet::from_points(&[]));
    }
    let block = MappedF64s::new(map, layout.coords_offset, layout.n * layout.dim)?;
    codec::validate_shard_coords(block.stable_f64s()).ok()?;
    PointSet::try_from_shared(Arc::new(block), layout.n, layout.dim).ok()
}

/// Loads a worker's coreset-result artifact (points + weights).
pub fn read_coreset_artifact(path: &Path) -> Result<(Vec<Point>, Vec<u64>), ShardError> {
    let bytes = std::fs::read(path).map_err(ShardError::Io)?;
    codec::decode_coreset(&bytes).map_err(ShardError::Decode)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("kcenter-exec-shard");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}", std::process::id()))
    }

    #[test]
    fn shard_write_read_round_trip_is_bitwise() {
        let points: Vec<Point> = (0..100)
            .map(|i| Point::new(vec![i as f64 * 0.1, -0.0 - i as f64, 1e-300 * i as f64]))
            .collect();
        let path = tmp("roundtrip.kca");
        write_shard(&path, &points).unwrap();
        let back = read_shard(&path).unwrap();
        assert_eq!(back.len(), points.len());
        for (a, b) in back.iter().zip(&points) {
            for (ca, cb) in a.coords().iter().zip(b.coords()) {
                assert_eq!(ca.to_bits(), cb.to_bits());
            }
        }
    }

    #[test]
    fn empty_shard_round_trips() {
        let path = tmp("empty.kca");
        write_shard(&path, &[]).unwrap();
        assert_eq!(read_shard(&path).unwrap(), Vec::<Point>::new());
    }

    #[test]
    fn shard_set_matches_owned_points_bitwise() {
        let points: Vec<Point> = (0..64)
            .map(|i| Point::new(vec![i as f64 * 0.7, -0.0, 1e-300 * (i + 1) as f64]))
            .collect();
        let path = tmp("set.kca");
        write_shard(&path, &points).unwrap();
        let set = read_shard_set(&path).unwrap();
        assert_eq!(set.len(), points.len());
        assert_eq!(set.dim(), 3);
        for (r, p) in set.iter().zip(&points) {
            for (ca, cb) in r.coords().iter().zip(p.coords()) {
                assert_eq!(ca.to_bits(), cb.to_bits());
            }
        }
        // Empty shard loads as an empty set.
        let empty = tmp("set-empty.kca");
        write_shard(&empty, &[]).unwrap();
        assert!(read_shard_set(&empty).unwrap().is_empty());
    }

    #[test]
    fn nan_shard_with_valid_checksum_is_a_clean_decode_error() {
        // Forge a shard whose framing and checksum are *valid* but whose
        // one coordinate is NaN: the checksum vouches for the bytes, so
        // only the coordinate-finiteness validation stands between the
        // mapped block and NaN-poisoned distances.
        let mut payload = Vec::new();
        payload.extend_from_slice(&1u64.to_le_bytes()); // n
        payload.extend_from_slice(&1u64.to_le_bytes()); // dim
        payload.extend_from_slice(&f64::NAN.to_bits().to_le_bytes());
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&codec::MAGIC);
        bytes.extend_from_slice(&codec::CODEC_VERSION.to_le_bytes());
        bytes.extend_from_slice(&codec::ArtifactKind::Shard.tag().to_le_bytes());
        bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        let sum = kcenter_metric::fingerprint::checksum64(&payload);
        bytes.extend_from_slice(&sum.to_le_bytes());
        bytes.extend_from_slice(&payload);

        let path = tmp("nan-shard.kca");
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_shard_set(&path),
            Err(ShardError::Decode(DecodeError::Malformed))
        ));
        assert!(matches!(
            read_shard(&path),
            Err(ShardError::Decode(DecodeError::Malformed))
        ));
    }

    #[test]
    fn truncated_shard_is_a_clean_error() {
        let points: Vec<Point> = (0..10).map(|i| Point::new(vec![i as f64])).collect();
        let path = tmp("truncated.kca");
        write_shard(&path, &points).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(matches!(
            read_shard(&path),
            Err(ShardError::Decode(DecodeError::Truncated))
        ));
    }

    #[test]
    fn missing_shard_is_an_io_error() {
        assert!(matches!(
            read_shard(Path::new("/nonexistent/shard.kca")),
            Err(ShardError::Io(_))
        ));
    }

    #[test]
    fn coreset_artifact_round_trip() {
        let points: Vec<Point> = (0..4).map(|i| Point::new(vec![i as f64, 2.0])).collect();
        let weights = vec![1u64, 5, 2, 9];
        let path = tmp("coreset.kca");
        write_artifact_atomic(&path, &codec::encode_coreset(&points, &weights)).unwrap();
        let (p, w) = read_coreset_artifact(&path).unwrap();
        assert_eq!(p, points);
        assert_eq!(w, weights);
        // A truncated artifact is a decode error, never a panic.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        assert!(matches!(
            read_coreset_artifact(&path),
            Err(ShardError::Decode(_))
        ));
    }
}
