//! On-disk point shards: the executor's input interchange format.
//!
//! The coordinator writes one shard file per worker (partition) using the
//! store codec's `Shard` kind — versioned, checksummed, coordinates laid
//! out as one contiguous 8-byte-aligned little-endian `f64` block — and
//! each worker loads its shard back. On Linux the load memory-maps the
//! file and walks the coordinate block in place (one copy, mapping →
//! `Point` allocations); elsewhere, or on any mapping failure, it falls
//! back to `read` + decode. Both paths produce bit-identical points and
//! reject any corruption as a clean [`DecodeError`].

use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use kcenter_metric::Point;
use kcenter_store::codec::{self, DecodeError};

/// Per-process sequence for unique temporary shard/artifact names.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// Why a shard (or worker-result artifact) could not be loaded.
#[derive(Debug)]
pub enum ShardError {
    /// The file could not be read.
    Io(io::Error),
    /// The file's contents failed codec validation.
    Decode(DecodeError),
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::Io(err) => write!(f, "cannot read shard: {err}"),
            ShardError::Decode(err) => write!(f, "invalid shard: {err}"),
        }
    }
}

impl std::error::Error for ShardError {}

/// Atomically writes `bytes` at `path` (unique temp file + rename), so a
/// reader — or a crash — can only ever observe a complete file.
pub fn write_artifact_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let dir = path.parent().unwrap_or_else(|| Path::new("."));
    let tmp: PathBuf = dir.join(format!(
        "tmp-shard-{}-{}",
        std::process::id(),
        TMP_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::write(&tmp, bytes)?;
    std::fs::rename(&tmp, path).inspect_err(|_| {
        let _ = std::fs::remove_file(&tmp);
    })
}

/// Writes `points` as a shard file at `path` (atomic temp + rename).
pub fn write_shard(path: &Path, points: &[Point]) -> io::Result<()> {
    write_artifact_atomic(path, &codec::encode_shard(points))
}

/// Loads a shard file, memory-mapping it when the platform allows.
pub fn read_shard(path: &Path) -> Result<Vec<Point>, ShardError> {
    #[cfg(all(target_os = "linux", target_endian = "little"))]
    if let Some(points) = read_shard_mapped(path) {
        return Ok(points);
    }
    let bytes = std::fs::read(path).map_err(ShardError::Io)?;
    codec::decode_shard(&bytes).map_err(ShardError::Decode)
}

/// The mmap fast path: validate the mapped entry, then build points
/// straight from the mapped coordinate block. Any failure returns `None`
/// and the caller re-answers through the canonical read + decode path
/// (which also classifies the error).
#[cfg(all(target_os = "linux", target_endian = "little"))]
fn read_shard_mapped(path: &Path) -> Option<Vec<Point>> {
    use kcenter_metric::StableF64s;
    use kcenter_store::mmap::{MappedF64s, MappedFile};

    let map = MappedFile::open(path).ok()?;
    let layout = codec::validate_shard(map.bytes()).ok()?;
    if layout.n == 0 {
        return Some(Vec::new());
    }
    let block = MappedF64s::new(map, layout.coords_offset, layout.n * layout.dim)?;
    let coords = block.stable_f64s();
    let mut points = Vec::with_capacity(layout.n);
    for chunk in coords.chunks_exact(layout.dim) {
        points.push(Point::try_new(chunk.to_vec()).ok()?);
    }
    Some(points)
}

/// Loads a worker's coreset-result artifact (points + weights).
pub fn read_coreset_artifact(path: &Path) -> Result<(Vec<Point>, Vec<u64>), ShardError> {
    let bytes = std::fs::read(path).map_err(ShardError::Io)?;
    codec::decode_coreset(&bytes).map_err(ShardError::Decode)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("kcenter-exec-shard");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}", std::process::id()))
    }

    #[test]
    fn shard_write_read_round_trip_is_bitwise() {
        let points: Vec<Point> = (0..100)
            .map(|i| Point::new(vec![i as f64 * 0.1, -0.0 - i as f64, 1e-300 * i as f64]))
            .collect();
        let path = tmp("roundtrip.kca");
        write_shard(&path, &points).unwrap();
        let back = read_shard(&path).unwrap();
        assert_eq!(back.len(), points.len());
        for (a, b) in back.iter().zip(&points) {
            for (ca, cb) in a.coords().iter().zip(b.coords()) {
                assert_eq!(ca.to_bits(), cb.to_bits());
            }
        }
    }

    #[test]
    fn empty_shard_round_trips() {
        let path = tmp("empty.kca");
        write_shard(&path, &[]).unwrap();
        assert_eq!(read_shard(&path).unwrap(), Vec::<Point>::new());
    }

    #[test]
    fn truncated_shard_is_a_clean_error() {
        let points: Vec<Point> = (0..10).map(|i| Point::new(vec![i as f64])).collect();
        let path = tmp("truncated.kca");
        write_shard(&path, &points).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(matches!(
            read_shard(&path),
            Err(ShardError::Decode(DecodeError::Truncated))
        ));
    }

    #[test]
    fn missing_shard_is_an_io_error() {
        assert!(matches!(
            read_shard(Path::new("/nonexistent/shard.kca")),
            Err(ShardError::Io(_))
        ));
    }

    #[test]
    fn coreset_artifact_round_trip() {
        let points: Vec<Point> = (0..4).map(|i| Point::new(vec![i as f64, 2.0])).collect();
        let weights = vec![1u64, 5, 2, 9];
        let path = tmp("coreset.kca");
        write_artifact_atomic(&path, &codec::encode_coreset(&points, &weights)).unwrap();
        let (p, w) = read_coreset_artifact(&path).unwrap();
        assert_eq!(p, points);
        assert_eq!(w, weights);
        // A truncated artifact is a decode error, never a panic.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        assert!(matches!(
            read_coreset_artifact(&path),
            Err(ShardError::Decode(_))
        ));
    }
}
