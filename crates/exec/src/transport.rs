//! The transport seam of the executor: how a coordinator reaches its
//! workers.
//!
//! Everything above this module speaks in **frames** (see
//! [`crate::protocol`] and `docs/PROTOCOL.md`); everything below it is a
//! byte stream with a lifecycle. A [`Transport`] hands the fleet
//! [`WorkerLink`]s — a framed send half, a framed receive half, and a
//! liveness/teardown control — and the fleet neither knows nor cares
//! whether the bytes cross a pipe to a child process or a TCP connection
//! to a worker on another host.
//!
//! Two backends ship:
//!
//! * [`PipeTransport`] — the default. Spawns one child process per link
//!   (`worker --serve`) and frames over its stdin/stdout, exactly the
//!   pre-transport behaviour: same argv, same environment hygiene
//!   (`KCENTER_EXEC_FAULT` and `KCENTER_CACHE_DIR` stripped), same
//!   reaping semantics (kill, wait, join the stderr drain).
//! * [`TcpDialTransport`] — connects out to workers started
//!   independently with `kcenter worker --listen ADDR`. Each worker
//!   address is a **slot**: one live link per address, re-dialled (with
//!   bounded backoff) when its link is lost, which is what folds
//!   *reconnect* into the fleet's existing respawn/replay containment.
//!   Per-frame read/write deadlines are armed on the socket so a dead
//!   peer can stall a frame only for a bounded time.
//!
//! [`TcpAcceptTransport`] is the inverse arrangement — the coordinator
//! listens and workers dial in with `kcenter worker --connect ADDR` —
//! for clusters where only the coordinator has a routable address.
//!
//! A remote link carries no artifact bytes: jobs reference shards and
//! coresets by path, so cross-host runs point workers at shared storage
//! (the coordinator's `@store/NAME` references resolve against the
//! worker's `--store` root; see `docs/PROTOCOL.md` §Paths).

use std::io::{self, BufReader, BufWriter, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::protocol::{read_frame, write_frame};

/// How to invoke a worker process: a program plus fixed leading arguments
/// (the fleet appends `--serve`; one-shot spawns append the per-partition
/// worker flags) and extra environment variables (set on top of the
/// inherited environment, after the coordinator's strip of
/// `KCENTER_EXEC_FAULT` and `KCENTER_CACHE_DIR`).
#[derive(Clone, Debug)]
pub struct WorkerCommand {
    /// Program to execute.
    pub program: PathBuf,
    /// Leading arguments (e.g. a hidden `worker` subcommand).
    pub args: Vec<String>,
    /// Extra environment for the workers (e.g. `RAYON_NUM_THREADS`, or
    /// the fault-injection hook in tests).
    pub env: Vec<(String, String)>,
}

impl WorkerCommand {
    /// A worker command from an explicit program and leading arguments.
    pub fn new(program: impl Into<PathBuf>, args: &[&str]) -> WorkerCommand {
        WorkerCommand {
            program: program.into(),
            args: args.iter().map(|s| s.to_string()).collect(),
            env: Vec::new(),
        }
    }

    /// Re-invokes the **current executable** with the given leading
    /// arguments — the standard deployment shape: one binary, a hidden
    /// worker mode.
    pub fn current_exe(args: &[&str]) -> std::io::Result<WorkerCommand> {
        Ok(WorkerCommand::new(std::env::current_exe()?, args))
    }

    /// Adds an environment variable for every spawned worker.
    pub fn env(mut self, key: impl Into<String>, value: impl Into<String>) -> WorkerCommand {
        self.env.push((key.into(), value.into()));
        self
    }
}

/// The sending half of a worker link: whole frames out.
pub trait FrameTx: Send {
    /// Writes one frame. A failed write means the link is dead or dying;
    /// the fleet leaves the job assigned and lets the receive half's EOF
    /// drive the replay.
    fn send(&mut self, parts: &[String]) -> io::Result<()>;

    /// Closes the sending direction (drops the pipe / shuts down the
    /// socket's write half) so the peer observes a clean EOF. Receiving
    /// may continue.
    fn close(&mut self);
}

/// The receiving half of a worker link: whole frames in, `Ok(None)` on a
/// clean EOF. Runs on the fleet's per-link reader thread.
pub trait FrameRx: Send {
    /// Reads the next frame; `Ok(None)` is a clean hang-up, `Err` is a
    /// torn frame or an expired read deadline — the fleet treats both
    /// terminal outcomes identically (reap + replay).
    fn recv(&mut self) -> io::Result<Option<Vec<String>>>;
}

/// Lifecycle control for one link: liveness probing and teardown.
pub trait LinkControl: Send {
    /// Forcibly tears the link down (kills the child / shuts the socket).
    /// Idempotent.
    fn kill(&mut self);

    /// Tears down and collects the post-mortem: the exit code when the
    /// other side was a child process that exited normally (`None` for a
    /// signal death or a remote peer), plus captured diagnostics (the
    /// child's stderr, or a description of the lost connection).
    fn reap(&mut self) -> (Option<i32>, String);

    /// Whether the other side is already gone — the fleet's shutdown
    /// grace loop polls this. Remote links report `true` (there is no
    /// process to wait for once the frames stop).
    fn exited(&mut self) -> bool;

    /// Human-readable endpoint identity (`pid N` / `tcp://host:port`)
    /// used to attribute handshake rejections and failures.
    fn describe(&self) -> String;
}

/// One established worker link: framed send/recv plus lifecycle control.
pub struct WorkerLink {
    /// Frame writer (requests out).
    pub tx: Box<dyn FrameTx>,
    /// Frame reader (replies in); consumed by the fleet's reader thread.
    pub rx: Box<dyn FrameRx>,
    /// Liveness and teardown.
    pub control: Box<dyn LinkControl>,
}

/// A source of worker links. The fleet calls [`Transport::connect`]
/// whenever it wants one more live worker (initial ramp-up *and* the
/// respawn path after a mid-job death), so a backend that re-establishes
/// lost connections implements reconnection by construction.
pub trait Transport: Send {
    /// Establishes one new worker link.
    fn connect(&mut self) -> io::Result<WorkerLink>;

    /// Connections re-established after a loss (0 for process pipes,
    /// which respawn rather than reconnect). Monotonic over the
    /// transport's lifetime; the coordinator diffs it per run.
    fn reconnects(&self) -> usize {
        0
    }

    /// Whether links cross a host boundary — when `true` the coordinator
    /// sends store-relative `@store/NAME` artifact references instead of
    /// absolute local paths wherever it can.
    fn is_remote(&self) -> bool {
        false
    }

    /// Short backend name for accounting lines (`pipe` / `tcp`).
    fn name(&self) -> &'static str;
}

/// Which transport backend an execution should use — the serializable
/// description [`crate::ExecConfig`] carries; resolved to a live
/// [`Transport`] by `WorkerFleet::from_config`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub enum TransportSpec {
    /// Child processes over stdin/stdout pipes (the default).
    #[default]
    Pipe,
    /// Dial out to independently started `worker --listen` processes.
    TcpConnect {
        /// Worker addresses (`host:port`), one fleet slot each.
        addrs: Vec<String>,
    },
    /// Listen and let `worker --connect` processes dial in.
    TcpAccept {
        /// Address to bind (`host:port`; port 0 picks a free port).
        bind: String,
    },
}

// ---------------------------------------------------------------------------
// Pipe backend
// ---------------------------------------------------------------------------

/// The default backend: one child process per link, frames over its
/// stdin/stdout. Behaviour-preserving with the pre-transport fleet.
pub struct PipeTransport {
    command: WorkerCommand,
}

impl PipeTransport {
    /// A pipe transport spawning workers with `command`.
    pub fn new(command: WorkerCommand) -> PipeTransport {
        PipeTransport { command }
    }
}

struct PipeTx {
    stdin: Option<ChildStdin>,
}

impl FrameTx for PipeTx {
    fn send(&mut self, parts: &[String]) -> io::Result<()> {
        match self.stdin.as_mut() {
            Some(stdin) => write_frame(stdin, parts),
            None => Err(io::Error::new(io::ErrorKind::BrokenPipe, "stdin closed")),
        }
    }

    fn close(&mut self) {
        drop(self.stdin.take());
    }
}

struct PipeRx {
    reader: BufReader<std::process::ChildStdout>,
}

impl FrameRx for PipeRx {
    fn recv(&mut self) -> io::Result<Option<Vec<String>>> {
        read_frame(&mut self.reader)
    }
}

struct PipeControl {
    child: Child,
    /// Drains stderr concurrently (a chatty worker must never block on a
    /// full pipe); joined at reap time for the failure report.
    stderr: Option<std::thread::JoinHandle<Vec<u8>>>,
}

impl LinkControl for PipeControl {
    fn kill(&mut self) {
        let _ = self.child.kill();
    }

    fn reap(&mut self) -> (Option<i32>, String) {
        let _ = self.child.kill();
        let code = self.child.wait().ok().and_then(|status| status.code());
        let stderr = self
            .stderr
            .take()
            .and_then(|h| h.join().ok())
            .unwrap_or_default();
        (code, String::from_utf8_lossy(&stderr).into_owned())
    }

    fn exited(&mut self) -> bool {
        matches!(self.child.try_wait(), Ok(Some(_)))
    }

    fn describe(&self) -> String {
        format!("worker process pid {}", self.child.id())
    }
}

impl Transport for PipeTransport {
    fn connect(&mut self) -> io::Result<WorkerLink> {
        let mut command = Command::new(&self.command.program);
        command
            .args(&self.command.args)
            .arg("--serve")
            // These hooks must be *asked for*, never ambient: a stray
            // KCENTER_EXEC_FAULT from a debugging session must not make
            // every worker crash, a stray KCENTER_CACHE_DIR must not
            // let fleet workers silently diverge in cache accounting from
            // the in-process engines, and the coordinator's KCENTER_TRACE
            // must not have every pipe worker clobbering the same trace
            // file (workers report telemetry back on the wire instead).
            // Opt-ins go through `WorkerCommand::env`, which is applied
            // after the strip.
            .env_remove(crate::worker::FAULT_ENV)
            .env_remove(kcenter_store::CACHE_DIR_ENV)
            .env_remove(kcenter_obs::TRACE_ENV)
            .envs(self.command.env.iter().map(|(k, v)| (k, v)))
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped());
        let mut child = command.spawn()?;
        let stdin = child.stdin.take().expect("stdin was piped");
        let stdout = child.stdout.take().expect("stdout was piped");
        let stderr = child.stderr.take().expect("stderr was piped");
        let stderr_handle = std::thread::spawn(move || {
            let mut stream = stderr;
            let mut bytes = Vec::new();
            let _ = stream.read_to_end(&mut bytes);
            bytes
        });
        Ok(WorkerLink {
            tx: Box::new(PipeTx { stdin: Some(stdin) }),
            rx: Box::new(PipeRx {
                reader: BufReader::new(stdout),
            }),
            control: Box::new(PipeControl {
                child,
                stderr: Some(stderr_handle),
            }),
        })
    }

    fn name(&self) -> &'static str {
        "pipe"
    }
}

// ---------------------------------------------------------------------------
// TCP backends
// ---------------------------------------------------------------------------

/// Socket options shared by both TCP backends.
fn configure_tcp(
    stream: &TcpStream,
    read_timeout: Option<Duration>,
    write_timeout: Option<Duration>,
) -> io::Result<()> {
    // One small frame per request/reply round: Nagle only adds latency.
    stream.set_nodelay(true)?;
    // The per-frame deadlines. An expired read deadline surfaces on the
    // reader thread as an error → an EOF event → reap + replay, exactly
    // the containment path a died pipe worker takes.
    stream.set_read_timeout(read_timeout)?;
    stream.set_write_timeout(write_timeout)?;
    Ok(())
}

struct TcpTx {
    writer: BufWriter<TcpStream>,
}

impl FrameTx for TcpTx {
    fn send(&mut self, parts: &[String]) -> io::Result<()> {
        write_frame(&mut self.writer, parts)?;
        self.writer.flush()
    }

    fn close(&mut self) {
        let _ = self.writer.flush();
        let _ = self.writer.get_ref().shutdown(Shutdown::Write);
    }
}

struct TcpRx {
    reader: BufReader<TcpStream>,
}

impl FrameRx for TcpRx {
    fn recv(&mut self) -> io::Result<Option<Vec<String>>> {
        read_frame(&mut self.reader)
    }
}

struct TcpControl {
    stream: TcpStream,
    peer: String,
    /// The dial slot this link occupies; cleared on drop so the address
    /// becomes re-diallable (the reconnect path).
    slot: Arc<AtomicBool>,
}

impl LinkControl for TcpControl {
    fn kill(&mut self) {
        let _ = self.stream.shutdown(Shutdown::Both);
    }

    fn reap(&mut self) -> (Option<i32>, String) {
        self.kill();
        (None, format!("lost connection to worker at {}", self.peer))
    }

    fn exited(&mut self) -> bool {
        // The remote process is not ours to wait for; once the frames
        // stop the link is gone.
        true
    }

    fn describe(&self) -> String {
        format!("worker at tcp://{}", self.peer)
    }
}

impl Drop for TcpControl {
    fn drop(&mut self) {
        self.slot.store(false, Ordering::Release);
    }
}

/// One worker address a [`TcpDialTransport`] manages.
struct DialSlot {
    addr: String,
    /// Whether a live link currently occupies this address.
    in_use: Arc<AtomicBool>,
    /// Successful connections to this address so far; the ones beyond
    /// the first are reconnects.
    connects: usize,
}

/// Dial-out backend: the coordinator connects to workers started with
/// `kcenter worker --listen ADDR`. One link per address; a lost link
/// frees its address and the next [`Transport::connect`] re-dials it
/// with bounded backoff.
pub struct TcpDialTransport {
    slots: Vec<DialSlot>,
    attempts: u32,
    initial_backoff: Duration,
    read_timeout: Option<Duration>,
    write_timeout: Option<Duration>,
    reconnects: usize,
}

impl TcpDialTransport {
    /// A dial transport over `addrs` (`host:port` each) with default
    /// deadlines: 30 s per frame write, no read deadline until
    /// [`TcpDialTransport::with_deadlines`] arms one.
    pub fn new(addrs: Vec<String>) -> TcpDialTransport {
        TcpDialTransport {
            slots: addrs
                .into_iter()
                .map(|addr| DialSlot {
                    addr,
                    in_use: Arc::new(AtomicBool::new(false)),
                    connects: 0,
                })
                .collect(),
            attempts: 5,
            initial_backoff: Duration::from_millis(50),
            read_timeout: None,
            write_timeout: Some(Duration::from_secs(30)),
            reconnects: 0,
        }
    }

    /// Sets the per-frame read/write deadlines armed on every connection.
    pub fn with_deadlines(
        mut self,
        read: Option<Duration>,
        write: Option<Duration>,
    ) -> TcpDialTransport {
        self.read_timeout = read;
        self.write_timeout = write;
        self
    }

    /// Number of worker addresses (the natural fleet cap).
    pub fn addr_count(&self) -> usize {
        self.slots.len()
    }

    /// Dials `addr` with bounded exponential backoff.
    fn dial(addr: &str, attempts: u32, initial: Duration) -> io::Result<TcpStream> {
        let mut delay = initial;
        let mut last = None;
        for attempt in 0..attempts.max(1) {
            if attempt > 0 {
                std::thread::sleep(delay);
                delay = delay.saturating_mul(2);
            }
            match TcpStream::connect(addr) {
                Ok(stream) => return Ok(stream),
                Err(err) => last = Some(err),
            }
        }
        Err(last.unwrap_or_else(|| io::Error::other(format!("cannot connect to {addr}"))))
    }
}

impl Transport for TcpDialTransport {
    fn connect(&mut self) -> io::Result<WorkerLink> {
        let slot = self
            .slots
            .iter_mut()
            .find(|slot| !slot.in_use.load(Ordering::Acquire))
            .ok_or_else(|| {
                io::Error::other("every worker address already has a live connection")
            })?;
        let stream = Self::dial(&slot.addr, self.attempts, self.initial_backoff)?;
        configure_tcp(&stream, self.read_timeout, self.write_timeout)?;
        if slot.connects > 0 {
            self.reconnects += 1;
        }
        slot.connects += 1;
        slot.in_use.store(true, Ordering::Release);
        let peer = slot.addr.clone();
        let guard = Arc::clone(&slot.in_use);
        Ok(WorkerLink {
            tx: Box::new(TcpTx {
                writer: BufWriter::new(stream.try_clone()?),
            }),
            rx: Box::new(TcpRx {
                reader: BufReader::new(stream.try_clone()?),
            }),
            control: Box::new(TcpControl {
                stream,
                peer,
                slot: guard,
            }),
        })
    }

    fn reconnects(&self) -> usize {
        self.reconnects
    }

    fn is_remote(&self) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "tcp"
    }
}

/// Listen-side backend: the coordinator binds an address and workers
/// started with `kcenter worker --connect ADDR` dial in. Each
/// [`Transport::connect`] call accepts the next inbound worker, waiting
/// up to the accept deadline.
pub struct TcpAcceptTransport {
    bind_addr: String,
    listener: Option<TcpListener>,
    accept_timeout: Duration,
    read_timeout: Option<Duration>,
    write_timeout: Option<Duration>,
}

impl TcpAcceptTransport {
    /// Binds `addr` (`host:port`; port 0 picks a free port) eagerly so
    /// [`TcpAcceptTransport::local_addr`] is known before any worker
    /// dials in.
    pub fn bind(addr: &str, accept_timeout: Duration) -> io::Result<TcpAcceptTransport> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(TcpAcceptTransport {
            bind_addr: addr.to_string(),
            listener: Some(listener),
            accept_timeout,
            read_timeout: None,
            write_timeout: Some(Duration::from_secs(30)),
        })
    }

    /// As [`TcpAcceptTransport::bind`], but deferring the bind to the
    /// first [`Transport::connect`] — the infallible shape
    /// `WorkerFleet::from_config` needs (a bad address then surfaces as
    /// a spawn error on the run, not a panic at fleet construction).
    pub fn lazy(addr: String, accept_timeout: Duration) -> TcpAcceptTransport {
        TcpAcceptTransport {
            bind_addr: addr,
            listener: None,
            accept_timeout,
            read_timeout: None,
            write_timeout: Some(Duration::from_secs(30)),
        }
    }

    /// Sets the per-frame read/write deadlines armed on every connection.
    pub fn with_deadlines(
        mut self,
        read: Option<Duration>,
        write: Option<Duration>,
    ) -> TcpAcceptTransport {
        self.read_timeout = read;
        self.write_timeout = write;
        self
    }

    /// The bound address (known once bound; port 0 has been resolved).
    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.listener.as_ref().and_then(|l| l.local_addr().ok())
    }

    fn ensure_bound(&mut self) -> io::Result<&TcpListener> {
        if self.listener.is_none() {
            let listener = TcpListener::bind(&self.bind_addr)?;
            listener.set_nonblocking(true)?;
            self.listener = Some(listener);
        }
        Ok(self.listener.as_ref().expect("just bound"))
    }
}

impl Transport for TcpAcceptTransport {
    fn connect(&mut self) -> io::Result<WorkerLink> {
        let accept_timeout = self.accept_timeout;
        let (read_timeout, write_timeout) = (self.read_timeout, self.write_timeout);
        let listener = self.ensure_bound()?;
        let deadline = Instant::now() + accept_timeout;
        let (stream, peer) = loop {
            match listener.accept() {
                Ok(accepted) => break accepted,
                Err(err) if err.kind() == io::ErrorKind::WouldBlock => {
                    if Instant::now() >= deadline {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            format!(
                                "no worker dialled in within {:.1}s",
                                accept_timeout.as_secs_f64()
                            ),
                        ));
                    }
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(err) => return Err(err),
            }
        };
        // The listener is non-blocking for the poll loop above; the
        // accepted connection must block (with the armed deadlines).
        stream.set_nonblocking(false)?;
        configure_tcp(&stream, read_timeout, write_timeout)?;
        Ok(WorkerLink {
            tx: Box::new(TcpTx {
                writer: BufWriter::new(stream.try_clone()?),
            }),
            rx: Box::new(TcpRx {
                reader: BufReader::new(stream.try_clone()?),
            }),
            control: Box::new(TcpControl {
                stream,
                peer: peer.to_string(),
                slot: Arc::new(AtomicBool::new(true)),
            }),
        })
    }

    fn is_remote(&self) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "tcp"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dial_slots_free_on_control_drop_and_count_reconnects() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let accepter = std::thread::spawn(move || {
            let mut held = Vec::new();
            for _ in 0..2 {
                held.push(listener.accept().unwrap());
            }
            held
        });
        let mut transport = TcpDialTransport::new(vec![addr]);
        let link = transport.connect().unwrap();
        assert_eq!(transport.reconnects(), 0);
        // The single slot is occupied: a second connect must refuse.
        assert!(transport.connect().is_err());
        drop(link);
        // Freed: the re-dial succeeds and counts as a reconnect.
        let _link2 = transport.connect().unwrap();
        assert_eq!(transport.reconnects(), 1);
        drop(_link2);
        let _ = accepter.join();
    }

    #[test]
    fn dial_backoff_is_bounded() {
        // Nothing listens on this port (bound then immediately dropped).
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let mut transport = TcpDialTransport::new(vec![addr]);
        transport.attempts = 2;
        transport.initial_backoff = Duration::from_millis(1);
        let started = Instant::now();
        assert!(transport.connect().is_err());
        assert!(started.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn accept_times_out_when_no_worker_dials_in() {
        let mut transport =
            TcpAcceptTransport::bind("127.0.0.1:0", Duration::from_millis(50)).unwrap();
        assert!(transport.local_addr().is_some());
        let err = match transport.connect() {
            Ok(_) => panic!("accept with no dialler must time out"),
            Err(err) => err,
        };
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
    }

    #[test]
    fn tcp_frames_round_trip_between_dial_and_accept() {
        let mut accept = TcpAcceptTransport::bind("127.0.0.1:0", Duration::from_secs(5)).unwrap();
        let addr = accept.local_addr().unwrap().to_string();
        let dialler = std::thread::spawn(move || {
            let mut transport = TcpDialTransport::new(vec![addr]);
            let mut link = transport.connect().unwrap();
            link.tx.send(&["ping".to_string()]).unwrap();
            let reply = link.rx.recv().unwrap().unwrap();
            link.tx.close();
            reply
        });
        let mut link = accept.connect().unwrap();
        let request = link.rx.recv().unwrap().unwrap();
        assert_eq!(request, vec!["ping".to_string()]);
        link.tx
            .send(&["ok".to_string(), "pong".to_string()])
            .unwrap();
        assert_eq!(
            dialler.join().unwrap(),
            vec!["ok".to_string(), "pong".to_string()]
        );
        // The peer closed its write half: a clean EOF, not an error.
        assert_eq!(link.rx.recv().unwrap(), None);
    }
}
