//! The fault-injection hook must be opt-in per spawn, never ambient: a
//! `KCENTER_EXEC_FAULT` left exported in the coordinator's environment
//! (say, from a debugging session) must not sabotage production workers.
//!
//! This lives in its own integration-test binary because it mutates the
//! process environment: with a single `#[test]` there are no sibling
//! threads to race against.

use std::time::Duration;

use kcenter_core::coreset::CoresetSpec;
use kcenter_core::mapreduce_kcenter::MrKCenterConfig;
use kcenter_exec::{exec_mr_kcenter, worker, ExecConfig, MetricKind, WorkerCommand};
use kcenter_metric::Point;

#[test]
fn ambient_fault_env_is_stripped_from_workers() {
    std::env::set_var(worker::FAULT_ENV, "crash");
    let points: Vec<Point> = (0..200)
        .map(|i| Point::new(vec![(i % 20) as f64, (i / 20) as f64]))
        .collect();
    let config = MrKCenterConfig {
        k: 3,
        ell: 2,
        coreset: CoresetSpec::Multiplier { mu: 1 },
        seed: 1,
    };
    let mut exec = ExecConfig::new(WorkerCommand::new(
        env!("CARGO_BIN_EXE_kcenter-exec-worker"),
        &[],
    ));
    exec.timeout = Duration::from_secs(120);
    // The ambient variable is stripped at spawn, so the run must succeed.
    let result = exec_mr_kcenter(&points, MetricKind::Euclidean, &config, &exec)
        .expect("ambient KCENTER_EXEC_FAULT must not reach workers");
    assert_eq!(result.clustering.centers.len(), 3);
    // Explicit opt-in through WorkerCommand::env still injects the fault.
    exec.worker = exec.worker.env(worker::FAULT_ENV, "crash");
    assert!(exec_mr_kcenter(&points, MetricKind::Euclidean, &config, &exec).is_err());
    std::env::remove_var(worker::FAULT_ENV);
}
