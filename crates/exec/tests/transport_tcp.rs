//! Process-level tests of the TCP transport: real `kcenter-exec-worker`
//! processes started independently (`--listen` / `--connect`), a real
//! coordinator dialing (or accepting) them over localhost.
//!
//! Pinned contracts:
//!
//! * **Determinism across transports** — a TCP run is bit-identical to a
//!   pipe run of the same seeded input, shards travelling as `@store/…`
//!   references through a shared artifact store;
//! * **Failure containment on the remote path** — a mid-job disconnect
//!   is absorbed by reconnect-and-replay (still bitwise-identical), a
//!   `--pin-config` mismatch is an attributed handshake rejection, and a
//!   hung remote worker dies at the run deadline, never stalling the
//!   coordinator.

use std::io::{BufRead, BufReader};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use kcenter_core::coreset::CoresetSpec;
use kcenter_core::mapreduce_kcenter::{mr_kcenter, MrKCenterConfig};
use kcenter_exec::protocol::{read_frame, write_frame};
use kcenter_exec::transport::TcpAcceptTransport;
use kcenter_exec::{
    exec_mr_kcenter, exec_mr_kcenter_on, ExecConfig, ExecError, MetricKind, TransportSpec,
    WorkerCommand, WorkerFleet,
};
use kcenter_metric::{Euclidean, Point};
use kcenter_store::ArtifactStore;

/// One independently started `kcenter-exec-worker --listen` process; the
/// bound address is parsed from its announce line. Killed on drop so a
/// panicking assertion never leaks a worker.
struct TcpWorker {
    child: Child,
    addr: String,
}

impl TcpWorker {
    /// Starts a `--listen 127.0.0.1:0` worker with `extra` flags and
    /// `envs`, waiting for its listening announcement.
    fn listen(extra: &[&str], envs: &[(&str, &str)]) -> TcpWorker {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_kcenter-exec-worker"));
        cmd.args(["--listen", "127.0.0.1:0"])
            .args(extra)
            .env_remove(kcenter_exec::worker::FAULT_ENV)
            .env_remove(kcenter_store::CACHE_DIR_ENV)
            .stdout(Stdio::piped())
            .stderr(Stdio::null());
        for (key, value) in envs {
            cmd.env(key, value);
        }
        let mut child = cmd.spawn().expect("spawn tcp worker");
        let stdout = child.stdout.take().expect("worker stdout");
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .expect("worker announce line");
        let addr = line
            .trim()
            .rsplit(' ')
            .next()
            .expect("address in announce line")
            .to_string();
        assert!(
            line.contains("listening on") && addr.contains(':'),
            "unexpected announce line {line:?}"
        );
        TcpWorker { child, addr }
    }

    /// Asks the worker process to exit via the wire (`shutdown process`)
    /// and reaps it.
    fn stop(mut self) {
        if let Ok(stream) = TcpStream::connect(&self.addr) {
            let mut writer = stream.try_clone().expect("clone stream");
            let mut reader = BufReader::new(stream);
            let _ = write_frame(
                &mut writer,
                &["shutdown".to_string(), "process".to_string()],
            );
            let _ = read_frame(&mut reader);
        }
        let _ = self.child.wait();
    }
}

impl Drop for TcpWorker {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// The worker binary cargo built for this package (pipe reference runs).
fn worker_command() -> WorkerCommand {
    WorkerCommand::new(env!("CARGO_BIN_EXE_kcenter-exec-worker"), &[])
}

fn pipe_config() -> ExecConfig {
    let mut config = ExecConfig::new(worker_command());
    config.timeout = Duration::from_secs(120);
    config
}

/// A config dialing out to `workers`, with a unique work dir per test so
/// parallel tests never collide on artifact paths.
fn tcp_config(workers: &[&TcpWorker], tag: &str) -> ExecConfig {
    let mut config = pipe_config();
    config.transport = TransportSpec::TcpConnect {
        addrs: workers.iter().map(|w| w.addr.clone()).collect(),
    };
    config.work_dir = Some(
        std::env::temp_dir()
            .join("kcenter-transport-tcp")
            .join(format!("{tag}-{}", std::process::id())),
    );
    config
}

fn dataset(n: usize) -> Vec<Point> {
    (0..n)
        .map(|i| {
            Point::new(vec![
                (i % 37) as f64 * 1.5 + (i % 7) as f64 * 0.01,
                (i / 37) as f64 * 1.5,
            ])
        })
        .collect()
}

fn assert_points_bit_identical(a: &[Point], b: &[Point], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: center counts differ");
    for (i, (pa, pb)) in a.iter().zip(b).enumerate() {
        for (ca, cb) in pa.coords().iter().zip(pb.coords()) {
            assert_eq!(
                ca.to_bits(),
                cb.to_bits(),
                "{what}: coordinate bits differ at center {i}"
            );
        }
    }
}

#[test]
fn tcp_run_is_bit_identical_to_pipe_run_with_store_shards() {
    let points = dataset(600);
    let config = MrKCenterConfig {
        k: 5,
        ell: 4,
        coreset: CoresetSpec::Multiplier { mu: 3 },
        seed: 11,
    };
    let reference =
        exec_mr_kcenter(&points, MetricKind::Euclidean, &config, &pipe_config()).unwrap();

    // Shards land in a shared artifact store and cross the wire as
    // `@store/…` references the workers resolve via `--store`.
    let store_dir = std::env::temp_dir()
        .join("kcenter-transport-tcp")
        .join(format!("store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);
    let store = ArtifactStore::open(&store_dir).unwrap();
    let store_flag = store_dir.to_string_lossy().into_owned();
    let workers: Vec<TcpWorker> = (0..4)
        .map(|_| TcpWorker::listen(&["--store", &store_flag], &[]))
        .collect();
    let refs: Vec<&TcpWorker> = workers.iter().collect();
    let mut exec = tcp_config(&refs, "bitwise");
    exec.shard_store = Some(store);

    for (run, expect_reuse) in [("cold", false), ("warm", true)] {
        let executed = exec_mr_kcenter(&points, MetricKind::Euclidean, &config, &exec).unwrap();
        assert_points_bit_identical(
            &executed.clustering.centers,
            &reference.clustering.centers,
            &format!("tcp vs pipe ({run})"),
        );
        assert_eq!(
            executed.clustering.radius.to_bits(),
            reference.clustering.radius.to_bits(),
            "radius bits differ ({run})"
        );
        assert_eq!(executed.report.union_size, reference.report.union_size);
        assert_eq!(executed.report.reconnects, 0, "no loss injected ({run})");
        if expect_reuse {
            assert!(
                executed.report.shard_reuses > 0,
                "warm store must serve shards to the tcp path"
            );
        }
    }
    for worker in workers {
        worker.stop();
    }
}

#[test]
fn mid_job_disconnect_is_contained_by_reconnect_and_replay() {
    let points = dataset(600);
    let config = MrKCenterConfig {
        k: 4,
        // 3 partitions over 2 workers: some connection must take a
        // second job (coreset or merge) and hit its `drop-conn:2`.
        ell: 3,
        coreset: CoresetSpec::Multiplier { mu: 2 },
        seed: 7,
    };
    let reference =
        exec_mr_kcenter(&points, MetricKind::Euclidean, &config, &pipe_config()).unwrap();

    let workers: Vec<TcpWorker> = (0..2)
        .map(|_| TcpWorker::listen(&[], &[(kcenter_exec::worker::FAULT_ENV, "drop-conn:2")]))
        .collect();
    let refs: Vec<&TcpWorker> = workers.iter().collect();
    let exec = tcp_config(&refs, "dropconn");
    let executed = exec_mr_kcenter(&points, MetricKind::Euclidean, &config, &exec)
        .expect("reconnect+replay must contain the disconnect");
    assert_points_bit_identical(
        &executed.clustering.centers,
        &reference.clustering.centers,
        "reconnect+replay",
    );
    assert_eq!(
        executed.clustering.radius.to_bits(),
        reference.clustering.radius.to_bits(),
        "radius bits differ after reconnect"
    );
    assert!(
        executed.report.reconnects > 0,
        "the injected disconnect must surface in the accounting: {:?}",
        executed.report
    );
    for worker in workers {
        worker.stop();
    }
}

#[test]
fn pinned_worker_rejects_mismatched_coordinator() {
    let points = dataset(200);
    let config = MrKCenterConfig {
        k: 3,
        ell: 1,
        coreset: CoresetSpec::Multiplier { mu: 1 },
        seed: 1,
    };
    let worker = TcpWorker::listen(&["--pin-config", "deadbeef"], &[]);
    let refs = [&worker];

    // Wrong fingerprint: rejected with the worker's address attributed.
    let mut exec = tcp_config(&refs, "pin-wrong");
    exec.config_fingerprint = Some(0x1234);
    match exec_mr_kcenter(&points, MetricKind::Euclidean, &config, &exec) {
        Err(ExecError::HelloRejected {
            worker: who,
            reason,
        }) => {
            assert!(who.contains("tcp://"), "unattributed rejection: {who:?}");
            assert!(
                reason.contains("fingerprint"),
                "unexpected reason: {reason:?}"
            );
        }
        other => panic!("expected HelloRejected, got {other:?}"),
    }

    // No fingerprint announced at all: a pinned worker still refuses.
    let mut exec = tcp_config(&refs, "pin-none");
    exec.config_fingerprint = None;
    assert!(matches!(
        exec_mr_kcenter(&points, MetricKind::Euclidean, &config, &exec),
        Err(ExecError::HelloRejected { .. })
    ));

    // The matching fingerprint is served; the listener survived both
    // rejected coordinators above.
    let mut exec = tcp_config(&refs, "pin-right");
    exec.config_fingerprint = Some(0xdeadbeef);
    exec_mr_kcenter(&points, MetricKind::Euclidean, &config, &exec)
        .expect("matching fingerprint must be served");
    worker.stop();
}

#[test]
fn hung_tcp_worker_is_killed_at_the_deadline() {
    let points = dataset(150);
    let config = MrKCenterConfig {
        k: 2,
        ell: 2,
        coreset: CoresetSpec::Multiplier { mu: 1 },
        seed: 1,
    };
    // The hang fires after the accept: the connection is up, no frame
    // (not even the hello ack) ever arrives.
    let workers: Vec<TcpWorker> = (0..2)
        .map(|_| TcpWorker::listen(&[], &[(kcenter_exec::worker::FAULT_ENV, "hang")]))
        .collect();
    let refs: Vec<&TcpWorker> = workers.iter().collect();
    let mut exec = tcp_config(&refs, "hang");
    exec.timeout = Duration::from_millis(1500);
    let started = std::time::Instant::now();
    let result = exec_mr_kcenter(&points, MetricKind::Euclidean, &config, &exec);
    let elapsed = started.elapsed();
    assert!(
        matches!(result, Err(ExecError::WorkerTimeout { .. })),
        "expected WorkerTimeout, got {result:?}"
    );
    assert!(
        elapsed < Duration::from_secs(30),
        "coordinator took {elapsed:?} to time out on a hung remote"
    );
}

#[test]
fn accept_transport_serves_dialing_workers() {
    let points = dataset(400);
    let config = MrKCenterConfig {
        k: 4,
        ell: 2,
        coreset: CoresetSpec::Multiplier { mu: 2 },
        seed: 5,
    };
    let reference = mr_kcenter(&points, &Euclidean, &config).unwrap();

    // Coordinator side binds first; workers dial in with `--connect`.
    let transport = TcpAcceptTransport::bind("127.0.0.1:0", Duration::from_secs(60))
        .unwrap()
        .with_deadlines(
            Some(Duration::from_secs(125)),
            Some(Duration::from_secs(30)),
        );
    let addr = transport.local_addr().unwrap().to_string();
    let mut fleet = WorkerFleet::with_transport(Box::new(transport), Some(2));
    let children: Vec<Child> = (0..2)
        .map(|_| {
            Command::new(env!("CARGO_BIN_EXE_kcenter-exec-worker"))
                .args(["--connect", &addr])
                .env_remove(kcenter_exec::worker::FAULT_ENV)
                .env_remove(kcenter_store::CACHE_DIR_ENV)
                .stdout(Stdio::null())
                .stderr(Stdio::null())
                .spawn()
                .expect("spawn connect worker")
        })
        .collect();

    let mut exec = pipe_config();
    exec.work_dir = Some(
        std::env::temp_dir()
            .join("kcenter-transport-tcp")
            .join(format!("accept-{}", std::process::id())),
    );
    let executed =
        exec_mr_kcenter_on(&mut fleet, &points, MetricKind::Euclidean, &config, &exec).unwrap();
    fleet.shutdown();
    assert_points_bit_identical(
        &executed.clustering.centers,
        &reference.clustering.centers,
        "accept-mode tcp",
    );
    assert_eq!(
        executed.clustering.radius.to_bits(),
        reference.clustering.radius.to_bits()
    );
    for mut child in children {
        // A `--connect` worker exits 0 once its coordinator hangs up.
        let status = child.wait().expect("reap connect worker");
        assert!(status.success(), "connect worker exited {status:?}");
    }
}
