//! The artifact-cache hook must be opt-in per spawn, never ambient: a
//! `KCENTER_CACHE_DIR` left exported in the coordinator's environment
//! must not make fleet workers silently open the cache and diverge in
//! accounting from the in-process engines. Deployments that *want*
//! workers to share a cache forward it explicitly via
//! [`WorkerCommand::env`].
//!
//! This lives in its own integration-test binary because it mutates the
//! process environment: with a single `#[test]` there are no sibling
//! threads to race against.

use kcenter_exec::{WorkerCommand, WorkerFleet};
use kcenter_store::CACHE_DIR_ENV;

#[test]
fn ambient_cache_dir_is_stripped_from_workers() {
    std::env::set_var(CACHE_DIR_ENV, "/tmp/kcenter-ambient-cache");
    let command = WorkerCommand::new(env!("CARGO_BIN_EXE_kcenter-exec-worker"), &[]);

    // The ambient variable is stripped at spawn …
    let mut fleet = WorkerFleet::new(command.clone(), Some(1));
    let seen = fleet
        .probe_env(CACHE_DIR_ENV)
        .expect("probe must round-trip");
    fleet.shutdown();
    assert_eq!(
        seen, None,
        "ambient {CACHE_DIR_ENV} must not reach fleet workers"
    );

    // … while the explicit opt-in is applied after the strip.
    let forwarded = command.env(CACHE_DIR_ENV, "/tmp/kcenter-forwarded-cache");
    let mut fleet = WorkerFleet::new(forwarded, Some(1));
    let seen = fleet
        .probe_env(CACHE_DIR_ENV)
        .expect("probe must round-trip");
    fleet.shutdown();
    assert_eq!(seen.as_deref(), Some("/tmp/kcenter-forwarded-cache"));

    std::env::remove_var(CACHE_DIR_ENV);
}
