//! Process-level tests of the multi-process executor, spawning the real
//! `kcenter-exec-worker` binary.
//!
//! Two contracts are pinned here:
//!
//! * **Determinism across the process boundary** — a multi-process run is
//!   bit-identical (center coordinate bits, radius bits, union sizes) to
//!   the in-process `mr_kcenter` / `mr_kcenter_outliers` engines on the
//!   same seeded input, at 1 and 4 worker processes;
//! * **Failure containment** — a worker that crashes, hangs, or writes a
//!   torn artifact surfaces as a clean, attributed error, never a hang or
//!   a panic, and never leaks the fleet.

use std::time::Duration;

use kcenter_core::coreset::CoresetSpec;
use kcenter_core::mapreduce_kcenter::{mr_kcenter, MrKCenterConfig};
use kcenter_core::mapreduce_outliers::{mr_kcenter_outliers, MrOutliersConfig};
use kcenter_exec::{
    exec_mr_kcenter, exec_mr_outliers, ExecConfig, ExecError, MetricKind, WorkerCommand,
};
use kcenter_metric::{Euclidean, Point};

/// The worker binary cargo built for this package.
fn worker_command() -> WorkerCommand {
    WorkerCommand::new(env!("CARGO_BIN_EXE_kcenter-exec-worker"), &[])
}

fn exec_config() -> ExecConfig {
    let mut config = ExecConfig::new(worker_command());
    // Generous for CI, tight enough that a regression to hanging fails
    // the suite rather than stalling it.
    config.timeout = Duration::from_secs(120);
    config
}

/// Grid points plus a handful of far outliers at the tail.
fn dataset(n: usize, outliers: usize) -> Vec<Point> {
    let mut points: Vec<Point> = (0..n)
        .map(|i| {
            Point::new(vec![
                (i % 37) as f64 * 1.5 + (i % 7) as f64 * 0.01,
                (i / 37) as f64 * 1.5,
            ])
        })
        .collect();
    for j in 0..outliers {
        points.push(Point::new(vec![
            50_000.0 + 1_000.0 * j as f64,
            -40_000.0 + 2_000.0 * j as f64,
        ]));
    }
    points
}

fn assert_points_bit_identical(a: &[Point], b: &[Point], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: center counts differ");
    for (i, (pa, pb)) in a.iter().zip(b).enumerate() {
        assert_eq!(pa.dim(), pb.dim(), "{what}: dim differs at center {i}");
        for (ca, cb) in pa.coords().iter().zip(pb.coords()) {
            assert_eq!(
                ca.to_bits(),
                cb.to_bits(),
                "{what}: coordinate bits differ at center {i}"
            );
        }
    }
}

#[test]
fn kcenter_multi_process_is_bit_identical_to_in_process() {
    let points = dataset(600, 0);
    for procs in [1usize, 4] {
        let config = MrKCenterConfig {
            k: 5,
            ell: procs,
            coreset: CoresetSpec::Multiplier { mu: 3 },
            seed: 11,
        };
        let reference = mr_kcenter(&points, &Euclidean, &config).unwrap();
        let executed =
            exec_mr_kcenter(&points, MetricKind::Euclidean, &config, &exec_config()).unwrap();
        assert_points_bit_identical(
            &executed.clustering.centers,
            &reference.clustering.centers,
            &format!("kcenter procs={procs}"),
        );
        assert_eq!(
            executed.clustering.radius.to_bits(),
            reference.clustering.radius.to_bits(),
            "radius bits differ at procs={procs}"
        );
        assert_eq!(executed.report.union_size, reference.union_size);
        assert_eq!(executed.report.coreset_sizes, reference.coreset_sizes);
        assert_eq!(executed.report.workers.len(), procs);
        for stat in &executed.report.workers {
            assert!(stat.shard_points > 0);
            assert!(stat.coreset_size > 0);
        }
    }
}

#[test]
fn outliers_multi_process_is_bit_identical_to_in_process() {
    let points = dataset(500, 5);
    for procs in [1usize, 4] {
        // Deterministic variant, chunked partitioning.
        let mut config =
            MrOutliersConfig::deterministic(3, 5, procs, CoresetSpec::Multiplier { mu: 2 });
        config.seed = 23;
        let reference = mr_kcenter_outliers(&points, &Euclidean, &config).unwrap();
        let executed =
            exec_mr_outliers(&points, MetricKind::Euclidean, &config, &exec_config()).unwrap();
        assert_points_bit_identical(
            &executed.clustering.centers,
            &reference.clustering.centers,
            &format!("outliers procs={procs}"),
        );
        assert_eq!(
            executed.clustering.radius.to_bits(),
            reference.clustering.radius.to_bits()
        );
        assert_eq!(executed.r_min.to_bits(), reference.r_min.to_bits());
        assert_eq!(executed.uncovered_weight, reference.uncovered_weight);
        assert_eq!(executed.base, reference.base);
        assert_eq!(executed.report.union_size, reference.union_size);
        assert_eq!(executed.report.coreset_sizes, reference.coreset_sizes);
        assert_eq!(executed.search_evaluations, reference.search_evaluations);
    }
}

#[test]
fn randomized_variant_matches_across_the_process_boundary() {
    let points = dataset(400, 8);
    let mut config = MrOutliersConfig::randomized(3, 8, 4, CoresetSpec::Multiplier { mu: 1 });
    config.seed = 5;
    let reference = mr_kcenter_outliers(&points, &Euclidean, &config).unwrap();
    let executed =
        exec_mr_outliers(&points, MetricKind::Euclidean, &config, &exec_config()).unwrap();
    assert_points_bit_identical(
        &executed.clustering.centers,
        &reference.clustering.centers,
        "randomized",
    );
    assert_eq!(
        executed.clustering.radius.to_bits(),
        reference.clustering.radius.to_bits()
    );
    assert_eq!(executed.report.union_size, reference.union_size);
}

/// A config whose workers misbehave on purpose: the fault arrives through
/// the worker's *own* environment (set per spawn), so parallel tests in
/// this binary never observe each other's faults.
fn faulty_exec(fault: &str) -> ExecConfig {
    let mut config = exec_config();
    config.worker = config.worker.env(kcenter_exec::worker::FAULT_ENV, fault);
    config
}

#[test]
fn crashed_worker_is_a_clean_attributed_error() {
    let points = dataset(200, 0);
    let config = MrKCenterConfig {
        k: 3,
        ell: 3,
        coreset: CoresetSpec::Multiplier { mu: 1 },
        seed: 1,
    };
    match exec_mr_kcenter(
        &points,
        MetricKind::Euclidean,
        &config,
        &faulty_exec("crash"),
    ) {
        Err(ExecError::WorkerFailed {
            code: Some(101),
            stderr,
            ..
        }) => assert!(
            stderr.contains("injected crash"),
            "stderr not captured: {stderr:?}"
        ),
        other => panic!("expected WorkerFailed(101), got {other:?}"),
    }
}

#[test]
fn truncated_worker_artifact_is_a_clean_error() {
    let points = dataset(200, 0);
    let config = MrKCenterConfig {
        k: 3,
        ell: 2,
        coreset: CoresetSpec::Multiplier { mu: 1 },
        seed: 1,
    };
    match exec_mr_kcenter(
        &points,
        MetricKind::Euclidean,
        &config,
        &faulty_exec("truncate"),
    ) {
        Err(ExecError::BadArtifact { reason, .. }) => {
            assert!(
                reason.contains("truncated"),
                "unexpected reason: {reason:?}"
            )
        }
        other => panic!("expected BadArtifact, got {other:?}"),
    }
}

#[test]
fn hanging_worker_is_killed_at_the_timeout() {
    let points = dataset(150, 0);
    let config = MrKCenterConfig {
        k: 2,
        ell: 2,
        coreset: CoresetSpec::Multiplier { mu: 1 },
        seed: 1,
    };
    let mut exec = faulty_exec("hang");
    exec.timeout = Duration::from_millis(1500);
    let started = std::time::Instant::now();
    let result = exec_mr_kcenter(&points, MetricKind::Euclidean, &config, &exec);
    let elapsed = started.elapsed();
    assert!(
        matches!(result, Err(ExecError::WorkerTimeout { .. })),
        "expected WorkerTimeout, got {result:?}"
    );
    // The coordinator must not wait for the injected hour-long sleep.
    assert!(
        elapsed < Duration::from_secs(30),
        "coordinator took {elapsed:?} to time out"
    );
}

#[test]
fn missing_worker_binary_is_a_spawn_error() {
    let points = dataset(100, 0);
    let config = MrKCenterConfig {
        k: 2,
        ell: 2,
        coreset: CoresetSpec::Multiplier { mu: 1 },
        seed: 1,
    };
    let exec = ExecConfig::new(WorkerCommand::new("/nonexistent/kcenter-worker", &[]));
    assert!(matches!(
        exec_mr_kcenter(&points, MetricKind::Euclidean, &config, &exec),
        Err(ExecError::Spawn { .. })
    ));
}

#[test]
fn work_dir_is_removed_on_success_and_kept_on_request() {
    let points = dataset(150, 0);
    let config = MrKCenterConfig {
        k: 2,
        ell: 2,
        coreset: CoresetSpec::Multiplier { mu: 1 },
        seed: 1,
    };
    let dir = std::env::temp_dir().join(format!("kcenter-exec-keep-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let mut exec = exec_config();
    exec.work_dir = Some(dir.clone());
    exec.keep_work_dir = true;
    exec_mr_kcenter(&points, MetricKind::Euclidean, &config, &exec).unwrap();
    let kept: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    assert!(
        kept.iter().any(|name| name.starts_with("shard-")),
        "shards not kept: {kept:?}"
    );
    assert!(
        kept.iter().any(|name| name.starts_with("coreset-")),
        "artifacts not kept: {kept:?}"
    );

    let mut exec = exec_config();
    exec.work_dir = Some(dir.clone());
    exec.keep_work_dir = false;
    exec_mr_kcenter(&points, MetricKind::Euclidean, &config, &exec).unwrap();
    assert!(!dir.exists(), "work dir must be removed by default");
}
