//! Process-level tests of the multi-process executor, spawning the real
//! `kcenter-exec-worker` binary.
//!
//! Two contracts are pinned here:
//!
//! * **Determinism across the process boundary** — a multi-process run is
//!   bit-identical (center coordinate bits, radius bits, union sizes) to
//!   the in-process `mr_kcenter` / `mr_kcenter_outliers` engines on the
//!   same seeded input, at 1 and 4 worker processes;
//! * **Failure containment** — a worker that crashes, hangs, or writes a
//!   torn artifact surfaces as a clean, attributed error, never a hang or
//!   a panic, and never leaks the fleet.

use std::time::Duration;

use kcenter_core::coreset::CoresetSpec;
use kcenter_core::mapreduce_kcenter::{mr_kcenter, MrKCenterConfig};
use kcenter_core::mapreduce_outliers::{mr_kcenter_outliers, MrOutliersConfig};
use kcenter_exec::{
    exec_mr_kcenter, exec_mr_kcenter_on, exec_mr_outliers, ExecConfig, ExecError, MetricKind,
    WorkerCommand, WorkerFleet,
};
use kcenter_metric::{Euclidean, Point};
use kcenter_store::ArtifactStore;

/// The worker binary cargo built for this package.
fn worker_command() -> WorkerCommand {
    WorkerCommand::new(env!("CARGO_BIN_EXE_kcenter-exec-worker"), &[])
}

fn exec_config() -> ExecConfig {
    let mut config = ExecConfig::new(worker_command());
    // Generous for CI, tight enough that a regression to hanging fails
    // the suite rather than stalling it.
    config.timeout = Duration::from_secs(120);
    config
}

/// Grid points plus a handful of far outliers at the tail.
fn dataset(n: usize, outliers: usize) -> Vec<Point> {
    let mut points: Vec<Point> = (0..n)
        .map(|i| {
            Point::new(vec![
                (i % 37) as f64 * 1.5 + (i % 7) as f64 * 0.01,
                (i / 37) as f64 * 1.5,
            ])
        })
        .collect();
    for j in 0..outliers {
        points.push(Point::new(vec![
            50_000.0 + 1_000.0 * j as f64,
            -40_000.0 + 2_000.0 * j as f64,
        ]));
    }
    points
}

fn assert_points_bit_identical(a: &[Point], b: &[Point], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: center counts differ");
    for (i, (pa, pb)) in a.iter().zip(b).enumerate() {
        assert_eq!(pa.dim(), pb.dim(), "{what}: dim differs at center {i}");
        for (ca, cb) in pa.coords().iter().zip(pb.coords()) {
            assert_eq!(
                ca.to_bits(),
                cb.to_bits(),
                "{what}: coordinate bits differ at center {i}"
            );
        }
    }
}

#[test]
fn kcenter_multi_process_is_bit_identical_to_in_process() {
    let points = dataset(600, 0);
    for procs in [1usize, 4] {
        let config = MrKCenterConfig {
            k: 5,
            ell: procs,
            coreset: CoresetSpec::Multiplier { mu: 3 },
            seed: 11,
        };
        let reference = mr_kcenter(&points, &Euclidean, &config).unwrap();
        let executed =
            exec_mr_kcenter(&points, MetricKind::Euclidean, &config, &exec_config()).unwrap();
        assert_points_bit_identical(
            &executed.clustering.centers,
            &reference.clustering.centers,
            &format!("kcenter procs={procs}"),
        );
        assert_eq!(
            executed.clustering.radius.to_bits(),
            reference.clustering.radius.to_bits(),
            "radius bits differ at procs={procs}"
        );
        assert_eq!(executed.report.union_size, reference.union_size);
        assert_eq!(executed.report.coreset_sizes, reference.coreset_sizes);
        assert_eq!(executed.report.workers.len(), procs);
        for stat in &executed.report.workers {
            assert!(stat.shard_points > 0);
            assert!(stat.coreset_size > 0);
        }
    }
}

#[test]
fn outliers_multi_process_is_bit_identical_to_in_process() {
    let points = dataset(500, 5);
    for procs in [1usize, 4] {
        // Deterministic variant, chunked partitioning.
        let mut config =
            MrOutliersConfig::deterministic(3, 5, procs, CoresetSpec::Multiplier { mu: 2 });
        config.seed = 23;
        let reference = mr_kcenter_outliers(&points, &Euclidean, &config).unwrap();
        let executed =
            exec_mr_outliers(&points, MetricKind::Euclidean, &config, &exec_config()).unwrap();
        assert_points_bit_identical(
            &executed.clustering.centers,
            &reference.clustering.centers,
            &format!("outliers procs={procs}"),
        );
        assert_eq!(
            executed.clustering.radius.to_bits(),
            reference.clustering.radius.to_bits()
        );
        assert_eq!(executed.r_min.to_bits(), reference.r_min.to_bits());
        assert_eq!(executed.uncovered_weight, reference.uncovered_weight);
        assert_eq!(executed.base, reference.base);
        assert_eq!(executed.report.union_size, reference.union_size);
        assert_eq!(executed.report.coreset_sizes, reference.coreset_sizes);
        assert_eq!(executed.search_evaluations, reference.search_evaluations);
    }
}

#[test]
fn randomized_variant_matches_across_the_process_boundary() {
    let points = dataset(400, 8);
    let mut config = MrOutliersConfig::randomized(3, 8, 4, CoresetSpec::Multiplier { mu: 1 });
    config.seed = 5;
    let reference = mr_kcenter_outliers(&points, &Euclidean, &config).unwrap();
    let executed =
        exec_mr_outliers(&points, MetricKind::Euclidean, &config, &exec_config()).unwrap();
    assert_points_bit_identical(
        &executed.clustering.centers,
        &reference.clustering.centers,
        "randomized",
    );
    assert_eq!(
        executed.clustering.radius.to_bits(),
        reference.clustering.radius.to_bits()
    );
    assert_eq!(executed.report.union_size, reference.union_size);
}

/// A config whose workers misbehave on purpose: the fault arrives through
/// the worker's *own* environment (set per spawn), so parallel tests in
/// this binary never observe each other's faults.
fn faulty_exec(fault: &str) -> ExecConfig {
    let mut config = exec_config();
    config.worker = config.worker.env(kcenter_exec::worker::FAULT_ENV, fault);
    config
}

#[test]
fn crashed_worker_is_a_clean_attributed_error() {
    let points = dataset(200, 0);
    let config = MrKCenterConfig {
        k: 3,
        ell: 3,
        coreset: CoresetSpec::Multiplier { mu: 1 },
        seed: 1,
    };
    match exec_mr_kcenter(
        &points,
        MetricKind::Euclidean,
        &config,
        &faulty_exec("crash"),
    ) {
        Err(ExecError::WorkerFailed {
            code: Some(101),
            stderr,
            ..
        }) => assert!(
            stderr.contains("injected crash"),
            "stderr not captured: {stderr:?}"
        ),
        other => panic!("expected WorkerFailed(101), got {other:?}"),
    }
}

#[test]
fn truncated_worker_artifact_is_a_clean_error() {
    let points = dataset(200, 0);
    let config = MrKCenterConfig {
        k: 3,
        ell: 2,
        coreset: CoresetSpec::Multiplier { mu: 1 },
        seed: 1,
    };
    match exec_mr_kcenter(
        &points,
        MetricKind::Euclidean,
        &config,
        &faulty_exec("truncate"),
    ) {
        Err(ExecError::BadArtifact { reason, .. }) => {
            assert!(
                reason.contains("truncated"),
                "unexpected reason: {reason:?}"
            )
        }
        other => panic!("expected BadArtifact, got {other:?}"),
    }
}

#[test]
fn hanging_worker_is_killed_at_the_timeout() {
    let points = dataset(150, 0);
    let config = MrKCenterConfig {
        k: 2,
        ell: 2,
        coreset: CoresetSpec::Multiplier { mu: 1 },
        seed: 1,
    };
    let mut exec = faulty_exec("hang");
    exec.timeout = Duration::from_millis(1500);
    let started = std::time::Instant::now();
    let result = exec_mr_kcenter(&points, MetricKind::Euclidean, &config, &exec);
    let elapsed = started.elapsed();
    assert!(
        matches!(result, Err(ExecError::WorkerTimeout { .. })),
        "expected WorkerTimeout, got {result:?}"
    );
    // The coordinator must not wait for the injected hour-long sleep.
    assert!(
        elapsed < Duration::from_secs(30),
        "coordinator took {elapsed:?} to time out"
    );
}

#[test]
fn missing_worker_binary_is_a_spawn_error() {
    let points = dataset(100, 0);
    let config = MrKCenterConfig {
        k: 2,
        ell: 2,
        coreset: CoresetSpec::Multiplier { mu: 1 },
        seed: 1,
    };
    let exec = ExecConfig::new(WorkerCommand::new("/nonexistent/kcenter-worker", &[]));
    assert!(matches!(
        exec_mr_kcenter(&points, MetricKind::Euclidean, &config, &exec),
        Err(ExecError::Spawn { .. })
    ));
}

#[test]
fn work_dir_is_removed_on_success_and_kept_on_request() {
    let points = dataset(150, 0);
    let config = MrKCenterConfig {
        k: 2,
        ell: 2,
        coreset: CoresetSpec::Multiplier { mu: 1 },
        seed: 1,
    };
    let dir = std::env::temp_dir().join(format!("kcenter-exec-keep-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let mut exec = exec_config();
    exec.work_dir = Some(dir.clone());
    exec.keep_work_dir = true;
    exec_mr_kcenter(&points, MetricKind::Euclidean, &config, &exec).unwrap();
    let kept: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    assert!(
        kept.iter().any(|name| name.starts_with("shard-")),
        "shards not kept: {kept:?}"
    );
    assert!(
        kept.iter().any(|name| name.starts_with("coreset-")),
        "artifacts not kept: {kept:?}"
    );

    let mut exec = exec_config();
    exec.work_dir = Some(dir.clone());
    exec.keep_work_dir = false;
    exec_mr_kcenter(&points, MetricKind::Euclidean, &config, &exec).unwrap();
    assert!(!dir.exists(), "work dir must be removed by default");
}

#[test]
fn warm_fleet_reuses_workers_and_stays_bit_identical() {
    let points = dataset(600, 0);
    for procs in [1usize, 4] {
        let config = MrKCenterConfig {
            k: 5,
            ell: procs,
            coreset: CoresetSpec::Multiplier { mu: 3 },
            seed: 11,
        };
        let exec = exec_config();
        let fresh = exec_mr_kcenter(&points, MetricKind::Euclidean, &config, &exec).unwrap();

        let mut fleet = WorkerFleet::from_config(&exec);
        let cold =
            exec_mr_kcenter_on(&mut fleet, &points, MetricKind::Euclidean, &config, &exec).unwrap();
        assert!(
            cold.report.workers_spawned >= 1,
            "cold run must spawn workers"
        );
        let warm =
            exec_mr_kcenter_on(&mut fleet, &points, MetricKind::Euclidean, &config, &exec).unwrap();
        fleet.shutdown();
        assert_eq!(
            warm.report.workers_spawned, 0,
            "warm fleet must reuse its live workers (procs={procs})"
        );
        for run in [&cold, &warm] {
            assert_points_bit_identical(
                &run.clustering.centers,
                &fresh.clustering.centers,
                &format!("fleet reuse procs={procs}"),
            );
            assert_eq!(
                run.clustering.radius.to_bits(),
                fresh.clustering.radius.to_bits()
            );
            assert_eq!(run.report.coreset_sizes, fresh.report.coreset_sizes);
        }
    }
}

#[test]
fn reduction_tree_with_odd_fanout_matches_flat_round2_bitwise() {
    let points = dataset(600, 0);
    // ell=5 exercises the odd-node carry at two levels: 5 → 3 → 2 → 1
    // nodes, 4 pairwise merges in total.
    let config = MrKCenterConfig {
        k: 5,
        ell: 5,
        coreset: CoresetSpec::Multiplier { mu: 2 },
        seed: 7,
    };
    let reference = mr_kcenter(&points, &Euclidean, &config).unwrap();
    let executed =
        exec_mr_kcenter(&points, MetricKind::Euclidean, &config, &exec_config()).unwrap();
    assert_eq!(executed.report.merge_jobs, 4);
    assert_points_bit_identical(
        &executed.clustering.centers,
        &reference.clustering.centers,
        "reduction tree ell=5",
    );
    assert_eq!(
        executed.clustering.radius.to_bits(),
        reference.clustering.radius.to_bits()
    );
    assert_eq!(executed.report.union_size, reference.union_size);
    assert_eq!(executed.report.coreset_sizes, reference.coreset_sizes);

    // A single partition needs no merge at all.
    let solo = MrKCenterConfig { ell: 1, ..config };
    let executed = exec_mr_kcenter(&points, MetricKind::Euclidean, &solo, &exec_config()).unwrap();
    assert_eq!(executed.report.merge_jobs, 0);
}

#[test]
fn mid_stream_worker_death_is_contained_by_respawn_and_replay() {
    let points = dataset(600, 0);
    let config = MrKCenterConfig {
        k: 4,
        ell: 3,
        coreset: CoresetSpec::Multiplier { mu: 2 },
        seed: 3,
    };
    let reference = mr_kcenter(&points, &Euclidean, &config).unwrap();
    // Every worker dies mid-stream on its second job without replying;
    // with a single-worker fleet each job is at worst one replay away
    // from a fresh worker, so the run must still succeed.
    let mut exec = faulty_exec("crash-job:2");
    exec.max_workers = Some(1);
    let executed = exec_mr_kcenter(&points, MetricKind::Euclidean, &config, &exec).unwrap();
    assert!(
        executed.report.worker_respawns >= 1,
        "the injected deaths must be visible as respawns"
    );
    assert_points_bit_identical(
        &executed.clustering.centers,
        &reference.clustering.centers,
        "kill-mid-stream",
    );
    assert_eq!(
        executed.clustering.radius.to_bits(),
        reference.clustering.radius.to_bits()
    );

    // With the retry budget zeroed, the same fault is a clean error, not
    // a hang.
    exec.job_retries = 0;
    match exec_mr_kcenter(&points, MetricKind::Euclidean, &config, &exec) {
        Err(ExecError::WorkerFailed { code, stderr, .. }) => {
            assert_eq!(code, Some(101));
            assert!(stderr.contains("injected crash"), "stderr: {stderr:?}");
        }
        other => panic!("expected WorkerFailed, got {other:?}"),
    }
}

#[test]
fn content_addressed_shards_are_reused_on_rerun() {
    let points = dataset(500, 0);
    let config = MrKCenterConfig {
        k: 4,
        ell: 3,
        coreset: CoresetSpec::Multiplier { mu: 2 },
        seed: 9,
    };
    let plain = exec_mr_kcenter(&points, MetricKind::Euclidean, &config, &exec_config()).unwrap();

    let store_dir = std::env::temp_dir().join(format!("kcenter-exec-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);
    let mut exec = exec_config();
    exec.shard_store = Some(ArtifactStore::open(&store_dir).unwrap());

    let cold = exec_mr_kcenter(&points, MetricKind::Euclidean, &config, &exec).unwrap();
    assert_eq!(cold.report.shard_writes, 3, "cold run writes every shard");
    assert_eq!(cold.report.shard_reuses, 0);

    let warm = exec_mr_kcenter(&points, MetricKind::Euclidean, &config, &exec).unwrap();
    assert_eq!(warm.report.shard_writes, 0, "warm run must not re-shard");
    assert_eq!(warm.report.shard_reuses, 3);

    for run in [&cold, &warm] {
        assert_points_bit_identical(
            &run.clustering.centers,
            &plain.clustering.centers,
            "shard reuse",
        );
        assert_eq!(
            run.clustering.radius.to_bits(),
            plain.clustering.radius.to_bits()
        );
    }

    // Addressing is by shard *content*: flip one coordinate bit and every
    // partition containing it must miss while the others still hit.
    let mut nudged = points.clone();
    nudged[0] = Point::new(vec![-0.0, 0.0]);
    let other = exec_mr_kcenter(&nudged, MetricKind::Euclidean, &config, &exec).unwrap();
    assert_eq!(other.report.shard_writes, 1, "changed partition must miss");
    assert_eq!(
        other.report.shard_reuses, 2,
        "unchanged partitions must hit"
    );

    let _ = std::fs::remove_dir_all(&store_dir);
}

#[test]
fn corrupted_cached_shard_is_resharded_cleanly() {
    let points = dataset(400, 0);
    let config = MrKCenterConfig {
        k: 3,
        ell: 2,
        coreset: CoresetSpec::Multiplier { mu: 2 },
        seed: 13,
    };
    let store_dir =
        std::env::temp_dir().join(format!("kcenter-exec-store-corrupt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);
    let mut exec = exec_config();
    exec.shard_store = Some(ArtifactStore::open(&store_dir).unwrap());

    let cold = exec_mr_kcenter(&points, MetricKind::Euclidean, &config, &exec).unwrap();
    assert_eq!(cold.report.shard_writes, 2);

    // Truncate one cached shard entry behind the store's back.
    let victim = std::fs::read_dir(&store_dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .find(|p| {
            p.file_name()
                .unwrap()
                .to_string_lossy()
                .starts_with("shard-")
        })
        .expect("a cached shard entry");
    let bytes = std::fs::read(&victim).unwrap();
    std::fs::write(&victim, &bytes[..bytes.len() / 2]).unwrap();

    // The corrupt entry is detected, re-stored, and the run stays
    // bit-identical — the cache may change cost, never correctness.
    let healed = exec_mr_kcenter(&points, MetricKind::Euclidean, &config, &exec).unwrap();
    assert_eq!(
        healed.report.shard_writes, 1,
        "only the victim is rewritten"
    );
    assert_eq!(healed.report.shard_reuses, 1);
    assert_points_bit_identical(
        &healed.clustering.centers,
        &cold.clustering.centers,
        "corrupt shard heal",
    );
    assert_eq!(
        healed.clustering.radius.to_bits(),
        cold.clustering.radius.to_bits()
    );

    let warm = exec_mr_kcenter(&points, MetricKind::Euclidean, &config, &exec).unwrap();
    assert_eq!(warm.report.shard_writes, 0, "healed entry serves the rerun");

    let _ = std::fs::remove_dir_all(&store_dir);
}
