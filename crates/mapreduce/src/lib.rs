#![warn(missing_docs)]
//! A MapReduce simulation substrate.
//!
//! The paper's distributed algorithms are 2-round MapReduce computations and
//! were evaluated on a 16-machine Spark cluster. This crate provides the
//! stand-in substrate (see DESIGN.md §4): a key–value MapReduce engine whose
//! rounds execute map and reduce phases on a rayon thread pool with a
//! configurable degree of parallelism `ℓ`, together with
//!
//! * [`partition`] — the partitioning strategies the experiments need:
//!   deterministic equal-size chunks, uniform random assignment (the
//!   randomized algorithm of §3.2.1), and the *adversarial* partitioner of
//!   §5.2 that routes all outliers to a single partition;
//! * [`memory`] — accounting of the model's two memory parameters, the local
//!   memory `M_L` of each reducer and the aggregate memory `M_A` across
//!   reducers, measured in items exactly as the paper states its bounds.
//!
//! The engine is deliberately faithful to the MR(γ) model of the paper's
//! §2.1: a round maps every key–value pair independently, shuffles by key,
//! and reduces each key group independently; mappers are constant-space
//! transformations, so memory accounting is attached to reducer inputs.

pub mod engine;
pub mod memory;
pub mod partition;

pub use engine::MapReduceEngine;
pub use memory::{MemoryReport, RoundStats};
pub use partition::{partition_dataset, Adversarial, Chunked, Partitioner, RandomPartition};
