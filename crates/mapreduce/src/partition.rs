//! Partitioning strategies for round 1 of the MapReduce algorithms.
//!
//! A [`Partitioner`] assigns each input index to one of `ℓ` partitions.
//! Three strategies are needed by the paper:
//!
//! * [`Chunked`] — deterministic equal-size contiguous chunks (§3.1/§3.2,
//!   "S is partitioned into ℓ subsets of equal size");
//! * [`RandomPartition`] — every point goes to a uniformly random partition,
//!   independently (§3.2.1, the randomized space-efficient variant);
//! * [`Adversarial`] — a designated set of indices (the injected outliers in
//!   Fig. 4's setup) is forced into partition 0, the rest are chunked, "so
//!   to better test the benefits of randomization" (§5.2).

use std::collections::HashSet;

/// Assigns input indices to partitions `0..ell`.
pub trait Partitioner: Sync {
    /// Partition of item `index` among `n` items split `ell` ways.
    ///
    /// Implementations must return a value `< ell`.
    fn assign(&self, index: usize, n: usize, ell: usize) -> usize;
}

/// Deterministic equal-size contiguous chunks: item `i` of `n` goes to
/// partition `⌊i·ℓ/n⌋`, so chunk sizes differ by at most one.
#[derive(Clone, Copy, Debug, Default)]
pub struct Chunked;

impl Partitioner for Chunked {
    #[inline]
    fn assign(&self, index: usize, n: usize, ell: usize) -> usize {
        debug_assert!(index < n);
        // usize arithmetic: (index * ell) fits for any realistic n * ell.
        (index * ell / n).min(ell - 1)
    }
}

/// Uniform independent random assignment (seeded, stateless).
///
/// Each index is hashed with SplitMix64 so assignment is deterministic per
/// `(seed, index)` without storing per-item state — the property the engine
/// needs to partition in parallel.
#[derive(Clone, Copy, Debug)]
pub struct RandomPartition {
    /// Seed defining the random assignment.
    pub seed: u64,
}

impl RandomPartition {
    /// Creates a seeded random partitioner.
    pub fn new(seed: u64) -> Self {
        RandomPartition { seed }
    }
}

#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl Partitioner for RandomPartition {
    #[inline]
    fn assign(&self, index: usize, _n: usize, ell: usize) -> usize {
        (splitmix64(self.seed ^ (index as u64).wrapping_mul(0xA24B_AED4_963E_E407)) % ell as u64)
            as usize
    }
}

/// Adversarial partitioner: all `special` indices land in partition 0, the
/// rest are chunked across all `ℓ` partitions.
#[derive(Clone, Debug)]
pub struct Adversarial {
    special: HashSet<usize>,
}

impl Adversarial {
    /// Creates an adversarial partitioner forcing `special` indices (e.g.
    /// the injected outliers) into partition 0.
    pub fn new<I: IntoIterator<Item = usize>>(special: I) -> Self {
        Adversarial {
            special: special.into_iter().collect(),
        }
    }
}

impl Partitioner for Adversarial {
    #[inline]
    fn assign(&self, index: usize, n: usize, ell: usize) -> usize {
        if self.special.contains(&index) {
            0
        } else {
            Chunked.assign(index, n, ell)
        }
    }
}

/// Materializes the partition of `items` into `ell` buckets according to
/// `partitioner`, preserving relative order within each bucket.
///
/// # Panics
///
/// Panics if `ell == 0` or a partitioner returns an out-of-range partition.
pub fn partition_dataset<T: Clone, P: Partitioner + ?Sized>(
    items: &[T],
    ell: usize,
    partitioner: &P,
) -> Vec<Vec<T>> {
    assert!(ell > 0, "need at least one partition");
    let mut buckets: Vec<Vec<T>> = vec![Vec::new(); ell];
    for (i, item) in items.iter().enumerate() {
        let p = partitioner.assign(i, items.len(), ell);
        assert!(p < ell, "partitioner returned {p} >= ell = {ell}");
        buckets[p].push(item.clone());
    }
    buckets
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunked_is_balanced() {
        let items: Vec<u32> = (0..103).collect();
        let parts = partition_dataset(&items, 4, &Chunked);
        assert_eq!(parts.len(), 4);
        let sizes: Vec<usize> = parts.iter().map(Vec::len).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 103);
        assert!(sizes.iter().all(|&s| s == 25 || s == 26), "{sizes:?}");
    }

    #[test]
    fn chunked_is_contiguous() {
        let items: Vec<u32> = (0..100).collect();
        let parts = partition_dataset(&items, 5, &Chunked);
        for part in &parts {
            for w in part.windows(2) {
                assert_eq!(w[1], w[0] + 1, "chunk not contiguous");
            }
        }
    }

    #[test]
    fn random_partition_is_deterministic_and_covers() {
        let items: Vec<u32> = (0..10_000).collect();
        let a = partition_dataset(&items, 8, &RandomPartition::new(1));
        let b = partition_dataset(&items, 8, &RandomPartition::new(1));
        assert_eq!(a, b);
        // All partitions are used and roughly balanced (Chernoff: each gets
        // ~1250 ± a few hundred).
        for part in &a {
            assert!(
                (900..1600).contains(&part.len()),
                "unbalanced partition: {}",
                part.len()
            );
        }
    }

    #[test]
    fn random_partition_changes_with_seed() {
        let items: Vec<u32> = (0..1000).collect();
        let a = partition_dataset(&items, 4, &RandomPartition::new(1));
        let b = partition_dataset(&items, 4, &RandomPartition::new(2));
        assert_ne!(a, b);
    }

    #[test]
    fn adversarial_sends_special_to_partition_zero() {
        let items: Vec<u32> = (0..100).collect();
        let special: Vec<usize> = (90..100).collect();
        let parts = partition_dataset(&items, 4, &Adversarial::new(special.clone()));
        for &s in &special {
            assert!(parts[0].contains(&(s as u32)));
        }
        // Non-special items still spread across partitions.
        assert!(parts[1..].iter().all(|p| !p.is_empty()));
    }

    #[test]
    fn single_partition_collects_everything() {
        let items: Vec<u32> = (0..10).collect();
        let parts = partition_dataset(&items, 1, &Chunked);
        assert_eq!(parts, vec![items]);
    }

    #[test]
    #[should_panic(expected = "at least one partition")]
    fn zero_partitions_panics() {
        let _ = partition_dataset(&[1u32], 0, &Chunked);
    }
}
