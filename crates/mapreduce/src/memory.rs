//! Memory accounting for the MapReduce model.
//!
//! The paper states its bounds in terms of `M_L` (the local memory available
//! to each reducer) and `M_A` (the aggregate memory across all reducers),
//! both measured in stored items. The engine records, for every executed
//! round, the largest reducer input and the total shuffled volume, so tests
//! can assert e.g. that the k-center algorithm's round-2 reducer receives
//! `ℓ · τ` coreset points and nothing more.

/// Statistics for one executed MapReduce round.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RoundStats {
    /// Number of distinct keys (= reducer instances) in the round.
    pub reducers: usize,
    /// Largest number of values delivered to a single reducer — the round's
    /// local memory requirement `M_L` in items.
    pub max_reducer_load: usize,
    /// Total number of key–value pairs shuffled — the round's aggregate
    /// memory `M_A` in items.
    pub total_pairs: usize,
}

/// Memory report accumulated over the rounds of a MapReduce computation.
#[derive(Clone, Debug, Default)]
pub struct MemoryReport {
    /// Per-round statistics in execution order.
    pub rounds: Vec<RoundStats>,
}

impl MemoryReport {
    /// Local memory requirement of the whole computation: the maximum
    /// reducer load over all rounds (items).
    pub fn local_memory(&self) -> usize {
        self.rounds
            .iter()
            .map(|r| r.max_reducer_load)
            .max()
            .unwrap_or(0)
    }

    /// Aggregate memory requirement: the maximum total shuffled volume over
    /// all rounds (items).
    pub fn aggregate_memory(&self) -> usize {
        self.rounds.iter().map(|r| r.total_pairs).max().unwrap_or(0)
    }

    /// Number of rounds executed.
    pub fn round_count(&self) -> usize {
        self.rounds.len()
    }

    /// Appends the statistics of a completed round.
    pub fn record(&mut self, stats: RoundStats) {
        self.rounds.push(stats);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_report_is_zero() {
        let r = MemoryReport::default();
        assert_eq!(r.local_memory(), 0);
        assert_eq!(r.aggregate_memory(), 0);
        assert_eq!(r.round_count(), 0);
    }

    #[test]
    fn maxima_across_rounds() {
        let mut r = MemoryReport::default();
        r.record(RoundStats {
            reducers: 4,
            max_reducer_load: 100,
            total_pairs: 400,
        });
        r.record(RoundStats {
            reducers: 1,
            max_reducer_load: 250,
            total_pairs: 250,
        });
        assert_eq!(r.local_memory(), 250);
        assert_eq!(r.aggregate_memory(), 400);
        assert_eq!(r.round_count(), 2);
    }
}
