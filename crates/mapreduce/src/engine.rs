//! The MapReduce round executor.
//!
//! A round transforms a multiset of key–value pairs by applying a mapper to
//! every pair independently, grouping the results by key (the shuffle), and
//! applying a reducer to every group independently — the MR model of the
//! paper's §2.1. Map and reduce phases run on a dedicated rayon thread pool
//! whose size is the simulated parallelism `ℓ`, so wall-clock scalability
//! experiments (paper Fig. 7) reflect the configured number of "processors".
//!
//! Reducers are ordinary closures and may resolve shared, even persistent,
//! state: the outlier algorithms' round 2 prices its coreset union into a
//! `kcenter_metric::CachedOracle` inside the reducer, which — when the
//! process has a persistent store installed (`KCENTER_CACHE_DIR`) — loads
//! a previously priced matrix from disk instead of rebuilding it. The
//! engine itself stays oblivious; determinism of the round output is
//! preserved because loaded artifacts are bitwise what a rebuild would
//! produce.

use std::collections::BTreeMap;

use parking_lot::Mutex;
use rayon::prelude::*;

use crate::memory::{MemoryReport, RoundStats};

/// A MapReduce engine with fixed parallelism and accumulated memory
/// accounting.
pub struct MapReduceEngine {
    pool: rayon::ThreadPool,
    parallelism: usize,
    report: Mutex<MemoryReport>,
}

impl MapReduceEngine {
    /// Creates an engine simulating `parallelism` processors.
    ///
    /// # Panics
    ///
    /// Panics if `parallelism == 0` or the thread pool cannot be built.
    pub fn new(parallelism: usize) -> Self {
        assert!(parallelism > 0, "parallelism must be positive");
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(parallelism)
            .build()
            .expect("failed to build rayon pool");
        MapReduceEngine {
            pool,
            parallelism,
            report: Mutex::new(MemoryReport::default()),
        }
    }

    /// The configured parallelism `ℓ`.
    pub fn parallelism(&self) -> usize {
        self.parallelism
    }

    /// Snapshot of the memory accounting over all rounds run so far.
    pub fn memory_report(&self) -> MemoryReport {
        self.report.lock().clone()
    }

    /// Executes one MapReduce round.
    ///
    /// `mapper` transforms each input item into a key–value pair; pairs are
    /// grouped by key; `reducer` consumes each `(key, values)` group and
    /// emits output items. Reducer outputs are concatenated in key order, so
    /// the result is deterministic regardless of thread scheduling.
    pub fn round<I, K, V, O, MF, RF>(&self, inputs: Vec<I>, mapper: MF, reducer: RF) -> Vec<O>
    where
        I: Send,
        K: Ord + Send,
        V: Send,
        O: Send,
        MF: Fn(I) -> (K, V) + Sync,
        RF: Fn(&K, Vec<V>) -> Vec<O> + Sync,
    {
        let total_inputs = inputs.len();
        self.pool.install(|| {
            // Map phase.
            let pairs: Vec<(K, V)> = inputs.into_par_iter().map(&mapper).collect();

            // Shuffle: group by key. BTreeMap gives deterministic key order.
            let mut groups: BTreeMap<K, Vec<V>> = BTreeMap::new();
            for (k, v) in pairs {
                groups.entry(k).or_default().push(v);
            }

            let stats = RoundStats {
                reducers: groups.len(),
                max_reducer_load: groups.values().map(Vec::len).max().unwrap_or(0),
                total_pairs: total_inputs,
            };
            self.report.lock().record(stats);

            // Reduce phase, parallel over key groups; key order preserved in
            // the output by collecting per-group vectors first.
            let groups: Vec<(K, Vec<V>)> = groups.into_iter().collect();
            let reduced: Vec<Vec<O>> = groups
                .into_par_iter()
                .map(|(k, vs)| reducer(&k, vs))
                .collect();
            reduced.into_iter().flatten().collect()
        })
    }

    /// Runs a closure inside the engine's thread pool (used by algorithms
    /// for parallel work outside strict MapReduce rounds — e.g. the final
    /// radius evaluation over the full dataset — so that *all* parallelism
    /// in an experiment honours the configured `ℓ`).
    pub fn run_scoped<R: Send>(&self, f: impl FnOnce() -> R + Send) -> R {
        self.pool.install(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_count_round() {
        let engine = MapReduceEngine::new(4);
        let words = vec!["a", "b", "a", "c", "b", "a"];
        let counts: Vec<(String, usize)> = engine.round(
            words,
            |w| (w.to_string(), 1usize),
            |k, vs| vec![(k.clone(), vs.len())],
        );
        assert_eq!(
            counts,
            vec![
                ("a".to_string(), 3),
                ("b".to_string(), 2),
                ("c".to_string(), 1)
            ]
        );
    }

    #[test]
    fn memory_accounting_tracks_loads() {
        let engine = MapReduceEngine::new(2);
        let items: Vec<u32> = (0..100).collect();
        // Key 0 gets 50 items, key 1 gets 50 items.
        let _ = engine.round(items, |x| (x % 2, x), |_, vs| vec![vs.len()]);
        let report = engine.memory_report();
        assert_eq!(report.round_count(), 1);
        assert_eq!(report.rounds[0].reducers, 2);
        assert_eq!(report.rounds[0].max_reducer_load, 50);
        assert_eq!(report.rounds[0].total_pairs, 100);
        assert_eq!(report.local_memory(), 50);
        assert_eq!(report.aggregate_memory(), 100);
    }

    #[test]
    fn two_round_pipeline() {
        // Round 1: per-partition maxima; round 2: global maximum. The shape
        // of every algorithm in the paper.
        let engine = MapReduceEngine::new(4);
        let items: Vec<u64> = (0..1000).rev().collect();
        let partials = engine.round(
            items,
            |x| (x % 8, x),
            |_, vs| vec![vs.into_iter().max().unwrap()],
        );
        assert_eq!(partials.len(), 8);
        let global = engine.round(
            partials,
            |x| ((), x),
            |_, vs| vec![vs.into_iter().max().unwrap()],
        );
        assert_eq!(global, vec![999]);
        assert_eq!(engine.memory_report().round_count(), 2);
    }

    #[test]
    fn reduce_runs_with_configured_parallelism() {
        // The pool really has ℓ threads: with ℓ = 3 the maximum number of
        // rayon workers observed inside reducers is at most 3.
        let engine = MapReduceEngine::new(3);
        let items: Vec<u32> = (0..64).collect();
        let observed: Vec<usize> = engine.round(
            items,
            |x| (x % 16, x),
            |_, _| vec![rayon::current_num_threads()],
        );
        assert!(observed.iter().all(|&t| t == 3));
    }

    #[test]
    fn output_is_deterministic_across_runs() {
        let run = || {
            let engine = MapReduceEngine::new(4);
            let items: Vec<u32> = (0..512).collect();
            engine.round(
                items,
                |x| (x % 7, x * 3),
                |k, vs| vec![(*k, vs.iter().sum::<u32>())],
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn empty_input_produces_empty_output() {
        let engine = MapReduceEngine::new(2);
        let out: Vec<u32> = engine.round(Vec::<u32>::new(), |x| (x, x), |_, vs| vs);
        assert!(out.is_empty());
        assert_eq!(engine.memory_report().rounds[0].reducers, 0);
    }

    #[test]
    #[should_panic(expected = "parallelism must be positive")]
    fn zero_parallelism_panics() {
        let _ = MapReduceEngine::new(0);
    }

    #[test]
    fn iterative_multi_round_convergence() {
        // An MPC-style iterative job: repeatedly halve the number of
        // partial aggregates until one remains; every round is accounted.
        let engine = MapReduceEngine::new(4);
        let mut values: Vec<u64> = (1..=256).collect();
        let mut rounds = 0;
        while values.len() > 1 {
            let groups = (values.len() / 2).max(1);
            values = engine.round(
                values.into_iter().enumerate().collect::<Vec<_>>(),
                move |(i, v)| (i % groups, v),
                |_, vs| vec![vs.into_iter().sum::<u64>()],
            );
            rounds += 1;
        }
        assert_eq!(values, vec![256 * 257 / 2]);
        assert_eq!(engine.memory_report().round_count(), rounds);
        assert!(rounds <= 9);
    }

    #[test]
    fn reducer_emitting_nothing_is_fine() {
        let engine = MapReduceEngine::new(2);
        let out: Vec<u32> = engine.round(
            vec![1u32, 2, 3, 4],
            |x| (x % 2, x),
            |&key, vs| if key == 0 { vs } else { Vec::new() },
        );
        assert_eq!(out, vec![2, 4]);
    }

    #[test]
    fn run_scoped_executes_in_engine_pool() {
        let engine = MapReduceEngine::new(2);
        let threads = engine.run_scoped(rayon::current_num_threads);
        assert_eq!(threads, 2);
    }
}
