//! Seeded shuffling.
//!
//! The paper shuffles datasets before streaming them ("the points are
//! shuffled before being streamed to the algorithms") and before each
//! repetition of the sequential experiments, noting that GMM-based coreset
//! construction is sensitive to input order. Seeded shuffles keep the
//! experiment harness reproducible.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Returns a copy of `items` shuffled with a seeded Fisher–Yates pass.
pub fn shuffled<T: Clone>(items: &[T], seed: u64) -> Vec<T> {
    let mut out: Vec<T> = items.to_vec();
    shuffle_in_place(&mut out, seed);
    out
}

/// Shuffles `items` in place with a seeded Fisher–Yates pass.
pub fn shuffle_in_place<T>(items: &mut [T], seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    items.shuffle(&mut rng);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shuffle_is_a_permutation() {
        let v: Vec<u32> = (0..100).collect();
        let mut s = shuffled(&v, 1);
        s.sort_unstable();
        assert_eq!(s, v);
    }

    #[test]
    fn shuffle_is_deterministic() {
        let v: Vec<u32> = (0..50).collect();
        assert_eq!(shuffled(&v, 2), shuffled(&v, 2));
        assert_ne!(shuffled(&v, 2), shuffled(&v, 3));
    }

    #[test]
    fn shuffle_moves_elements() {
        let v: Vec<u32> = (0..1000).collect();
        let s = shuffled(&v, 4);
        let fixed = v.iter().zip(&s).filter(|(a, b)| a == b).count();
        assert!(fixed < 50, "{fixed} fixed points looks unshuffled");
    }

    #[test]
    fn empty_and_singleton_are_fine() {
        assert_eq!(shuffled::<u32>(&[], 0), Vec::<u32>::new());
        assert_eq!(shuffled(&[7], 0), vec![7]);
    }
}
