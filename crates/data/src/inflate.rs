//! SMOTE-like dataset inflation (paper §5.3).
//!
//! To test scalability the paper builds instances `h` times larger than the
//! originals: repeatedly sample a random point and perturb each coordinate
//! with Gaussian noise whose standard deviation is 10% of that coordinate's
//! range over the original dataset. The construction preserves the clustered
//! structure of the original (same rationale as the SMOTE oversampling
//! technique).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use kcenter_metric::Point;

use crate::synthetic::standard_normal;

/// Returns a dataset of `target_size` points generated from `base` by the
/// paper's SMOTE-like procedure. The original points are *not* included in
/// the output (matching the paper: the synthetic dataset is built "until the
/// desired size is reached" from perturbed samples).
///
/// # Panics
///
/// Panics if `base` is empty.
pub fn inflate(base: &[Point], target_size: usize, seed: u64) -> Vec<Point> {
    assert!(!base.is_empty(), "cannot inflate an empty dataset");
    let dim = base[0].dim();

    // Per-coordinate noise scale: 10% of the coordinate's range.
    let mut lo = vec![f64::INFINITY; dim];
    let mut hi = vec![f64::NEG_INFINITY; dim];
    for p in base {
        for (j, &c) in p.coords().iter().enumerate() {
            lo[j] = lo[j].min(c);
            hi[j] = hi[j].max(c);
        }
    }
    let sigma: Vec<f64> = lo.iter().zip(&hi).map(|(l, h)| 0.1 * (h - l)).collect();

    let mut rng = StdRng::seed_from_u64(seed);
    (0..target_size)
        .map(|_| {
            let p = &base[rng.random_range(0..base.len())];
            Point::new(
                p.coords()
                    .iter()
                    .zip(&sigma)
                    .map(|(&c, &s)| c + s * standard_normal(&mut rng))
                    .collect(),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{gaussian_mixture, GaussianMixtureConfig};

    #[test]
    fn inflates_to_requested_size() {
        let base = gaussian_mixture(&GaussianMixtureConfig::new(100, 3, 4, 1));
        let big = inflate(&base, 2_500, 2);
        assert_eq!(big.len(), 2_500);
        assert!(big.iter().all(|p| p.dim() == 3));
    }

    #[test]
    fn inflation_stays_near_base_range() {
        let base = gaussian_mixture(&GaussianMixtureConfig::new(200, 2, 3, 3));
        let big = inflate(&base, 1_000, 4);
        // Noise is 10% of range per coordinate, so inflated points stay
        // within the base bounding box extended by a generous margin.
        for j in 0..2 {
            let (blo, bhi) = base
                .iter()
                .map(|p| p[j])
                .fold((f64::INFINITY, f64::NEG_INFINITY), |(l, h), c| {
                    (l.min(c), h.max(c))
                });
            let margin = (bhi - blo) * 0.8;
            for p in &big {
                assert!(p[j] >= blo - margin && p[j] <= bhi + margin);
            }
        }
    }

    #[test]
    fn inflation_is_deterministic() {
        let base = gaussian_mixture(&GaussianMixtureConfig::new(50, 2, 2, 5));
        assert_eq!(inflate(&base, 300, 7), inflate(&base, 300, 7));
        assert_ne!(inflate(&base, 300, 7), inflate(&base, 300, 8));
    }

    #[test]
    fn degenerate_base_inflates_to_copies() {
        let base = vec![Point::new(vec![2.0, 3.0]); 5];
        let big = inflate(&base, 50, 9);
        // Zero range per coordinate → zero noise → exact copies.
        assert!(big.iter().all(|p| p == &base[0]));
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_base_panics() {
        let _ = inflate(&[], 10, 0);
    }
}
