//! Per-coordinate dataset normalization.
//!
//! k-center radii are dominated by whichever coordinate has the largest
//! scale; real datasets (e.g. the paper's Power measurements, which mix
//! kilowatts with volts with amperes) need per-coordinate standardization
//! before distances mean anything. The CLI normalizes by default.

use kcenter_metric::Point;

/// Per-coordinate affine transform `x ↦ (x - shift) / scale`.
#[derive(Clone, Debug, PartialEq)]
pub struct Normalization {
    /// Per-coordinate shift (mean or min).
    pub shift: Vec<f64>,
    /// Per-coordinate scale (stddev or range); zero-spread coordinates get
    /// scale 1 so they pass through unchanged.
    pub scale: Vec<f64>,
}

impl Normalization {
    /// Z-score parameters: shift = mean, scale = standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty.
    pub fn zscore(points: &[Point]) -> Normalization {
        assert!(!points.is_empty(), "cannot fit normalization to no data");
        let dim = points[0].dim();
        let n = points.len() as f64;
        let mut mean = vec![0.0; dim];
        for p in points {
            for (m, &c) in mean.iter_mut().zip(p.coords()) {
                *m += c;
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        let mut var = vec![0.0; dim];
        for p in points {
            for ((v, &c), m) in var.iter_mut().zip(p.coords()).zip(&mean) {
                let d = c - m;
                *v += d * d;
            }
        }
        let scale: Vec<f64> = var
            .into_iter()
            .map(|v| {
                let s = (v / n).sqrt();
                if s > 0.0 {
                    s
                } else {
                    1.0
                }
            })
            .collect();
        Normalization { shift: mean, scale }
    }

    /// Min–max parameters: shift = min, scale = range (each coordinate maps
    /// into `[0, 1]`).
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty.
    pub fn min_max(points: &[Point]) -> Normalization {
        assert!(!points.is_empty(), "cannot fit normalization to no data");
        let dim = points[0].dim();
        let mut lo = vec![f64::INFINITY; dim];
        let mut hi = vec![f64::NEG_INFINITY; dim];
        for p in points {
            for (j, &c) in p.coords().iter().enumerate() {
                lo[j] = lo[j].min(c);
                hi[j] = hi[j].max(c);
            }
        }
        let scale: Vec<f64> = lo
            .iter()
            .zip(&hi)
            .map(|(l, h)| {
                let r = h - l;
                if r > 0.0 {
                    r
                } else {
                    1.0
                }
            })
            .collect();
        Normalization { shift: lo, scale }
    }

    /// Applies the transform to one point.
    pub fn apply(&self, point: &Point) -> Point {
        Point::new(
            point
                .coords()
                .iter()
                .zip(&self.shift)
                .zip(&self.scale)
                .map(|((c, s), sc)| (c - s) / sc)
                .collect(),
        )
    }

    /// Applies the transform to a whole dataset.
    pub fn apply_all(&self, points: &[Point]) -> Vec<Point> {
        points.iter().map(|p| self.apply(p)).collect()
    }

    /// Inverts the transform (maps a normalized point back to data space).
    pub fn invert(&self, point: &Point) -> Point {
        Point::new(
            point
                .coords()
                .iter()
                .zip(&self.shift)
                .zip(&self.scale)
                .map(|((c, s), sc)| c * sc + s)
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(rows: &[&[f64]]) -> Vec<Point> {
        rows.iter().map(|r| Point::new(r.to_vec())).collect()
    }

    #[test]
    fn zscore_centers_and_scales() {
        let data = pts(&[&[0.0, 100.0], &[2.0, 300.0], &[4.0, 500.0]]);
        let norm = Normalization::zscore(&data);
        let out = norm.apply_all(&data);
        for j in 0..2 {
            let mean: f64 = out.iter().map(|p| p[j]).sum::<f64>() / 3.0;
            let var: f64 = out.iter().map(|p| p[j] * p[j]).sum::<f64>() / 3.0 - mean * mean;
            assert!(mean.abs() < 1e-12, "mean {mean} not centred");
            assert!((var - 1.0).abs() < 1e-9, "variance {var} not unit");
        }
    }

    #[test]
    fn min_max_maps_to_unit_interval() {
        let data = pts(&[&[-5.0, 10.0], &[5.0, 20.0], &[0.0, 15.0]]);
        let norm = Normalization::min_max(&data);
        for p in norm.apply_all(&data) {
            for &c in p.coords() {
                assert!((-1e-12..=1.0 + 1e-12).contains(&c));
            }
        }
    }

    #[test]
    fn constant_coordinates_pass_through() {
        let data = pts(&[&[7.0, 1.0], &[7.0, 2.0]]);
        let z = Normalization::zscore(&data);
        let out = z.apply_all(&data);
        // Constant coordinate: scale 1 → shifted to 0, no NaN.
        assert_eq!(out[0][0], 0.0);
        assert_eq!(out[1][0], 0.0);
        assert!(out.iter().all(|p| p.coords().iter().all(|c| c.is_finite())));
    }

    #[test]
    fn invert_round_trips() {
        let data = pts(&[&[1.0, -3.0], &[4.0, 9.0], &[-2.0, 6.0]]);
        for norm in [Normalization::zscore(&data), Normalization::min_max(&data)] {
            for p in &data {
                let back = norm.invert(&norm.apply(p));
                for (a, b) in back.coords().iter().zip(p.coords()) {
                    assert!((a - b).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "no data")]
    fn empty_fit_panics() {
        let _ = Normalization::zscore(&[]);
    }
}
