//! Seeded synthetic point generators.
//!
//! Gaussian samples are produced with the Box–Muller transform so the crate
//! needs no distribution dependency; all generators are deterministic given a
//! seed, which the experiment harness relies on for its ≥10-repetition
//! confidence intervals.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use kcenter_metric::Point;

/// Configuration for [`gaussian_mixture`].
#[derive(Clone, Debug)]
pub struct GaussianMixtureConfig {
    /// Number of points to generate.
    pub n: usize,
    /// Dimension of each point.
    pub dim: usize,
    /// Number of mixture components (ground-truth clusters).
    pub clusters: usize,
    /// Half-side of the cube cluster centers are drawn from.
    pub center_box: f64,
    /// Standard deviation of each cluster.
    pub spread: f64,
    /// RNG seed.
    pub seed: u64,
}

impl GaussianMixtureConfig {
    /// A reasonable default mixture: `n` points, `dim` dimensions,
    /// `clusters` components in a `[-10, 10]^dim` box with unit spread.
    pub fn new(n: usize, dim: usize, clusters: usize, seed: u64) -> Self {
        GaussianMixtureConfig {
            n,
            dim,
            clusters,
            center_box: 10.0,
            spread: 1.0,
            seed,
        }
    }
}

/// One standard-normal sample via the Box–Muller transform.
///
/// Uses the polar-free (trigonometric) form; one of the two antithetic
/// outputs is discarded for simplicity — generation is not a bottleneck.
pub fn standard_normal<R: Rng>(rng: &mut R) -> f64 {
    // Guard against log(0).
    let u1: f64 = loop {
        let u = rng.random::<f64>();
        if u > f64::MIN_POSITIVE {
            break u;
        }
    };
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Generates a seeded Gaussian mixture.
///
/// Cluster centers are drawn uniformly from `[-center_box, center_box]^dim`;
/// each point picks a uniformly random component and adds
/// `N(0, spread^2)` noise per coordinate.
///
/// # Panics
///
/// Panics if `n == 0`, `dim == 0`, or `clusters == 0`.
pub fn gaussian_mixture(config: &GaussianMixtureConfig) -> Vec<Point> {
    assert!(config.n > 0, "n must be positive");
    assert!(config.dim > 0, "dim must be positive");
    assert!(config.clusters > 0, "clusters must be positive");

    let mut rng = StdRng::seed_from_u64(config.seed);
    let centers: Vec<Vec<f64>> = (0..config.clusters)
        .map(|_| {
            (0..config.dim)
                .map(|_| rng.random_range(-config.center_box..=config.center_box))
                .collect()
        })
        .collect();

    (0..config.n)
        .map(|_| {
            let c = &centers[rng.random_range(0..config.clusters)];
            Point::new(
                c.iter()
                    .map(|&coord| coord + config.spread * standard_normal(&mut rng))
                    .collect(),
            )
        })
        .collect()
}

/// Generates `n` points uniformly from the cube `[0, side]^dim`.
pub fn uniform_cube(n: usize, dim: usize, side: f64, seed: u64) -> Vec<Point> {
    assert!(n > 0 && dim > 0, "n and dim must be positive");
    assert!(side > 0.0, "side must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| Point::new((0..dim).map(|_| rng.random_range(0.0..side)).collect()))
        .collect()
}

/// Generates `n` points on an `intrinsic_dim`-dimensional random linear
/// manifold embedded in `R^ambient_dim`, plus isotropic noise of standard
/// deviation `noise`.
///
/// The Euclidean doubling dimension of such a set tracks `intrinsic_dim`
/// regardless of the ambient dimension — the construction behind the
/// paper's observation that "the notion of doubling dimension can be
/// defined for an individual dataset and may turn out much lower than the
/// one of the underlying metric space" (its example: collinear points in
/// R²). The doubling-dimension ablation sweeps `intrinsic_dim` to expose
/// the `(4/ε)^D` coreset-size growth of Lemma 3.
///
/// # Panics
///
/// Panics if `n == 0` or `intrinsic_dim` is `0` or exceeds `ambient_dim`.
pub fn embedded_manifold(
    n: usize,
    intrinsic_dim: usize,
    ambient_dim: usize,
    noise: f64,
    seed: u64,
) -> Vec<Point> {
    assert!(n > 0, "n must be positive");
    assert!(
        intrinsic_dim > 0 && intrinsic_dim <= ambient_dim,
        "need 0 < intrinsic_dim <= ambient_dim"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    // Random Gaussian basis: rows are (unnormalized) directions of the
    // manifold. Gaussian vectors in high dimension are nearly orthogonal,
    // which suffices to preserve the intrinsic dimensionality.
    let basis: Vec<Vec<f64>> = (0..intrinsic_dim)
        .map(|_| {
            let v: Vec<f64> = (0..ambient_dim)
                .map(|_| standard_normal(&mut rng))
                .collect();
            let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt().max(1e-12);
            v.into_iter().map(|x| x / norm).collect()
        })
        .collect();
    (0..n)
        .map(|_| {
            let coeffs: Vec<f64> = (0..intrinsic_dim)
                .map(|_| rng.random_range(-10.0..10.0))
                .collect();
            let coords: Vec<f64> = (0..ambient_dim)
                .map(|j| {
                    let on_manifold: f64 = coeffs.iter().zip(&basis).map(|(c, b)| c * b[j]).sum();
                    on_manifold + noise * standard_normal(&mut rng)
                })
                .collect();
            Point::new(coords)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcenter_metric::{Euclidean, Metric};

    #[test]
    fn mixture_has_requested_shape() {
        let pts = gaussian_mixture(&GaussianMixtureConfig::new(500, 3, 4, 42));
        assert_eq!(pts.len(), 500);
        assert!(pts.iter().all(|p| p.dim() == 3));
    }

    #[test]
    fn mixture_is_deterministic_per_seed() {
        let cfg = GaussianMixtureConfig::new(100, 2, 3, 7);
        assert_eq!(gaussian_mixture(&cfg), gaussian_mixture(&cfg));
        let mut cfg2 = cfg.clone();
        cfg2.seed = 8;
        assert_ne!(gaussian_mixture(&cfg), gaussian_mixture(&cfg2));
    }

    #[test]
    fn mixture_respects_spread() {
        // With tiny spread, points should hug their cluster centers: the
        // 4-center optimal radius of a 4-cluster mixture is about the spread,
        // far below the center-box scale.
        let mut cfg = GaussianMixtureConfig::new(400, 2, 4, 3);
        cfg.spread = 0.01;
        let pts = gaussian_mixture(&cfg);
        // Every point must be within 1.0 of some other point from the same
        // tight cluster unless it is alone in its cluster; sanity-check the
        // scale by measuring nearest-neighbor distances.
        let mut nn_far = 0;
        for (i, p) in pts.iter().enumerate() {
            let nn = pts
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, q)| Euclidean.distance(p, q))
                .fold(f64::INFINITY, f64::min);
            if nn > 1.0 {
                nn_far += 1;
            }
        }
        assert!(nn_far == 0, "{nn_far} points far from all others");
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(99);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean} too far from 0");
        assert!((var - 1.0).abs() < 0.05, "variance {var} too far from 1");
    }

    #[test]
    fn uniform_cube_in_bounds() {
        let pts = uniform_cube(200, 4, 5.0, 11);
        assert_eq!(pts.len(), 200);
        for p in &pts {
            for &c in p.coords() {
                assert!((0.0..5.0).contains(&c));
            }
        }
    }

    #[test]
    #[should_panic(expected = "n must be positive")]
    fn zero_points_panics() {
        let _ = gaussian_mixture(&GaussianMixtureConfig::new(0, 2, 2, 1));
    }

    #[test]
    fn manifold_has_ambient_shape() {
        let pts = embedded_manifold(200, 2, 16, 0.01, 7);
        assert_eq!(pts.len(), 200);
        assert!(pts.iter().all(|p| p.dim() == 16));
    }

    #[test]
    fn manifold_intrinsic_dimension_tracks_parameter() {
        use kcenter_metric::doubling::{estimate_doubling_dimension, DoublingConfig};
        let cfg = DoublingConfig::default();
        let low = embedded_manifold(800, 1, 12, 0.0, 3);
        let high = embedded_manifold(800, 6, 12, 0.0, 3);
        let d_low = estimate_doubling_dimension(&low, &Euclidean, cfg);
        let d_high = estimate_doubling_dimension(&high, &Euclidean, cfg);
        assert!(
            d_high > d_low + 0.5,
            "intrinsic 6 ({d_high}) should exceed intrinsic 1 ({d_low})"
        );
    }

    #[test]
    fn manifold_noise_zero_lies_in_span() {
        // With one basis vector and no noise, all points are collinear:
        // pairwise distances satisfy the additivity of points on a line
        // (max = sum of distances to the extremes through any point).
        let pts = embedded_manifold(50, 1, 5, 0.0, 9);
        // Project each point onto the first point's direction: collinear
        // points have rank-1 differences; verify via the Cauchy-Schwarz
        // equality |<a,b>| = |a||b| for difference vectors.
        let base = pts[0].coords();
        let d1: Vec<f64> = pts[1]
            .coords()
            .iter()
            .zip(base)
            .map(|(a, b)| a - b)
            .collect();
        for p in &pts[2..] {
            let d2: Vec<f64> = p.coords().iter().zip(base).map(|(a, b)| a - b).collect();
            let dot: f64 = d1.iter().zip(&d2).map(|(a, b)| a * b).sum();
            let n1: f64 = d1.iter().map(|x| x * x).sum::<f64>().sqrt();
            let n2: f64 = d2.iter().map(|x| x * x).sum::<f64>().sqrt();
            assert!(
                (dot.abs() - n1 * n2).abs() <= 1e-6 * (1.0 + n1 * n2),
                "points not collinear"
            );
        }
    }

    #[test]
    #[should_panic(expected = "intrinsic_dim <= ambient_dim")]
    fn manifold_rejects_bad_dims() {
        let _ = embedded_manifold(10, 5, 3, 0.0, 1);
    }
}
