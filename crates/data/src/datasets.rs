//! Stand-ins for the paper's evaluation datasets.
//!
//! The originals are not redistributable, so each stand-in is a seeded
//! Gaussian mixture whose *character* matches the original (see DESIGN.md §4
//! for the substitution argument):
//!
//! | Paper dataset | Size × dim            | Character                         | Stand-in |
//! |---------------|-----------------------|-----------------------------------|----------|
//! | Higgs         | 11M × 7 (derived)     | diffuse, moderately clustered     | 40 clusters, spread 1.5 |
//! | Power         | 2.07M × 7             | many compact regimes, heavy tails | 120 clusters, spread 0.4, wide box |
//! | Wiki          | 5.5M × 50 (word2vec)  | high-dimensional, weak separation | 80 clusters, spread 2.5, tight box |
//!
//! The experiments measure ratios to the best radius found, not absolute
//! radii, so what matters is that (a) Higgs/Power behave like clusterable
//! low-dimensional data where bigger coresets help, and (b) Wiki behaves like
//! high-dimensional data where even small coresets are close to the best
//! achievable — both properties these mixtures reproduce.

use kcenter_metric::Point;

use crate::synthetic::{gaussian_mixture, GaussianMixtureConfig};

/// A 7-dimensional, moderately clustered mixture mimicking the Higgs
/// dataset's derived features. Paper experiments use `k = 50` (no outliers)
/// and `k = 20, z = 200` (with outliers).
pub fn higgs_like(n: usize, seed: u64) -> Vec<Point> {
    gaussian_mixture(&GaussianMixtureConfig {
        n,
        dim: 7,
        clusters: 40,
        center_box: 10.0,
        spread: 1.5,
        seed: seed ^ 0x48_4947_4753,
    })
}

/// A 7-dimensional mixture of many compact regimes mimicking the Power
/// household-consumption dataset. Paper experiments use `k = 100`.
pub fn power_like(n: usize, seed: u64) -> Vec<Point> {
    gaussian_mixture(&GaussianMixtureConfig {
        n,
        dim: 7,
        clusters: 120,
        center_box: 25.0,
        spread: 0.4,
        seed: seed ^ 0x50_4f57_4552,
    })
}

/// A 50-dimensional, weakly separated mixture mimicking word2vec embeddings
/// of English Wikipedia. Paper experiments use `k = 60` (no outliers) and
/// `k = 20, z = 200` (with outliers).
pub fn wiki_like(n: usize, seed: u64) -> Vec<Point> {
    gaussian_mixture(&GaussianMixtureConfig {
        n,
        dim: 50,
        clusters: 80,
        center_box: 2.0,
        spread: 2.5,
        seed: seed ^ 0x5749_4b49,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcenter_metric::doubling::{estimate_doubling_dimension, DoublingConfig};
    use kcenter_metric::Euclidean;

    #[test]
    fn shapes_match_documented_dimensions() {
        assert!(higgs_like(100, 1).iter().all(|p| p.dim() == 7));
        assert!(power_like(100, 1).iter().all(|p| p.dim() == 7));
        assert!(wiki_like(100, 1).iter().all(|p| p.dim() == 50));
    }

    #[test]
    fn datasets_differ_across_seeds_but_not_within() {
        assert_eq!(higgs_like(50, 3), higgs_like(50, 3));
        assert_ne!(higgs_like(50, 3), higgs_like(50, 4));
    }

    #[test]
    fn stand_ins_have_distinct_generators() {
        // Same (n, seed) must not alias across datasets.
        let h = higgs_like(50, 5);
        let p = power_like(50, 5);
        assert_ne!(h, p);
    }

    #[test]
    fn wiki_is_higher_dimensional_than_higgs_intrinsically() {
        let h = higgs_like(800, 2);
        let w = wiki_like(800, 2);
        let cfg = DoublingConfig::default();
        let dh = estimate_doubling_dimension(&h, &Euclidean, cfg);
        let dw = estimate_doubling_dimension(&w, &Euclidean, cfg);
        assert!(
            dw > dh,
            "wiki stand-in should look higher-dimensional: {dw} vs {dh}"
        );
    }
}
