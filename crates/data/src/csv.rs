//! Minimal CSV I/O for point datasets.
//!
//! Enough for the examples to load user data without pulling in a CSV
//! dependency: one point per line, coordinates separated by commas, optional
//! `#`-prefixed comment lines, whitespace tolerated. Buffered I/O per the
//! performance guide.

use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use kcenter_metric::{Point, PointError};

/// Error type for CSV reading.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A field failed to parse as `f64`.
    Parse {
        /// 1-based line number.
        line: usize,
        /// The offending field text.
        field: String,
    },
    /// A parsed row was not a valid point (empty / non-finite).
    BadPoint {
        /// 1-based line number.
        line: usize,
        /// Underlying validation error.
        source: PointError,
    },
    /// Rows had inconsistent dimensions.
    DimensionMismatch {
        /// 1-based line number.
        line: usize,
        /// Dimension of the first row.
        expected: usize,
        /// Dimension of this row.
        found: usize,
    },
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "I/O error: {e}"),
            CsvError::Parse { line, field } => {
                write!(f, "line {line}: cannot parse {field:?} as a number")
            }
            CsvError::BadPoint { line, source } => write!(f, "line {line}: {source}"),
            CsvError::DimensionMismatch {
                line,
                expected,
                found,
            } => write!(
                f,
                "line {line}: expected {expected} coordinates, found {found}"
            ),
        }
    }
}

impl std::error::Error for CsvError {}

impl From<io::Error> for CsvError {
    fn from(e: io::Error) -> Self {
        CsvError::Io(e)
    }
}

/// Reads points from a CSV reader.
pub fn read_points<R: BufRead>(reader: R) -> Result<Vec<Point>, CsvError> {
    let mut points = Vec::new();
    let mut expected_dim: Option<usize> = None;
    for (idx, line) in reader.lines().enumerate() {
        let line_no = idx + 1;
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut coords = Vec::new();
        for field in trimmed.split(',') {
            let field = field.trim();
            let value: f64 = field.parse().map_err(|_| CsvError::Parse {
                line: line_no,
                field: field.to_string(),
            })?;
            coords.push(value);
        }
        if let Some(expected) = expected_dim {
            if coords.len() != expected {
                return Err(CsvError::DimensionMismatch {
                    line: line_no,
                    expected,
                    found: coords.len(),
                });
            }
        } else {
            expected_dim = Some(coords.len());
        }
        let point = Point::try_new(coords).map_err(|source| CsvError::BadPoint {
            line: line_no,
            source,
        })?;
        points.push(point);
    }
    Ok(points)
}

/// Reads points from a CSV file.
pub fn load_csv<P: AsRef<Path>>(path: P) -> Result<Vec<Point>, CsvError> {
    read_points(BufReader::new(File::open(path)?))
}

/// Writes points to a CSV writer, one point per line.
pub fn write_points<W: Write>(writer: W, points: &[Point]) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    for p in points {
        let mut first = true;
        for c in p.coords() {
            if !first {
                write!(w, ",")?;
            }
            write!(w, "{c}")?;
            first = false;
        }
        writeln!(w)?;
    }
    w.flush()
}

/// Writes points to a CSV file.
pub fn save_csv<P: AsRef<Path>>(path: P, points: &[Point]) -> io::Result<()> {
    write_points(File::create(path)?, points)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_csv() {
        let input = "1.0,2.0\n3.5,-4.5\n";
        let pts = read_points(input.as_bytes()).unwrap();
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[1].coords(), &[3.5, -4.5]);
    }

    #[test]
    fn skips_comments_and_blank_lines() {
        let input = "# header\n\n1,2\n  \n# trailer\n3,4\n";
        let pts = read_points(input.as_bytes()).unwrap();
        assert_eq!(pts.len(), 2);
    }

    #[test]
    fn tolerates_whitespace_around_fields() {
        let pts = read_points(" 1.0 , 2.0 \n".as_bytes()).unwrap();
        assert_eq!(pts[0].coords(), &[1.0, 2.0]);
    }

    #[test]
    fn reports_parse_error_with_line() {
        let err = read_points("1,2\n3,abc\n".as_bytes()).unwrap_err();
        match err {
            CsvError::Parse { line, field } => {
                assert_eq!(line, 2);
                assert_eq!(field, "abc");
            }
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn reports_dimension_mismatch() {
        let err = read_points("1,2\n1,2,3\n".as_bytes()).unwrap_err();
        match err {
            CsvError::DimensionMismatch {
                line,
                expected,
                found,
            } => {
                assert_eq!((line, expected, found), (2, 2, 3));
            }
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn rejects_non_finite_values() {
        let err = read_points("1,NaN\n".as_bytes()).unwrap_err();
        assert!(matches!(err, CsvError::BadPoint { line: 1, .. }));
    }

    #[test]
    fn roundtrips_through_write_and_read() {
        let pts = vec![Point::new(vec![1.5, -2.25]), Point::new(vec![0.0, 1e-9])];
        let mut buf = Vec::new();
        write_points(&mut buf, &pts).unwrap();
        let back = read_points(buf.as_slice()).unwrap();
        assert_eq!(back, pts);
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("kcenter-csv-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pts.csv");
        let pts = vec![Point::new(vec![1.0, 2.0, 3.0])];
        save_csv(&path, &pts).unwrap();
        assert_eq!(load_csv(&path).unwrap(), pts);
        std::fs::remove_file(&path).ok();
    }
}
