//! The paper's outlier-injection procedure (§5.2).
//!
//! For a dataset `S`: compute the radius `r_MEB` and center `c_MEB` of its
//! Minimum Enclosing Ball, then add `z` points at distance `100 · r_MEB`
//! from `c_MEB` in random directions. Each injected point is then at distance
//! `>= 99 · r_MEB` from every point of `S`, making it a true outlier; the
//! paper additionally verifies that injected points are mutually far apart
//! (`>= 10 · r_MEB` in their data), which [`OutlierReport`] exposes so the
//! experiments can assert it.

use rand::rngs::StdRng;
use rand::SeedableRng;

use kcenter_metric::{minimum_enclosing_ball, Euclidean, Metric, Point};

use crate::synthetic::standard_normal;

/// What [`inject_outliers`] did, for verification in tests and experiments.
#[derive(Clone, Debug)]
pub struct OutlierReport {
    /// Radius of the dataset's approximate MEB.
    pub meb_radius: f64,
    /// Center of the dataset's approximate MEB.
    pub meb_center: Point,
    /// Indices of the injected points in the returned dataset
    /// (always the trailing `z` positions before any reshuffling).
    pub outlier_indices: Vec<usize>,
    /// Minimum pairwise distance among the injected points.
    pub min_outlier_separation: f64,
}

/// Appends `z` outliers to `points` per the paper's procedure and returns a
/// report describing them. Directions are uniform on the sphere (normalized
/// Gaussian vectors).
///
/// # Panics
///
/// Panics if `points` is empty. If the MEB radius is zero (all points
/// coincide), the injection distance falls back to `100.0` so outliers are
/// still well separated from the data.
pub fn inject_outliers(points: &mut Vec<Point>, z: usize, seed: u64) -> OutlierReport {
    assert!(!points.is_empty(), "cannot inject outliers into empty data");
    let dim = points[0].dim();
    let ball = minimum_enclosing_ball(points, 0.05);
    let distance = if ball.radius > 0.0 {
        100.0 * ball.radius
    } else {
        100.0
    };

    let mut rng = StdRng::seed_from_u64(seed);
    let base = points.len();
    let mut injected: Vec<Point> = Vec::with_capacity(z);
    for _ in 0..z {
        // Uniform direction on the unit sphere.
        let mut dir: Vec<f64> = (0..dim).map(|_| standard_normal(&mut rng)).collect();
        let norm = dir.iter().map(|x| x * x).sum::<f64>().sqrt();
        let norm = if norm == 0.0 { 1.0 } else { norm };
        for (d, c) in dir.iter_mut().zip(ball.center.coords()) {
            *d = c + distance * (*d / norm);
        }
        injected.push(Point::new(dir));
    }

    let mut min_sep = f64::INFINITY;
    for i in 0..injected.len() {
        for j in (i + 1)..injected.len() {
            min_sep = min_sep.min(Euclidean.distance(&injected[i], &injected[j]));
        }
    }

    points.extend(injected);
    OutlierReport {
        meb_radius: ball.radius,
        meb_center: ball.center,
        outlier_indices: (base..base + z).collect(),
        min_outlier_separation: min_sep,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{gaussian_mixture, GaussianMixtureConfig};

    #[test]
    fn injected_points_are_far_from_data() {
        let mut pts = gaussian_mixture(&GaussianMixtureConfig::new(300, 3, 5, 1));
        let original = pts.clone();
        let report = inject_outliers(&mut pts, 20, 2);
        assert_eq!(pts.len(), 320);
        assert_eq!(report.outlier_indices.len(), 20);
        // The paper's guarantee: every outlier is >= 99 * r_MEB from every
        // original point (MEB is approximate, allow small slack).
        let threshold = 98.0 * report.meb_radius;
        for &oi in &report.outlier_indices {
            for p in &original {
                assert!(
                    Euclidean.distance(&pts[oi], p) >= threshold,
                    "outlier too close to data"
                );
            }
        }
    }

    #[test]
    fn injected_points_are_mutually_separated_in_high_dim() {
        // In dimension >= 3 random directions are almost surely far apart;
        // the paper observed >= 10 * r_MEB separation.
        let mut pts = gaussian_mixture(&GaussianMixtureConfig::new(300, 7, 5, 3));
        let report = inject_outliers(&mut pts, 50, 4);
        assert!(
            report.min_outlier_separation >= 10.0 * report.meb_radius,
            "separation {} below 10 r_MEB = {}",
            report.min_outlier_separation,
            10.0 * report.meb_radius
        );
    }

    #[test]
    fn zero_outliers_is_a_noop() {
        let mut pts = gaussian_mixture(&GaussianMixtureConfig::new(50, 2, 2, 5));
        let before = pts.clone();
        let report = inject_outliers(&mut pts, 0, 6);
        assert_eq!(pts, before);
        assert!(report.outlier_indices.is_empty());
        assert_eq!(report.min_outlier_separation, f64::INFINITY);
    }

    #[test]
    fn degenerate_dataset_still_gets_separated_outliers() {
        let mut pts = vec![Point::new(vec![1.0, 1.0]); 10];
        let report = inject_outliers(&mut pts, 3, 7);
        assert_eq!(report.meb_radius, 0.0);
        for &oi in &report.outlier_indices {
            assert!(Euclidean.distance(&pts[oi], &pts[0]) >= 99.0);
        }
    }

    #[test]
    fn injection_is_deterministic() {
        let make = || {
            let mut pts = gaussian_mixture(&GaussianMixtureConfig::new(100, 2, 3, 8));
            inject_outliers(&mut pts, 5, 9);
            pts
        };
        assert_eq!(make(), make());
    }

    #[test]
    #[should_panic(expected = "empty data")]
    fn empty_dataset_panics() {
        let mut pts: Vec<Point> = Vec::new();
        let _ = inject_outliers(&mut pts, 1, 0);
    }
}
