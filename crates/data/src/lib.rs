#![warn(missing_docs)]
//! Dataset substrate for the k-center experiments.
//!
//! The paper evaluates on three real datasets — Higgs (11M points, 7 derived
//! attributes), Power (2.07M points, 7 numeric attributes), and Wiki (5.5M
//! 50-dimensional word2vec vectors) — plus synthetically inflated variants
//! and artificially injected outliers. Those datasets are not redistributable
//! here, so this crate builds the closest synthetic equivalents (documented
//! in `DESIGN.md` §4) exercising the same code paths:
//!
//! * [`synthetic`] — seeded Gaussian-mixture and uniform generators
//!   (Box–Muller; no external distribution crate needed);
//! * [`datasets`] — stand-ins [`datasets::higgs_like`],
//!   [`datasets::power_like`], [`datasets::wiki_like`] with cluster structure
//!   and dimensionality matching the originals' character;
//! * [`outliers`] — the paper's §5.2 outlier injection: `z` points placed at
//!   `100 · r_MEB` from the Minimum Enclosing Ball center in random
//!   directions;
//! * [`inflate()`] — the paper's §5.3 SMOTE-like dataset inflation (sample a
//!   point, perturb each coordinate with Gaussian noise at 10% of the
//!   coordinate's range);
//! * [`shuffle`] — seeded shuffling (streaming experiments shuffle inputs);
//! * [`csv`] — minimal CSV I/O so the examples can load user data.

pub mod csv;
pub mod datasets;
pub mod inflate;
pub mod normalize;
pub mod outliers;
pub mod shuffle;
pub mod synthetic;

pub use datasets::{higgs_like, power_like, wiki_like};
pub use inflate::inflate;
pub use normalize::Normalization;
pub use outliers::{inject_outliers, OutlierReport};
pub use shuffle::shuffled;
pub use synthetic::{embedded_manifold, gaussian_mixture, uniform_cube, GaussianMixtureConfig};
