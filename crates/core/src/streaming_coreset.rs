//! The weighted doubling algorithm — the paper's streaming coreset
//! construction (§4).
//!
//! A novel weighted variant of the doubling algorithm of Charikar et al.
//! (2004): one pass over the stream maintains at most `τ` weighted centers
//! `T` and a lower bound `ϕ` on `r*_τ(S)`, upholding the paper's five
//! invariants:
//!
//! * (a) `|T| ≤ τ`;
//! * (b) every two centers are more than `4ϕ` apart;
//! * (c) every processed point is within `8ϕ` of its (implicit) proxy;
//! * (d) every center's weight counts the points it proxies;
//! * (e) `ϕ ≤ r*_τ(S)` — so by (c) the coreset's proxy radius is at most
//!   `8·r*_τ(S)`.
//!
//! Processing is `O(τ)` per point (distance to the current centers), plus
//! occasional `O(τ²)` merge sweeps when a new center overflows the budget.
//! The proxy function is never materialized — exactly as in the paper, it
//! exists only for the analysis; weights are what the algorithms consume.

use kcenter_metric::Metric;
use kcenter_stream::StreamingAlgorithm;

use crate::coreset::{WeightedCoreset, WeightedPoint};

/// Output of the pass: the weighted coreset and the final lower bound `ϕ`.
#[derive(Clone, Debug)]
pub struct DoublingCoresetOutput<P> {
    /// The weighted coreset (at most `τ` points).
    pub coreset: WeightedCoreset<P>,
    /// Final value of the lower bound `ϕ` (`0` if the stream never exceeded
    /// `τ + 1` distinct points).
    pub phi: f64,
}

/// A resumable view of a [`WeightedDoublingCoreset`]'s state: everything
/// needed to continue the pass on another machine or after an eviction.
///
/// The scratch buffer is deliberately absent — it is a transient
/// allocation rebuilt on demand and carries no algorithmic state.
#[derive(Clone, Debug, PartialEq)]
pub struct CoresetSnapshot<P> {
    /// The centers at snapshot time (buffered points when not yet
    /// initialized).
    pub centers: Vec<P>,
    /// Weights aligned with `centers`.
    pub weights: Vec<u64>,
    /// The lower bound `ϕ` at snapshot time.
    pub phi: f64,
    /// Whether the paper's `τ + 1`-point initialization has completed.
    pub initialized: bool,
    /// Total number of stream items processed so far.
    pub processed: u64,
}

/// The streaming weighted doubling coreset builder.
pub struct WeightedDoublingCoreset<P, M> {
    metric: M,
    tau: usize,
    centers: Vec<P>,
    weights: Vec<u64>,
    phi: f64,
    /// `metric.distance_to_cmp(8.0 * phi)`, cached so the per-item hot
    /// path avoids recomputing the scale conversion; refreshed through
    /// [`Self::set_phi`] whenever `ϕ` changes (init / merge / restore).
    cmp_threshold: f64,
    /// Before initialization completes, points are only buffered (the paper
    /// initializes with the first `τ + 1` points).
    initialized: bool,
    processed: u64,
    /// Reused proxy buffer for the per-item nearest-center block scan
    /// (`O(τ)` values, allocated once and grown with the center set).
    scratch: Vec<f64>,
}

impl<P: Clone, M: Metric<P>> WeightedDoublingCoreset<P, M> {
    /// Creates a builder targeting at most `tau` coreset points.
    ///
    /// The paper sets `τ = (k+z)(16/ε̂)^D` for the analysis and `τ = µ(k+z)`
    /// in the experiments; the choice is the caller's.
    ///
    /// # Panics
    ///
    /// Panics if `tau == 0`.
    pub fn new(metric: M, tau: usize) -> Self {
        assert!(tau > 0, "tau must be positive");
        let cmp_threshold = metric.distance_to_cmp(0.0);
        WeightedDoublingCoreset {
            metric,
            tau,
            centers: Vec::with_capacity(tau + 1),
            weights: Vec::with_capacity(tau + 1),
            phi: 0.0,
            cmp_threshold,
            initialized: false,
            processed: 0,
            scratch: Vec::new(),
        }
    }

    /// Restores a builder from a [`CoresetSnapshot`], so a pass interrupted
    /// by eviction (or shipped across machines) continues bit-identically
    /// to an uninterrupted one.
    ///
    /// Restored state is gated: structural consistency is checked first
    /// (aligned centers/weights, a sane pre-initialization buffer, finite
    /// non-negative `ϕ`), then [`Self::check_invariants`] must accept the
    /// rebuilt builder. Any violation yields a descriptive `Err` rather
    /// than a builder that would silently corrupt the stream.
    pub fn from_snapshot(
        metric: M,
        tau: usize,
        snapshot: CoresetSnapshot<P>,
    ) -> Result<Self, String> {
        if tau == 0 {
            return Err("tau must be positive".to_string());
        }
        let CoresetSnapshot {
            centers,
            weights,
            phi,
            initialized,
            processed,
        } = snapshot;
        if centers.len() != weights.len() {
            return Err(format!(
                "snapshot misaligned: {} centers vs {} weights",
                centers.len(),
                weights.len()
            ));
        }
        if !phi.is_finite() || phi < 0.0 {
            return Err(format!("snapshot phi must be finite and >= 0, got {phi}"));
        }
        if !initialized {
            // Pre-initialization the builder only buffers: one unit-weight
            // entry per processed point, ϕ still at its initial 0.
            if centers.len() > tau {
                return Err(format!(
                    "uninitialized snapshot buffers {} points > tau = {tau}",
                    centers.len()
                ));
            }
            if phi != 0.0 {
                return Err(format!(
                    "uninitialized snapshot must have phi = 0, got {phi}"
                ));
            }
            if weights.iter().any(|&w| w != 1) {
                return Err("uninitialized snapshot must have unit weights".to_string());
            }
            if processed != centers.len() as u64 {
                return Err(format!(
                    "uninitialized snapshot processed {processed} != buffered {}",
                    centers.len()
                ));
            }
        } else if weights.contains(&0) {
            return Err("initialized snapshot contains a zero-weight center".to_string());
        }
        let cmp_threshold = metric.distance_to_cmp(8.0 * phi);
        let restored = WeightedDoublingCoreset {
            metric,
            tau,
            centers,
            weights,
            phi,
            cmp_threshold,
            initialized,
            processed,
            scratch: Vec::new(),
        };
        restored
            .check_invariants()
            .map_err(|e| format!("snapshot rejected: {e}"))?;
        Ok(restored)
    }

    /// Captures the builder's resumable state (see [`CoresetSnapshot`]).
    pub fn snapshot(&self) -> CoresetSnapshot<P> {
        CoresetSnapshot {
            centers: self.centers.clone(),
            weights: self.weights.clone(),
            phi: self.phi,
            initialized: self.initialized,
            processed: self.processed,
        }
    }

    /// Sets `ϕ` and refreshes the cached `8ϕ` comparison-scale threshold —
    /// the only sanctioned way to change `ϕ`, keeping the cache coherent.
    fn set_phi(&mut self, phi: f64) {
        self.phi = phi;
        self.cmp_threshold = self.metric.distance_to_cmp(8.0 * phi);
    }

    /// Current lower bound `ϕ` on `r*_τ` of the processed prefix.
    pub fn phi(&self) -> f64 {
        self.phi
    }

    /// Total number of stream items processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Whether the `τ + 1`-point initialization has completed.
    pub fn is_initialized(&self) -> bool {
        self.initialized
    }

    /// The metric the builder clusters with.
    pub fn metric(&self) -> &M {
        &self.metric
    }

    /// Consumes the builder, returning the metric alongside the output —
    /// for finalizations that need the metric after the pass (GMM or the
    /// radius search on the coreset).
    pub fn into_parts(self) -> (M, DoublingCoresetOutput<P>) {
        let metric_out = self.metric;
        let output = DoublingCoresetOutput {
            coreset: self
                .centers
                .into_iter()
                .zip(self.weights)
                .map(|(point, weight)| WeightedPoint { point, weight })
                .collect(),
            phi: self.phi,
        };
        (metric_out, output)
    }

    /// The current centers.
    pub fn centers(&self) -> &[P] {
        &self.centers
    }

    /// The current weights (aligned with [`Self::centers`]).
    pub fn weights(&self) -> &[u64] {
        &self.weights
    }

    /// The coreset budget `τ`.
    pub fn tau(&self) -> usize {
        self.tau
    }

    /// Smallest positive pairwise distance among centers, if any
    /// (sqrt-free scan, one conversion at the boundary).
    fn min_positive_center_distance(&self) -> Option<f64> {
        let mut min = f64::INFINITY;
        for i in 0..self.centers.len() {
            for j in i + 1..self.centers.len() {
                let d = self.metric.cmp_distance(&self.centers[i], &self.centers[j]);
                if d > 0.0 && d < min {
                    min = d;
                }
            }
        }
        (min != f64::INFINITY).then(|| self.metric.cmp_to_distance(min))
    }

    /// The merge rule: raise `ϕ` and greedily merge centers closer than
    /// `4ϕ`, folding weights, until the budget holds (invariant (a)).
    ///
    /// Raising doubles `ϕ`; from `ϕ = 0` (duplicate-only coresets) it jumps
    /// to half the smallest positive center distance, which preserves
    /// invariant (e) by the pigeonhole argument on distinct points.
    fn merge_until_within_budget(&mut self) {
        while self.centers.len() > self.tau {
            let raised = if self.phi > 0.0 {
                2.0 * self.phi
            } else {
                match self.min_positive_center_distance() {
                    Some(d) => d / 2.0,
                    // All centers identical: merging below collapses them.
                    None => 0.0,
                }
            };
            self.set_phi(raised);
            self.merge_pass();
            if self.phi == 0.0 && self.centers.len() > self.tau {
                // Distinct points cannot merge at ϕ = 0 and no positive
                // distance exists — impossible unless tau < 1; guarded by
                // the constructor.
                unreachable!("merge stalled with phi = 0");
            }
        }
    }

    /// One greedy sweep enforcing invariant (b): keep a center iff it is
    /// farther than `4ϕ` from every survivor; fold discarded weights into
    /// the closest survivor (`≤ 4ϕ` away), re-pointing its proxies.
    fn merge_pass(&mut self) {
        // The O(τ²) sweep compares proxies against the threshold mapped
        // once onto the comparison scale.
        let threshold = self.metric.distance_to_cmp(4.0 * self.phi);
        let mut survivors: Vec<P> = Vec::with_capacity(self.centers.len());
        let mut survivor_weights: Vec<u64> = Vec::with_capacity(self.centers.len());
        'outer: for (c, w) in self.centers.drain(..).zip(self.weights.drain(..)) {
            for (s, sw) in survivors.iter().zip(survivor_weights.iter_mut()) {
                if self.metric.cmp_distance(&c, s) <= threshold {
                    *sw += w;
                    continue 'outer;
                }
            }
            survivors.push(c);
            survivor_weights.push(w);
        }
        self.centers = survivors;
        self.weights = survivor_weights;
    }

    /// Verifies invariants (a), (b) and (d) — used by tests and debug
    /// builds; (c) and (e) require the original stream / an optimal oracle
    /// and are covered by the integration tests.
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.initialized && self.centers.len() > self.tau {
            return Err(format!(
                "invariant (a) violated: {} centers > tau = {}",
                self.centers.len(),
                self.tau
            ));
        }
        if self.initialized {
            for i in 0..self.centers.len() {
                for j in i + 1..self.centers.len() {
                    let d = self.metric.distance(&self.centers[i], &self.centers[j]);
                    if d <= 4.0 * self.phi && self.phi > 0.0 {
                        return Err(format!(
                            "invariant (b) violated: d(t{i},t{j}) = {d} <= 4ϕ = {}",
                            4.0 * self.phi
                        ));
                    }
                }
            }
        }
        let total: u64 = self.weights.iter().sum();
        if total != self.processed {
            return Err(format!(
                "invariant (d) violated: weights sum {total} != processed {}",
                self.processed
            ));
        }
        Ok(())
    }
}

impl<P: Clone, M: Metric<P>> StreamingAlgorithm<P> for WeightedDoublingCoreset<P, M> {
    type Output = DoublingCoresetOutput<P>;

    fn process(&mut self, item: P) {
        self.processed += 1;

        if !self.initialized {
            self.centers.push(item);
            self.weights.push(1);
            if self.centers.len() == self.tau + 1 {
                // ϕ ← half the minimum pairwise distance, then merge.
                let mut phi = self
                    .min_positive_center_distance()
                    .map(|d| d / 2.0)
                    .unwrap_or(0.0);
                // The paper prescribes applying the merge rule at the end
                // of initialization (invariants (a) and (b) do not yet
                // hold). When phi comes from duplicates-only (0), the merge
                // loop raises it appropriately.
                if phi > 0.0 {
                    // First merge invocation doubles ϕ per the rule.
                    phi /= 2.0; // so the doubling lands on min_d / 2
                }
                self.set_phi(phi);
                self.merge_until_within_budget();
                self.initialized = true;
            }
            return;
        }

        // Update rule: the O(τ) nearest-center scan per stream item is
        // sqrt-free and batched — one block-kernel call over the whole
        // center set (bit-identical per-element to `cmp_distance`, see the
        // `Metric::cmp_distance_block` contract), then a strict-`<` argmin
        // which keeps the earliest minimum exactly like the sequential
        // `min_by` scan it replaces. The 8ϕ threshold maps onto the proxy
        // scale once.
        self.scratch.resize(self.centers.len(), 0.0);
        self.metric
            .cmp_distance_block(&item, &self.centers, &mut self.scratch);
        let (mut closest, mut d) = (0, self.scratch[0]);
        for (i, &nd) in self.scratch.iter().enumerate().skip(1) {
            if nd < d {
                closest = i;
                d = nd;
            }
        }
        if d <= self.cmp_threshold {
            self.weights[closest] += 1;
        } else {
            self.centers.push(item);
            self.weights.push(1);
            if self.centers.len() > self.tau {
                self.merge_until_within_budget();
            }
        }
        debug_assert_eq!(
            self.weights.iter().sum::<u64>(),
            self.processed,
            "invariant (d)"
        );
    }

    fn memory_items(&self) -> usize {
        self.centers.len()
    }

    fn finalize(self) -> DoublingCoresetOutput<P> {
        self.into_parts().1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcenter_metric::{Euclidean, Point};
    use kcenter_stream::run_stream;

    fn stream(coords: &[f64]) -> Vec<Point> {
        coords.iter().map(|&c| Point::new(vec![c])).collect()
    }

    #[test]
    fn short_stream_is_kept_verbatim() {
        let pts = stream(&[1.0, 5.0, 9.0]);
        let alg = WeightedDoublingCoreset::new(Euclidean, 8);
        let (out, report) = run_stream(alg, pts);
        assert_eq!(out.coreset.len(), 3);
        assert_eq!(out.phi, 0.0);
        assert!(out.coreset.points.iter().all(|wp| wp.weight == 1));
        assert_eq!(report.peak_memory_items, 3);
    }

    #[test]
    fn memory_never_exceeds_tau_plus_one() {
        let pts: Vec<Point> = (0..2000)
            .map(|i| {
                Point::new(vec![
                    (i as f64 * 37.1).sin() * 100.0,
                    (i as f64 * 11.3).cos() * 80.0,
                ])
            })
            .collect();
        let tau = 16;
        let alg = WeightedDoublingCoreset::new(Euclidean, tau);
        let (out, report) = run_stream(alg, pts);
        assert!(out.coreset.len() <= tau);
        assert!(report.peak_memory_items <= tau + 1);
    }

    #[test]
    fn weights_account_for_every_point() {
        let pts: Vec<Point> = (0..500)
            .map(|i| Point::new(vec![(i % 50) as f64 * 2.0]))
            .collect();
        let alg = WeightedDoublingCoreset::new(Euclidean, 10);
        let (out, _) = run_stream(alg, pts);
        assert_eq!(out.coreset.total_weight(), 500);
    }

    #[test]
    fn invariants_hold_after_every_point() {
        let pts: Vec<Point> = (0..400)
            .map(|i| Point::new(vec![((i * 13) % 97) as f64, ((i * 29) % 89) as f64]))
            .collect();
        let mut alg = WeightedDoublingCoreset::new(Euclidean, 12);
        let mut seen: Vec<Point> = Vec::new();
        for p in pts {
            seen.push(p.clone());
            alg.process(p);
            alg.check_invariants().unwrap();
            // Invariant (c): every processed point within 8ϕ of some
            // center (its proxy chain telescopes to ≤ 8ϕ).
            if alg.phi() > 0.0 {
                for s in &seen {
                    let d = alg
                        .centers()
                        .iter()
                        .map(|c| kcenter_metric::Metric::distance(&Euclidean, s, c))
                        .fold(f64::INFINITY, f64::min);
                    assert!(
                        d <= 8.0 * alg.phi() + 1e-9,
                        "invariant (c) violated: d = {d}, 8ϕ = {}",
                        8.0 * alg.phi()
                    );
                }
            }
        }
    }

    #[test]
    fn phi_is_a_lower_bound_on_optimal_tau_radius() {
        // Invariant (e): ϕ ≤ r*_τ(S), checked against brute force.
        let pts: Vec<Point> = (0..40)
            .map(|i| Point::new(vec![((i * 7) % 31) as f64]))
            .collect();
        let tau = 4;
        let mut alg = WeightedDoublingCoreset::new(Euclidean, tau);
        for p in &pts {
            alg.process(p.clone());
        }
        let (_, opt) = crate::brute_force::optimal_kcenter(&pts, &Euclidean, tau);
        assert!(
            alg.phi() <= opt + 1e-9,
            "invariant (e) violated: ϕ = {} > r*_τ = {opt}",
            alg.phi()
        );
    }

    #[test]
    fn duplicates_do_not_stall_the_merge() {
        // More duplicates than τ: the pass must terminate and fold weights.
        let mut coords = vec![5.0; 50];
        coords.extend((0..50).map(|i| i as f64 * 3.0));
        let pts = stream(&coords);
        let alg = WeightedDoublingCoreset::new(Euclidean, 8);
        let (out, _) = run_stream(alg, pts);
        assert!(out.coreset.len() <= 8);
        assert_eq!(out.coreset.total_weight(), 100);
    }

    #[test]
    fn coreset_radius_close_to_stream() {
        // The coreset must represent the stream within 8ϕ (invariant (c)).
        let pts: Vec<Point> = (0..1000)
            .map(|i| Point::new(vec![(i % 100) as f64, (i / 100) as f64]))
            .collect();
        let alg = WeightedDoublingCoreset::new(Euclidean, 20);
        let mut holder = alg;
        for p in &pts {
            holder.process(p.clone());
        }
        let phi = holder.phi();
        let centers = holder.centers().to_vec();
        for p in &pts {
            let d = centers
                .iter()
                .map(|c| kcenter_metric::Metric::distance(&Euclidean, p, c))
                .fold(f64::INFINITY, f64::min);
            assert!(d <= 8.0 * phi + 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "tau must be positive")]
    fn zero_tau_panics() {
        let _ = WeightedDoublingCoreset::<Point, _>::new(Euclidean, 0);
    }

    /// Drives `pts[..split]`, snapshots, restores, drives the rest, and
    /// asserts the result is bitwise-identical to an uninterrupted pass.
    fn assert_resume_identical(pts: &[Point], tau: usize, split: usize) {
        let mut whole = WeightedDoublingCoreset::new(Euclidean, tau);
        for p in pts {
            whole.process(p.clone());
        }

        let mut prefix = WeightedDoublingCoreset::new(Euclidean, tau);
        for p in &pts[..split] {
            prefix.process(p.clone());
        }
        let snap = prefix.snapshot();
        let mut resumed = WeightedDoublingCoreset::from_snapshot(Euclidean, tau, snap)
            .expect("snapshot of a live builder must restore");
        for p in &pts[split..] {
            resumed.process(p.clone());
        }

        assert_eq!(whole.phi().to_bits(), resumed.phi().to_bits());
        assert_eq!(whole.processed(), resumed.processed());
        assert_eq!(whole.weights(), resumed.weights());
        assert_eq!(whole.centers().len(), resumed.centers().len());
        for (a, b) in whole.centers().iter().zip(resumed.centers()) {
            let (ac, bc) = (a.coords(), b.coords());
            assert_eq!(ac.len(), bc.len());
            for (x, y) in ac.iter().zip(bc) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn snapshot_restore_is_bitwise_transparent() {
        let pts: Vec<Point> = (0..600)
            .map(|i| {
                Point::new(vec![
                    ((i * 13) % 97) as f64 * 1.25,
                    ((i * 29) % 89) as f64 * 0.75,
                ])
            })
            .collect();
        // Splits cover pre-initialization, the init boundary, and deep
        // into the merged regime.
        for split in [0, 5, 12, 13, 100, 599, 600] {
            assert_resume_identical(&pts, 12, split);
        }
    }

    #[test]
    fn from_snapshot_rejects_corrupt_state() {
        let mut alg = WeightedDoublingCoreset::new(Euclidean, 4);
        for i in 0..40 {
            alg.process(Point::new(vec![i as f64 * 3.0]));
        }
        let good = alg.snapshot();
        assert!(WeightedDoublingCoreset::from_snapshot(Euclidean, 4, good.clone()).is_ok());

        // Misaligned weights.
        let mut bad = good.clone();
        bad.weights.pop();
        assert!(WeightedDoublingCoreset::from_snapshot(Euclidean, 4, bad).is_err());

        // Weight tampering breaks invariant (d).
        let mut bad = good.clone();
        bad.weights[0] += 1;
        assert!(WeightedDoublingCoreset::from_snapshot(Euclidean, 4, bad).is_err());

        // Non-finite phi.
        let mut bad = good.clone();
        bad.phi = f64::NAN;
        assert!(WeightedDoublingCoreset::from_snapshot(Euclidean, 4, bad).is_err());

        // Centers pushed too close together violate invariant (b).
        let mut bad = good.clone();
        if bad.centers.len() >= 2 {
            bad.centers[1] = bad.centers[0].clone();
            assert!(WeightedDoublingCoreset::from_snapshot(Euclidean, 4, bad).is_err());
        }

        // An uninitialized snapshot must look like a pure buffer.
        let mut buf = WeightedDoublingCoreset::new(Euclidean, 8);
        buf.process(Point::new(vec![1.0]));
        buf.process(Point::new(vec![2.0]));
        let mut bad = buf.snapshot();
        bad.weights[0] = 2;
        assert!(WeightedDoublingCoreset::from_snapshot(Euclidean, 8, bad).is_err());

        // Zero tau is an error, not a panic, on the restore path.
        assert!(WeightedDoublingCoreset::from_snapshot(Euclidean, 0, good).is_err());
    }
}
