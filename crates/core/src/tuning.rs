//! Parallelism tuning per the paper's corollaries.
//!
//! Theorem 1/2 local memory is `O(|S|/ℓ + ℓ·base·(c/ε)^D)`; balancing the
//! two terms gives the corollaries' choices of `ℓ`:
//!
//! * Corollary 1 (k-center): `ℓ = √(|S|/k)` → `M_L = O(√(|S|·k)·(4/ε)^D)`;
//! * Corollary 2 (outliers, deterministic): `ℓ = √(|S|/(k+z))`;
//! * Corollary 3 (outliers, randomized): `ℓ = √(|S|/(k+log|S|))`;
//! * the §3.2 Remark: when the doubling dimension `D` *is* known, dividing
//!   `ℓ` by `√((c/ε)^D)` saves that same factor in local memory.
//!
//! These helpers return the balanced `ℓ`, clamped to `[1, n]`, so users and
//! the experiment harness don't re-derive them.

/// Corollary 1: balanced parallelism for MapReduce k-center.
pub fn ell_for_kcenter(n: usize, k: usize) -> usize {
    balanced_ell(n, k)
}

/// Corollary 2: balanced parallelism for deterministic MapReduce k-center
/// with `z` outliers.
pub fn ell_for_outliers(n: usize, k: usize, z: usize) -> usize {
    balanced_ell(n, k + z)
}

/// Corollary 3: balanced parallelism for the randomized variant (the `z`
/// term moves out of the per-partition coreset, leaving `k + log₂|S|`).
pub fn ell_for_outliers_randomized(n: usize, k: usize) -> usize {
    let log_term = (n.max(2) as f64).log2().ceil() as usize;
    balanced_ell(n, k + log_term)
}

/// The §3.2 Remark: when `D` is known, shrink a balanced `ℓ` by
/// `√((c/ε)^D)` (with `c = 4` for k-center, `24` for outliers) to save the
/// same factor in local memory.
///
/// # Panics
///
/// Panics if `eps` is not in `(0, 1]` or `c < 1`.
pub fn ell_with_known_dimension(balanced: usize, c: f64, eps: f64, d: f64) -> usize {
    assert!(eps > 0.0 && eps <= 1.0, "eps must be in (0, 1]");
    assert!(c >= 1.0, "c must be at least 1");
    assert!(d >= 0.0, "dimension must be non-negative");
    let shrink = (c / eps).powf(d / 2.0);
    ((balanced as f64 / shrink).floor() as usize).max(1)
}

fn balanced_ell(n: usize, base: usize) -> usize {
    assert!(n > 0, "empty dataset");
    assert!(base > 0, "base must be positive");
    let ell = ((n as f64) / (base as f64)).sqrt().round() as usize;
    ell.clamp(1, n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corollary_one_balances_the_two_terms() {
        let (n, k) = (1_000_000usize, 100usize);
        let ell = ell_for_kcenter(n, k);
        assert_eq!(ell, 100); // √(10^6 / 100)
                              // Balanced: n/ℓ == ℓ·k.
        assert_eq!(n / ell, ell * k);
    }

    #[test]
    fn corollary_two_uses_k_plus_z() {
        let ell = ell_for_outliers(1_000_000, 100, 300);
        assert_eq!(ell, 50); // √(10^6 / 400)
    }

    #[test]
    fn corollary_three_replaces_z_with_log() {
        let with_z = ell_for_outliers(1 << 20, 20, 10_000);
        let randomized = ell_for_outliers_randomized(1 << 20, 20);
        // log₂(2^20) = 20 → base 40 ≪ 10_020 → far more parallelism.
        assert!(randomized > with_z);
        assert_eq!(
            randomized,
            (((1u64 << 20) as f64) / 40.0).sqrt().round() as usize
        );
    }

    #[test]
    fn known_dimension_shrinks_ell() {
        // c/ε = 16, D = 2 → shrink by 16.
        assert_eq!(ell_with_known_dimension(160, 4.0, 0.25, 2.0), 10);
        // Never below 1.
        assert_eq!(ell_with_known_dimension(4, 24.0, 0.1, 6.0), 1);
        // D = 0: no shrink.
        assert_eq!(ell_with_known_dimension(7, 4.0, 0.5, 0.0), 7);
    }

    #[test]
    fn degenerate_sizes_clamp() {
        assert_eq!(ell_for_kcenter(10, 1_000), 1);
        assert_eq!(ell_for_kcenter(1, 1), 1);
    }
}
