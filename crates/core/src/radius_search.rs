//! Estimating `r̃min` — the smallest radius at which `OutliersCluster`
//! leaves at most `z` weight uncovered.
//!
//! Round 2 of the outlier algorithms (and the streaming finalizations) run
//! `OutliersCluster` for multiple radius guesses to estimate the minimum
//! feasible radius within a multiplicative tolerance `(1+δ)`, where
//! `δ = ε̂/(3+4ε̂)` (paper §3.2). Two search modes are provided:
//!
//! * [`SearchMode::GeometricGrid`] — binary search over the geometric grid
//!   `r_lo·(1+δ)^i` spanning the minimum positive pairwise distance to the
//!   diameter. This is the default: it stores `O(1)` candidates, mirroring
//!   the paper's use of space-bounded selection (they cite Munro–Paterson)
//!   to avoid materializing all `O(|T|²)` distances.
//! * [`SearchMode::ExactCandidates`] — binary search over the sorted
//!   multiset of actual pairwise distances, the classical Charikar-style
//!   search; quadratic memory, only sensible for small coresets, and the
//!   reference the geometric mode is differentially tested against.
//!
//! Feasibility at the returned radius is always *verified*, never assumed:
//! the greedy cover is not theoretically monotone in `r`, so the binary
//! search maintains a known-feasible upper bound and returns its result.

use rayon::prelude::*;

use kcenter_metric::{CachedOracle, Metric};

use crate::coreset::WeightedCoreset;
use crate::outliers_cluster::{
    outliers_cluster, CmpMatrixRef, DistanceOracle, OutliersClusterResult, PointsOracle,
};

/// Which candidate-radius structure the search walks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SearchMode {
    /// Binary search over a `(1+δ)` geometric grid (constant memory).
    GeometricGrid,
    /// Binary search over all pairwise distances (quadratic memory).
    ExactCandidates,
}

/// Outcome of the radius search.
#[derive(Clone, Debug)]
pub struct RadiusSearchResult {
    /// The estimated minimum feasible radius `r̃min`.
    pub radius: f64,
    /// The verified `OutliersCluster` output at `r̃min`.
    pub clustering: OutliersClusterResult,
    /// Number of `OutliersCluster` evaluations performed.
    pub evaluations: usize,
}

/// Finds the smallest radius (within tolerance) at which the coreset can be
/// covered by `k` centers leaving at most `z_weight` uncovered.
///
/// # Panics
///
/// Panics if the coreset is empty, `k == 0`, or `eps_hat <= 0` with
/// [`SearchMode::GeometricGrid`] (the grid step would be zero).
pub fn find_min_feasible_radius<O: DistanceOracle>(
    oracle: &O,
    weights: &[u64],
    k: usize,
    z_weight: u64,
    eps_hat: f64,
    mode: SearchMode,
) -> RadiusSearchResult {
    let n = oracle.len();
    assert!(n > 0, "radius search over an empty coreset");
    assert_eq!(weights.len(), n, "weights misaligned with points");
    assert!(k > 0, "k must be positive");
    // Materialize lazy oracle state here, on the submitting thread, before
    // the parallel candidate/min-distance scans first touch it (see
    // `DistanceOracle::prepare` for why this must not happen inside a
    // pool task).
    oracle.prepare();

    let evaluations = std::cell::Cell::new(0usize);
    let feasible = |r: f64| -> Option<OutliersClusterResult> {
        evaluations.set(evaluations.get() + 1);
        let result = outliers_cluster(oracle, weights, k, r, eps_hat);
        (result.uncovered_weight <= z_weight).then_some(result)
    };

    // r = 0 succeeds when k centers cover all-but-z weight exactly
    // (duplicates, or nearly everything allowed to be an outlier).
    if let Some(result) = feasible(0.0) {
        return RadiusSearchResult {
            radius: 0.0,
            clustering: result,
            evaluations: evaluations.get(),
        };
    }

    // Radii below min_pairwise/(3+4ε̂) behave exactly like r = 0 (removal
    // balls contain only coincident points), so the search space starts
    // there — NOT at the minimum pairwise distance itself, which for
    // GMM-built coresets (points deliberately far apart) can exceed the
    // optimum by the full (3+4ε̂) factor.
    let cover_factor = 3.0 + 4.0 * eps_hat;
    let candidates: Vec<f64> = match mode {
        SearchMode::ExactCandidates => {
            // Pairwise distances and their cover-scaled counterparts: the
            // minimal feasible radius has (3+4ε̂)·r or (1+2ε̂)·r at a
            // pairwise distance, so d/(3+4ε̂) candidates bracket it from
            // below while plain d keeps the classical guarantee r̃ ≤ r*.
            let mut all: Vec<f64> = (0..n)
                .into_par_iter()
                .flat_map_iter(|i| {
                    (i + 1..n).flat_map(move |j| {
                        let d = oracle.dist(i, j);
                        [d, d / cover_factor]
                    })
                })
                .filter(|&d| d > 0.0)
                .collect();
            all.sort_by(f64::total_cmp);
            all.dedup();
            all
        }
        SearchMode::GeometricGrid => {
            assert!(eps_hat > 0.0, "geometric grid needs eps_hat > 0");
            let delta = eps_hat / (3.0 + 4.0 * eps_hat);
            let r_lo = min_positive_distance(oracle).map(|d| d / cover_factor);
            match r_lo {
                None => Vec::new(), // all points identical; r = 0 handled above
                Some(r_lo) => {
                    // Upper bound: twice the max distance from point 0
                    // bounds the diameter (triangle inequality). The scan
                    // compares proxies; one conversion at the boundary.
                    let r_hi = 2.0
                        * oracle.cmp_to_radius(
                            (1..n)
                                .into_par_iter()
                                .map(|j| oracle.cmp_dist(0, j))
                                .reduce(|| 0.0, f64::max),
                        );
                    let steps = ((r_hi / r_lo).ln() / (1.0 + delta).ln()).ceil() as usize + 1;
                    (0..=steps)
                        .map(|i| r_lo * (1.0 + delta).powi(i as i32))
                        .collect()
                }
            }
        }
    };

    if candidates.is_empty() {
        // Degenerate: no positive pairwise distance, yet r = 0 infeasible —
        // cover everything with one ball of any positive radius is also
        // impossible only if k < needed; fall back to r = 0 result.
        let result = outliers_cluster(oracle, weights, k, 0.0, eps_hat);
        return RadiusSearchResult {
            radius: 0.0,
            clustering: result,
            evaluations: evaluations.get() + 1,
        };
    }

    // The largest candidate is always feasible: every pair is within the
    // diameter, so the first center's removal ball covers everything.
    let mut lo = 0usize; // infeasible or untested below
    let mut hi = candidates.len() - 1;
    let mut best: Option<(f64, OutliersClusterResult)>;
    match feasible(candidates[hi]) {
        Some(result) => best = Some((candidates[hi], result)),
        None => {
            // Should not happen (diameter covers all), but stay defensive:
            // extend upward geometrically until feasible.
            let mut r = candidates[hi] * 2.0;
            loop {
                if let Some(result) = feasible(r) {
                    return RadiusSearchResult {
                        radius: r,
                        clustering: result,
                        evaluations: evaluations.get(),
                    };
                }
                r *= 2.0;
                assert!(r.is_finite(), "radius search diverged");
            }
        }
    }

    // Binary search for the smallest feasible candidate; `hi` stays the
    // smallest *verified* feasible index.
    if let Some(result) = feasible(candidates[lo]) {
        let (r, res) = (candidates[lo], result);
        return RadiusSearchResult {
            radius: r,
            clustering: res,
            evaluations: evaluations.get(),
        };
    }
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        match feasible(candidates[mid]) {
            Some(result) => {
                hi = mid;
                best = Some((candidates[mid], result));
            }
            None => lo = mid,
        }
    }

    let (radius, clustering) = best.expect("feasible upper bound established");
    RadiusSearchResult {
        radius,
        clustering,
        evaluations: evaluations.get(),
    }
}

/// Cap on the coreset size up to which the radius search caches the full
/// pairwise [`DistanceMatrix`](kcenter_metric::DistanceMatrix) (`10_000² / 2` f64 ≈ 400 MiB) instead of
/// re-evaluating the metric on the fly. The cache pays for itself across
/// the ~log-many `OutliersCluster` evaluations of the search; above the
/// threshold (e.g. the paper-scale Fig. 4 unions of ~28k points, whose
/// matrix would be ~3 GiB) distances are evaluated on demand.
///
/// This constant is the *fallback and upper bound*; the algorithms consult
/// [`default_matrix_threshold`], which additionally shrinks the threshold
/// when the machine's available memory could not hold the cache.
pub const DEFAULT_MATRIX_THRESHOLD: usize = 10_000;

/// The matrix-caching threshold derived from the machine's available
/// memory: the largest `n` whose condensed `n(n-1)/2`-entry `f64` matrix
/// fits in a quarter of available memory, capped at
/// [`DEFAULT_MATRIX_THRESHOLD`]. Falls back to the cap when available
/// memory cannot be determined (non-Linux, or `/proc` unavailable).
///
/// Computed once per process (first call) and cached: repeated config
/// construction must not re-read `/proc/meminfo`, and — more importantly —
/// one process must observe one threshold, so identical solves within a
/// run cannot flip between the cached-matrix and on-demand paths as free
/// memory fluctuates.
pub fn default_matrix_threshold() -> usize {
    static CACHED: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *CACHED.get_or_init(|| matrix_threshold_for_memory(available_memory_bytes()))
}

/// Pure sizing rule behind [`default_matrix_threshold`], split out for
/// testing: `None` means "unknown", yielding the fallback cap.
fn matrix_threshold_for_memory(available: Option<u64>) -> usize {
    match available {
        None => DEFAULT_MATRIX_THRESHOLD,
        Some(bytes) => {
            // n(n-1)/2 entries of 8 bytes ≈ 4n² bytes; budget a quarter of
            // what is available so the cache never dominates memory.
            let budget = bytes / 4;
            let n = ((budget as f64) / 4.0).sqrt() as usize;
            n.min(DEFAULT_MATRIX_THRESHOLD)
        }
    }
}

/// Available physical memory in bytes (Linux `MemAvailable`), if known.
fn available_memory_bytes() -> Option<u64> {
    let meminfo = std::fs::read_to_string("/proc/meminfo").ok()?;
    for line in meminfo.lines() {
        if let Some(rest) = line.strip_prefix("MemAvailable:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kb.saturating_mul(1024));
        }
    }
    None
}

/// The solved coreset: what round 2 of the outlier algorithms produces.
#[derive(Clone, Debug)]
pub struct CoresetSolution<P> {
    /// The selected centers (actual points).
    pub centers: Vec<P>,
    /// The estimated minimum feasible radius `r̃min` on the coreset.
    pub r_min: f64,
    /// Aggregate weight left uncovered at `r̃min` (≤ z by construction).
    pub uncovered_weight: u64,
    /// Number of `OutliersCluster` evaluations performed by the search.
    pub evaluations: usize,
}

/// Solves the k-center-with-outliers problem on a weighted coreset: radius
/// search followed by `OutliersCluster` at the found radius. This is the
/// shared second phase of the deterministic/randomized MapReduce algorithms,
/// the sequential algorithm, and both streaming finalizations.
///
/// Distances are cached in a proxy-scale matrix when the coreset has at
/// most `matrix_threshold` points. Internally this prices the coreset into
/// a fresh [`CachedOracle`]; callers that run **multiple** searches over
/// one coreset (ε sweeps, search-mode ablations, repeated solves) should
/// hold a [`CachedOracle`] themselves and call [`solve_coreset_cached`] so
/// the matrix is built at most once across all of them.
///
/// # Panics
///
/// Panics if the coreset is empty or `k == 0`.
pub fn solve_coreset<P, M>(
    coreset: &WeightedCoreset<P>,
    metric: &M,
    k: usize,
    z: u64,
    eps_hat: f64,
    mode: SearchMode,
    matrix_threshold: usize,
) -> CoresetSolution<P>
where
    P: Clone + Sync,
    M: Metric<P>,
{
    assert!(!coreset.is_empty(), "cannot solve an empty coreset");
    let oracle = CachedOracle::new(coreset.points_only(), metric, matrix_threshold);
    solve_coreset_cached(&oracle, &coreset.weights(), k, z, eps_hat, mode)
}

/// [`solve_coreset`] over an externally shared [`CachedOracle`]: the
/// oracle's proxy matrix is built lazily on the first search and reused by
/// every subsequent search on the same handle (or any clone of it), so a
/// sweep that solves one coreset under many parameters prices it into a
/// matrix exactly once per process.
///
/// Both the cached and the on-demand path compare on the metric's proxy
/// scale, so the result is bitwise independent of which side of the
/// oracle's cache threshold — itself environment-derived — a run lands on.
///
/// When a persistent store is installed
/// ([`kcenter_metric::install_matrix_persistence`], typically via
/// `kcenter_store::install_from_env` honouring `KCENTER_CACHE_DIR`), the
/// oracle's first resolution additionally consults the on-disk cache: a
/// previously priced matrix for the same (metric, points) fingerprint is
/// loaded bitwise instead of rebuilt — across *processes*, not just
/// across searches — and a miss prices then persists it. Results are
/// identical either way; only `matrix_build_count()` vs
/// `store_hit_count()` move.
///
/// # Panics
///
/// Panics if the oracle is empty, `weights` is misaligned, or `k == 0`.
pub fn solve_coreset_cached<P, M>(
    oracle: &CachedOracle<'_, P, M>,
    weights: &[u64],
    k: usize,
    z: u64,
    eps_hat: f64,
    mode: SearchMode,
) -> CoresetSolution<P>
where
    P: Clone + Sync,
    M: Metric<P>,
{
    assert!(!oracle.is_empty(), "cannot solve an empty coreset");
    // Resolve the cache once: the search loops then read the matrix (or
    // the metric) directly, with no per-lookup cache branch.
    let search = match oracle.matrix() {
        Some(matrix) => {
            let view = CmpMatrixRef::<P, M>::new(matrix, oracle.metric());
            find_min_feasible_radius(&view, weights, k, z, eps_hat, mode)
        }
        None => {
            let view = PointsOracle::new(oracle.points(), oracle.metric());
            find_min_feasible_radius(&view, weights, k, z, eps_hat, mode)
        }
    };

    let points = oracle.points();
    CoresetSolution {
        centers: search
            .clustering
            .centers
            .iter()
            .map(|&i| points[i].clone())
            .collect(),
        r_min: search.radius,
        uncovered_weight: search.clustering.uncovered_weight,
        evaluations: search.evaluations,
    }
}

/// Minimum positive pairwise distance through the oracle (sqrt-free scan,
/// one conversion at the boundary). Each row's tail is read through the
/// oracle's batched [`DistanceOracle::cmp_dist_block`] — the vectorized
/// kernels for point-backed oracles, condensed-row copies for matrices —
/// in stack sub-blocks; the running-min update visits the proxies in the
/// same order as the scalar loop it replaces.
fn min_positive_distance<O: DistanceOracle>(oracle: &O) -> Option<f64> {
    const SUB: usize = 256;
    let n = oracle.len();
    let min = (0..n)
        .into_par_iter()
        .map(|i| {
            let mut row = f64::INFINITY;
            let mut buf = [0.0f64; SUB];
            let mut j = i + 1;
            while j < n {
                let len = SUB.min(n - j);
                oracle.cmp_dist_block(i, j, &mut buf[..len]);
                for &d in &buf[..len] {
                    if d > 0.0 && d < row {
                        row = d;
                    }
                }
                j += len;
            }
            row
        })
        .reduce(|| f64::INFINITY, f64::min);
    (min != f64::INFINITY).then(|| oracle.cmp_to_radius(min))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outliers_cluster::PointsOracle;
    use kcenter_metric::{Euclidean, Point};

    fn setup(coords: &[f64]) -> (Vec<Point>, Vec<u64>) {
        let pts: Vec<Point> = coords.iter().map(|&c| Point::new(vec![c])).collect();
        let w = vec![1u64; pts.len()];
        (pts, w)
    }

    #[test]
    fn finds_small_radius_for_clustered_data() {
        // Two clusters of width 1, k = 2, z = 0: feasible radius ~ 0.5–1.
        let (pts, w) = setup(&[0.0, 0.5, 1.0, 100.0, 100.5, 101.0]);
        let oracle = PointsOracle::new(&pts, &Euclidean);
        let result = find_min_feasible_radius(&oracle, &w, 2, 0, 0.25, SearchMode::ExactCandidates);
        assert_eq!(result.clustering.uncovered_weight, 0);
        assert!(result.radius <= 1.0 + 1e-9, "radius {}", result.radius);
    }

    #[test]
    fn outlier_budget_shrinks_the_radius() {
        // Allowing z = 1 lets the search ignore the far point.
        let (pts, w) = setup(&[0.0, 1.0, 2.0, 1000.0]);
        let oracle = PointsOracle::new(&pts, &Euclidean);
        let with_z = find_min_feasible_radius(&oracle, &w, 1, 1, 0.25, SearchMode::ExactCandidates);
        let without_z =
            find_min_feasible_radius(&oracle, &w, 1, 0, 0.25, SearchMode::ExactCandidates);
        assert!(with_z.radius < without_z.radius);
        assert!(with_z.clustering.uncovered_weight <= 1);
    }

    #[test]
    fn weighted_outlier_budget_counts_weights() {
        // Both points carry weight 5 > z = 4, so neither can be dropped:
        // one center must cover both, forcing (3+4ε̂)·r >= 1000.
        let pts: Vec<Point> = vec![0.0, 1000.0]
            .into_iter()
            .map(|c| Point::new(vec![c]))
            .collect();
        let w = vec![5u64, 5u64];
        let oracle = PointsOracle::new(&pts, &Euclidean);
        let result = find_min_feasible_radius(&oracle, &w, 1, 4, 0.25, SearchMode::ExactCandidates);
        assert!(result.clustering.uncovered_weight <= 4);
        assert!(result.radius >= 1000.0 / (3.0 + 4.0 * 0.25) - 1e-9);

        // Lowering one weight to z lets the search drop that point: the
        // heavy point itself becomes the center and r = 0 suffices.
        let w2 = vec![4u64, 5u64];
        let r2 = find_min_feasible_radius(&oracle, &w2, 1, 4, 0.25, SearchMode::ExactCandidates);
        assert_eq!(r2.radius, 0.0);
    }

    #[test]
    fn geometric_grid_close_to_exact() {
        let (pts, w) = setup(&[0.0, 0.7, 1.9, 4.2, 9.5, 20.0, 21.3, 45.0]);
        let oracle = PointsOracle::new(&pts, &Euclidean);
        let eps_hat = 0.25;
        let exact =
            find_min_feasible_radius(&oracle, &w, 3, 1, eps_hat, SearchMode::ExactCandidates);
        let grid = find_min_feasible_radius(&oracle, &w, 3, 1, eps_hat, SearchMode::GeometricGrid);
        let delta = eps_hat / (3.0 + 4.0 * eps_hat);
        // The grid radius is within one step of the exact optimum (and both
        // are verified feasible).
        assert!(grid.radius <= exact.radius * (1.0 + delta) + 1e-9);
        assert!(grid.clustering.uncovered_weight <= 1);
        assert!(exact.clustering.uncovered_weight <= 1);
    }

    #[test]
    fn zero_radius_shortcut_on_duplicates() {
        let (pts, w) = setup(&[5.0, 5.0, 5.0]);
        let oracle = PointsOracle::new(&pts, &Euclidean);
        let result = find_min_feasible_radius(&oracle, &w, 1, 0, 0.5, SearchMode::GeometricGrid);
        assert_eq!(result.radius, 0.0);
        assert_eq!(result.evaluations, 1);
    }

    #[test]
    fn everything_outlier_is_radius_zero() {
        let (pts, w) = setup(&[0.0, 10.0, 20.0]);
        let oracle = PointsOracle::new(&pts, &Euclidean);
        let result = find_min_feasible_radius(&oracle, &w, 1, 3, 0.5, SearchMode::GeometricGrid);
        // z >= total weight minus whatever one zero-radius ball covers.
        assert_eq!(result.radius, 0.0);
    }

    #[test]
    fn binary_search_uses_logarithmic_evaluations() {
        let pts: Vec<Point> = (0..64).map(|i| Point::new(vec![i as f64])).collect();
        let w = vec![1u64; 64];
        let oracle = PointsOracle::new(&pts, &Euclidean);
        let result = find_min_feasible_radius(&oracle, &w, 4, 2, 0.25, SearchMode::ExactCandidates);
        // 64 points → 2016 pairs; binary search should evaluate ~13 + 3.
        assert!(
            result.evaluations <= 20,
            "too many evaluations: {}",
            result.evaluations
        );
    }

    #[test]
    fn search_can_land_below_the_min_pairwise_distance() {
        // Regression test: GMM-built coresets have *large* minimum pairwise
        // distances, but the removal ball has radius (3+4ε̂)·r, so the
        // minimal feasible radius can sit below the smallest pairwise
        // distance. One center must cover {0, 10, 20, 35} (k = 1, z = 0):
        // the greedy picks the heaviest selection ball (point 10 once
        // (1+2ε̂)·r reaches its neighbours) and covers everything when
        // (3+4ε̂)·r >= 35, i.e. r ≈ 9.55 < min pairwise distance 10.
        let (pts, w) = setup(&[0.0, 10.0, 20.0, 35.0]);
        let oracle = PointsOracle::new(&pts, &Euclidean);
        let eps_hat = 1.0 / 6.0;
        let cover = 3.0 + 4.0 * eps_hat;
        let exact =
            find_min_feasible_radius(&oracle, &w, 1, 0, eps_hat, SearchMode::ExactCandidates);
        assert!(
            (exact.radius - 35.0 / cover).abs() < 1e-9,
            "exact radius {} != 35/(3+4ε̂) = {}",
            exact.radius,
            35.0 / cover
        );
        assert!(exact.radius < 10.0, "exact search floored at min pairwise");
        let grid = find_min_feasible_radius(&oracle, &w, 1, 0, eps_hat, SearchMode::GeometricGrid);
        let delta = eps_hat / cover;
        assert!(
            grid.radius <= 35.0 / cover * (1.0 + delta) + 1e-9,
            "grid radius {} floored above the optimum",
            grid.radius
        );
        assert_eq!(grid.clustering.uncovered_weight, 0);
        assert_eq!(exact.clustering.uncovered_weight, 0);
    }

    #[test]
    fn solve_coreset_returns_feasible_centers() {
        use crate::coreset::{WeightedCoreset, WeightedPoint};
        let coreset: WeightedCoreset<Point> = [0.0, 1.0, 50.0, 51.0, 500.0]
            .iter()
            .map(|&c| WeightedPoint {
                point: Point::new(vec![c]),
                weight: if c == 500.0 { 1 } else { 10 },
            })
            .collect();
        let solution = crate::radius_search::solve_coreset(
            &coreset,
            &Euclidean,
            2,
            1,
            0.25,
            SearchMode::ExactCandidates,
            crate::radius_search::DEFAULT_MATRIX_THRESHOLD,
        );
        assert!(solution.centers.len() <= 2);
        assert!(solution.uncovered_weight <= 1);
        // The two heavy clusters must be covered; only the light far point
        // may be dropped, so r_min stays at cluster scale.
        assert!(solution.r_min <= 2.0, "r_min = {}", solution.r_min);
    }

    #[test]
    fn solve_coreset_matrix_and_oracle_paths_agree() {
        use crate::coreset::{WeightedCoreset, WeightedPoint};
        let coreset: WeightedCoreset<Point> = (0..40)
            .map(|i| WeightedPoint {
                point: Point::new(vec![(i as f64 * 3.7) % 29.0, (i as f64 * 1.3) % 7.0]),
                weight: 1 + (i % 4) as u64,
            })
            .collect();
        let with_matrix = crate::radius_search::solve_coreset(
            &coreset,
            &Euclidean,
            4,
            3,
            0.25,
            SearchMode::GeometricGrid,
            1_000,
        );
        let without_matrix = crate::radius_search::solve_coreset(
            &coreset,
            &Euclidean,
            4,
            3,
            0.25,
            SearchMode::GeometricGrid,
            0,
        );
        assert_eq!(with_matrix.r_min, without_matrix.r_min);
        assert_eq!(
            with_matrix.uncovered_weight,
            without_matrix.uncovered_weight
        );
        assert_eq!(with_matrix.centers.len(), without_matrix.centers.len());
    }

    #[test]
    fn matrix_threshold_scales_with_memory_and_caps() {
        // Unknown memory: the historical cap.
        assert_eq!(
            super::matrix_threshold_for_memory(None),
            DEFAULT_MATRIX_THRESHOLD
        );
        // Plentiful memory: still capped.
        assert_eq!(
            super::matrix_threshold_for_memory(Some(1 << 40)),
            DEFAULT_MATRIX_THRESHOLD
        );
        // 64 MiB available: budget 16 MiB, 4n² ≤ 16 MiB → n ≈ 2048.
        let n = super::matrix_threshold_for_memory(Some(64 << 20));
        assert!((1_900..=2_100).contains(&n), "n = {n}");
        // Degenerate: no memory, no cache.
        assert_eq!(super::matrix_threshold_for_memory(Some(0)), 0);
        // The live value must respect the cap and be usable as a threshold.
        assert!(default_matrix_threshold() <= DEFAULT_MATRIX_THRESHOLD);
    }

    #[test]
    #[should_panic(expected = "empty coreset")]
    fn empty_coreset_panics() {
        let pts: Vec<Point> = Vec::new();
        let w: Vec<u64> = Vec::new();
        let oracle = PointsOracle::new(&pts, &Euclidean);
        let _ = find_min_feasible_radius(&oracle, &w, 1, 0, 0.5, SearchMode::GeometricGrid);
    }
}
