//! `OutliersCluster` — the weighted greedy disk cover (paper Algorithm 1).
//!
//! Given a weighted coreset `T`, a center budget `k`, a radius guess `r`,
//! and a precision `ε̂`, the algorithm repeatedly picks the point whose ball
//! of radius `(1+2ε̂)·r` has the largest aggregate *uncovered* weight, makes
//! it a center, and marks everything within `(3+4ε̂)·r` of it covered. It
//! stops after `k` centers or when nothing is uncovered. Lemma 5 shows that
//! whenever `r ≥ r*_{k,z}(S)`, the weight left uncovered is at most `z`.
//!
//! Two implementations are provided:
//!
//! * [`outliers_cluster`] — incremental ball-weight maintenance: ball
//!   weights are computed once (`O(|T|²)` distance evaluations,
//!   rayon-parallel) and *updated* as points become covered, so a full run
//!   costs `O(|T|²)` instead of the naive `O(k·|T|²)`;
//! * [`outliers_cluster_naive`] — the textbook loop, kept as the ablation
//!   baseline and as a differential-testing oracle (both must return
//!   identical results).
//!
//! Both run on a [`DistanceOracle`] so the radius search can share one
//! cached [`DistanceMatrix`] across its many
//! radius guesses when the coreset is small, falling back to on-the-fly
//! metric evaluation for large coresets.

use rayon::prelude::*;

use kcenter_metric::{CachedOracle, DistanceMatrix, Metric};

/// Pairwise distances among coreset points, by index.
pub trait DistanceOracle: Sync {
    /// Number of points.
    fn len(&self) -> usize;
    /// Whether the point set is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Distance between points `i` and `j`.
    fn dist(&self, i: usize, j: usize) -> f64;

    /// Comparison proxy for [`DistanceOracle::dist`] — order-isomorphic to
    /// the distance, zero iff the distance is zero (mirrors
    /// [`Metric::cmp_distance`]). Threshold scans call this together with
    /// [`DistanceOracle::radius_to_cmp`] so metric-backed oracles can skip
    /// the final `sqrt` of every evaluation. Default: the distance itself.
    #[inline]
    fn cmp_dist(&self, i: usize, j: usize) -> f64 {
        self.dist(i, j)
    }

    /// Batched [`DistanceOracle::cmp_dist`]: writes `cmp_dist(t, base + j)`
    /// into `out[j]`. The default loops the scalar lookup; point-backed
    /// oracles forward to [`Metric::cmp_distance_block`] (the vectorized
    /// kernels) and matrix-backed oracles copy contiguous condensed-row
    /// slices. Overrides must stay bit-identical to the default.
    fn cmp_dist_block(&self, t: usize, base: usize, out: &mut [f64]) {
        for (j, o) in out.iter_mut().enumerate() {
            *o = self.cmp_dist(t, base + j);
        }
    }

    /// Batched ball-membership test: writes
    /// `cmp_dist(t, base + j) <= cmp_threshold` into `out[j]`.
    ///
    /// Same contract as [`Metric::within_block`]: overrides may use a
    /// cheaper first pass (the opt-in f32 proxy) but must decide every
    /// point identically to the exact comparison.
    fn within_block(&self, t: usize, base: usize, cmp_threshold: f64, out: &mut [bool]) {
        for (j, o) in out.iter_mut().enumerate() {
            *o = self.cmp_dist(t, base + j) <= cmp_threshold;
        }
    }

    /// Maps a true radius onto the [`DistanceOracle::cmp_dist`] scale.
    #[inline]
    fn radius_to_cmp(&self, r: f64) -> f64 {
        r
    }

    /// Maps a [`DistanceOracle::cmp_dist`] value back to a true distance.
    #[inline]
    fn cmp_to_radius(&self, cmp: f64) -> f64 {
        cmp
    }

    /// Materializes any lazy internal state **on the calling thread**,
    /// before the parallel scans start. The algorithms in this module (and
    /// the radius search) call this once at entry; oracles with no lazy
    /// state keep the no-op default.
    ///
    /// This is load-bearing for [`CachedOracle`]: its matrix build runs
    /// inside a `OnceLock` initializer *and* parallelizes over the pool.
    /// If the first lookup instead happened inside a pool task, the
    /// initializing worker — which participates in scheduling while it
    /// builds — could steal a unit of the outer scan whose task re-enters
    /// the `OnceLock` on the same thread: a deadlock (every other thread
    /// is already parked on the same initializer). Resolving the cache
    /// from the submitting thread makes the build an ordinary nested job,
    /// which the pool handles deadlock-free.
    fn prepare(&self) {}
}

/// Batched row read out of a condensed matrix, exploiting that row `t`'s
/// entries for `v > t` are **contiguous** in the condensed layout: the
/// strictly-greater tail of the block is one `memcpy`, only the (rare)
/// `v <= t` prefix pays per-element symmetric lookups. Bit-identical to
/// looping `matrix.get(t, base + j)`.
fn matrix_cmp_block(matrix: &DistanceMatrix, t: usize, base: usize, out: &mut [f64]) {
    let len = out.len();
    let n = matrix.len();
    // Scattered prefix: v < t (symmetric lookups) and the v == t diagonal.
    let pre = (t + 1).saturating_sub(base).min(len);
    for (j, o) in out[..pre].iter_mut().enumerate() {
        *o = matrix.get(t, base + j);
    }
    // Contiguous suffix: v > t lives at condensed offset
    // `t·n - t·(t+1)/2 + (v - t - 1)`, consecutive in v.
    if pre < len {
        let v0 = base + pre;
        let start = t * n - t * (t + 1) / 2 + (v0 - t - 1);
        out[pre..].copy_from_slice(&matrix.condensed()[start..start + (len - pre)]);
    }
}

impl DistanceOracle for DistanceMatrix {
    fn len(&self) -> usize {
        DistanceMatrix::len(self)
    }

    // The matrix caches true distances, so the default identity proxy is
    // already sqrt-free.
    #[inline]
    fn dist(&self, i: usize, j: usize) -> f64 {
        self.get(i, j)
    }

    fn cmp_dist_block(&self, t: usize, base: usize, out: &mut [f64]) {
        matrix_cmp_block(self, t, base, out);
    }
}

/// A [`DistanceOracle`] that evaluates the metric on demand — no quadratic
/// memory, used for coresets too large to cache.
pub struct PointsOracle<'a, P, M> {
    points: &'a [P],
    metric: &'a M,
}

impl<'a, P, M: Metric<P>> PointsOracle<'a, P, M> {
    /// Wraps a point slice and metric.
    pub fn new(points: &'a [P], metric: &'a M) -> Self {
        PointsOracle { points, metric }
    }
}

/// A [`DistanceOracle`] over a borrowed *proxy-scale* [`DistanceMatrix`]
/// paired with its metric's conversions — the matrix-backed counterpart
/// of [`PointsOracle`], used to run searches against a [`CachedOracle`]'s
/// shared matrix (or any `DistanceMatrix::build_cmp` product) without a
/// per-lookup cache-resolution branch in the `O(|T|²)` inner loops.
///
/// Both oracles apply the **same comparison rule**: they compare on the
/// metric's [`Metric::cmp_distance`] scale, so an algorithm's output is
/// bitwise independent of whether distances were cached or evaluated on
/// demand — even at threshold boundaries within one ulp, where a
/// true-distance rule (`sqrt(c) <= r`) and a proxy rule (`c <= r²`) can
/// disagree. Building the proxy matrix is also cheaper: no `sqrt` per
/// entry.
pub struct CmpMatrixRef<'a, P, M> {
    matrix: &'a DistanceMatrix,
    metric: &'a M,
    _points: std::marker::PhantomData<fn() -> P>,
}

impl<'a, P: Sync, M: Metric<P>> CmpMatrixRef<'a, P, M> {
    /// Wraps a proxy-scale matrix (entries on the [`Metric::cmp_distance`]
    /// scale) with the metric that owns its conversions.
    pub fn new(matrix: &'a DistanceMatrix, metric: &'a M) -> Self {
        CmpMatrixRef {
            matrix,
            metric,
            _points: std::marker::PhantomData,
        }
    }
}

impl<P: Sync, M: Metric<P>> DistanceOracle for CmpMatrixRef<'_, P, M> {
    fn len(&self) -> usize {
        self.matrix.len()
    }

    #[inline]
    fn dist(&self, i: usize, j: usize) -> f64 {
        // cmp_to_distance(cmp_distance(..)) == distance(..) exactly, per
        // the Metric contract, so true-distance reads stay bit-identical
        // to on-demand evaluation.
        self.metric.cmp_to_distance(self.matrix.get(i, j))
    }

    #[inline]
    fn cmp_dist(&self, i: usize, j: usize) -> f64 {
        self.matrix.get(i, j)
    }

    fn cmp_dist_block(&self, t: usize, base: usize, out: &mut [f64]) {
        matrix_cmp_block(self.matrix, t, base, out);
    }

    #[inline]
    fn radius_to_cmp(&self, r: f64) -> f64 {
        self.metric.distance_to_cmp(r)
    }

    #[inline]
    fn cmp_to_radius(&self, cmp: f64) -> f64 {
        self.metric.cmp_to_distance(cmp)
    }
}

/// The shared memoized oracle is itself a [`DistanceOracle`]: lookups go
/// through its cache (matrix-backed once built, metric-evaluated above the
/// cache threshold). Hot search loops should prefer resolving the cache
/// once — [`CachedOracle::matrix`] + [`CmpMatrixRef`], as
/// `solve_coreset_cached` does — but the direct impl keeps the handle
/// usable anywhere an oracle is expected.
impl<P: Send + Sync, M: Metric<P>> DistanceOracle for CachedOracle<'_, P, M> {
    fn len(&self) -> usize {
        CachedOracle::len(self)
    }

    fn prepare(&self) {
        // Resolve (and, below the threshold, build) the cache on the
        // calling thread — see the trait method's deadlock note.
        let _ = self.matrix();
    }

    #[inline]
    fn dist(&self, i: usize, j: usize) -> f64 {
        CachedOracle::dist(self, i, j)
    }

    #[inline]
    fn cmp_dist(&self, i: usize, j: usize) -> f64 {
        CachedOracle::cmp_dist(self, i, j)
    }

    #[inline]
    fn radius_to_cmp(&self, r: f64) -> f64 {
        self.metric().distance_to_cmp(r)
    }

    #[inline]
    fn cmp_to_radius(&self, cmp: f64) -> f64 {
        self.metric().cmp_to_distance(cmp)
    }
}

impl<P: Sync, M: Metric<P>> DistanceOracle for PointsOracle<'_, P, M> {
    fn len(&self) -> usize {
        self.points.len()
    }

    #[inline]
    fn dist(&self, i: usize, j: usize) -> f64 {
        self.metric.distance(&self.points[i], &self.points[j])
    }

    #[inline]
    fn cmp_dist(&self, i: usize, j: usize) -> f64 {
        self.metric.cmp_distance(&self.points[i], &self.points[j])
    }

    // Same query-first evaluation order as `cmp_dist`, batched through the
    // metric's (vectorized) block kernels.
    fn cmp_dist_block(&self, t: usize, base: usize, out: &mut [f64]) {
        let block = &self.points[base..base + out.len()];
        self.metric.cmp_distance_block(&self.points[t], block, out);
    }

    fn within_block(&self, t: usize, base: usize, cmp_threshold: f64, out: &mut [bool]) {
        let block = &self.points[base..base + out.len()];
        self.metric
            .within_block(&self.points[t], block, cmp_threshold, out);
    }

    #[inline]
    fn radius_to_cmp(&self, r: f64) -> f64 {
        self.metric.distance_to_cmp(r)
    }

    #[inline]
    fn cmp_to_radius(&self, cmp: f64) -> f64 {
        self.metric.cmp_to_distance(cmp)
    }
}

/// Result of one `OutliersCluster` run.
#[derive(Clone, Debug, PartialEq)]
pub struct OutliersClusterResult {
    /// Selected center indices `X` (into the coreset), `|X| <= k`.
    pub centers: Vec<usize>,
    /// Indices of the uncovered points `T'` (farther than `(3+4ε̂)·r` from
    /// every selected center).
    pub uncovered: Vec<usize>,
    /// Aggregate weight of `T'` — compared against `z` by the radius search.
    pub uncovered_weight: u64,
}

/// Runs `OutliersCluster(T, k, r, ε̂)` with incremental ball-weight
/// maintenance.
///
/// # Panics
///
/// Panics if `weights.len() != oracle.len()`, `k == 0`, `r < 0`, or
/// `eps_hat < 0`.
pub fn outliers_cluster<O: DistanceOracle>(
    oracle: &O,
    weights: &[u64],
    k: usize,
    r: f64,
    eps_hat: f64,
) -> OutliersClusterResult {
    let n = oracle.len();
    assert_eq!(weights.len(), n, "weights misaligned with points");
    assert!(k > 0, "k must be positive");
    assert!(
        r >= 0.0 && eps_hat >= 0.0,
        "radius and eps must be non-negative"
    );
    oracle.prepare();

    // Thresholds on the oracle's comparison scale: every O(n²) scan below
    // tests `cmp_dist <= cmp-threshold`, sqrt-free for metric oracles.
    let ball_cmp = oracle.radius_to_cmp((1.0 + 2.0 * eps_hat) * r);
    let cover_cmp = oracle.radius_to_cmp((3.0 + 4.0 * eps_hat) * r);

    let mut covered = vec![false; n];
    let mut uncovered_count = n;

    // Balls per parallel chunk: each ball costs an `O(|T|)` inner scan, so
    // the pool's adaptive splitter decides the granularity (it splits
    // finer while steals are observed, coarser once workers saturate).
    // Any positive chunk length yields identical results: writes are
    // per-element and `base` tracks the chosen length.
    let ball_chunk = rayon::adaptive_chunk_len(n);

    // Initial ball weights over all (uncovered) points: O(n²), chunked for
    // the pool. Each ball's inner scan runs through the oracle's batched
    // membership test in stack sub-blocks — the vectorized kernels for
    // point-backed oracles — which decides every point identically to the
    // scalar `cmp_dist(t, v) <= ball_cmp` it replaces, in the same order.
    const SUB: usize = 256;
    let mut ball_weight: Vec<u64> = vec![0; n];
    ball_weight
        .par_chunks_mut(ball_chunk)
        .enumerate()
        .for_each(|(ci, chunk)| {
            let base = ci * ball_chunk;
            let mut flags = [false; SUB];
            for (j, w) in chunk.iter_mut().enumerate() {
                let t = base + j;
                let mut acc = 0u64;
                let mut off = 0;
                while off < n {
                    let len = SUB.min(n - off);
                    oracle.within_block(t, off, ball_cmp, &mut flags[..len]);
                    for (&hit, &weight) in flags[..len].iter().zip(&weights[off..off + len]) {
                        if hit {
                            acc += weight;
                        }
                    }
                    off += len;
                }
                *w = acc;
            }
        });

    let mut centers = Vec::new();
    while centers.len() < k && uncovered_count > 0 {
        // Argmax over all of T (a center need not be uncovered); ties to the
        // smallest index for determinism.
        let x = ball_weight
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
            .map(|(i, _)| i)
            .expect("nonempty coreset");
        centers.push(x);

        // E_x: uncovered points within the expanded radius.
        let removed: Vec<usize> = (0..n)
            .into_par_iter()
            .filter(|&v| !covered[v] && oracle.cmp_dist(x, v) <= cover_cmp)
            .collect();
        for &v in &removed {
            covered[v] = true;
        }
        uncovered_count -= removed.len();

        // Subtract the removed points' weights from every ball containing
        // them. Each point is removed exactly once, so the total update work
        // over the whole run is O(n²).
        ball_weight
            .par_chunks_mut(ball_chunk)
            .enumerate()
            .for_each(|(ci, chunk)| {
                let base = ci * ball_chunk;
                for (j, w) in chunk.iter_mut().enumerate() {
                    let t = base + j;
                    for &v in &removed {
                        if oracle.cmp_dist(t, v) <= ball_cmp {
                            *w -= weights[v];
                        }
                    }
                }
            });
    }

    let uncovered: Vec<usize> = (0..n).filter(|&v| !covered[v]).collect();
    let uncovered_weight = uncovered.iter().map(|&v| weights[v]).sum();
    OutliersClusterResult {
        centers,
        uncovered,
        uncovered_weight,
    }
}

/// The textbook `O(k·|T|²)` implementation recomputing every ball weight in
/// every iteration. Must return exactly the same result as
/// [`outliers_cluster`]; kept for differential testing and the ablation
/// benchmark.
pub fn outliers_cluster_naive<O: DistanceOracle>(
    oracle: &O,
    weights: &[u64],
    k: usize,
    r: f64,
    eps_hat: f64,
) -> OutliersClusterResult {
    let n = oracle.len();
    assert_eq!(weights.len(), n, "weights misaligned with points");
    assert!(k > 0, "k must be positive");
    assert!(
        r >= 0.0 && eps_hat >= 0.0,
        "radius and eps must be non-negative"
    );

    // Same comparison rule as the incremental implementation: proxy scale.
    let ball_cmp = oracle.radius_to_cmp((1.0 + 2.0 * eps_hat) * r);
    let cover_cmp = oracle.radius_to_cmp((3.0 + 4.0 * eps_hat) * r);

    let mut covered = vec![false; n];
    let mut centers = Vec::new();
    while centers.len() < k && covered.iter().any(|c| !c) {
        let mut best = 0usize;
        let mut best_w = 0u64;
        let mut first = true;
        for t in 0..n {
            let mut w = 0u64;
            for v in 0..n {
                if !covered[v] && oracle.cmp_dist(t, v) <= ball_cmp {
                    w += weights[v];
                }
            }
            if first || w > best_w {
                best = t;
                best_w = w;
                first = false;
            }
        }
        centers.push(best);
        for (v, cov) in covered.iter_mut().enumerate() {
            if !*cov && oracle.cmp_dist(best, v) <= cover_cmp {
                *cov = true;
            }
        }
    }

    let uncovered: Vec<usize> = (0..n).filter(|&v| !covered[v]).collect();
    let uncovered_weight = uncovered.iter().map(|&v| weights[v]).sum();
    OutliersClusterResult {
        centers,
        uncovered,
        uncovered_weight,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcenter_metric::{Euclidean, Point};

    fn oracle_of(coords: &[f64]) -> (Vec<Point>, Vec<u64>) {
        let pts: Vec<Point> = coords.iter().map(|&c| Point::new(vec![c])).collect();
        let w = vec![1u64; pts.len()];
        (pts, w)
    }

    #[test]
    fn covers_everything_with_generous_radius() {
        let (pts, w) = oracle_of(&[0.0, 1.0, 2.0, 3.0]);
        let oracle = PointsOracle::new(&pts, &Euclidean);
        let result = outliers_cluster(&oracle, &w, 2, 3.0, 0.0);
        assert!(result.uncovered.is_empty());
        assert_eq!(result.uncovered_weight, 0);
        assert!(result.centers.len() <= 2);
    }

    #[test]
    fn leaves_far_points_uncovered_with_small_radius() {
        // Two clusters 100 apart plus an outlier at 1000; k = 2, small r.
        let (pts, w) = oracle_of(&[0.0, 1.0, 100.0, 101.0, 1000.0]);
        let oracle = PointsOracle::new(&pts, &Euclidean);
        let result = outliers_cluster(&oracle, &w, 2, 1.0, 0.0);
        assert_eq!(result.uncovered, vec![4]);
        assert_eq!(result.uncovered_weight, 1);
    }

    #[test]
    fn picks_heaviest_ball_first() {
        // Heavy cluster at 0 (weight 10), light cluster at 100 (weight 2).
        let pts: Vec<Point> = vec![0.0, 100.0]
            .into_iter()
            .map(|c| Point::new(vec![c]))
            .collect();
        let w = vec![10u64, 2u64];
        let oracle = PointsOracle::new(&pts, &Euclidean);
        let result = outliers_cluster(&oracle, &w, 1, 1.0, 0.0);
        assert_eq!(result.centers, vec![0]);
        assert_eq!(result.uncovered, vec![1]);
        assert_eq!(result.uncovered_weight, 2);
    }

    #[test]
    fn weighted_selection_beats_cardinality() {
        // Three points near 0 (weight 1 each) vs one point at 50 carrying
        // weight 100: the heavy singleton wins the first center.
        let pts: Vec<Point> = vec![0.0, 0.5, 1.0, 50.0]
            .into_iter()
            .map(|c| Point::new(vec![c]))
            .collect();
        let w = vec![1u64, 1, 1, 100];
        let oracle = PointsOracle::new(&pts, &Euclidean);
        let result = outliers_cluster(&oracle, &w, 1, 1.0, 0.0);
        assert_eq!(result.centers, vec![3]);
        assert_eq!(result.uncovered_weight, 3);
    }

    #[test]
    fn expanded_radius_covers_more_than_selection_ball() {
        // Selection ball (1+2ε̂)r around x, removal ball (3+4ε̂)r: a point at
        // distance 2.5 from the chosen center is removed but not counted in
        // the selection ball for r = 1, ε̂ = 0.
        let (pts, w) = oracle_of(&[0.0, 0.5, 2.5, 10.0]);
        let oracle = PointsOracle::new(&pts, &Euclidean);
        let result = outliers_cluster(&oracle, &w, 1, 1.0, 0.0);
        assert_eq!(result.centers, vec![0]);
        assert_eq!(result.uncovered, vec![3]);
    }

    #[test]
    fn uncovered_points_are_far_from_all_centers() {
        let pts: Vec<Point> = (0..40)
            .map(|i| Point::new(vec![(i * 7 % 40) as f64]))
            .collect();
        let w = vec![1u64; pts.len()];
        let oracle = PointsOracle::new(&pts, &Euclidean);
        let r = 2.0;
        let eps_hat = 0.25;
        let result = outliers_cluster(&oracle, &w, 3, r, eps_hat);
        let cover_r = (3.0 + 4.0 * eps_hat) * r;
        for &u in &result.uncovered {
            for &c in &result.centers {
                assert!(oracle.dist(u, c) > cover_r, "uncovered point inside cover");
            }
        }
    }

    #[test]
    fn naive_and_incremental_agree() {
        // Differential test on a moderately irregular instance.
        let pts: Vec<Point> = (0..60)
            .map(|i| {
                let x = (i as f64 * 0.37).sin() * 50.0;
                let y = (i as f64 * 0.89).cos() * 50.0;
                Point::new(vec![x, y])
            })
            .collect();
        let w: Vec<u64> = (0..60).map(|i| 1 + (i % 5) as u64).collect();
        let oracle = PointsOracle::new(&pts, &Euclidean);
        for &(k, r, eps) in &[
            (1usize, 5.0, 0.0),
            (3, 10.0, 0.1),
            (5, 20.0, 0.5),
            (8, 2.0, 1.0),
        ] {
            let fast = outliers_cluster(&oracle, &w, k, r, eps);
            let naive = outliers_cluster_naive(&oracle, &w, k, r, eps);
            assert_eq!(fast, naive, "divergence at k={k}, r={r}, eps={eps}");
        }
    }

    #[test]
    fn matrix_oracle_matches_points_oracle() {
        let pts: Vec<Point> = (0..30)
            .map(|i| Point::new(vec![(i as f64 * 1.3) % 17.0]))
            .collect();
        let w = vec![1u64; 30];
        let points_oracle = PointsOracle::new(&pts, &Euclidean);
        let matrix = DistanceMatrix::build(&pts, &Euclidean);
        let a = outliers_cluster(&points_oracle, &w, 4, 3.0, 0.25);
        let b = outliers_cluster(&matrix, &w, 4, 3.0, 0.25);
        assert_eq!(a, b);
    }

    #[test]
    fn cmp_matrix_oracle_is_bitwise_consistent_with_points_oracle() {
        // The cached-proxy oracle must apply the exact comparison rule of
        // the on-demand oracle — including at a radius engineered to sit
        // on a ball boundary, where the proxy rule (d² ≤ r²) and a
        // true-distance rule (√d² ≤ r) can disagree by one ulp.
        let pts: Vec<Point> = (0..40)
            .map(|i| Point::new(vec![(i as f64 * 2.3) % 19.0, (i as f64 * 0.7) % 5.0]))
            .collect();
        let w: Vec<u64> = (0..40).map(|i| 1 + (i % 3) as u64).collect();
        let points_oracle = PointsOracle::new(&pts, &Euclidean);
        let matrix = DistanceMatrix::build_cmp(&pts, &Euclidean);
        let cmp_matrix = CmpMatrixRef::<Point, _>::new(&matrix, &Euclidean);
        // Exact pairwise distances as radii put thresholds on boundaries.
        let mut radii: Vec<f64> = vec![3.0, 7.5];
        radii.push(Euclidean.distance(&pts[0], &pts[7]));
        radii.push(Euclidean.distance(&pts[3], &pts[22]) / (3.0 + 4.0 * 0.25));
        for &r in &radii {
            let a = outliers_cluster(&points_oracle, &w, 4, r, 0.25);
            let b = outliers_cluster(&cmp_matrix, &w, 4, r, 0.25);
            assert_eq!(a, b, "divergence at r = {r}");
        }
        // And the true-distance reads round-trip exactly.
        for i in 0..pts.len() {
            for j in 0..pts.len() {
                assert_eq!(
                    cmp_matrix.dist(i, j).to_bits(),
                    points_oracle.dist(i, j).to_bits(),
                    "dist mismatch at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn zero_radius_still_terminates() {
        let (pts, w) = oracle_of(&[0.0, 0.0, 5.0]);
        let oracle = PointsOracle::new(&pts, &Euclidean);
        let result = outliers_cluster(&oracle, &w, 2, 0.0, 0.0);
        assert!(result.centers.len() <= 2);
        // Duplicates of the chosen center are covered at r = 0.
        assert!(result.uncovered_weight <= 1);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        let (pts, w) = oracle_of(&[0.0]);
        let oracle = PointsOracle::new(&pts, &Euclidean);
        let _ = outliers_cluster(&oracle, &w, 0, 1.0, 0.0);
    }
}
