//! `OutliersCluster` — the weighted greedy disk cover (paper Algorithm 1).
//!
//! Given a weighted coreset `T`, a center budget `k`, a radius guess `r`,
//! and a precision `ε̂`, the algorithm repeatedly picks the point whose ball
//! of radius `(1+2ε̂)·r` has the largest aggregate *uncovered* weight, makes
//! it a center, and marks everything within `(3+4ε̂)·r` of it covered. It
//! stops after `k` centers or when nothing is uncovered. Lemma 5 shows that
//! whenever `r ≥ r*_{k,z}(S)`, the weight left uncovered is at most `z`.
//!
//! Two implementations are provided:
//!
//! * [`outliers_cluster`] — incremental ball-weight maintenance: ball
//!   weights are computed once (`O(|T|²)` distance evaluations,
//!   rayon-parallel) and *updated* as points become covered, so a full run
//!   costs `O(|T|²)` instead of the naive `O(k·|T|²)`;
//! * [`outliers_cluster_naive`] — the textbook loop, kept as the ablation
//!   baseline and as a differential-testing oracle (both must return
//!   identical results).
//!
//! Both run on a [`DistanceOracle`] so the radius search can share one
//! cached [`DistanceMatrix`] across its many
//! radius guesses when the coreset is small, falling back to on-the-fly
//! metric evaluation for large coresets.

use rayon::prelude::*;

use kcenter_metric::{DistanceMatrix, Metric};

/// Pairwise distances among coreset points, by index.
pub trait DistanceOracle: Sync {
    /// Number of points.
    fn len(&self) -> usize;
    /// Whether the point set is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Distance between points `i` and `j`.
    fn dist(&self, i: usize, j: usize) -> f64;
}

impl DistanceOracle for DistanceMatrix {
    fn len(&self) -> usize {
        DistanceMatrix::len(self)
    }

    #[inline]
    fn dist(&self, i: usize, j: usize) -> f64 {
        self.get(i, j)
    }
}

/// A [`DistanceOracle`] that evaluates the metric on demand — no quadratic
/// memory, used for coresets too large to cache.
pub struct PointsOracle<'a, P, M> {
    points: &'a [P],
    metric: &'a M,
}

impl<'a, P, M: Metric<P>> PointsOracle<'a, P, M> {
    /// Wraps a point slice and metric.
    pub fn new(points: &'a [P], metric: &'a M) -> Self {
        PointsOracle { points, metric }
    }
}

impl<P: Sync, M: Metric<P>> DistanceOracle for PointsOracle<'_, P, M> {
    fn len(&self) -> usize {
        self.points.len()
    }

    #[inline]
    fn dist(&self, i: usize, j: usize) -> f64 {
        self.metric.distance(&self.points[i], &self.points[j])
    }
}

/// Result of one `OutliersCluster` run.
#[derive(Clone, Debug, PartialEq)]
pub struct OutliersClusterResult {
    /// Selected center indices `X` (into the coreset), `|X| <= k`.
    pub centers: Vec<usize>,
    /// Indices of the uncovered points `T'` (farther than `(3+4ε̂)·r` from
    /// every selected center).
    pub uncovered: Vec<usize>,
    /// Aggregate weight of `T'` — compared against `z` by the radius search.
    pub uncovered_weight: u64,
}

/// Runs `OutliersCluster(T, k, r, ε̂)` with incremental ball-weight
/// maintenance.
///
/// # Panics
///
/// Panics if `weights.len() != oracle.len()`, `k == 0`, `r < 0`, or
/// `eps_hat < 0`.
pub fn outliers_cluster<O: DistanceOracle>(
    oracle: &O,
    weights: &[u64],
    k: usize,
    r: f64,
    eps_hat: f64,
) -> OutliersClusterResult {
    let n = oracle.len();
    assert_eq!(weights.len(), n, "weights misaligned with points");
    assert!(k > 0, "k must be positive");
    assert!(
        r >= 0.0 && eps_hat >= 0.0,
        "radius and eps must be non-negative"
    );

    let ball_r = (1.0 + 2.0 * eps_hat) * r;
    let cover_r = (3.0 + 4.0 * eps_hat) * r;

    let mut covered = vec![false; n];
    let mut uncovered_count = n;

    // Initial ball weights over all (uncovered) points: O(n²) parallel.
    let mut ball_weight: Vec<u64> = (0..n)
        .into_par_iter()
        .map(|t| {
            let mut w = 0u64;
            for (v, &weight) in weights.iter().enumerate() {
                if oracle.dist(t, v) <= ball_r {
                    w += weight;
                }
            }
            w
        })
        .collect();

    let mut centers = Vec::new();
    while centers.len() < k && uncovered_count > 0 {
        // Argmax over all of T (a center need not be uncovered); ties to the
        // smallest index for determinism.
        let x = ball_weight
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
            .map(|(i, _)| i)
            .expect("nonempty coreset");
        centers.push(x);

        // E_x: uncovered points within the expanded radius.
        let removed: Vec<usize> = (0..n)
            .into_par_iter()
            .filter(|&v| !covered[v] && oracle.dist(x, v) <= cover_r)
            .collect();
        for &v in &removed {
            covered[v] = true;
        }
        uncovered_count -= removed.len();

        // Subtract the removed points' weights from every ball containing
        // them. Each point is removed exactly once, so the total update work
        // over the whole run is O(n²).
        ball_weight.par_iter_mut().enumerate().for_each(|(t, w)| {
            for &v in &removed {
                if oracle.dist(t, v) <= ball_r {
                    *w -= weights[v];
                }
            }
        });
    }

    let uncovered: Vec<usize> = (0..n).filter(|&v| !covered[v]).collect();
    let uncovered_weight = uncovered.iter().map(|&v| weights[v]).sum();
    OutliersClusterResult {
        centers,
        uncovered,
        uncovered_weight,
    }
}

/// The textbook `O(k·|T|²)` implementation recomputing every ball weight in
/// every iteration. Must return exactly the same result as
/// [`outliers_cluster`]; kept for differential testing and the ablation
/// benchmark.
pub fn outliers_cluster_naive<O: DistanceOracle>(
    oracle: &O,
    weights: &[u64],
    k: usize,
    r: f64,
    eps_hat: f64,
) -> OutliersClusterResult {
    let n = oracle.len();
    assert_eq!(weights.len(), n, "weights misaligned with points");
    assert!(k > 0, "k must be positive");
    assert!(
        r >= 0.0 && eps_hat >= 0.0,
        "radius and eps must be non-negative"
    );

    let ball_r = (1.0 + 2.0 * eps_hat) * r;
    let cover_r = (3.0 + 4.0 * eps_hat) * r;

    let mut covered = vec![false; n];
    let mut centers = Vec::new();
    while centers.len() < k && covered.iter().any(|c| !c) {
        let mut best = 0usize;
        let mut best_w = 0u64;
        let mut first = true;
        for t in 0..n {
            let mut w = 0u64;
            for v in 0..n {
                if !covered[v] && oracle.dist(t, v) <= ball_r {
                    w += weights[v];
                }
            }
            if first || w > best_w {
                best = t;
                best_w = w;
                first = false;
            }
        }
        centers.push(best);
        for (v, cov) in covered.iter_mut().enumerate() {
            if !*cov && oracle.dist(best, v) <= cover_r {
                *cov = true;
            }
        }
    }

    let uncovered: Vec<usize> = (0..n).filter(|&v| !covered[v]).collect();
    let uncovered_weight = uncovered.iter().map(|&v| weights[v]).sum();
    OutliersClusterResult {
        centers,
        uncovered,
        uncovered_weight,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcenter_metric::{Euclidean, Point};

    fn oracle_of(coords: &[f64]) -> (Vec<Point>, Vec<u64>) {
        let pts: Vec<Point> = coords.iter().map(|&c| Point::new(vec![c])).collect();
        let w = vec![1u64; pts.len()];
        (pts, w)
    }

    #[test]
    fn covers_everything_with_generous_radius() {
        let (pts, w) = oracle_of(&[0.0, 1.0, 2.0, 3.0]);
        let oracle = PointsOracle::new(&pts, &Euclidean);
        let result = outliers_cluster(&oracle, &w, 2, 3.0, 0.0);
        assert!(result.uncovered.is_empty());
        assert_eq!(result.uncovered_weight, 0);
        assert!(result.centers.len() <= 2);
    }

    #[test]
    fn leaves_far_points_uncovered_with_small_radius() {
        // Two clusters 100 apart plus an outlier at 1000; k = 2, small r.
        let (pts, w) = oracle_of(&[0.0, 1.0, 100.0, 101.0, 1000.0]);
        let oracle = PointsOracle::new(&pts, &Euclidean);
        let result = outliers_cluster(&oracle, &w, 2, 1.0, 0.0);
        assert_eq!(result.uncovered, vec![4]);
        assert_eq!(result.uncovered_weight, 1);
    }

    #[test]
    fn picks_heaviest_ball_first() {
        // Heavy cluster at 0 (weight 10), light cluster at 100 (weight 2).
        let pts: Vec<Point> = vec![0.0, 100.0]
            .into_iter()
            .map(|c| Point::new(vec![c]))
            .collect();
        let w = vec![10u64, 2u64];
        let oracle = PointsOracle::new(&pts, &Euclidean);
        let result = outliers_cluster(&oracle, &w, 1, 1.0, 0.0);
        assert_eq!(result.centers, vec![0]);
        assert_eq!(result.uncovered, vec![1]);
        assert_eq!(result.uncovered_weight, 2);
    }

    #[test]
    fn weighted_selection_beats_cardinality() {
        // Three points near 0 (weight 1 each) vs one point at 50 carrying
        // weight 100: the heavy singleton wins the first center.
        let pts: Vec<Point> = vec![0.0, 0.5, 1.0, 50.0]
            .into_iter()
            .map(|c| Point::new(vec![c]))
            .collect();
        let w = vec![1u64, 1, 1, 100];
        let oracle = PointsOracle::new(&pts, &Euclidean);
        let result = outliers_cluster(&oracle, &w, 1, 1.0, 0.0);
        assert_eq!(result.centers, vec![3]);
        assert_eq!(result.uncovered_weight, 3);
    }

    #[test]
    fn expanded_radius_covers_more_than_selection_ball() {
        // Selection ball (1+2ε̂)r around x, removal ball (3+4ε̂)r: a point at
        // distance 2.5 from the chosen center is removed but not counted in
        // the selection ball for r = 1, ε̂ = 0.
        let (pts, w) = oracle_of(&[0.0, 0.5, 2.5, 10.0]);
        let oracle = PointsOracle::new(&pts, &Euclidean);
        let result = outliers_cluster(&oracle, &w, 1, 1.0, 0.0);
        assert_eq!(result.centers, vec![0]);
        assert_eq!(result.uncovered, vec![3]);
    }

    #[test]
    fn uncovered_points_are_far_from_all_centers() {
        let pts: Vec<Point> = (0..40)
            .map(|i| Point::new(vec![(i * 7 % 40) as f64]))
            .collect();
        let w = vec![1u64; pts.len()];
        let oracle = PointsOracle::new(&pts, &Euclidean);
        let r = 2.0;
        let eps_hat = 0.25;
        let result = outliers_cluster(&oracle, &w, 3, r, eps_hat);
        let cover_r = (3.0 + 4.0 * eps_hat) * r;
        for &u in &result.uncovered {
            for &c in &result.centers {
                assert!(oracle.dist(u, c) > cover_r, "uncovered point inside cover");
            }
        }
    }

    #[test]
    fn naive_and_incremental_agree() {
        // Differential test on a moderately irregular instance.
        let pts: Vec<Point> = (0..60)
            .map(|i| {
                let x = (i as f64 * 0.37).sin() * 50.0;
                let y = (i as f64 * 0.89).cos() * 50.0;
                Point::new(vec![x, y])
            })
            .collect();
        let w: Vec<u64> = (0..60).map(|i| 1 + (i % 5) as u64).collect();
        let oracle = PointsOracle::new(&pts, &Euclidean);
        for &(k, r, eps) in &[
            (1usize, 5.0, 0.0),
            (3, 10.0, 0.1),
            (5, 20.0, 0.5),
            (8, 2.0, 1.0),
        ] {
            let fast = outliers_cluster(&oracle, &w, k, r, eps);
            let naive = outliers_cluster_naive(&oracle, &w, k, r, eps);
            assert_eq!(fast, naive, "divergence at k={k}, r={r}, eps={eps}");
        }
    }

    #[test]
    fn matrix_oracle_matches_points_oracle() {
        let pts: Vec<Point> = (0..30)
            .map(|i| Point::new(vec![(i as f64 * 1.3) % 17.0]))
            .collect();
        let w = vec![1u64; 30];
        let points_oracle = PointsOracle::new(&pts, &Euclidean);
        let matrix = DistanceMatrix::build(&pts, &Euclidean);
        let a = outliers_cluster(&points_oracle, &w, 4, 3.0, 0.25);
        let b = outliers_cluster(&matrix, &w, 4, 3.0, 0.25);
        assert_eq!(a, b);
    }

    #[test]
    fn zero_radius_still_terminates() {
        let (pts, w) = oracle_of(&[0.0, 0.0, 5.0]);
        let oracle = PointsOracle::new(&pts, &Euclidean);
        let result = outliers_cluster(&oracle, &w, 2, 0.0, 0.0);
        assert!(result.centers.len() <= 2);
        // Duplicates of the chosen center are covered at r = 0.
        assert!(result.uncovered_weight <= 1);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        let (pts, w) = oracle_of(&[0.0]);
        let oracle = PointsOracle::new(&pts, &Euclidean);
        let _ = outliers_cluster(&oracle, &w, 0, 1.0, 0.0);
    }
}
