//! The 2-round (3+ε)-approximation MapReduce algorithms for k-center with
//! `z` outliers (paper §3.2), deterministic and randomized.
//!
//! Round 1 builds a *weighted* GMM coreset per partition (every coreset
//! point carries the number of input points it proxies). Round 2 gathers the
//! weighted union `T` into one reducer and estimates the minimum radius at
//! which `OutliersCluster(T, k, r, ε̂)` leaves at most `z` weight uncovered
//! ([`crate::radius_search`]); its centers are the output. Theorem 2: a
//! `(3+ε)`-approximation with `ε̂ = ε/6`.
//!
//! The two variants differ in round 1 (paper §3.2.1):
//!
//! * **deterministic** — arbitrary (chunked) partition, coreset base
//!   `k + z`: each partition must be able to absorb *all* outliers, because
//!   an adversary could put them all in one partition;
//! * **randomized** — uniform random partition; with high probability each
//!   partition receives only `z' = 6(z/ℓ + log₂|S|)` outliers (Lemma 7), so
//!   the coreset base shrinks to `k + z'` — a large memory/time saving when
//!   `z ≫ k` (Corollary 3). The experiments drop the `log₂|S|` term, which
//!   is only needed when `z ≈ ℓ` (§5.2); both forms are supported.
//!
//! With [`CoresetSpec::Multiplier`]` { mu: 1 }` the deterministic variant is
//! exactly the algorithm of Malkomes et al. (2015), the Fig. 4 baseline.

use std::time::{Duration, Instant};

use kcenter_mapreduce::{
    Adversarial, Chunked, MapReduceEngine, MemoryReport, Partitioner, RandomPartition,
};
use kcenter_metric::{CachedOracle, Metric};

use crate::coreset::{build_weighted_coreset, CoresetSpec, WeightedCoreset, WeightedPoint};
use crate::error::{check_eps, check_kz, InputError};
use crate::radius_search::{default_matrix_threshold, solve_coreset_cached, SearchMode};
use crate::solution::{radius_with_outliers, Clustering};

/// Which §3.2 variant to run (controls the coreset base).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MrOutliersVariant {
    /// Coreset base `k + z` per partition.
    Deterministic,
    /// Coreset base `k + z'`, `z' = 6·z/ℓ (+ 6·log₂|S|)`.
    Randomized {
        /// Include the `6·log₂|S|` term of Lemma 7 (the experiments omit
        /// it; it only matters when `z ≈ ℓ`).
        include_log_term: bool,
    },
}

/// How round 1 partitions the input.
#[derive(Clone, Debug)]
pub enum MrPartitioning {
    /// Deterministic equal-size chunks (the paper's default).
    Chunked,
    /// Uniform random assignment (the randomized variant's default).
    Random,
    /// All `special` indices (e.g. injected outliers) forced into one
    /// partition — the adversarial setup of Fig. 4.
    Adversarial {
        /// Indices routed to partition 0.
        special: Vec<usize>,
    },
}

/// Configuration of the MapReduce k-center-with-outliers algorithm.
#[derive(Clone, Debug)]
pub struct MrOutliersConfig {
    /// Number of centers `k`.
    pub k: usize,
    /// Outlier budget `z`.
    pub z: usize,
    /// Parallelism `ℓ`.
    pub ell: usize,
    /// Precision `ε̂ ∈ (0, 1]` for `OutliersCluster` and the radius search
    /// (Theorem 2 uses `ε̂ = ε/6`).
    pub eps_hat: f64,
    /// Coreset sizing rule (base is `k + z` or `k + z'` per the variant).
    pub coreset: CoresetSpec,
    /// Deterministic or randomized variant.
    pub variant: MrOutliersVariant,
    /// Partitioning of round 1.
    pub partitioning: MrPartitioning,
    /// Seed for the random partition and GMM start points.
    pub seed: u64,
    /// Radius search mode.
    pub search: SearchMode,
    /// Cache the coreset distance matrix when `|T|` is at most this.
    pub matrix_threshold: usize,
}

impl MrOutliersConfig {
    /// The paper's deterministic algorithm with sensible defaults.
    pub fn deterministic(k: usize, z: usize, ell: usize, coreset: CoresetSpec) -> Self {
        MrOutliersConfig {
            k,
            z,
            ell,
            eps_hat: 1.0 / 6.0,
            coreset,
            variant: MrOutliersVariant::Deterministic,
            partitioning: MrPartitioning::Chunked,
            seed: 0,
            search: SearchMode::GeometricGrid,
            matrix_threshold: default_matrix_threshold(),
        }
    }

    /// The paper's randomized algorithm with sensible defaults
    /// (experimental form: no `log₂|S|` term).
    pub fn randomized(k: usize, z: usize, ell: usize, coreset: CoresetSpec) -> Self {
        MrOutliersConfig {
            variant: MrOutliersVariant::Randomized {
                include_log_term: false,
            },
            partitioning: MrPartitioning::Random,
            ..Self::deterministic(k, z, ell, coreset)
        }
    }

    /// The coreset base `k + z` (deterministic) or `k + z'` (randomized)
    /// for a dataset of `n` points.
    pub fn coreset_base(&self, n: usize) -> usize {
        match self.variant {
            MrOutliersVariant::Deterministic => self.k + self.z,
            MrOutliersVariant::Randomized { include_log_term } => {
                let z_over_ell = (6 * self.z).div_ceil(self.ell);
                let log_term = if include_log_term {
                    6 * (n.max(2) as f64).log2().ceil() as usize
                } else {
                    0
                };
                self.k + z_over_ell + log_term
            }
        }
    }

    /// Validates this configuration against a dataset of `n` points —
    /// exactly the checks [`mr_kcenter_outliers`] performs before running.
    /// Public so out-of-process executors (`kcenter-exec`) reject the same
    /// inputs the in-process engine would.
    ///
    /// # Errors
    ///
    /// Returns [`InputError`] for empty input, `k`/`z` out of range,
    /// `ℓ = 0`, or an invalid precision/coreset spec.
    pub fn validate(&self, n: usize) -> Result<(), InputError> {
        check_kz(n, self.k, self.z)?;
        if self.ell == 0 {
            return Err(InputError::InvalidParallelism);
        }
        check_eps(self.eps_hat)?;
        if let CoresetSpec::EpsStop { eps } = self.coreset {
            check_eps(eps)?;
        }
        let base = self.coreset_base(n);
        if let Some(target) = self.coreset.target_size(base) {
            if target < self.k {
                return Err(InputError::CoresetTooSmall {
                    tau: target,
                    minimum: self.k,
                });
            }
        }
        Ok(())
    }

    /// The round-1 partitioner this configuration selects — the seeded
    /// assignment rule the in-process engine and the multi-process
    /// executor must share for identical partitions.
    pub fn partitioner(&self) -> Box<dyn Partitioner> {
        match &self.partitioning {
            MrPartitioning::Chunked => Box::new(Chunked),
            MrPartitioning::Random => Box::new(RandomPartition::new(mix(self.seed, 0xF00D))),
            MrPartitioning::Adversarial { special } => {
                Box::new(Adversarial::new(special.iter().copied()))
            }
        }
    }

    /// The GMM start index round 1 uses for partition `part` holding
    /// `members` points (salted differently from the plain k-center rule).
    ///
    /// # Panics
    ///
    /// Panics if `members == 0` (an empty partition builds no coreset).
    pub fn round1_start(&self, part: usize, members: usize) -> usize {
        assert!(members > 0, "round 1 start of an empty partition");
        (mix(self.seed, part as u64 + 1) % members as u64) as usize
    }
}

/// Result of one MapReduce k-center-with-outliers run.
#[derive(Clone, Debug)]
pub struct MrOutliersResult<P> {
    /// The final (at most) k centers; `radius` is the objective
    /// `r_{T,Z_T}(S)` measured on the full input with `z` outliers.
    pub clustering: Clustering<P>,
    /// The radius `r̃min` found on the coreset by the search.
    pub r_min: f64,
    /// Weight left uncovered on the coreset at `r̃min` (≤ z).
    pub uncovered_weight: u64,
    /// Coreset base used (`k + z` or `k + z'`).
    pub base: usize,
    /// Size of each partition's coreset.
    pub coreset_sizes: Vec<usize>,
    /// `|T|`, the weighted union's size.
    pub union_size: usize,
    /// Number of `OutliersCluster` evaluations in the radius search.
    pub search_evaluations: usize,
    /// Memory accounting for both rounds.
    pub memory: MemoryReport,
    /// Wall-clock time of round 1 (coreset construction).
    pub round1_time: Duration,
    /// Wall-clock time of round 2 (radius search + final cover).
    pub round2_time: Duration,
}

#[inline]
fn mix(seed: u64, salt: u64) -> u64 {
    let mut x = seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^ (x >> 31)
}

/// Runs the 2-round MapReduce k-center-with-outliers algorithm.
///
/// # Errors
///
/// Returns [`InputError`] for empty input, `k`/`z` out of range, `ℓ = 0`,
/// or an invalid precision/coreset spec.
pub fn mr_kcenter_outliers<P, M>(
    points: &[P],
    metric: &M,
    config: &MrOutliersConfig,
) -> Result<MrOutliersResult<P>, InputError>
where
    P: Clone + Send + Sync,
    M: Metric<P>,
{
    config.validate(points.len())?;
    let n = points.len();
    let base = config.coreset_base(n);

    let engine = MapReduceEngine::new(config.ell);
    let ell = config.ell;
    let spec = config.coreset;

    let partitioner = config.partitioner();

    // Round 1: weighted coreset per partition.
    let round1_start = Instant::now();
    let inputs: Vec<(usize, P)> = points.iter().cloned().enumerate().collect();
    let weighted_union: Vec<(usize, WeightedPoint<P>)> = engine.round(
        inputs,
        |(i, p)| (partitioner.assign(i, n, ell), p),
        |&part, members| {
            let start = config.round1_start(part, members.len());
            let build =
                build_weighted_coreset(&members, metric, base.min(members.len()), &spec, start);
            build
                .coreset
                .points
                .into_iter()
                .map(|wp| (part, wp))
                .collect()
        },
    );
    let round1_time = round1_start.elapsed();

    let mut coreset_sizes = vec![0usize; ell];
    for (part, _) in &weighted_union {
        coreset_sizes[*part] += 1;
    }
    coreset_sizes.retain(|&s| s > 0);
    let union_size = weighted_union.len();

    // Round 2: gather the union, search the radius, extract centers.
    let (k, z, eps_hat, search, matrix_threshold) = (
        config.k,
        config.z,
        config.eps_hat,
        config.search,
        config.matrix_threshold,
    );
    let round2_start = Instant::now();
    let mut solutions = engine.round(
        weighted_union,
        |(_, wp)| ((), wp),
        |_, union| {
            // Price the union into one oracle: the radius search's many
            // OutliersCluster evaluations share its lazily built proxy
            // matrix. The handle lives only for this reducer — sweeps
            // that re-solve one coreset under several parameters hold a
            // CachedOracle themselves and call solve_coreset_cached.
            // With a persistent store installed (KCENTER_CACHE_DIR), the
            // oracle loads a previously priced matrix for this exact
            // union instead of rebuilding it, so round 2 of a repeated
            // seeded run costs no distance evaluations at all.
            let coreset: WeightedCoreset<P> = union.iter().cloned().collect();
            let oracle = CachedOracle::new(coreset.points_only(), metric, matrix_threshold);
            vec![solve_coreset_cached(
                &oracle,
                &coreset.weights(),
                k,
                z as u64,
                eps_hat,
                search,
            )]
        },
    );
    let round2_time = round2_start.elapsed();
    let solution = solutions.pop().expect("round 2 produced a solution");

    let final_radius =
        engine.run_scoped(|| radius_with_outliers(points, &solution.centers, z, metric));

    Ok(MrOutliersResult {
        clustering: Clustering {
            centers: solution.centers,
            radius: final_radius,
        },
        r_min: solution.r_min,
        uncovered_weight: solution.uncovered_weight,
        base,
        coreset_sizes,
        union_size,
        search_evaluations: solution.evaluations,
        memory: engine.memory_report(),
        round1_time,
        round2_time,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute_force::optimal_kcenter_outliers;
    use kcenter_metric::{Euclidean, Point};

    /// Three clusters plus `z` far outliers at the tail of the array.
    fn clustered_with_outliers(per_cluster: usize, z: usize) -> (Vec<Point>, Vec<usize>) {
        let mut pts = Vec::new();
        for c in 0..3 {
            for i in 0..per_cluster {
                pts.push(Point::new(vec![
                    c as f64 * 100.0 + (i % 10) as f64 * 0.1,
                    (i / 10) as f64 * 0.1,
                ]));
            }
        }
        let base = pts.len();
        for j in 0..z {
            pts.push(Point::new(vec![
                10_000.0 + 500.0 * j as f64,
                10_000.0 - 700.0 * j as f64,
            ]));
        }
        (pts, (base..base + z).collect())
    }

    #[test]
    fn deterministic_finds_clusters_and_drops_outliers() {
        let (points, outliers) = clustered_with_outliers(60, 4);
        let config = MrOutliersConfig::deterministic(3, 4, 4, CoresetSpec::Multiplier { mu: 2 });
        let result = mr_kcenter_outliers(&points, &Euclidean, &config).unwrap();
        assert!(result.clustering.k() <= 3);
        // The clusters have diameter ~1.3; outliers are 10⁴ away. A correct
        // solution must achieve a small radius once z points are excluded.
        assert!(
            result.clustering.radius < 10.0,
            "radius {} did not exclude outliers",
            result.clustering.radius
        );
        // The excluded points are exactly the injected outliers.
        let excluded =
            crate::solution::outlier_indices(&points, &result.clustering.centers, 4, &Euclidean);
        assert_eq!(excluded, outliers);
    }

    #[test]
    fn adversarial_partition_hurts_mu1_but_not_mu8() {
        // All outliers in one partition (paper §5.2): with µ = 1 the coreset
        // of that partition spends z of its k + z slots on outliers (GMM
        // picks the farthest points first), leaving the partition's wide
        // cluster underrepresented. µ = 8 recovers the representation.
        // Clusters are 10×6 unit grids (diameter ~10.3) so representation
        // quality is visible in the final radius.
        let mut points: Vec<Point> = Vec::new();
        for c in 0..3 {
            for i in 0..60 {
                points.push(Point::new(vec![
                    c as f64 * 300.0 + (i % 10) as f64,
                    (i / 10) as f64,
                ]));
            }
        }
        let base = points.len();
        for j in 0..6 {
            points.push(Point::new(vec![
                20_000.0 + 3_000.0 * j as f64,
                -15_000.0 + 4_000.0 * j as f64,
            ]));
        }
        let outliers: Vec<usize> = (base..base + 6).collect();
        let mk = |mu: usize| {
            let mut c = MrOutliersConfig::deterministic(3, 6, 3, CoresetSpec::Multiplier { mu });
            c.partitioning = MrPartitioning::Adversarial {
                special: outliers.clone(),
            };
            c
        };
        let small = mr_kcenter_outliers(&points, &Euclidean, &mk(1)).unwrap();
        let large = mr_kcenter_outliers(&points, &Euclidean, &mk(8)).unwrap();
        assert!(
            large.clustering.radius <= small.clustering.radius + 1e-9,
            "µ=8 ({}) should not be worse than µ=1 ({})",
            large.clustering.radius,
            small.clustering.radius
        );
        // Both still separate outliers from clusters.
        assert!(large.clustering.radius < 50.0);
        assert!(small.clustering.radius < 300.0);
    }

    #[test]
    fn randomized_uses_smaller_coresets() {
        // z' = 6·z/ℓ beats z only when ℓ > 6 (the regime the randomized
        // variant targets: many partitions, many outliers).
        let (points, _) = clustered_with_outliers(80, 16);
        let det = MrOutliersConfig::deterministic(3, 16, 8, CoresetSpec::Multiplier { mu: 1 });
        let rand = MrOutliersConfig::randomized(3, 16, 8, CoresetSpec::Multiplier { mu: 1 });
        let n = points.len();
        assert_eq!(det.coreset_base(n), 3 + 16);
        assert_eq!(rand.coreset_base(n), 3 + 12);
        let det_r = mr_kcenter_outliers(&points, &Euclidean, &det).unwrap();
        let rand_r = mr_kcenter_outliers(&points, &Euclidean, &rand).unwrap();
        assert!(rand_r.union_size <= det_r.union_size);
        // Randomized must still produce a valid solution.
        assert!(
            rand_r.clustering.radius < 10.0,
            "radius {}",
            rand_r.clustering.radius
        );
    }

    #[test]
    fn log_term_grows_the_base() {
        let with_log = MrOutliersConfig {
            variant: MrOutliersVariant::Randomized {
                include_log_term: true,
            },
            ..MrOutliersConfig::randomized(5, 20, 4, CoresetSpec::Multiplier { mu: 1 })
        };
        let without = MrOutliersConfig::randomized(5, 20, 4, CoresetSpec::Multiplier { mu: 1 });
        assert!(with_log.coreset_base(1024) > without.coreset_base(1024));
        // 6·log2(1024) = 60.
        assert_eq!(with_log.coreset_base(1024), without.coreset_base(1024) + 60);
    }

    #[test]
    fn approximation_versus_brute_force() {
        // Tiny instance where the exact optimum is computable: 2 clusters
        // of 6 + 2 outliers, k = 2, z = 2.
        let mut points: Vec<Point> = Vec::new();
        for i in 0..6 {
            points.push(Point::new(vec![i as f64 * 0.3]));
        }
        for i in 0..6 {
            points.push(Point::new(vec![40.0 + i as f64 * 0.3]));
        }
        points.push(Point::new(vec![500.0]));
        points.push(Point::new(vec![-400.0]));
        let (_, opt) = optimal_kcenter_outliers(&points, &Euclidean, 2, 2);
        assert!(opt > 0.0);
        let config = MrOutliersConfig::deterministic(2, 2, 2, CoresetSpec::Multiplier { mu: 4 });
        let result = mr_kcenter_outliers(&points, &Euclidean, &config).unwrap();
        // Theorem 2 bound with ε = 6·ε̂ = 1 → factor 4; allow tiny epsilon.
        assert!(
            result.clustering.radius <= 4.0 * opt + 1e-9,
            "radius {} vs opt {opt}",
            result.clustering.radius
        );
    }

    #[test]
    fn memory_report_covers_two_rounds() {
        let (points, _) = clustered_with_outliers(40, 3);
        let config = MrOutliersConfig::deterministic(3, 3, 4, CoresetSpec::Multiplier { mu: 1 });
        let result = mr_kcenter_outliers(&points, &Euclidean, &config).unwrap();
        assert_eq!(result.memory.round_count(), 2);
        assert_eq!(result.memory.rounds[1].max_reducer_load, result.union_size);
        assert_eq!(result.coreset_sizes.len(), 4);
    }

    #[test]
    fn input_validation() {
        let (points, _) = clustered_with_outliers(5, 1);
        let bad_z =
            MrOutliersConfig::deterministic(3, points.len(), 2, CoresetSpec::Multiplier { mu: 1 });
        assert!(matches!(
            mr_kcenter_outliers(&points, &Euclidean, &bad_z),
            Err(InputError::InvalidZ { .. })
        ));
        let mut bad_eps =
            MrOutliersConfig::deterministic(2, 1, 2, CoresetSpec::Multiplier { mu: 1 });
        bad_eps.eps_hat = 0.0;
        assert!(matches!(
            mr_kcenter_outliers(&points, &Euclidean, &bad_eps),
            Err(InputError::InvalidEpsilon { .. })
        ));
    }

    #[test]
    fn exact_and_grid_search_modes_agree_roughly() {
        let (points, _) = clustered_with_outliers(30, 3);
        let mut exact = MrOutliersConfig::deterministic(3, 3, 2, CoresetSpec::Multiplier { mu: 2 });
        exact.search = SearchMode::ExactCandidates;
        let grid = MrOutliersConfig::deterministic(3, 3, 2, CoresetSpec::Multiplier { mu: 2 });
        let a = mr_kcenter_outliers(&points, &Euclidean, &exact).unwrap();
        let b = mr_kcenter_outliers(&points, &Euclidean, &grid).unwrap();
        // Both must solve the instance (small radius after excluding z).
        assert!(a.clustering.radius < 10.0);
        assert!(b.clustering.radius < 10.0);
    }
}
