//! Composable weighted coresets built with incremental GMM.
//!
//! Round 1 of every MapReduce algorithm in the paper runs GMM on each
//! partition `S_i` and keeps the selected centers as the partition's coreset
//! `T_i`; each point of `S_i` is (conceptually) mapped to its closest coreset
//! point — its *proxy* — and, for the outlier variant, each coreset point
//! carries the number of points it proxies as a weight. The union of the
//! `T_i` is a composable coreset for the whole dataset.
//!
//! How far GMM runs is the paper's central knob:
//!
//! * [`CoresetSpec::EpsStop`] — the theoretical rule: run to `τ_i ≥ base`
//!   until `r_{T^{τ_i}}(S_i) ≤ (ε/2) · r_{T^base}(S_i)` (§3.1/§3.2), which
//!   guarantees proxy distance `≤ ε·r*` and size `≤ base·(4/ε)^D` (Lemmas
//!   2–3, 6);
//! * [`CoresetSpec::Fixed`] / [`CoresetSpec::Multiplier`] — the experimental
//!   rule (§5): a fixed size `τ = µ·base`, the form all figures sweep.

use kcenter_metric::Metric;

use crate::gmm::Gmm;

/// A coreset point with its proxy weight (how many input points it
/// represents).
#[derive(Clone, Debug, PartialEq)]
pub struct WeightedPoint<P> {
    /// The coreset point.
    pub point: P,
    /// Number of input points whose proxy this point is (`>= 1`).
    pub weight: u64,
}

/// A weighted coreset; unions of these are composable coresets.
#[derive(Clone, Debug, Default)]
pub struct WeightedCoreset<P> {
    /// The weighted points.
    pub points: Vec<WeightedPoint<P>>,
}

impl<P> WeightedCoreset<P> {
    /// Number of coreset points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the coreset is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Total proxy weight (= number of represented input points).
    pub fn total_weight(&self) -> u64 {
        self.points.iter().map(|wp| wp.weight).sum()
    }

    /// The bare points, discarding weights.
    pub fn points_only(&self) -> Vec<P>
    where
        P: Clone,
    {
        self.points.iter().map(|wp| wp.point.clone()).collect()
    }

    /// The weights, aligned with [`WeightedCoreset::points`].
    pub fn weights(&self) -> Vec<u64> {
        self.points.iter().map(|wp| wp.weight).collect()
    }

    /// Absorbs another coreset (coreset composition).
    pub fn merge(&mut self, other: WeightedCoreset<P>) {
        self.points.extend(other.points);
    }

    /// Composes a sequence of coresets into one, in iteration order.
    ///
    /// Composition is plain order-preserving concatenation, so it is
    /// associative: any parenthesization — the coordinator's flat
    /// left-to-right fold or the executor's pairwise reduction tree —
    /// yields the identical point sequence as long as leaves stay in
    /// partition-index order. The round-2 solvers consume the union by
    /// position, so this is exactly the property that makes a tree-shaped
    /// round 2 bit-identical to the flat one.
    pub fn compose<I: IntoIterator<Item = WeightedCoreset<P>>>(parts: I) -> WeightedCoreset<P> {
        let mut union = WeightedCoreset { points: Vec::new() };
        for part in parts {
            union.merge(part);
        }
        union
    }
}

impl<P> FromIterator<WeightedPoint<P>> for WeightedCoreset<P> {
    fn from_iter<I: IntoIterator<Item = WeightedPoint<P>>>(iter: I) -> Self {
        WeightedCoreset {
            points: iter.into_iter().collect(),
        }
    }
}

/// How large a coreset round 1 should build from each partition.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum CoresetSpec {
    /// The paper's theoretical stopping rule: run GMM to at least `base`
    /// centers, then continue until the radius drops to `(eps/2)` times the
    /// radius at `base` centers.
    EpsStop {
        /// Precision parameter `ε ∈ (0, 1]` (the paper's `ε` or `ε̂`).
        eps: f64,
    },
    /// Exactly `tau` centers (fewer if the partition saturates first).
    Fixed {
        /// Target coreset size.
        tau: usize,
    },
    /// `µ · base` centers — the form used throughout the paper's
    /// experiments (`µ = 1` reproduces Malkomes et al.).
    Multiplier {
        /// Coreset size multiplier `µ >= 1`.
        mu: usize,
    },
}

impl CoresetSpec {
    /// The target size for a given `base` (`k` without outliers, `k + z` or
    /// `k + z'` with), or `None` for the adaptive rule.
    pub fn target_size(&self, base: usize) -> Option<usize> {
        match *self {
            CoresetSpec::EpsStop { .. } => None,
            CoresetSpec::Fixed { tau } => Some(tau),
            CoresetSpec::Multiplier { mu } => Some(mu * base),
        }
    }
}

/// The outcome of building one partition's coreset.
#[derive(Clone, Debug)]
pub struct CoresetBuild<P> {
    /// The weighted coreset `T_i`.
    pub coreset: WeightedCoreset<P>,
    /// Number of GMM iterations `τ_i` actually run.
    pub tau: usize,
    /// `r_{T^base}(S_i)` — the radius after the first `base` centers
    /// (`0` if the partition saturated before `base` centers).
    pub base_radius: f64,
    /// `r_{T_i}(S_i)` — the final radius, bounding every point's distance
    /// to its proxy.
    pub proxy_radius: f64,
}

/// Builds the weighted coreset of one partition by incremental GMM.
///
/// `base` is `k` (plain) or `k + z`-style (outliers); `first` selects the
/// initial GMM center. Duplicated points fold into their proxy's weight.
///
/// # Panics
///
/// Panics if `points` is empty, `base == 0`, or the spec is invalid
/// (`eps` outside `(0,1]`, `tau == 0`, `mu == 0`).
pub fn build_weighted_coreset<P, M>(
    points: &[P],
    metric: &M,
    base: usize,
    spec: &CoresetSpec,
    first: usize,
) -> CoresetBuild<P>
where
    P: Clone + Sync,
    M: Metric<P>,
{
    assert!(!points.is_empty(), "coreset of an empty partition");
    assert!(base > 0, "base must be positive");

    let mut gmm = Gmm::new(points, metric, first);
    match *spec {
        CoresetSpec::EpsStop { eps } => {
            assert!(eps > 0.0 && eps <= 1.0, "eps must be in (0, 1]");
            gmm.run_until(base);
            let base_radius = gmm.radius();
            let threshold = eps / 2.0 * base_radius;
            while gmm.radius() > threshold && gmm.step() {}
        }
        CoresetSpec::Fixed { tau } => {
            assert!(tau > 0, "tau must be positive");
            gmm.run_until(tau);
        }
        CoresetSpec::Multiplier { mu } => {
            assert!(mu > 0, "mu must be positive");
            gmm.run_until(mu * base);
        }
    }

    let tau = gmm.num_centers();
    let base_radius = if gmm.num_centers() >= base {
        gmm.radius_at(base)
    } else {
        // The partition saturated before `base` centers: radius is zero.
        0.0
    };
    let proxy_radius = gmm.radius();

    // Weights: count the points proxied by each selected center.
    let mut weights = vec![0u64; tau];
    for &pos in gmm.nearest_center_positions() {
        weights[pos as usize] += 1;
    }
    let coreset = gmm
        .centers()
        .iter()
        .zip(&weights)
        .map(|(&idx, &weight)| WeightedPoint {
            point: points[idx].clone(),
            weight,
        })
        .collect();

    CoresetBuild {
        coreset,
        tau,
        base_radius,
        proxy_radius,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcenter_metric::{Euclidean, Point};

    fn pts(coords: &[f64]) -> Vec<Point> {
        coords.iter().map(|&c| Point::new(vec![c])).collect()
    }

    #[test]
    fn weights_sum_to_partition_size() {
        let points = pts(&[0.0, 0.5, 1.0, 5.0, 5.5, 9.0, 9.5, 10.0]);
        let build =
            build_weighted_coreset(&points, &Euclidean, 2, &CoresetSpec::Fixed { tau: 3 }, 0);
        assert_eq!(build.coreset.len(), 3);
        assert_eq!(build.coreset.total_weight(), points.len() as u64);
        assert!(build.coreset.points.iter().all(|wp| wp.weight >= 1));
    }

    #[test]
    fn multiplier_spec_grows_with_mu() {
        let points: Vec<Point> = (0..100).map(|i| Point::new(vec![i as f64])).collect();
        let small = build_weighted_coreset(
            &points,
            &Euclidean,
            4,
            &CoresetSpec::Multiplier { mu: 1 },
            0,
        );
        let large = build_weighted_coreset(
            &points,
            &Euclidean,
            4,
            &CoresetSpec::Multiplier { mu: 4 },
            0,
        );
        assert_eq!(small.tau, 4);
        assert_eq!(large.tau, 16);
        assert!(large.proxy_radius <= small.proxy_radius);
    }

    #[test]
    fn eps_stop_reaches_the_radius_target() {
        let points: Vec<Point> = (0..256).map(|i| Point::new(vec![i as f64])).collect();
        let eps = 0.5;
        let build =
            build_weighted_coreset(&points, &Euclidean, 4, &CoresetSpec::EpsStop { eps }, 0);
        assert!(build.tau >= 4);
        assert!(
            build.proxy_radius <= eps / 2.0 * build.base_radius + 1e-12,
            "stopping rule violated: {} > (ε/2)·{}",
            build.proxy_radius,
            build.base_radius
        );
    }

    #[test]
    fn eps_stop_with_tiny_eps_grows_the_coreset() {
        let points: Vec<Point> = (0..256).map(|i| Point::new(vec![i as f64])).collect();
        let coarse = build_weighted_coreset(
            &points,
            &Euclidean,
            4,
            &CoresetSpec::EpsStop { eps: 1.0 },
            0,
        );
        let fine = build_weighted_coreset(
            &points,
            &Euclidean,
            4,
            &CoresetSpec::EpsStop { eps: 0.1 },
            0,
        );
        assert!(fine.tau > coarse.tau);
    }

    #[test]
    fn saturated_partition_yields_small_coreset() {
        // Fewer distinct points than requested τ.
        let points = pts(&[1.0, 1.0, 2.0, 2.0, 2.0]);
        let build =
            build_weighted_coreset(&points, &Euclidean, 2, &CoresetSpec::Fixed { tau: 4 }, 0);
        assert_eq!(build.tau, 2);
        assert_eq!(build.proxy_radius, 0.0);
        // Duplicates fold into weights: 2 + 3.
        let mut ws = build.coreset.weights();
        ws.sort_unstable();
        assert_eq!(ws, vec![2, 3]);
    }

    #[test]
    fn proxy_radius_bounds_every_point() {
        let points = pts(&[0.0, 1.0, 3.0, 7.0, 20.0, 21.0, 40.0]);
        let build =
            build_weighted_coreset(&points, &Euclidean, 3, &CoresetSpec::Fixed { tau: 4 }, 0);
        let coreset_points = build.coreset.points_only();
        for p in &points {
            let d = coreset_points
                .iter()
                .map(|c| kcenter_metric::Metric::distance(&Euclidean, p, c))
                .fold(f64::INFINITY, f64::min);
            assert!(d <= build.proxy_radius + 1e-12);
        }
    }

    #[test]
    fn merge_composes_coresets() {
        let a = build_weighted_coreset(
            &pts(&[0.0, 1.0]),
            &Euclidean,
            1,
            &CoresetSpec::Fixed { tau: 2 },
            0,
        );
        let b = build_weighted_coreset(
            &pts(&[10.0, 11.0, 12.0]),
            &Euclidean,
            1,
            &CoresetSpec::Fixed { tau: 2 },
            0,
        );
        let mut union = a.coreset.clone();
        union.merge(b.coreset.clone());
        assert_eq!(union.len(), a.coreset.len() + b.coreset.len());
        assert_eq!(union.total_weight(), 5);
    }

    #[test]
    fn compose_is_associative_and_order_preserving() {
        let parts: Vec<WeightedCoreset<Point>> = [
            &[0.0, 1.0][..],
            &[10.0][..],
            &[20.0, 21.0, 22.0][..],
            &[30.0][..],
            &[40.0, 41.0][..],
        ]
        .iter()
        .map(|coords| {
            build_weighted_coreset(
                &pts(coords),
                &Euclidean,
                1,
                &CoresetSpec::Fixed { tau: 3 },
                0,
            )
            .coreset
        })
        .collect();

        // Flat left-to-right fold.
        let flat = WeightedCoreset::compose(parts.clone());

        // Pairwise reduction tree with the odd node carried forward —
        // exactly the executor's round-2 topology.
        let mut level = parts.clone();
        while level.len() > 1 {
            let mut next = Vec::new();
            let mut it = level.into_iter();
            while let Some(left) = it.next() {
                match it.next() {
                    Some(right) => next.push(WeightedCoreset::compose([left, right])),
                    None => next.push(left),
                }
            }
            level = next;
        }
        let tree = level.pop().unwrap();

        assert_eq!(flat.len(), tree.len());
        assert_eq!(flat.weights(), tree.weights());
        for (a, b) in flat.points_only().iter().zip(tree.points_only()) {
            for (ca, cb) in a.coords().iter().zip(b.coords()) {
                assert_eq!(ca.to_bits(), cb.to_bits());
            }
        }
        // Order-preserving: leaves appear in input order.
        let expected: u64 = parts.iter().map(WeightedCoreset::total_weight).sum();
        assert_eq!(flat.total_weight(), expected);
    }

    #[test]
    fn spec_target_sizes() {
        assert_eq!(CoresetSpec::EpsStop { eps: 0.5 }.target_size(7), None);
        assert_eq!(CoresetSpec::Fixed { tau: 9 }.target_size(7), Some(9));
        assert_eq!(CoresetSpec::Multiplier { mu: 3 }.target_size(7), Some(21));
    }

    #[test]
    #[should_panic(expected = "empty partition")]
    fn empty_partition_panics() {
        let points: Vec<Point> = Vec::new();
        let _ = build_weighted_coreset(&points, &Euclidean, 1, &CoresetSpec::Fixed { tau: 1 }, 0);
    }
}
