//! Exact optimal k-center by exhaustive enumeration — the test oracle.
//!
//! k-center is NP-hard, so exact optima are only computable on tiny
//! instances; the test suites use these to assert the approximation factors
//! (GMM ≤ 2·OPT, the coreset algorithms ≤ (2+ε)/(3+ε)·OPT, Lemma 1's subset
//! property) against ground truth. Enumeration is over all `C(n, k)` center
//! subsets, guarded to stay cheap.

use kcenter_metric::selection::radius_excluding_outliers;
use kcenter_metric::Metric;

/// Hard cap on the number of candidate subsets enumerated.
const MAX_SUBSETS: u128 = 2_000_000;

fn binomial(n: usize, k: usize) -> u128 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut result: u128 = 1;
    for i in 0..k {
        result = result * (n - i) as u128 / (i + 1) as u128;
        if result > MAX_SUBSETS * 1000 {
            return u128::MAX;
        }
    }
    result
}

/// Iterates over all k-subsets of `0..n` in lexicographic order, invoking
/// `visit` with each.
fn for_each_combination(n: usize, k: usize, mut visit: impl FnMut(&[usize])) {
    let mut idx: Vec<usize> = (0..k).collect();
    loop {
        visit(&idx);
        // Advance to the next combination.
        let mut i = k;
        loop {
            if i == 0 {
                return;
            }
            i -= 1;
            if idx[i] != i + n - k {
                break;
            }
            if i == 0 {
                return;
            }
        }
        idx[i] += 1;
        for j in i + 1..k {
            idx[j] = idx[j - 1] + 1;
        }
    }
}

/// The exact optimal k-center solution (center indices and radius).
///
/// # Panics
///
/// Panics if `k == 0`, `k > n`, or `C(n, k)` exceeds the enumeration cap —
/// this is a test oracle, not a solver.
pub fn optimal_kcenter<P, M: Metric<P>>(points: &[P], metric: &M, k: usize) -> (Vec<usize>, f64) {
    optimal_kcenter_outliers(points, metric, k, 0)
}

/// The exact optimal k-center-with-outliers solution.
///
/// # Panics
///
/// As [`optimal_kcenter`].
pub fn optimal_kcenter_outliers<P, M: Metric<P>>(
    points: &[P],
    metric: &M,
    k: usize,
    z: usize,
) -> (Vec<usize>, f64) {
    let n = points.len();
    assert!(k > 0 && k <= n, "need 0 < k <= n");
    assert!(
        binomial(n, k) <= MAX_SUBSETS,
        "instance too large for brute force: C({n},{k})"
    );

    let mut best_radius = f64::INFINITY;
    let mut best: Vec<usize> = Vec::new();
    let mut dists = vec![0.0f64; n];
    for_each_combination(n, k, |centers| {
        for (i, p) in points.iter().enumerate() {
            dists[i] = centers
                .iter()
                .map(|&c| metric.distance(p, &points[c]))
                .fold(f64::INFINITY, f64::min);
        }
        let radius = radius_excluding_outliers(&mut dists, z);
        if radius < best_radius {
            best_radius = radius;
            best = centers.to_vec();
        }
    });
    (best, best_radius)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcenter_metric::{Euclidean, Point};

    fn pts(coords: &[f64]) -> Vec<Point> {
        coords.iter().map(|&c| Point::new(vec![c])).collect()
    }

    #[test]
    fn finds_the_obvious_optimum() {
        // Two clusters; optimal 2-center radius is 0.5 (centers 0.5 & 10.5
        // are not data points; best data-point centers give radius 1).
        let points = pts(&[0.0, 1.0, 10.0, 11.0]);
        let (centers, radius) = optimal_kcenter(&points, &Euclidean, 2);
        assert_eq!(radius, 1.0);
        assert_eq!(centers.len(), 2);
    }

    #[test]
    fn outliers_reduce_the_optimal_radius() {
        let points = pts(&[0.0, 1.0, 2.0, 50.0]);
        let (_, r0) = optimal_kcenter_outliers(&points, &Euclidean, 1, 0);
        let (_, r1) = optimal_kcenter_outliers(&points, &Euclidean, 1, 1);
        assert_eq!(r0, 48.0); // center 2.0: max(2, 1, 0, 48)
        assert_eq!(r1, 1.0); // discard 50, center at 1.0
    }

    #[test]
    fn k_equals_n_gives_zero() {
        let points = pts(&[3.0, 7.0, 9.0]);
        let (_, r) = optimal_kcenter(&points, &Euclidean, 3);
        assert_eq!(r, 0.0);
    }

    #[test]
    fn eq_one_reduces_to_center_selection() {
        let points = pts(&[0.0, 4.0, 10.0]);
        let (centers, r) = optimal_kcenter(&points, &Euclidean, 1);
        assert_eq!(centers, vec![1]); // 4.0 minimizes max(4, 6) = 6
        assert_eq!(r, 6.0);
    }

    #[test]
    fn combination_count_is_exhaustive() {
        let mut count = 0;
        for_each_combination(6, 3, |_| count += 1);
        assert_eq!(count, 20);
        let mut count1 = 0;
        for_each_combination(5, 1, |_| count1 += 1);
        assert_eq!(count1, 5);
        let mut count_all = 0;
        for_each_combination(4, 4, |c| {
            assert_eq!(c, &[0, 1, 2, 3]);
            count_all += 1;
        });
        assert_eq!(count_all, 1);
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn oversized_instance_panics() {
        let points: Vec<Point> = (0..200).map(|i| Point::new(vec![i as f64])).collect();
        let _ = optimal_kcenter(&points, &Euclidean, 20);
    }
}
