#![warn(missing_docs)]
//! Coreset-based k-center clustering (with outliers) in MapReduce and
//! Streaming — the primary contribution of Ceccarello, Pietracaprina &
//! Pucci, VLDB 2019.
//!
//! # Algorithms
//!
//! | Entry point | Model | Guarantee |
//! |---|---|---|
//! | [`mapreduce_kcenter::mr_kcenter`] | 2-round MapReduce | (2+ε)·OPT |
//! | [`mapreduce_outliers::mr_kcenter_outliers`] | 2-round MapReduce | (3+ε)·OPT, deterministic or randomized |
//! | [`sequential::sequential_kcenter_outliers`] | sequential (ℓ = 1) | (3+ε)·OPT, ~10× faster than Charikar et al. |
//! | [`streaming_kcenter::CoresetStream`] | 1-pass streaming | (2+ε)·OPT |
//! | [`streaming_outliers::CoresetOutliers`] | 1-pass streaming | (3+ε)·OPT |
//! | [`two_pass::two_pass_outliers`] | 2-pass streaming | (3+ε)·OPT, oblivious to the doubling dimension |
//!
//! All of them share the same structure: build a small *composable coreset*
//! whose points carry proxy weights, then solve the problem on the coreset
//! with a sequential routine — [`gmm`] (Gonzalez' farthest-first traversal)
//! for plain k-center, [`outliers_cluster`] (the weighted greedy disk cover
//! of Algorithm 1) combined with the [`radius_search`] for the outlier
//! variant. The larger the coreset, the closer the result gets to the best
//! sequential guarantee; the required size scales with `(c/ε)^D` where `D`
//! is the dataset's doubling dimension.
//!
//! # Quick start
//!
//! ```
//! use kcenter_core::mapreduce_kcenter::{mr_kcenter, MrKCenterConfig};
//! use kcenter_core::coreset::CoresetSpec;
//! use kcenter_metric::{Euclidean, Point};
//!
//! let points: Vec<Point> = (0..200)
//!     .map(|i| Point::new(vec![(i % 20) as f64, (i / 20) as f64]))
//!     .collect();
//! let config = MrKCenterConfig {
//!     k: 4,
//!     ell: 4,
//!     coreset: CoresetSpec::Multiplier { mu: 4 },
//!     seed: 1,
//! };
//! let result = mr_kcenter(&points, &Euclidean, &config).unwrap();
//! assert_eq!(result.clustering.centers.len(), 4);
//! ```

pub mod brute_force;
pub mod coreset;
pub mod error;
pub mod gmm;
pub mod mapreduce_kcenter;
pub mod mapreduce_outliers;
pub mod outliers_cluster;
pub mod radius_search;
pub mod sequential;
pub mod solution;
pub mod streaming_coreset;
pub mod streaming_kcenter;
pub mod streaming_outliers;
pub mod tuning;
pub mod two_pass;

pub use coreset::{CoresetSpec, WeightedCoreset, WeightedPoint};
pub use error::InputError;
pub use solution::Clustering;
pub use streaming_coreset::{CoresetSnapshot, DoublingCoresetOutput, WeightedDoublingCoreset};
