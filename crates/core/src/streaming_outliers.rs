//! CORESETOUTLIERS — the 1-pass (3+ε)-approximation streaming algorithm for
//! k-center with `z` outliers (paper §4, Theorem 3).
//!
//! One pass of the weighted doubling algorithm builds a weighted coreset of
//! `τ ≥ k + z` points (theory: `τ = (k+z)(16/ε̂)^D`; experiments:
//! `τ = µ(k+z)`, Fig. 5's space axis); at the end of the pass the final
//! centers are extracted exactly as in round 2 of the MapReduce algorithm —
//! the radius search over `OutliersCluster` runs on the coreset.
//!
//! Unlike the MapReduce constructions, the 1-pass algorithm must be *given*
//! its budget `τ` (the doubling dimension enters the choice); the paper's
//! 2-pass variant ([`crate::two_pass`]) removes that requirement.

use kcenter_metric::Metric;
use kcenter_stream::StreamingAlgorithm;

use crate::radius_search::{default_matrix_threshold, solve_coreset, SearchMode};
use crate::streaming_coreset::WeightedDoublingCoreset;

/// Output of the pass: centers plus coreset diagnostics.
#[derive(Clone, Debug)]
pub struct StreamOutliersOutput<P> {
    /// The selected (at most) `k` centers.
    pub centers: Vec<P>,
    /// The radius `r̃min` found on the coreset.
    pub r_min: f64,
    /// Coreset weight left uncovered at `r̃min` (≤ z).
    pub uncovered_weight: u64,
    /// Size of the coreset at the end of the pass.
    pub coreset_size: usize,
    /// The doubling algorithm's final lower bound `ϕ`.
    pub phi: f64,
    /// `OutliersCluster` evaluations spent by the radius search.
    pub search_evaluations: usize,
}

/// 1-pass streaming k-center with `z` outliers.
pub struct CoresetOutliers<P, M> {
    inner: WeightedDoublingCoreset<P, M>,
    k: usize,
    z: usize,
    eps_hat: f64,
    search: SearchMode,
    matrix_threshold: usize,
}

impl<P: Clone + Sync, M: Metric<P>> CoresetOutliers<P, M> {
    /// Creates the algorithm with coreset budget `tau` (must be at least
    /// `k + z` for the guarantees to be meaningful).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`, `tau < k + z`, or `eps_hat` is outside `(0, 1]`.
    pub fn new(metric: M, k: usize, z: usize, tau: usize, eps_hat: f64) -> Self {
        assert!(k > 0, "k must be positive");
        assert!(tau >= k + z, "coreset budget below k + z");
        assert!(eps_hat > 0.0 && eps_hat <= 1.0, "eps_hat must be in (0, 1]");
        CoresetOutliers {
            inner: WeightedDoublingCoreset::new(metric, tau),
            k,
            z,
            eps_hat,
            search: SearchMode::GeometricGrid,
            matrix_threshold: default_matrix_threshold(),
        }
    }

    /// Overrides the radius search mode (default: geometric grid).
    pub fn with_search(mut self, search: SearchMode) -> Self {
        self.search = search;
        self
    }
}

impl<P: Clone + Sync, M: Metric<P>> StreamingAlgorithm<P> for CoresetOutliers<P, M> {
    type Output = StreamOutliersOutput<P>;

    fn process(&mut self, item: P) {
        self.inner.process(item);
    }

    fn memory_items(&self) -> usize {
        self.inner.memory_items()
    }

    fn finalize(self) -> StreamOutliersOutput<P> {
        let (k, z, eps_hat, search, threshold) = (
            self.k,
            self.z,
            self.eps_hat,
            self.search,
            self.matrix_threshold,
        );
        let (metric, output) = self.inner.into_parts();

        if output.coreset.is_empty() {
            return StreamOutliersOutput {
                centers: Vec::new(),
                r_min: 0.0,
                uncovered_weight: 0,
                coreset_size: 0,
                phi: output.phi,
                search_evaluations: 0,
            };
        }
        let solution = solve_coreset(
            &output.coreset,
            &metric,
            k,
            z as u64,
            eps_hat,
            search,
            threshold,
        );
        StreamOutliersOutput {
            centers: solution.centers,
            r_min: solution.r_min,
            uncovered_weight: solution.uncovered_weight,
            coreset_size: output.coreset.len(),
            phi: output.phi,
            search_evaluations: solution.evaluations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solution::radius_with_outliers;
    use kcenter_metric::{Euclidean, Point};
    use kcenter_stream::run_stream;

    fn clusters_with_outliers() -> Vec<Point> {
        let mut pts = Vec::new();
        for c in 0..3 {
            for i in 0..80 {
                pts.push(Point::new(vec![
                    c as f64 * 100.0 + (i % 8) as f64 * 0.2,
                    (i / 8) as f64 * 0.2,
                ]));
            }
        }
        pts.push(Point::new(vec![50_000.0, 0.0]));
        pts.push(Point::new(vec![0.0, -70_000.0]));
        pts
    }

    #[test]
    fn solves_the_planted_instance() {
        let pts = clusters_with_outliers();
        let alg = CoresetOutliers::new(Euclidean, 3, 2, 4 * (3 + 2), 0.25);
        let (out, report) = run_stream(alg, pts.clone());
        assert!(out.centers.len() <= 3);
        assert!(out.uncovered_weight <= 2);
        let r = radius_with_outliers(&pts, &out.centers, 2, &Euclidean);
        assert!(r < 50.0, "radius {r} did not exclude the outliers");
        assert!(report.peak_memory_items <= 4 * 5 + 1);
    }

    #[test]
    fn memory_stays_within_budget() {
        let pts = clusters_with_outliers();
        let tau = 12;
        let alg = CoresetOutliers::new(Euclidean, 3, 2, tau, 0.5);
        let (_, report) = run_stream(alg, pts);
        assert!(report.peak_memory_items <= tau + 1);
    }

    #[test]
    fn exact_search_mode_works_too() {
        let pts = clusters_with_outliers();
        let alg = CoresetOutliers::new(Euclidean, 3, 2, 20, 0.25)
            .with_search(SearchMode::ExactCandidates);
        let (out, _) = run_stream(alg, pts.clone());
        let r = radius_with_outliers(&pts, &out.centers, 2, &Euclidean);
        assert!(r < 50.0);
    }

    #[test]
    fn empty_stream_is_handled() {
        let alg = CoresetOutliers::<Point, _>::new(Euclidean, 2, 1, 6, 0.5);
        let (out, _) = run_stream(alg, Vec::<Point>::new());
        assert!(out.centers.is_empty());
        assert_eq!(out.coreset_size, 0);
    }

    #[test]
    #[should_panic(expected = "coreset budget below k + z")]
    fn tau_below_k_plus_z_panics() {
        let _ = CoresetOutliers::<Point, _>::new(Euclidean, 3, 4, 6, 0.5);
    }
}
