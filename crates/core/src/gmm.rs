//! Gonzalez' farthest-first traversal (GMM).
//!
//! GMM grows a center set incrementally: start from an arbitrary point, then
//! repeatedly add the point farthest from the current centers. After `k`
//! steps the centers are a 2-approximation of the optimal k-center solution
//! (Gonzalez 1985); crucially for the paper, when run on a *subset* `X ⊆ S`
//! the radius achieved on `X` is still at most `2·r*_k(S)` (Lemma 1), which
//! is what makes GMM-built coresets composable.
//!
//! The incremental state is exposed ([`Gmm::step`]) because the paper's
//! coreset constructions keep running GMM *past* `k` iterations until a
//! radius-based stopping condition fires, and its experiments grow coresets
//! to a fixed size `τ = µ·k`. Each step costs one parallel `O(n)` distance
//! scan; `τ` steps cost `O(n·τ)` total.

use rayon::prelude::*;

use kcenter_metric::Metric;

/// Incremental GMM state over a fixed point set.
pub struct Gmm<'a, P, M> {
    points: &'a [P],
    metric: &'a M,
    /// Comparison proxy ([`Metric::cmp_distance`]) from each point to its
    /// closest selected center. True distances are recovered at the API
    /// boundary with [`Metric::cmp_to_distance`].
    dist: Vec<f64>,
    /// For each point, the position (in `centers`) of its closest center —
    /// the proxy function of the coreset constructions.
    nearest: Vec<u32>,
    /// Selected center indices into `points`, in selection order.
    centers: Vec<usize>,
    /// `radii[j]` = radius of the point set w.r.t. the first `j+1` centers.
    radii: Vec<f64>,
    /// Index of the current farthest point (the next center candidate).
    farthest: usize,
}

impl<'a, P: Sync, M: Metric<P>> Gmm<'a, P, M> {
    /// Starts a traversal with `points[first]` as the initial center.
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty or `first` is out of range.
    pub fn new(points: &'a [P], metric: &'a M, first: usize) -> Self {
        assert!(!points.is_empty(), "GMM over an empty set");
        assert!(first < points.len(), "first center out of range");
        let mut gmm = Gmm {
            points,
            metric,
            dist: vec![f64::INFINITY; points.len()],
            nearest: vec![0; points.len()],
            centers: Vec::new(),
            radii: Vec::new(),
            farthest: 0,
        };
        gmm.add_center(first);
        gmm
    }

    fn add_center(&mut self, idx: usize) {
        let center_pos = self.centers.len() as u32;
        self.centers.push(idx);
        let c = &self.points[idx];
        let metric = self.metric;
        let points = self.points;
        // One O(n) scan, chunked for the pool at the granularity the
        // adaptive splitter currently targets (finer while the pool
        // observes steals, coarser when its workers are saturated): each
        // chunk relaxes its points against the new center (comparing
        // sqrt-free proxies) and reports its local farthest point; chunk
        // winners combine left-to-right, earliest index winning ties —
        // identical to a sequential scan for every chunk length. Inside a
        // chunk the proxies come from the batched block kernel, in stack
        // sub-blocks (bit-identical to per-point `cmp_distance`, see the
        // `Metric::cmp_distance_block` contract), and the relax loop then
        // visits them in the same order the scalar scan did.
        const SUB: usize = 128;
        let scan_chunk = rayon::adaptive_chunk_len(self.dist.len());
        let (far_idx, far_cmp) = self
            .dist
            .par_chunks_mut(scan_chunk)
            .zip(self.nearest.par_chunks_mut(scan_chunk))
            .enumerate()
            .map(|(ci, (dist_chunk, near_chunk))| {
                let base = ci * scan_chunk;
                let mut best = (usize::MAX, f64::NEG_INFINITY);
                let mut buf = [0.0f64; SUB];
                let mut off = 0;
                while off < dist_chunk.len() {
                    let len = SUB.min(dist_chunk.len() - off);
                    let start = base + off;
                    metric.cmp_distance_block(c, &points[start..start + len], &mut buf[..len]);
                    let dists = dist_chunk[off..off + len].iter_mut();
                    let nears = near_chunk[off..off + len].iter_mut();
                    for (j, ((d, near), &nd)) in dists.zip(nears).zip(&buf[..len]).enumerate() {
                        if nd < *d {
                            *d = nd;
                            *near = center_pos;
                        }
                        if *d > best.1 {
                            best = (start + j, *d);
                        }
                    }
                    off += len;
                }
                best
            })
            .reduce(
                || (usize::MAX, f64::NEG_INFINITY),
                |a, b| if a.1 >= b.1 { a } else { b },
            );
        self.farthest = far_idx;
        // The single sqrt of the whole step: proxy → reported radius.
        self.radii.push(metric.cmp_to_distance(far_cmp));
    }

    /// Adds the next farthest point as a center. Returns `false` (and leaves
    /// the state unchanged) when no useful center remains: either every
    /// point is a center or the radius is already zero.
    pub fn step(&mut self) -> bool {
        if self.centers.len() == self.points.len() || self.radius() == 0.0 {
            return false;
        }
        let next = self.farthest;
        debug_assert!(self.dist[next] > 0.0);
        self.add_center(next);
        true
    }

    /// Runs steps until `target` centers are selected (or no useful center
    /// remains), returning the number of centers actually selected.
    pub fn run_until(&mut self, target: usize) -> usize {
        while self.centers.len() < target && self.step() {}
        self.centers.len()
    }

    /// Current radius: the distance of the farthest point from the centers.
    pub fn radius(&self) -> f64 {
        *self.radii.last().expect("at least one center")
    }

    /// Radius after the first `j` centers (`1 <= j <= num_centers`).
    pub fn radius_at(&self, j: usize) -> f64 {
        self.radii[j - 1]
    }

    /// The selected center indices (into the input slice), in order.
    pub fn centers(&self) -> &[usize] {
        &self.centers
    }

    /// Number of centers selected so far.
    pub fn num_centers(&self) -> usize {
        self.centers.len()
    }

    /// The radius history `radii[j] = r_{T^{j+1}}(S)` — non-increasing.
    pub fn radius_history(&self) -> &[f64] {
        &self.radii
    }

    /// For each input point, the position in [`Gmm::centers`] of its closest
    /// selected center (the proxy assignment).
    pub fn nearest_center_positions(&self) -> &[u32] {
        &self.nearest
    }

    /// Distance of each input point from its closest selected center.
    ///
    /// Internally the scan keeps sqrt-free comparison proxies; this
    /// materializes true distances (one [`Metric::cmp_to_distance`] per
    /// point) at the boundary.
    pub fn distances(&self) -> Vec<f64> {
        self.dist
            .iter()
            .map(|&c| self.metric.cmp_to_distance(c))
            .collect()
    }
}

/// Result of a fixed-`k` GMM run.
#[derive(Clone, Debug)]
pub struct GmmResult {
    /// Selected center indices into the input slice.
    pub centers: Vec<usize>,
    /// Radius of the input w.r.t. the selected centers.
    pub radius: f64,
}

/// Runs GMM for (at most) `k` centers starting from `points[first]`.
///
/// Stops early if the point set is exhausted or fully covered; the returned
/// center list then has fewer than `k` entries, and the radius is `0`.
pub fn gmm_select<P: Sync, M: Metric<P>>(
    points: &[P],
    metric: &M,
    k: usize,
    first: usize,
) -> GmmResult {
    assert!(k > 0, "k must be positive");
    let mut gmm = Gmm::new(points, metric, first);
    gmm.run_until(k);
    GmmResult {
        radius: gmm.radius(),
        centers: gmm.centers.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcenter_metric::{Euclidean, Point};

    fn pts(coords: &[f64]) -> Vec<Point> {
        coords.iter().map(|&c| Point::new(vec![c])).collect()
    }

    #[test]
    fn selects_extremes_on_a_line() {
        // From 0, the farthest is 10; then 5 splits the interval.
        let points = pts(&[0.0, 1.0, 5.0, 9.0, 10.0]);
        let result = gmm_select(&points, &Euclidean, 3, 0);
        assert_eq!(result.centers, vec![0, 4, 2]);
        assert_eq!(result.radius, 1.0);
    }

    #[test]
    fn radius_history_is_non_increasing() {
        let points = pts(&[3.0, 1.0, 4.0, 1.5, 9.0, 2.6, 5.3, 5.8, 9.7, 9.3]);
        let mut gmm = Gmm::new(&points, &Euclidean, 0);
        gmm.run_until(points.len());
        for w in gmm.radius_history().windows(2) {
            assert!(w[1] <= w[0], "radius increased: {w:?}");
        }
        // With every point a center the radius is zero.
        assert_eq!(gmm.radius(), 0.0);
    }

    #[test]
    fn two_approximation_on_small_instance() {
        // Three tight clusters; optimal 3-center radius is 0.1.
        let points = pts(&[0.0, 0.1, 10.0, 10.1, 20.0, 20.1]);
        let result = gmm_select(&points, &Euclidean, 3, 0);
        assert!(
            result.radius <= 2.0 * 0.1 + 1e-12,
            "radius {}",
            result.radius
        );
    }

    #[test]
    fn stops_when_all_points_are_centers() {
        let points = pts(&[0.0, 1.0]);
        let result = gmm_select(&points, &Euclidean, 5, 0);
        assert_eq!(result.centers.len(), 2);
        assert_eq!(result.radius, 0.0);
    }

    #[test]
    fn stops_on_duplicate_saturation() {
        // Two distinct values among five points: after 2 centers the radius
        // is 0 and no further centers are added.
        let points = pts(&[1.0, 1.0, 1.0, 2.0, 2.0]);
        let result = gmm_select(&points, &Euclidean, 4, 0);
        assert_eq!(result.centers.len(), 2);
        assert_eq!(result.radius, 0.0);
    }

    #[test]
    fn nearest_positions_track_proxies() {
        let points = pts(&[0.0, 1.0, 10.0, 11.0]);
        let mut gmm = Gmm::new(&points, &Euclidean, 0);
        gmm.run_until(2); // centers: 0 and 3
        assert_eq!(gmm.centers(), &[0, 3]);
        let near = gmm.nearest_center_positions();
        assert_eq!(near[0], 0);
        assert_eq!(near[1], 0);
        assert_eq!(near[2], 1);
        assert_eq!(near[3], 1);
        assert_eq!(gmm.distances()[1], 1.0);
    }

    #[test]
    fn start_point_changes_trace_not_quality() {
        let points = pts(&[0.0, 0.2, 7.0, 7.2, 15.0, 15.2]);
        let a = gmm_select(&points, &Euclidean, 3, 0);
        let b = gmm_select(&points, &Euclidean, 3, 3);
        // Both are 2-approximations of the optimal radius 0.2.
        assert!(a.radius <= 0.4 + 1e-12);
        assert!(b.radius <= 0.4 + 1e-12);
    }

    #[test]
    fn radius_at_matches_history() {
        let points = pts(&[0.0, 2.0, 9.0, 13.0]);
        let mut gmm = Gmm::new(&points, &Euclidean, 0);
        gmm.run_until(3);
        assert_eq!(gmm.radius_at(1), gmm.radius_history()[0]);
        assert_eq!(gmm.radius_at(3), gmm.radius());
    }

    #[test]
    #[should_panic(expected = "empty set")]
    fn empty_input_panics() {
        let points: Vec<Point> = Vec::new();
        let _ = Gmm::new(&points, &Euclidean, 0);
    }
}
