//! Input validation errors shared by the algorithm entry points.

use std::fmt;

/// Invalid input to a clustering algorithm.
#[derive(Clone, Debug, PartialEq)]
pub enum InputError {
    /// The dataset was empty.
    EmptyInput,
    /// `k` was zero or at least the dataset size (the problem requires
    /// `0 < k < |S|`).
    InvalidK {
        /// Requested number of centers.
        k: usize,
        /// Dataset size.
        n: usize,
    },
    /// `k + z` does not leave any point to cluster.
    InvalidZ {
        /// Requested number of centers.
        k: usize,
        /// Requested number of outliers.
        z: usize,
        /// Dataset size.
        n: usize,
    },
    /// A precision parameter was outside `(0, 1]`.
    InvalidEpsilon {
        /// The offending value.
        value: f64,
    },
    /// The requested parallelism was zero.
    InvalidParallelism,
    /// The requested coreset size cannot support the problem parameters
    /// (e.g. a fixed `τ` smaller than `k`).
    CoresetTooSmall {
        /// Requested coreset size.
        tau: usize,
        /// Minimum admissible size.
        minimum: usize,
    },
}

impl fmt::Display for InputError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InputError::EmptyInput => write!(f, "input dataset is empty"),
            InputError::InvalidK { k, n } => {
                write!(f, "k = {k} must satisfy 0 < k < |S| = {n}")
            }
            InputError::InvalidZ { k, z, n } => {
                write!(f, "k + z = {} must be smaller than |S| = {n}", k + z)
            }
            InputError::InvalidEpsilon { value } => {
                write!(f, "precision parameter {value} must lie in (0, 1]")
            }
            InputError::InvalidParallelism => write!(f, "parallelism must be positive"),
            InputError::CoresetTooSmall { tau, minimum } => {
                write!(f, "coreset size {tau} below the minimum {minimum}")
            }
        }
    }
}

impl std::error::Error for InputError {}

/// Validates the common `(n, k)` preconditions.
pub(crate) fn check_k(n: usize, k: usize) -> Result<(), InputError> {
    if n == 0 {
        return Err(InputError::EmptyInput);
    }
    if k == 0 || k >= n {
        return Err(InputError::InvalidK { k, n });
    }
    Ok(())
}

/// Validates the `(n, k, z)` preconditions of the outlier variant.
pub(crate) fn check_kz(n: usize, k: usize, z: usize) -> Result<(), InputError> {
    check_k(n, k)?;
    if k + z >= n {
        return Err(InputError::InvalidZ { k, z, n });
    }
    Ok(())
}

/// Validates a precision parameter `ε ∈ (0, 1]`.
pub(crate) fn check_eps(value: f64) -> Result<(), InputError> {
    if !(value > 0.0 && value <= 1.0) {
        return Err(InputError::InvalidEpsilon { value });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k_bounds() {
        assert_eq!(check_k(0, 1), Err(InputError::EmptyInput));
        assert_eq!(check_k(5, 0), Err(InputError::InvalidK { k: 0, n: 5 }));
        assert_eq!(check_k(5, 5), Err(InputError::InvalidK { k: 5, n: 5 }));
        assert_eq!(check_k(5, 4), Ok(()));
    }

    #[test]
    fn kz_bounds() {
        assert_eq!(
            check_kz(10, 3, 7),
            Err(InputError::InvalidZ { k: 3, z: 7, n: 10 })
        );
        assert_eq!(check_kz(10, 3, 6), Ok(()));
    }

    #[test]
    fn eps_bounds() {
        assert!(check_eps(0.0).is_err());
        assert!(check_eps(1.5).is_err());
        assert!(check_eps(f64::NAN).is_err());
        assert!(check_eps(1.0).is_ok());
        assert!(check_eps(0.01).is_ok());
    }

    #[test]
    fn display_messages_are_informative() {
        let msg = InputError::InvalidK { k: 9, n: 9 }.to_string();
        assert!(msg.contains('9'));
        let msg = InputError::CoresetTooSmall {
            tau: 3,
            minimum: 10,
        }
        .to_string();
        assert!(msg.contains("minimum 10"));
    }
}
