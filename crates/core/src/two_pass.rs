//! The 2-pass streaming algorithm oblivious to the doubling dimension
//! (paper §4, "A 2-pass Streaming algorithm oblivious to D").
//!
//! The 1-pass algorithm needs `τ = (k+z)(16/ε̂)^D` up front, i.e. knowledge
//! of `D`. Simulating the MapReduce algorithm with `ℓ = 1` in two passes
//! removes that requirement:
//!
//! 1. **Pass 1** runs the doubling algorithm for the `(k+z)`-center problem
//!    (our weighted builder with `τ = k + z`, weights ignored), yielding
//!    `r̂ = 8ϕ ≤ 8·r*_{k+z} ≤ 8·r*_{k,z}`.
//! 2. **Pass 2** builds a *maximal* weighted coreset at scale `(ε/48)·r̂`:
//!    each arriving point either folds into a center within that distance
//!    or becomes a new center. Maximality bounds the coreset by
//!    `(k+z)(96/ε)^D` without ever knowing `D`, and every point sits within
//!    `(ε/48)·r̂ ≤ (ε/6)·r*_{k,z}` of its proxy.
//!
//! The finalization is the usual radius search + `OutliersCluster` with
//! `ε̂ = ε/6`, giving the same `(3+ε)` guarantee and memory bounds as
//! Theorem 3.

use kcenter_metric::{CachedOracle, Metric};
use kcenter_stream::{run_stream, MultiPass, StreamingAlgorithm};

use crate::error::{check_eps, check_kz, InputError};
use crate::radius_search::{default_matrix_threshold, solve_coreset_cached, SearchMode};
use crate::solution::{radius_with_outliers, Clustering};
use crate::streaming_coreset::WeightedDoublingCoreset;

/// Pass 2: the maximal weighted coreset builder at a fixed scale.
///
/// Exposed publicly so tests (and users with a known radius estimate) can
/// drive it directly.
pub struct MaximalCoreset<P, M> {
    metric: M,
    threshold: f64,
    centers: Vec<P>,
    weights: Vec<u64>,
}

impl<P: Clone, M: Metric<P>> MaximalCoreset<P, M> {
    /// Creates a builder folding points within `threshold` of an existing
    /// center (threshold `0` keeps every distinct point).
    pub fn new(metric: M, threshold: f64) -> Self {
        assert!(threshold >= 0.0, "threshold must be non-negative");
        MaximalCoreset {
            metric,
            threshold,
            centers: Vec::new(),
            weights: Vec::new(),
        }
    }
}

impl<P: Clone, M: Metric<P>> StreamingAlgorithm<P> for MaximalCoreset<P, M> {
    type Output = (Vec<P>, Vec<u64>);

    fn process(&mut self, item: P) {
        let mut best: Option<(usize, f64)> = None;
        for (i, c) in self.centers.iter().enumerate() {
            let d = self.metric.distance(&item, c);
            if d <= self.threshold && best.is_none_or(|(_, bd)| d < bd) {
                best = Some((i, d));
            }
        }
        match best {
            Some((i, _)) => self.weights[i] += 1,
            None => {
                self.centers.push(item);
                self.weights.push(1);
            }
        }
    }

    fn memory_items(&self) -> usize {
        self.centers.len()
    }

    fn finalize(self) -> (Vec<P>, Vec<u64>) {
        (self.centers, self.weights)
    }
}

/// Result of the 2-pass algorithm.
#[derive(Clone, Debug)]
pub struct TwoPassResult<P> {
    /// Centers and the measured objective `r_{T,Z_T}(S)`.
    pub clustering: Clustering<P>,
    /// Pass-1 radius estimate `r̂ = 8ϕ`.
    pub r_hat: f64,
    /// Size of the pass-2 coreset.
    pub coreset_size: usize,
    /// Radius found on the coreset by the search.
    pub r_min: f64,
    /// Per-pass stream metering.
    pub passes: MultiPass,
}

/// Runs the 2-pass D-oblivious streaming algorithm for k-center with `z`
/// outliers over an in-memory dataset (each pass is a fresh scan).
///
/// # Errors
///
/// Returns [`InputError`] for invalid `(n, k, z)` or `eps` outside `(0, 1]`.
pub fn two_pass_outliers<P, M>(
    points: &[P],
    metric: &M,
    k: usize,
    z: usize,
    eps: f64,
) -> Result<TwoPassResult<P>, InputError>
where
    P: Clone + Sync,
    M: Metric<P> + Clone,
{
    check_kz(points.len(), k, z)?;
    check_eps(eps)?;

    let mut passes = MultiPass::default();

    // Pass 1: doubling algorithm for (k+z)-center; r̂ = 8ϕ.
    let pass1 = WeightedDoublingCoreset::new(metric.clone(), k + z);
    let (out1, report1) = run_stream(pass1, points.iter().cloned());
    passes.record(report1);
    let r_hat = 8.0 * out1.phi;

    // Pass 2: maximal weighted coreset at scale (ε/48)·r̂.
    let pass2 = MaximalCoreset::new(metric.clone(), eps / 48.0 * r_hat);
    let ((centers, weights), report2) = run_stream(pass2, points.iter().cloned());
    passes.record(report2);

    let coreset_size = centers.len();
    // The pass-2 centers ARE the coreset points: hand them straight to a
    // shared oracle (no WeightedCoreset round-trip) so the finalization's
    // radius search prices them into one lazily built proxy matrix —
    // served from the persistent store, when installed, for repeated
    // runs over the same stream.
    let oracle = CachedOracle::new(centers, metric, default_matrix_threshold());
    let solution = solve_coreset_cached(
        &oracle,
        &weights,
        k,
        z as u64,
        eps / 6.0,
        SearchMode::GeometricGrid,
    );
    let final_radius = radius_with_outliers(points, &solution.centers, z, metric);

    Ok(TwoPassResult {
        clustering: Clustering {
            centers: solution.centers,
            radius: final_radius,
        },
        r_hat,
        coreset_size,
        r_min: solution.r_min,
        passes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcenter_metric::{Euclidean, Point};

    fn planted() -> Vec<Point> {
        let mut pts = Vec::new();
        for c in 0..3 {
            for i in 0..70 {
                pts.push(Point::new(vec![
                    c as f64 * 200.0 + (i % 7) as f64,
                    (i / 7) as f64,
                ]));
            }
        }
        pts.push(Point::new(vec![90_000.0, 0.0]));
        pts.push(Point::new(vec![-80_000.0, 0.0]));
        pts
    }

    #[test]
    fn two_passes_recorded_and_solved() {
        let pts = planted();
        let result = two_pass_outliers(&pts, &Euclidean, 3, 2, 1.0).unwrap();
        assert_eq!(result.passes.pass_count(), 2);
        assert!(
            result.clustering.radius < 100.0,
            "radius {}",
            result.clustering.radius
        );
        assert!(result.clustering.k() <= 3);
    }

    #[test]
    fn pass1_estimate_bounds_optimum() {
        let pts = planted();
        let result = two_pass_outliers(&pts, &Euclidean, 3, 2, 1.0).unwrap();
        // r̂ ≤ 8·r*_{k+z} and r̂ ≥ achieved coreset scale; the optimum with
        // outliers here is ~8.5 (cluster diagonal), so r̂ ≤ 8·r*_{k,z}.
        let opt_upper = 20.0; // loose upper bound on r*_{k,z}
        assert!(result.r_hat <= 8.0 * opt_upper);
    }

    #[test]
    fn maximal_coreset_respects_scale() {
        let pts = planted();
        let alg = MaximalCoreset::new(Euclidean, 5.0);
        let (got, _) = run_stream(alg, pts.iter().cloned());
        let (centers, weights) = got;
        assert_eq!(weights.iter().sum::<u64>() as usize, pts.len());
        // Maximality: centers pairwise > 5.0 apart.
        for i in 0..centers.len() {
            for j in i + 1..centers.len() {
                assert!(
                    kcenter_metric::Metric::distance(&Euclidean, &centers[i], &centers[j]) > 5.0
                );
            }
        }
        // Coverage: every point within 5.0 of a center.
        for p in &pts {
            let d = centers
                .iter()
                .map(|c| kcenter_metric::Metric::distance(&Euclidean, p, c))
                .fold(f64::INFINITY, f64::min);
            assert!(d <= 5.0);
        }
    }

    #[test]
    fn zero_threshold_keeps_distinct_points() {
        let pts = vec![
            Point::new(vec![1.0]),
            Point::new(vec![1.0]),
            Point::new(vec![2.0]),
        ];
        let alg = MaximalCoreset::new(Euclidean, 0.0);
        let ((centers, weights), _) = run_stream(alg, pts);
        assert_eq!(centers.len(), 2);
        assert_eq!(weights, vec![2, 1]);
    }

    #[test]
    fn smaller_eps_grows_the_coreset() {
        let pts = planted();
        let coarse = two_pass_outliers(&pts, &Euclidean, 3, 2, 1.0).unwrap();
        let fine = two_pass_outliers(&pts, &Euclidean, 3, 2, 0.25).unwrap();
        assert!(fine.coreset_size >= coarse.coreset_size);
        assert!(fine.clustering.radius <= coarse.clustering.radius * 1.5 + 1e-9);
    }

    #[test]
    fn validates_input() {
        let pts = planted();
        assert!(two_pass_outliers(&pts, &Euclidean, 0, 1, 0.5).is_err());
        assert!(two_pass_outliers(&pts, &Euclidean, 2, 1, 0.0).is_err());
    }
}
