//! The 2-round (2+ε)-approximation MapReduce algorithm for k-center
//! (paper §3.1).
//!
//! Round 1 partitions `S` into `ℓ` equal subsets and builds a GMM coreset
//! from each; round 2 gathers the union `T` into a single reducer and runs
//! GMM for `k` centers on it. Theorem 1: the result is a
//! `(2+ε)`-approximation using local memory
//! `O(|S|/ℓ + ℓ·k·(4/ε)^D)`.
//!
//! With [`CoresetSpec::Multiplier`]` { mu: 1 }` this is exactly the
//! algorithm of Malkomes et al. (2015), the paper's baseline in Fig. 2.

use std::time::{Duration, Instant};

use kcenter_mapreduce::{Chunked, MapReduceEngine, MemoryReport, Partitioner};
use kcenter_metric::Metric;

use crate::coreset::{build_weighted_coreset, CoresetSpec};
use crate::error::{check_eps, check_k, InputError};
use crate::gmm::gmm_select;
use crate::solution::{radius, Clustering};

/// Configuration of the MapReduce k-center algorithm.
#[derive(Clone, Debug)]
pub struct MrKCenterConfig {
    /// Number of centers `k`.
    pub k: usize,
    /// Parallelism `ℓ` (number of partitions = reducers).
    pub ell: usize,
    /// Coreset sizing rule for round 1 (base = `k`).
    pub coreset: CoresetSpec,
    /// Seed controlling the per-partition GMM start point.
    pub seed: u64,
}

/// Result of one MapReduce k-center run.
#[derive(Clone, Debug)]
pub struct MrKCenterResult<P> {
    /// The final k centers and the radius they achieve on `S`.
    pub clustering: Clustering<P>,
    /// Size of each partition's coreset `T_i`.
    pub coreset_sizes: Vec<usize>,
    /// `|T|`, the size of the union gathered by the round-2 reducer.
    pub union_size: usize,
    /// Local/aggregate memory accounting of the two rounds.
    pub memory: MemoryReport,
    /// Wall-clock time of round 1 (coreset construction).
    pub round1_time: Duration,
    /// Wall-clock time of round 2 (GMM on the union).
    pub round2_time: Duration,
}

#[inline]
fn mix(seed: u64, salt: u64) -> u64 {
    let mut x = seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^ (x >> 31)
}

impl MrKCenterConfig {
    /// Validates this configuration against a dataset of `n` points —
    /// exactly the checks [`mr_kcenter`] performs before running. Public
    /// so out-of-process executors (`kcenter-exec`) reject the same inputs
    /// the in-process engine would.
    ///
    /// # Errors
    ///
    /// Returns [`InputError`] for empty input, `k` out of range, `ℓ = 0`,
    /// or an invalid coreset spec.
    pub fn validate(&self, n: usize) -> Result<(), InputError> {
        check_k(n, self.k)?;
        if self.ell == 0 {
            return Err(InputError::InvalidParallelism);
        }
        if let CoresetSpec::EpsStop { eps } = self.coreset {
            check_eps(eps)?;
        }
        if let Some(target) = self.coreset.target_size(self.k) {
            if target < self.k {
                return Err(InputError::CoresetTooSmall {
                    tau: target,
                    minimum: self.k,
                });
            }
        }
        Ok(())
    }

    /// The GMM start index round 1 uses for partition `part` holding
    /// `members` points — the seeded rule the in-process engine and the
    /// multi-process executor must share for bit-identical coresets.
    ///
    /// # Panics
    ///
    /// Panics if `members == 0` (an empty partition builds no coreset).
    pub fn round1_start(&self, part: usize, members: usize) -> usize {
        assert!(members > 0, "round 1 start of an empty partition");
        (mix(self.seed, part as u64) % members as u64) as usize
    }
}

/// Runs the 2-round MapReduce k-center algorithm.
///
/// # Errors
///
/// Returns [`InputError`] for empty input, `k` out of range, `ℓ = 0`, or an
/// invalid coreset spec.
pub fn mr_kcenter<P, M>(
    points: &[P],
    metric: &M,
    config: &MrKCenterConfig,
) -> Result<MrKCenterResult<P>, InputError>
where
    P: Clone + Send + Sync,
    M: Metric<P>,
{
    config.validate(points.len())?;

    let engine = MapReduceEngine::new(config.ell);
    let n = points.len();
    let ell = config.ell;
    let k = config.k;
    let spec = config.coreset;

    // Round 1: partition S, build one coreset per partition.
    // Mapper: tag each point with its partition. Reducer: GMM coreset.
    let round1_start = Instant::now();
    let inputs: Vec<(usize, P)> = points.iter().cloned().enumerate().collect();
    let coreset_points: Vec<(usize, P)> = engine.round(
        inputs,
        |(i, p)| (Chunked.assign(i, n, ell), p),
        |&part, members| {
            let start = config.round1_start(part, members.len());
            let build = build_weighted_coreset(&members, metric, k, &spec, start);
            build
                .coreset
                .points
                .into_iter()
                .map(|wp| (part, wp.point))
                .collect()
        },
    );
    let round1_time = round1_start.elapsed();

    let mut coreset_sizes = vec![0usize; ell];
    for (part, _) in &coreset_points {
        coreset_sizes[*part] += 1;
    }
    coreset_sizes.retain(|&s| s > 0);
    let union_size = coreset_points.len();

    // Round 2: gather the union into one reducer, run GMM for k centers.
    let round2_start = Instant::now();
    let centers: Vec<P> = engine.round(
        coreset_points,
        |(_, p)| ((), p),
        |_, union| {
            let result = gmm_select(&union, metric, k, 0);
            result
                .centers
                .into_iter()
                .map(|idx| union[idx].clone())
                .collect()
        },
    );
    let round2_time = round2_start.elapsed();

    // Objective evaluation on the full dataset (not part of the MR rounds;
    // run inside the engine's pool so parallelism honours ℓ).
    let final_radius = engine.run_scoped(|| radius(points, &centers, metric));

    Ok(MrKCenterResult {
        clustering: Clustering {
            centers,
            radius: final_radius,
        },
        coreset_sizes,
        union_size,
        memory: engine.memory_report(),
        round1_time,
        round2_time,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute_force::optimal_kcenter;
    use kcenter_metric::{Euclidean, Point};

    fn grid_points(n: usize) -> Vec<Point> {
        (0..n)
            .map(|i| Point::new(vec![(i % 30) as f64, (i / 30) as f64]))
            .collect()
    }

    fn config(k: usize, ell: usize, mu: usize) -> MrKCenterConfig {
        MrKCenterConfig {
            k,
            ell,
            coreset: CoresetSpec::Multiplier { mu },
            seed: 7,
        }
    }

    #[test]
    fn returns_k_centers_and_valid_radius() {
        let points = grid_points(600);
        let result = mr_kcenter(&points, &Euclidean, &config(5, 4, 2)).unwrap();
        assert_eq!(result.clustering.k(), 5);
        assert_eq!(
            result.clustering.radius,
            radius(&points, &result.clustering.centers, &Euclidean)
        );
        assert_eq!(result.coreset_sizes.len(), 4);
        assert_eq!(result.union_size, 4 * 10);
    }

    #[test]
    fn two_rounds_are_recorded() {
        let points = grid_points(200);
        let result = mr_kcenter(&points, &Euclidean, &config(3, 2, 1)).unwrap();
        assert_eq!(result.memory.round_count(), 2);
        // Round 1 local memory: one partition of the input.
        assert_eq!(result.memory.rounds[0].max_reducer_load, 100);
        // Round 2 local memory: the union of coresets.
        assert_eq!(result.memory.rounds[1].max_reducer_load, result.union_size);
    }

    #[test]
    fn approximation_factor_on_small_instance() {
        // Compare against the exact optimum: must be within factor 2 + ε,
        // with generous slack for coreset effects at µ = 1.
        let points: Vec<Point> = (0..18)
            .map(|i| Point::new(vec![(i % 6) as f64 * 10.0 + (i / 6) as f64]))
            .collect();
        let (_, opt) = optimal_kcenter(&points, &Euclidean, 3);
        assert!(opt > 0.0);
        let result = mr_kcenter(&points, &Euclidean, &config(3, 2, 4)).unwrap();
        assert!(
            result.clustering.radius <= (2.0 + 1.0) * opt + 1e-9,
            "ratio {} too large",
            result.clustering.radius / opt
        );
    }

    #[test]
    fn bigger_coresets_do_not_hurt() {
        let points = grid_points(900);
        let small = mr_kcenter(&points, &Euclidean, &config(6, 4, 1)).unwrap();
        let large = mr_kcenter(&points, &Euclidean, &config(6, 4, 8)).unwrap();
        assert!(large.clustering.radius <= small.clustering.radius * 1.25 + 1e-9);
    }

    #[test]
    fn eps_stop_spec_works_end_to_end() {
        let points = grid_points(400);
        let cfg = MrKCenterConfig {
            k: 4,
            ell: 4,
            coreset: CoresetSpec::EpsStop { eps: 0.5 },
            seed: 1,
        };
        let result = mr_kcenter(&points, &Euclidean, &cfg).unwrap();
        assert_eq!(result.clustering.k(), 4);
        assert!(result.union_size >= 4 * 4, "coresets at least k each");
    }

    #[test]
    fn single_partition_is_sequential_gmm_plus_gmm() {
        let points = grid_points(120);
        let result = mr_kcenter(&points, &Euclidean, &config(4, 1, 2)).unwrap();
        assert_eq!(result.coreset_sizes, vec![8]);
        assert_eq!(result.union_size, 8);
    }

    #[test]
    fn input_validation() {
        let points = grid_points(10);
        assert!(matches!(
            mr_kcenter(&points, &Euclidean, &config(0, 2, 1)),
            Err(InputError::InvalidK { .. })
        ));
        assert!(matches!(
            mr_kcenter(&points, &Euclidean, &config(10, 2, 1)),
            Err(InputError::InvalidK { .. })
        ));
        let mut cfg = config(2, 0, 1);
        cfg.ell = 0;
        assert!(matches!(
            mr_kcenter(&points, &Euclidean, &cfg),
            Err(InputError::InvalidParallelism)
        ));
        let empty: Vec<Point> = Vec::new();
        assert!(matches!(
            mr_kcenter(&empty, &Euclidean, &config(1, 1, 1)),
            Err(InputError::EmptyInput)
        ));
        let bad_spec = MrKCenterConfig {
            k: 4,
            ell: 2,
            coreset: CoresetSpec::Fixed { tau: 2 },
            seed: 0,
        };
        assert!(matches!(
            mr_kcenter(&grid_points(40), &Euclidean, &bad_spec),
            Err(InputError::CoresetTooSmall { .. })
        ));
    }

    #[test]
    fn deterministic_given_seed() {
        let points = grid_points(300);
        let a = mr_kcenter(&points, &Euclidean, &config(4, 4, 2)).unwrap();
        let b = mr_kcenter(&points, &Euclidean, &config(4, 4, 2)).unwrap();
        assert_eq!(a.clustering.radius, b.clustering.radius);
        assert_eq!(a.union_size, b.union_size);
    }
}
