//! CORESETSTREAM — 1-pass streaming k-center without outliers.
//!
//! The paper's coreset techniques give a `(2+ε)`-approximation streaming
//! algorithm using `O(k(1/ε)^D)` working memory (§4, closing remark): run
//! the weighted doubling algorithm with budget `τ ≥ k` to obtain a coreset
//! whose proxy radius is `≤ 8ϕ ≤ ε·r*_k`-grade, then run GMM for `k`
//! centers on the coreset. This is the orange series of Fig. 3, compared
//! against McCutchen–Khuller (BASESTREAM, `kcenter-baselines`).
//!
//! Both phases inherit the sqrt-free inner loops of their kernels: the
//! doubling pass compares [`kcenter_metric::Metric::cmp_distance`] proxies
//! per stream item, and the GMM finalization's farthest-point scans take
//! one `sqrt` per selected center.

use kcenter_metric::Metric;
use kcenter_stream::StreamingAlgorithm;

use crate::gmm::gmm_select;
use crate::streaming_coreset::WeightedDoublingCoreset;

/// Final output: the `k` centers plus coreset diagnostics.
#[derive(Clone, Debug)]
pub struct StreamKCenterOutput<P> {
    /// The selected `k` centers (fewer only if the stream had fewer points).
    pub centers: Vec<P>,
    /// Size of the coreset the centers were extracted from.
    pub coreset_size: usize,
    /// The doubling algorithm's final lower bound `ϕ`.
    pub phi: f64,
}

/// 1-pass streaming k-center via a weighted doubling coreset.
///
/// `tau` is the working-memory budget; the experiments use `τ = µ·k` with
/// `µ ∈ {1, 2, 4, 8, 16}` (Fig. 3's space axis).
pub struct CoresetStream<P, M> {
    inner: WeightedDoublingCoreset<P, M>,
    k: usize,
}

impl<P: Clone + Sync, M: Metric<P>> CoresetStream<P, M> {
    /// Creates the algorithm for `k` centers with coreset budget `tau`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `tau < k`.
    pub fn new(metric: M, k: usize, tau: usize) -> Self {
        assert!(k > 0, "k must be positive");
        assert!(tau >= k, "coreset budget below k");
        CoresetStream {
            inner: WeightedDoublingCoreset::new(metric, tau),
            k,
        }
    }
}

impl<P: Clone + Sync, M: Metric<P>> StreamingAlgorithm<P> for CoresetStream<P, M> {
    type Output = StreamKCenterOutput<P>;

    fn process(&mut self, item: P) {
        self.inner.process(item);
    }

    fn memory_items(&self) -> usize {
        self.inner.memory_items()
    }

    fn finalize(self) -> StreamKCenterOutput<P> {
        let k = self.k;
        let (metric, output) = self.inner.into_parts();
        let points = output.coreset.points_only();
        if points.is_empty() {
            return StreamKCenterOutput {
                centers: Vec::new(),
                coreset_size: 0,
                phi: output.phi,
            };
        }
        let result = gmm_select(&points, &metric, k, 0);
        StreamKCenterOutput {
            centers: result
                .centers
                .into_iter()
                .map(|i| points[i].clone())
                .collect(),
            coreset_size: points.len(),
            phi: output.phi,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solution::radius;
    use kcenter_metric::{Euclidean, Point};
    use kcenter_stream::run_stream;

    fn clusters() -> Vec<Point> {
        let mut pts = Vec::new();
        for c in 0..4 {
            for i in 0..100 {
                pts.push(Point::new(vec![
                    c as f64 * 50.0 + (i % 10) as f64 * 0.1,
                    (i / 10) as f64 * 0.1,
                ]));
            }
        }
        pts
    }

    #[test]
    fn returns_k_centers_with_good_radius() {
        let pts = clusters();
        let alg = CoresetStream::new(Euclidean, 4, 16);
        let (out, report) = run_stream(alg, pts.clone());
        assert_eq!(out.centers.len(), 4);
        // Optimal 4-center radius ~ 0.64 (cluster diagonal/1); streaming
        // 8-approx coreset + GMM must stay well below the cluster gap.
        let r = radius(&pts, &out.centers, &Euclidean);
        assert!(r < 25.0, "radius {r} failed to separate clusters");
        assert!(report.peak_memory_items <= 17);
    }

    #[test]
    fn short_stream_returns_all_points() {
        let pts = vec![Point::new(vec![0.0]), Point::new(vec![9.0])];
        let alg = CoresetStream::new(Euclidean, 3, 5);
        let (out, _) = run_stream(alg, pts);
        assert_eq!(out.centers.len(), 2);
    }

    #[test]
    fn empty_stream_yields_no_centers() {
        let alg = CoresetStream::<Point, _>::new(Euclidean, 2, 4);
        let (out, _) = run_stream(alg, Vec::<Point>::new());
        assert!(out.centers.is_empty());
        assert_eq!(out.coreset_size, 0);
    }

    #[test]
    fn bigger_tau_improves_or_matches_quality() {
        let pts = clusters();
        let small = run_stream(CoresetStream::new(Euclidean, 4, 4), pts.clone()).0;
        let large = run_stream(CoresetStream::new(Euclidean, 4, 64), pts.clone()).0;
        let r_small = radius(&pts, &small.centers, &Euclidean);
        let r_large = radius(&pts, &large.centers, &Euclidean);
        assert!(r_large <= r_small * 1.5 + 1e-9);
    }

    #[test]
    #[should_panic(expected = "coreset budget below k")]
    fn tau_below_k_panics() {
        let _ = CoresetStream::<Point, _>::new(Euclidean, 5, 4);
    }
}
