//! The improved sequential algorithm for k-center with `z` outliers
//! (paper §3.2, "Improved sequential algorithm").
//!
//! Setting `ℓ = 1` in the MapReduce strategy gives a sequential algorithm:
//! build one weighted GMM coreset `T` from the whole input, then run the
//! radius search + `OutliersCluster` on `T`. Running time
//! `O(|S|·|T| + k·|T|²·log|T|)` — for coresets much smaller than the input
//! this beats the `O(k·|S|²·log|S|)` of Charikar et al. by orders of
//! magnitude at a negligible loss in quality (Fig. 8), and it is the
//! engine behind the paper's claim of a "much faster sequential
//! implementation".

use std::time::{Duration, Instant};

use kcenter_metric::Metric;

use crate::coreset::{build_weighted_coreset, CoresetSpec};
use crate::error::{check_eps, check_kz, InputError};
use crate::radius_search::{default_matrix_threshold, solve_coreset, SearchMode};
use crate::solution::{radius_with_outliers, Clustering};

/// Configuration of the sequential coreset algorithm.
#[derive(Clone, Debug)]
pub struct SequentialOutliersConfig {
    /// Number of centers `k`.
    pub k: usize,
    /// Outlier budget `z`.
    pub z: usize,
    /// Precision `ε̂ ∈ (0, 1]`.
    pub eps_hat: f64,
    /// Coreset sizing rule (base = `k + z`).
    pub coreset: CoresetSpec,
    /// Seed selecting the GMM start point.
    pub seed: u64,
    /// Radius search mode.
    pub search: SearchMode,
    /// Distance-matrix caching threshold.
    pub matrix_threshold: usize,
}

impl SequentialOutliersConfig {
    /// Defaults matching the paper's Fig. 8 runs: `τ = µ(k+z)`, geometric
    /// search, `ε̂ = 1/6`.
    pub fn new(k: usize, z: usize, mu: usize) -> Self {
        SequentialOutliersConfig {
            k,
            z,
            eps_hat: 1.0 / 6.0,
            coreset: CoresetSpec::Multiplier { mu },
            seed: 0,
            search: SearchMode::GeometricGrid,
            matrix_threshold: default_matrix_threshold(),
        }
    }
}

/// Result of a sequential run, with the phase split reported in Fig. 8.
#[derive(Clone, Debug)]
pub struct SequentialOutliersResult<P> {
    /// Centers and the measured objective `r_{T,Z_T}(S)`.
    pub clustering: Clustering<P>,
    /// Radius found on the coreset.
    pub r_min: f64,
    /// Coreset size `|T|`.
    pub coreset_size: usize,
    /// Time to build the coreset (GMM over the whole input).
    pub coreset_time: Duration,
    /// Time for the radius search + final cover on the coreset.
    pub cluster_time: Duration,
    /// Number of `OutliersCluster` evaluations.
    pub search_evaluations: usize,
}

/// Runs the sequential (ℓ = 1) coreset algorithm for k-center with `z`
/// outliers.
///
/// # Errors
///
/// Returns [`InputError`] for invalid `(n, k, z)` or precision parameters.
pub fn sequential_kcenter_outliers<P, M>(
    points: &[P],
    metric: &M,
    config: &SequentialOutliersConfig,
) -> Result<SequentialOutliersResult<P>, InputError>
where
    P: Clone + Send + Sync,
    M: Metric<P>,
{
    check_kz(points.len(), config.k, config.z)?;
    check_eps(config.eps_hat)?;
    if let CoresetSpec::EpsStop { eps } = config.coreset {
        check_eps(eps)?;
    }

    let base = (config.k + config.z).min(points.len());
    let start = (config.seed % points.len() as u64) as usize;

    let coreset_start = Instant::now();
    let build = build_weighted_coreset(points, metric, base, &config.coreset, start);
    let coreset_time = coreset_start.elapsed();

    let cluster_start = Instant::now();
    let solution = solve_coreset(
        &build.coreset,
        metric,
        config.k,
        config.z as u64,
        config.eps_hat,
        config.search,
        config.matrix_threshold,
    );
    let cluster_time = cluster_start.elapsed();

    let final_radius = radius_with_outliers(points, &solution.centers, config.z, metric);
    Ok(SequentialOutliersResult {
        clustering: Clustering {
            centers: solution.centers,
            radius: final_radius,
        },
        r_min: solution.r_min,
        coreset_size: build.tau,
        coreset_time,
        cluster_time,
        search_evaluations: solution.evaluations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute_force::optimal_kcenter_outliers;
    use kcenter_metric::{Euclidean, Point};

    fn two_clusters_with_outliers() -> Vec<Point> {
        let mut pts: Vec<Point> = Vec::new();
        for i in 0..25 {
            pts.push(Point::new(vec![(i % 5) as f64, (i / 5) as f64]));
        }
        for i in 0..25 {
            pts.push(Point::new(vec![200.0 + (i % 5) as f64, (i / 5) as f64]));
        }
        pts.push(Point::new(vec![5_000.0, 0.0]));
        pts.push(Point::new(vec![0.0, -6_000.0]));
        pts
    }

    #[test]
    fn solves_the_planted_instance() {
        let points = two_clusters_with_outliers();
        let config = SequentialOutliersConfig::new(2, 2, 4);
        let result = sequential_kcenter_outliers(&points, &Euclidean, &config).unwrap();
        assert!(result.clustering.k() <= 2);
        assert!(
            result.clustering.radius < 20.0,
            "radius {} should exclude the two outliers",
            result.clustering.radius
        );
        assert_eq!(result.coreset_size, 4 * (2 + 2));
    }

    #[test]
    fn larger_mu_does_not_hurt_quality() {
        let points = two_clusters_with_outliers();
        let r1 = sequential_kcenter_outliers(
            &points,
            &Euclidean,
            &SequentialOutliersConfig::new(2, 2, 1),
        )
        .unwrap();
        let r8 = sequential_kcenter_outliers(
            &points,
            &Euclidean,
            &SequentialOutliersConfig::new(2, 2, 8),
        )
        .unwrap();
        assert!(r8.clustering.radius <= r1.clustering.radius + 1e-9);
    }

    #[test]
    fn within_theorem_bound_of_optimal() {
        let points = two_clusters_with_outliers();
        let small: Vec<Point> = points.iter().take(12).cloned().collect();
        let (_, opt) = optimal_kcenter_outliers(&small, &Euclidean, 2, 1);
        let config = SequentialOutliersConfig::new(2, 1, 8);
        let result = sequential_kcenter_outliers(&small, &Euclidean, &config).unwrap();
        // ε = 6·ε̂ = 1 → (3 + 1)·OPT.
        assert!(
            result.clustering.radius <= 4.0 * opt + 1e-9,
            "{} vs opt {opt}",
            result.clustering.radius
        );
    }

    #[test]
    fn eps_stop_spec_supported() {
        let points = two_clusters_with_outliers();
        let mut config = SequentialOutliersConfig::new(2, 2, 1);
        config.coreset = CoresetSpec::EpsStop { eps: 0.5 };
        let result = sequential_kcenter_outliers(&points, &Euclidean, &config).unwrap();
        assert!(result.coreset_size >= 4);
        assert!(result.clustering.radius < 20.0);
    }

    #[test]
    fn rejects_bad_input() {
        let points = two_clusters_with_outliers(); // 52 points
        let config = SequentialOutliersConfig::new(2, 50, 1); // k + z = n
        assert!(matches!(
            sequential_kcenter_outliers(&points, &Euclidean, &config),
            Err(InputError::InvalidZ { .. })
        ));
        let config = SequentialOutliersConfig::new(60, 1, 1); // k > n
        assert!(matches!(
            sequential_kcenter_outliers(&points, &Euclidean, &config),
            Err(InputError::InvalidK { .. })
        ));
    }
}
