//! Clustering solutions and objective evaluation.
//!
//! A set of centers induces a clustering by assigning every point to its
//! closest center (paper §2). The objective of plain k-center is the maximum
//! such distance; with `z` outliers it is the maximum after discarding the
//! `z` farthest points — i.e. the `(z+1)`-th largest assignment distance,
//! evaluated here in `O(n)` by selection. Evaluation over the dataset is
//! rayon-parallel.

use rayon::prelude::*;

use kcenter_metric::selection::radius_excluding_outliers;
use kcenter_metric::Metric;

use crate::outliers_cluster::DistanceOracle;

/// A k-center solution: the chosen centers and the objective value that was
/// measured for them.
#[derive(Clone, Debug)]
pub struct Clustering<P> {
    /// The selected centers (points of the input space).
    pub centers: Vec<P>,
    /// The measured objective (radius, excluding outliers if the producing
    /// algorithm was an outlier variant).
    pub radius: f64,
}

impl<P> Clustering<P> {
    /// Number of centers.
    pub fn k(&self) -> usize {
        self.centers.len()
    }
}

/// Distance from each point to its closest center.
///
/// The inner nearest-center loop compares [`Metric::cmp_distance`]
/// proxies; one conversion per *point* (not per point–center pair)
/// recovers the true distance.
pub fn assignment_distances<P, M>(points: &[P], centers: &[P], metric: &M) -> Vec<f64>
where
    P: Sync,
    M: Metric<P>,
{
    assert!(!centers.is_empty(), "no centers to assign to");
    points
        .par_iter()
        .map(|p| {
            metric.cmp_to_distance(
                centers
                    .iter()
                    .map(|c| metric.cmp_distance(p, c))
                    .fold(f64::INFINITY, f64::min),
            )
        })
        .collect()
}

/// Index of the closest center for each point.
pub fn assign<P, M>(points: &[P], centers: &[P], metric: &M) -> Vec<usize>
where
    P: Sync,
    M: Metric<P>,
{
    assert!(!centers.is_empty(), "no centers to assign to");
    points
        .par_iter()
        .map(|p| {
            // Pure comparison: proxies only, no sqrt at all.
            let mut best = 0usize;
            let mut best_d = f64::INFINITY;
            for (i, c) in centers.iter().enumerate() {
                let d = metric.cmp_distance(p, c);
                if d < best_d {
                    best_d = d;
                    best = i;
                }
            }
            best
        })
        .collect()
}

/// The k-center objective `r_T(S) = max_s d(s, T)`.
pub fn radius<P, M>(points: &[P], centers: &[P], metric: &M) -> f64
where
    P: Sync,
    M: Metric<P>,
{
    assert!(!centers.is_empty(), "no centers to assign to");
    // Max-of-min over proxies, one sqrt for the reported radius.
    metric.cmp_to_distance(
        points
            .par_iter()
            .map(|p| {
                centers
                    .iter()
                    .map(|c| metric.cmp_distance(p, c))
                    .fold(f64::INFINITY, f64::min)
            })
            .reduce(|| 0.0, f64::max),
    )
}

/// The k-center-with-outliers objective `r_{T,Z_T}(S)`: the maximum
/// assignment distance after discarding the `z` farthest points.
pub fn radius_with_outliers<P, M>(points: &[P], centers: &[P], z: usize, metric: &M) -> f64
where
    P: Sync,
    M: Metric<P>,
{
    let mut dists = assignment_distances(points, centers, metric);
    radius_excluding_outliers(&mut dists, z)
}

/// Distance from every oracle point to the closest of the centers given
/// *by index*, through the oracle — so a matrix-backed oracle (e.g. a
/// `CachedOracle` whose proxy matrix a radius search already built) prices
/// the evaluation from the shared cache instead of re-running the metric.
/// The inner loop compares proxies; one conversion per point.
pub fn oracle_assignment_distances<O: DistanceOracle>(oracle: &O, centers: &[usize]) -> Vec<f64> {
    assert!(!centers.is_empty(), "no centers to assign to");
    oracle.prepare();
    (0..oracle.len())
        .into_par_iter()
        .map(|i| {
            oracle.cmp_to_radius(
                centers
                    .iter()
                    .map(|&c| oracle.cmp_dist(i, c))
                    .fold(f64::INFINITY, f64::min),
            )
        })
        .collect()
}

/// The coreset-side objective for index centers: the maximum oracle
/// assignment distance after discarding the `z` farthest points. The
/// matrix-backed counterpart of [`radius_with_outliers`], used by sweeps
/// to score a search result on the same cached matrix the search ran on.
pub fn oracle_radius_with_outliers<O: DistanceOracle>(
    oracle: &O,
    centers: &[usize],
    z: usize,
) -> f64 {
    let mut dists = oracle_assignment_distances(oracle, centers);
    radius_excluding_outliers(&mut dists, z)
}

/// The clustering a center set induces: `clusters[c]` holds the indices of
/// the points assigned to center `c` (paper §2: "the association of each
/// point to the closest center naturally defines a clustering").
pub fn extract_clusters<P, M>(points: &[P], centers: &[P], metric: &M) -> Vec<Vec<usize>>
where
    P: Sync,
    M: Metric<P>,
{
    let assignment = assign(points, centers, metric);
    let mut clusters: Vec<Vec<usize>> = vec![Vec::new(); centers.len()];
    for (i, &c) in assignment.iter().enumerate() {
        clusters[c].push(i);
    }
    clusters
}

/// Like [`extract_clusters`], but the `z` farthest points are set aside
/// into a separate outlier bucket (second return value) instead of being
/// assigned — the partition an outlier solution actually induces.
pub fn extract_clusters_with_outliers<P, M>(
    points: &[P],
    centers: &[P],
    z: usize,
    metric: &M,
) -> (Vec<Vec<usize>>, Vec<usize>)
where
    P: Sync,
    M: Metric<P>,
{
    let outliers = outlier_indices(points, centers, z, metric);
    let outlier_set: std::collections::BTreeSet<usize> = outliers.iter().copied().collect();
    let assignment = assign(points, centers, metric);
    let mut clusters: Vec<Vec<usize>> = vec![Vec::new(); centers.len()];
    for (i, &c) in assignment.iter().enumerate() {
        if !outlier_set.contains(&i) {
            clusters[c].push(i);
        }
    }
    (clusters, outliers)
}

/// Indices of the `z` points farthest from the centers (the points an
/// outlier solution discards), ties broken by index.
pub fn outlier_indices<P, M>(points: &[P], centers: &[P], z: usize, metric: &M) -> Vec<usize>
where
    P: Sync,
    M: Metric<P>,
{
    let dists = assignment_distances(points, centers, metric);
    let mut order: Vec<usize> = (0..points.len()).collect();
    order.sort_by(|&a, &b| dists[b].partial_cmp(&dists[a]).unwrap().then(a.cmp(&b)));
    order.truncate(z);
    order.sort_unstable();
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcenter_metric::{Euclidean, Point};

    fn pts(coords: &[f64]) -> Vec<Point> {
        coords.iter().map(|&c| Point::new(vec![c])).collect()
    }

    #[test]
    fn radius_is_max_min_distance() {
        let points = pts(&[0.0, 1.0, 5.0, 9.0]);
        let centers = pts(&[0.0, 9.0]);
        assert_eq!(radius(&points, &centers, &Euclidean), 4.0);
    }

    #[test]
    fn assignment_picks_closest() {
        let points = pts(&[0.0, 4.0, 6.0, 10.0]);
        let centers = pts(&[0.0, 10.0]);
        assert_eq!(assign(&points, &centers, &Euclidean), vec![0, 0, 1, 1]);
    }

    #[test]
    fn radius_with_outliers_discards_farthest() {
        let points = pts(&[0.0, 1.0, 2.0, 100.0]);
        let centers = pts(&[0.0]);
        assert_eq!(
            radius_with_outliers(&points, &centers, 0, &Euclidean),
            100.0
        );
        assert_eq!(radius_with_outliers(&points, &centers, 1, &Euclidean), 2.0);
        assert_eq!(radius_with_outliers(&points, &centers, 4, &Euclidean), 0.0);
    }

    #[test]
    fn outlier_indices_are_the_farthest_points() {
        let points = pts(&[0.0, 50.0, 1.0, 60.0, 2.0]);
        let centers = pts(&[0.0]);
        assert_eq!(
            outlier_indices(&points, &centers, 2, &Euclidean),
            vec![1, 3]
        );
    }

    #[test]
    fn ties_broken_by_index() {
        let points = pts(&[5.0, 5.0, 5.0]);
        let centers = pts(&[0.0]);
        assert_eq!(
            outlier_indices(&points, &centers, 2, &Euclidean),
            vec![0, 1]
        );
    }

    #[test]
    fn clustering_reports_k() {
        let c = Clustering {
            centers: pts(&[1.0, 2.0]),
            radius: 0.5,
        };
        assert_eq!(c.k(), 2);
    }

    #[test]
    fn extract_clusters_partitions_all_points() {
        let points = pts(&[0.0, 1.0, 9.0, 10.0, 5.0]);
        let centers = pts(&[0.0, 10.0]);
        let clusters = extract_clusters(&points, &centers, &Euclidean);
        assert_eq!(clusters.len(), 2);
        assert_eq!(clusters[0], vec![0, 1, 4]); // 5.0 ties to... 5 from both
        assert_eq!(clusters[1], vec![2, 3]);
        let total: usize = clusters.iter().map(Vec::len).sum();
        assert_eq!(total, points.len());
    }

    #[test]
    fn extract_clusters_with_outliers_separates_bucket() {
        let points = pts(&[0.0, 1.0, 100.0, 10.0, 11.0]);
        let centers = pts(&[0.0, 10.0]);
        let (clusters, outliers) = extract_clusters_with_outliers(&points, &centers, 1, &Euclidean);
        assert_eq!(outliers, vec![2]);
        assert_eq!(clusters[0], vec![0, 1]);
        assert_eq!(clusters[1], vec![3, 4]);
        let assigned: usize = clusters.iter().map(Vec::len).sum();
        assert_eq!(assigned + outliers.len(), points.len());
    }

    #[test]
    fn oracle_objective_matches_point_objective() {
        use crate::outliers_cluster::PointsOracle;
        use kcenter_metric::CachedOracle;
        let points = pts(&[0.0, 1.0, 2.0, 100.0, 5.0]);
        let center_idx = [0usize, 3];
        let center_pts = pts(&[0.0, 100.0]);
        let on_demand = PointsOracle::new(&points, &Euclidean);
        let cached = CachedOracle::new(points.clone(), &Euclidean, 1_000);
        for z in 0..=3usize {
            let reference = radius_with_outliers(&points, &center_pts, z, &Euclidean);
            assert_eq!(
                oracle_radius_with_outliers(&on_demand, &center_idx, z).to_bits(),
                reference.to_bits(),
                "on-demand oracle diverged at z = {z}"
            );
            assert_eq!(
                oracle_radius_with_outliers(&cached, &center_idx, z).to_bits(),
                reference.to_bits(),
                "cached oracle diverged at z = {z}"
            );
        }
        assert_eq!(cached.build_count(), 1);
        assert_eq!(
            oracle_assignment_distances(&cached, &center_idx),
            assignment_distances(&points, &center_pts, &Euclidean)
        );
    }

    #[test]
    #[should_panic(expected = "no centers")]
    fn empty_centers_panics() {
        let _ = radius(&pts(&[0.0]), &[], &Euclidean);
    }
}
