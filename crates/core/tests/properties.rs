//! Property-based tests tying the core algorithms to the paper's lemmas.

use proptest::prelude::*;

use kcenter_core::brute_force::{optimal_kcenter, optimal_kcenter_outliers};
use kcenter_core::coreset::{build_weighted_coreset, CoresetSpec};
use kcenter_core::gmm::gmm_select;
use kcenter_core::outliers_cluster::{
    outliers_cluster, outliers_cluster_naive, DistanceOracle, PointsOracle,
};
use kcenter_core::radius_search::{find_min_feasible_radius, SearchMode};
use kcenter_core::solution::{radius, radius_with_outliers};
use kcenter_core::streaming_coreset::WeightedDoublingCoreset;
use kcenter_metric::{CachedOracle, Euclidean, Metric, Point};
use kcenter_stream::StreamingAlgorithm;

fn arb_points(dim: usize, min_n: usize, max_n: usize) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec(
        prop::collection::vec(-100.0..100.0f64, dim).prop_map(Point::new),
        min_n..max_n,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Gonzalez' theorem: GMM is a 2-approximation.
    #[test]
    fn gmm_is_a_two_approximation(points in arb_points(2, 4, 14), k in 1usize..4) {
        prop_assume!(k < points.len());
        let (_, opt) = optimal_kcenter(&points, &Euclidean, k);
        let result = gmm_select(&points, &Euclidean, k, 0);
        prop_assert!(
            result.radius <= 2.0 * opt + 1e-9,
            "GMM radius {} > 2 * OPT = {}",
            result.radius,
            2.0 * opt
        );
    }

    /// Lemma 1: GMM run on a subset X ⊆ S achieves radius ≤ 2·r*_k(S) on X.
    #[test]
    fn lemma1_subset_property(points in arb_points(2, 6, 14), k in 1usize..4) {
        prop_assume!(k < points.len() / 2);
        let (_, opt_full) = optimal_kcenter(&points, &Euclidean, k);
        // X = every other point.
        let subset: Vec<Point> = points.iter().step_by(2).cloned().collect();
        prop_assume!(subset.len() > k);
        let result = gmm_select(&subset, &Euclidean, k, 0);
        prop_assert!(
            result.radius <= 2.0 * opt_full + 1e-9,
            "subset GMM radius {} > 2 * r*_k(S) = {}",
            result.radius,
            2.0 * opt_full
        );
    }

    /// GMM radius history is non-increasing for any input.
    #[test]
    fn gmm_radius_monotone(points in arb_points(3, 2, 24)) {
        let mut gmm = kcenter_core::gmm::Gmm::new(&points, &Euclidean, 0);
        gmm.run_until(points.len());
        for w in gmm.radius_history().windows(2) {
            prop_assert!(w[1] <= w[0] + 1e-12);
        }
    }

    /// Coreset weights always total the partition size and the proxy radius
    /// bounds every point's distance to the coreset.
    #[test]
    fn coreset_build_postconditions(
        points in arb_points(2, 3, 30),
        base in 1usize..4,
        mu in 1usize..4,
    ) {
        let build = build_weighted_coreset(
            &points, &Euclidean, base, &CoresetSpec::Multiplier { mu }, 0,
        );
        prop_assert_eq!(build.coreset.total_weight(), points.len() as u64);
        let cpoints = build.coreset.points_only();
        for p in &points {
            let d = cpoints
                .iter()
                .map(|c| Euclidean.distance(p, c))
                .fold(f64::INFINITY, f64::min);
            prop_assert!(d <= build.proxy_radius + 1e-9);
        }
    }

    /// Lemma 5 (coreset = input, unit weights): for any r ≥ r*_{k,z}, the
    /// cover leaves at most z weight uncovered.
    #[test]
    fn lemma5_feasibility_at_optimal_radius(
        points in arb_points(2, 5, 13),
        k in 1usize..3,
        z in 0usize..3,
        eps_hat in 0.05..1.0f64,
    ) {
        prop_assume!(k + z < points.len());
        let (_, opt) = optimal_kcenter_outliers(&points, &Euclidean, k, z);
        let weights = vec![1u64; points.len()];
        let oracle = PointsOracle::new(&points, &Euclidean);
        let result = outliers_cluster(&oracle, &weights, k, opt, eps_hat);
        prop_assert!(
            result.uncovered_weight <= z as u64,
            "uncovered {} > z = {z} at r = r* = {opt}",
            result.uncovered_weight
        );
    }

    /// The incremental and naive OutliersCluster implementations agree
    /// exactly on arbitrary weighted instances.
    #[test]
    fn outliers_cluster_implementations_agree(
        points in arb_points(2, 2, 24),
        weights_seed in prop::collection::vec(1u64..20, 24),
        k in 1usize..5,
        r in 0.0..250.0f64,
        eps_hat in 0.0..1.0f64,
    ) {
        let weights: Vec<u64> = points.iter().enumerate()
            .map(|(i, _)| weights_seed[i % weights_seed.len()])
            .collect();
        let oracle = PointsOracle::new(&points, &Euclidean);
        let fast = outliers_cluster(&oracle, &weights, k, r, eps_hat);
        let naive = outliers_cluster_naive(&oracle, &weights, k, r, eps_hat);
        prop_assert_eq!(fast, naive);
    }

    /// Uncovered points returned by the cover really are far from all
    /// centers, and covered weight + uncovered weight is conserved.
    #[test]
    fn outliers_cluster_postconditions(
        points in arb_points(2, 2, 20),
        k in 1usize..4,
        r in 0.1..100.0f64,
    ) {
        let eps_hat = 0.25;
        let weights = vec![1u64; points.len()];
        let oracle = PointsOracle::new(&points, &Euclidean);
        let result = outliers_cluster(&oracle, &weights, k, r, eps_hat);
        prop_assert!(result.centers.len() <= k);
        let cover_r = (3.0 + 4.0 * eps_hat) * r;
        for &u in &result.uncovered {
            for &c in &result.centers {
                prop_assert!(Euclidean.distance(&points[u], &points[c]) > cover_r);
            }
        }
        prop_assert_eq!(
            result.uncovered_weight,
            result.uncovered.len() as u64
        );
    }

    /// The paper's tolerance argument (Theorem 2): Lemma 5 makes every
    /// radius ≥ r*_{k,z} feasible, so the exact search lands at ≤ r* and
    /// the geometric grid at ≤ (1+δ)·r*. (Comparing the two modes directly
    /// is not sound — below r* feasibility is not monotone.)
    #[test]
    fn search_modes_bounded_by_optimum(
        points in arb_points(2, 4, 14),
        k in 1usize..3,
        z in 0usize..3,
    ) {
        prop_assume!(k + z < points.len());
        let eps_hat = 0.25;
        let weights = vec![1u64; points.len()];
        let oracle = PointsOracle::new(&points, &Euclidean);
        let (_, opt) = optimal_kcenter_outliers(&points, &Euclidean, k, z);
        let exact = find_min_feasible_radius(
            &oracle, &weights, k, z as u64, eps_hat, SearchMode::ExactCandidates,
        );
        let grid = find_min_feasible_radius(
            &oracle, &weights, k, z as u64, eps_hat, SearchMode::GeometricGrid,
        );
        prop_assert!(exact.clustering.uncovered_weight <= z as u64);
        prop_assert!(grid.clustering.uncovered_weight <= z as u64);
        prop_assert!(
            exact.radius <= opt + 1e-9,
            "exact search {} above r* = {opt}",
            exact.radius
        );
        let delta = eps_hat / (3.0 + 4.0 * eps_hat);
        prop_assert!(
            grid.radius <= opt * (1.0 + delta) + 1e-9,
            "grid search {} above (1+δ)·r* = {}",
            grid.radius,
            opt * (1.0 + delta)
        );
    }

    /// Streaming doubling coreset: invariants (a), (b), (d) after every
    /// point; invariant (c) as coverage of the whole prefix.
    #[test]
    fn streaming_invariants(points in arb_points(2, 1, 60), tau in 2usize..8) {
        let mut alg = WeightedDoublingCoreset::new(Euclidean, tau);
        for (i, p) in points.iter().enumerate() {
            alg.process(p.clone());
            alg.check_invariants().map_err(TestCaseError::fail)?;
            if alg.phi() > 0.0 {
                for s in &points[..=i] {
                    let d = alg
                        .centers()
                        .iter()
                        .map(|c| Euclidean.distance(s, c))
                        .fold(f64::INFINITY, f64::min);
                    prop_assert!(d <= 8.0 * alg.phi() + 1e-9, "invariant (c) violated");
                }
            }
        }
    }

    /// Snapshot → restore at *any* split point is bitwise-transparent:
    /// running the prefix, snapshotting, restoring into a fresh builder,
    /// and running the suffix lands in exactly the state (ϕ bits,
    /// processed count, weights, center coordinates) of an uninterrupted
    /// run over the whole stream.
    #[test]
    fn streaming_resume_is_bitwise_transparent(
        points in arb_points(2, 1, 60),
        tau in 1usize..8,
        split_frac in 0.0..1.0f64,
    ) {
        // split covers 0 (restore an empty builder) through len
        // (restore a finished one, nothing left to stream).
        let split = ((points.len() as f64 + 1.0) * split_frac) as usize;
        let split = split.min(points.len());

        let mut uninterrupted = WeightedDoublingCoreset::new(Euclidean, tau);
        for p in &points {
            uninterrupted.process(p.clone());
        }

        let mut prefix = WeightedDoublingCoreset::new(Euclidean, tau);
        for p in &points[..split] {
            prefix.process(p.clone());
        }
        let mut resumed = WeightedDoublingCoreset::from_snapshot(Euclidean, tau, prefix.snapshot())
            .map_err(TestCaseError::fail)?;
        for p in &points[split..] {
            resumed.process(p.clone());
        }

        let a = uninterrupted.snapshot();
        let b = resumed.snapshot();
        prop_assert_eq!(a.processed, b.processed);
        prop_assert_eq!(a.initialized, b.initialized);
        prop_assert_eq!(a.phi.to_bits(), b.phi.to_bits());
        prop_assert_eq!(&a.weights, &b.weights);
        prop_assert_eq!(a.centers.len(), b.centers.len());
        for (x, y) in a.centers.iter().zip(&b.centers) {
            for (cx, cy) in x.coords().iter().zip(y.coords()) {
                prop_assert_eq!(cx.to_bits(), cy.to_bits());
            }
        }
    }

    /// Streaming invariant (e): ϕ ≤ r*_τ(S) against brute force.
    #[test]
    fn streaming_phi_lower_bounds_optimum(points in arb_points(1, 5, 12), tau in 2usize..4) {
        prop_assume!(tau < points.len());
        let mut alg = WeightedDoublingCoreset::new(Euclidean, tau);
        for p in &points {
            alg.process(p.clone());
        }
        let (_, opt) = optimal_kcenter(&points, &Euclidean, tau);
        prop_assert!(
            alg.phi() <= opt + 1e-9,
            "ϕ = {} exceeds r*_τ = {opt}",
            alg.phi()
        );
    }

    /// The shared cached oracle and the on-demand oracle agree bitwise on
    /// `cmp_distance` and `distance` for random point sets — on both sides
    /// of the cache threshold, so a run landing above the threshold can
    /// never diverge from one landing below it.
    #[test]
    fn cached_and_on_demand_oracles_agree(points in arb_points(3, 2, 24)) {
        let n = points.len();
        let on_demand = PointsOracle::new(&points, &Euclidean);
        let cached = CachedOracle::new(points.clone(), &Euclidean, n);
        let uncached = CachedOracle::new(points.clone(), &Euclidean, 0);
        for i in 0..n {
            for j in 0..n {
                let reference_cmp = DistanceOracle::cmp_dist(&on_demand, i, j);
                let reference = DistanceOracle::dist(&on_demand, i, j);
                prop_assert_eq!(cached.cmp_dist(i, j).to_bits(), reference_cmp.to_bits());
                prop_assert_eq!(uncached.cmp_dist(i, j).to_bits(), reference_cmp.to_bits());
                prop_assert_eq!(cached.dist(i, j).to_bits(), reference.to_bits());
                prop_assert_eq!(uncached.dist(i, j).to_bits(), reference.to_bits());
            }
        }
        prop_assert_eq!(cached.build_count(), 1);
        prop_assert_eq!(uncached.build_count(), 0); // threshold 0 must never cache
    }

    /// Full searches through the cached oracle match the on-demand oracle
    /// exactly (same radius, same clustering) for both search modes.
    #[test]
    fn cached_oracle_searches_match_on_demand(
        points in arb_points(2, 3, 16),
        k in 1usize..3,
        z in 0usize..3,
    ) {
        prop_assume!(k + z < points.len());
        let weights = vec![1u64; points.len()];
        let on_demand = PointsOracle::new(&points, &Euclidean);
        let cached = CachedOracle::new(points.clone(), &Euclidean, points.len());
        for mode in [SearchMode::ExactCandidates, SearchMode::GeometricGrid] {
            let a = find_min_feasible_radius(&on_demand, &weights, k, z as u64, 0.25, mode);
            let b = find_min_feasible_radius(&cached, &weights, k, z as u64, 0.25, mode);
            prop_assert_eq!(a.radius.to_bits(), b.radius.to_bits());
            prop_assert_eq!(a.clustering, b.clustering);
        }
    }

    /// End-to-end sanity: the objective evaluators agree with definitions.
    #[test]
    fn objective_definitions(points in arb_points(2, 2, 20), z in 0usize..5) {
        let centers = vec![points[0].clone()];
        let r_all = radius(&points, &centers, &Euclidean);
        let r_out = radius_with_outliers(&points, &centers, z, &Euclidean);
        prop_assert!(r_out <= r_all + 1e-12);
        let mut dists: Vec<f64> = points
            .iter()
            .map(|p| Euclidean.distance(p, &centers[0]))
            .collect();
        dists.sort_by(f64::total_cmp);
        let expect = if z >= points.len() {
            0.0
        } else {
            dists[points.len() - 1 - z]
        };
        prop_assert!((r_out - expect).abs() < 1e-12);
    }
}
