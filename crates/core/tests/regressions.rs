//! Regression tests pinning boundary semantics the paper's guarantees
//! depend on: closed-ball coverage in `OutliersCluster`, GMM's farthest-
//! point bookkeeping, and the exactness of the radius search at the
//! feasibility boundary. These lock in behaviour that an innocent-looking
//! `<` vs `<=` or off-by-one edit would silently break while most
//! statistical tests kept passing.

use kcenter_core::brute_force::optimal_kcenter;
use kcenter_core::gmm::{gmm_select, Gmm};
use kcenter_core::outliers_cluster::{outliers_cluster, PointsOracle};
use kcenter_core::solution::radius;
use kcenter_metric::{Euclidean, Point};

fn pts(coords: &[f64]) -> Vec<Point> {
    coords.iter().map(|&c| Point::new(vec![c])).collect()
}

/// The paper's balls are closed: a point at distance *exactly* `(3+4ε̂)·r`
/// from a center is covered. All constants below are exactly representable,
/// so equality is exact and a `<` in the coverage comparison (instead of
/// `<=`) flips the result.
#[test]
fn outliers_cluster_covers_closed_balls() {
    // ε̂ = 0.25 → cover factor 3 + 4·0.25 = 4 (exact); D = 7, r = 7/4.
    let points = pts(&[0.0, 7.0]);
    let weights = vec![1u64, 1u64];
    let oracle = PointsOracle::new(&points, &Euclidean);

    let at_boundary = outliers_cluster(&oracle, &weights, 1, 7.0 / 4.0, 0.25);
    assert_eq!(
        at_boundary.uncovered_weight, 0,
        "a point at exactly (3+4ε̂)·r must be covered (closed ball)"
    );
    assert!(at_boundary.uncovered.is_empty());

    // Infinitesimally below the boundary the far point is uncovered.
    let below = outliers_cluster(&oracle, &weights, 1, 7.0 / 4.0 * (1.0 - 1e-12), 0.25);
    assert_eq!(below.uncovered_weight, 1);
    assert_eq!(below.uncovered.len(), 1);
}

/// Same closed-ball rule for the *selection* ball `(1+2ε̂)·r`: the greedy
/// weighs candidate centers by the weight within exactly that radius.
#[test]
fn outliers_cluster_selection_ball_is_closed() {
    // ε̂ = 0.5 → selection factor 1 + 2·0.5 = 2 (exact). With r = 1 the
    // center candidate at 0 sees weight 3 within distance exactly 2 and is
    // picked over the candidate at 6 (weight 2 in its selection ball);
    // cover factor 5 then reaches to distance 5, leaving {6, 8} uncovered.
    let points = pts(&[0.0, 2.0, -2.0, 6.0, 8.0]);
    let weights = vec![1u64; 5];
    let oracle = PointsOracle::new(&points, &Euclidean);
    let result = outliers_cluster(&oracle, &weights, 1, 1.0, 0.5);
    assert_eq!(result.centers, vec![0], "selection ball must be closed");
    assert_eq!(result.uncovered_weight, 2);
}

/// GMM must return exactly `k` centers whenever `k` distinct points exist —
/// the classic off-by-one (stopping a step early or late) changes the
/// count or reports the radius of the wrong prefix.
#[test]
fn gmm_selects_exactly_k_centers_with_consistent_radius() {
    let points: Vec<Point> = (0..100)
        .map(|i| Point::new(vec![(i as f64 * 37.0) % 101.0, (i as f64 * 53.0) % 89.0]))
        .collect();
    for k in [1usize, 2, 7, 31, 100] {
        let result = gmm_select(&points, &Euclidean, k, 0);
        assert_eq!(result.centers.len(), k, "k = {k}");
        // The reported radius must agree with an independent assignment of
        // every point to its closest selected center.
        let centers: Vec<Point> = result.centers.iter().map(|&i| points[i].clone()).collect();
        let independent = radius(&points, &centers, &Euclidean);
        assert!(
            (result.radius - independent).abs() <= 1e-12 * (1.0 + independent),
            "k = {k}: reported {} vs recomputed {}",
            result.radius,
            independent
        );
    }
}

/// Pin the exact farthest-first trace on a hand-checkable instance: from 0
/// the farthest point is 10 (radius 10), then 4 splits the gap (radius 4),
/// then the set is exhausted (radius 0).
#[test]
fn gmm_farthest_first_trace_is_exact() {
    let points = pts(&[0.0, 4.0, 10.0]);
    let mut gmm = Gmm::new(&points, &Euclidean, 0);
    gmm.run_until(3);
    assert_eq!(gmm.centers(), &[0, 2, 1]);
    assert_eq!(gmm.radius_history(), &[10.0, 4.0, 0.0]);
}

/// Gonzalez' guarantee (the paper's Lemma 1 foundation): the GMM radius is
/// within 2× the brute-force optimum on a deterministic instance.
#[test]
fn gmm_two_approximation_against_brute_force() {
    let points: Vec<Point> = (0..14)
        .map(|i| {
            Point::new(vec![
                (i % 3) as f64 * 40.0 + (i as f64 * 0.37) % 2.0,
                (i / 5) as f64 * 1.1,
            ])
        })
        .collect();
    for k in [2usize, 3, 4] {
        let (_, opt) = optimal_kcenter(&points, &Euclidean, k);
        let result = gmm_select(&points, &Euclidean, k, 0);
        assert!(
            result.radius <= 2.0 * opt + 1e-9,
            "k = {k}: GMM {} > 2·OPT = {}",
            result.radius,
            2.0 * opt
        );
    }
}

/// A fig4-style double sweep — several full radius searches over one
/// coreset under different parameters — must price the coreset into a
/// proxy matrix exactly once: the `CachedOracle` handle is cloned across
/// the searches and every clone reads the one lazily built cache.
#[test]
fn double_sweep_builds_the_matrix_exactly_once() {
    use kcenter_core::radius_search::{solve_coreset_cached, SearchMode};
    use kcenter_metric::CachedOracle;

    let points: Vec<Point> = (0..60)
        .map(|i| Point::new(vec![(i as f64 * 3.7) % 41.0, ((i * i) as f64 * 1.3) % 13.0]))
        .collect();
    let weights: Vec<u64> = (0..60).map(|i| 1 + (i % 4) as u64).collect();
    let oracle = CachedOracle::new(points, &Euclidean, 10_000);
    assert_eq!(oracle.build_count(), 0, "the cache must be lazy");

    // Sweep: two search modes × three outlier budgets, through clones of
    // the handle (the shape of the fig4/ablation sweeps).
    let mut radii = Vec::new();
    for mode in [SearchMode::GeometricGrid, SearchMode::ExactCandidates] {
        for z in [0u64, 3, 9] {
            let handle = oracle.clone();
            let solution = solve_coreset_cached(&handle, &weights, 4, z, 0.25, mode);
            assert!(solution.uncovered_weight <= z);
            radii.push(solution.r_min);
        }
    }
    assert_eq!(
        oracle.build_count(),
        1,
        "six radius searches must share one matrix build"
    );
    // Larger outlier budgets never increase the found radius within a mode.
    assert!(radii[0] >= radii[1] && radii[1] >= radii[2]);
    assert!(radii[3] >= radii[4] && radii[4] >= radii[5]);
}

/// Regression for a first-touch deadlock: handing a *lazy* `CachedOracle`
/// straight to the radius search while running on a multi-thread pool.
/// The search's first parallel scan used to be the first cache touch, so
/// the matrix build (itself parallel, inside the `OnceLock` initializer)
/// started inside a pool task; the initializing worker could steal an
/// outer-scan unit that re-entered the initializer on its own thread and
/// every thread parked forever. `DistanceOracle::prepare()` now resolves
/// the cache on the submitting thread first. The searches run on a helper
/// thread joined with a timeout, so a regression fails the test with a
/// diagnosis instead of wedging the whole suite (the pre-fix behaviour of
/// the ablation binary, whose shape this reproduces).
#[test]
fn lazy_cached_oracle_search_on_a_pool_does_not_deadlock() {
    use kcenter_core::radius_search::{find_min_feasible_radius, SearchMode};
    use kcenter_metric::CachedOracle;

    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let points: Vec<Point> = (0..300)
            .map(|i| Point::new(vec![(i as f64 * 1.7) % 53.0, (i as f64 * 0.9) % 11.0]))
            .collect();
        let weights = vec![1u64; points.len()];
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .expect("pool build");
        for mode in [SearchMode::GeometricGrid, SearchMode::ExactCandidates] {
            let oracle = CachedOracle::new(points.clone(), &Euclidean, usize::MAX);
            assert_eq!(oracle.build_count(), 0, "cache must start unresolved");
            let result =
                pool.install(|| find_min_feasible_radius(&oracle, &weights, 5, 10, 0.25, mode));
            assert!(result.clustering.uncovered_weight <= 10);
            assert_eq!(oracle.build_count(), 1);
        }
        tx.send(()).expect("main test thread gone");
    });
    rx.recv_timeout(std::time::Duration::from_secs(120)).expect(
        "lazy first-touch search deadlocked on the pool \
         (is DistanceOracle::prepare still called at every entry point?)",
    );
}
