//! The multi-tenant session registry: one resumable doubling coreset per
//! `(tenant, stream)`, with idle eviction under a memory budget and
//! transparent restore-on-touch.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use kcenter_core::radius_search::CoresetSolution;
use kcenter_core::radius_search::{default_matrix_threshold, solve_coreset, SearchMode};
use kcenter_core::streaming_coreset::CoresetSnapshot;
use kcenter_core::{WeightedDoublingCoreset, WeightedPoint};
use kcenter_metric::{Fingerprint, Metric, Point};
use kcenter_store::{ArtifactStore, StoredSession};
use kcenter_stream::{ChannelSource, StreamingAlgorithm};
use parking_lot::Mutex;

use crate::ServeError;

/// Domain separator for session fingerprints: bump the suffix on any
/// change to what identifies a session on disk.
const SESSION_DOMAIN: &str = "kcenter-serve/session/v1";

/// Tuning knobs for a [`SessionRegistry`].
#[derive(Clone, Debug)]
pub struct RegistryConfig {
    /// Coreset budget `τ` for every session (sessions persisted under a
    /// different `τ` refuse to restore — the stream would be
    /// re-interpreted).
    pub tau: usize,
    /// Maximum resident coreset points summed across sessions; exceeding
    /// it evicts least-recently-touched sessions to the store. `None`
    /// disables eviction. A budget without a store is rejected at
    /// construction: eviction would have to discard state.
    pub memory_budget_points: Option<usize>,
    /// Persist a session's snapshot whenever it has processed this many
    /// items since its last persist (`0` = only on evict/flush).
    pub snapshot_every: u64,
    /// Bounded-channel capacity of the per-batch ingestion feed.
    pub ingest_buffer: usize,
}

impl Default for RegistryConfig {
    fn default() -> Self {
        RegistryConfig {
            tau: 128,
            memory_budget_points: None,
            snapshot_every: 0,
            ingest_buffer: 256,
        }
    }
}

/// What [`SessionRegistry::ingest`] reports back.
#[derive(Clone, Copy, Debug)]
pub struct IngestReport {
    /// Items accepted from this batch.
    pub accepted: usize,
    /// Session total processed count after the batch.
    pub processed: u64,
    /// Coreset points the session holds after the batch.
    pub resident_points: usize,
    /// The session's current lower bound `ϕ`.
    pub phi: f64,
    /// Whether the touch restored the session from the store.
    pub restored: bool,
    /// Time spent inside `process` calls for this batch.
    pub ingest_time: Duration,
}

/// What [`SessionRegistry::query`] answers.
#[derive(Clone, Debug)]
pub struct QueryAnswer {
    /// The selected centers.
    pub centers: Vec<Point>,
    /// The estimated minimum feasible radius on the session's coreset.
    pub radius: f64,
    /// Coreset weight left uncovered at that radius (≤ z).
    pub uncovered_weight: u64,
    /// Session processed count the answer reflects.
    pub processed: u64,
    /// Whether the answer came from the per-session answer cache.
    pub cached: bool,
}

/// Per-session stat snapshot.
#[derive(Clone, Copy, Debug)]
pub struct SessionStat {
    /// Whether the session is resident (vs evicted to the store).
    pub resident: bool,
    /// Total items the session has processed.
    pub processed: u64,
    /// Coreset points held in memory (0 when evicted).
    pub memory_points: usize,
}

/// Registry-wide counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct RegistryStats {
    /// Sessions known to the registry (resident + evicted).
    pub sessions: usize,
    /// Sessions currently resident.
    pub resident_sessions: usize,
    /// Total resident coreset points.
    pub resident_points: usize,
    /// Evictions performed since start.
    pub evictions: u64,
    /// Restores performed since start.
    pub restores: u64,
    /// Snapshots persisted since start.
    pub snapshots: u64,
}

/// Cache key for a session's last query answer: any change to the stream
/// position or the query parameters misses.
#[derive(Clone, Copy, PartialEq, Eq)]
struct QueryKey {
    processed: u64,
    k: usize,
    z: u64,
    eps_bits: u64,
}

struct Session<M> {
    coreset: WeightedDoublingCoreset<Point, M>,
    /// Items processed at the time of the last persisted snapshot.
    last_persisted: u64,
    last_answer: Option<(QueryKey, CoresetSolution<Point>)>,
}

enum EntryState<M> {
    Resident(Session<M>),
    /// Evicted to the store; `processed` is kept so stats never lose track
    /// of the session.
    Evicted {
        processed: u64,
    },
}

struct Entry<M> {
    fingerprint: u128,
    last_touch: u64,
    state: EntryState<M>,
}

#[derive(Default)]
struct Counters {
    evictions: u64,
    restores: u64,
    snapshots: u64,
}

struct Inner<M> {
    sessions: HashMap<(String, String), Entry<M>>,
    clock: u64,
    counters: Counters,
}

/// The session registry: the serve layer's single source of truth.
///
/// All operations are keyed by `(tenant, stream)`. A touched session that
/// was evicted (or that a previous server run persisted) is restored from
/// the store transparently; the restore path is gated by
/// `WeightedDoublingCoreset::from_snapshot`, so corrupted or tampered
/// state surfaces as a [`ServeError::RestoreFailed`] instead of silently
/// corrupting the stream.
pub struct SessionRegistry<M> {
    inner: Mutex<Inner<M>>,
    metric: M,
    store: Option<ArtifactStore>,
    config: RegistryConfig,
}

impl<M: Metric<Point> + Clone + Sync> SessionRegistry<M> {
    /// Creates a registry over `metric`, persisting to `store` when given.
    ///
    /// Returns an error when a memory budget is configured without a store
    /// — eviction would have to discard session state.
    pub fn new(
        metric: M,
        config: RegistryConfig,
        store: Option<ArtifactStore>,
    ) -> Result<Self, ServeError> {
        if config.tau == 0 {
            return Err(ServeError::BadRequest("tau must be positive".into()));
        }
        if config.memory_budget_points.is_some() && store.is_none() {
            return Err(ServeError::NoStore);
        }
        Ok(SessionRegistry {
            inner: Mutex::new(Inner {
                sessions: HashMap::new(),
                clock: 0,
                counters: Counters::default(),
            }),
            metric,
            store,
            config,
        })
    }

    /// The registry's configuration.
    pub fn config(&self) -> &RegistryConfig {
        &self.config
    }

    /// Deterministic content address of a session's persisted state.
    fn fingerprint(&self, tenant: &str, stream: &str) -> u128 {
        let mut fp = Fingerprint::with_domain(SESSION_DOMAIN);
        fp.write_str(tenant);
        fp.write_str(stream);
        fp.write_u64(self.config.tau as u64);
        fp.finish()
    }

    fn snapshot_to_stored(&self, snap: &CoresetSnapshot<Point>) -> StoredSession {
        StoredSession {
            tau: self.config.tau as u64,
            initialized: snap.initialized,
            phi: snap.phi,
            processed: snap.processed,
            centers: snap.centers.clone(),
            weights: snap.weights.clone(),
        }
    }

    /// Persists `session` under `fingerprint`; counts it.
    fn persist(
        &self,
        counters: &mut Counters,
        fingerprint: u128,
        session: &mut Session<M>,
    ) -> Result<(), ServeError> {
        let store = self.store.as_ref().ok_or(ServeError::NoStore)?;
        let stored = self.snapshot_to_stored(&session.coreset.snapshot());
        store
            .store_session(fingerprint, &stored)
            .map_err(|e| ServeError::Io(e.to_string()))?;
        session.last_persisted = session.coreset.processed();
        counters.snapshots += 1;
        kcenter_obs::counter("serve.snapshots").inc();
        Ok(())
    }

    /// Restores a session from the store, gated by `from_snapshot`.
    fn restore(&self, fingerprint: u128) -> Result<Option<Session<M>>, ServeError> {
        let Some(store) = self.store.as_ref() else {
            return Ok(None);
        };
        let Some(stored) = store.load_session(fingerprint) else {
            return Ok(None);
        };
        if stored.tau != self.config.tau as u64 {
            return Err(ServeError::TauMismatch {
                expected: self.config.tau as u64,
                found: stored.tau,
            });
        }
        let processed = stored.processed;
        let snap = CoresetSnapshot {
            centers: stored.centers,
            weights: stored.weights,
            phi: stored.phi,
            initialized: stored.initialized,
            processed: stored.processed,
        };
        let coreset =
            WeightedDoublingCoreset::from_snapshot(self.metric.clone(), self.config.tau, snap)
                .map_err(ServeError::RestoreFailed)?;
        Ok(Some(Session {
            coreset,
            last_persisted: processed,
            last_answer: None,
        }))
    }

    /// Makes the entry for `(tenant, stream)` resident, restoring or (when
    /// `create` and nothing is persisted) creating it. Returns whether a
    /// restore happened, or `Ok(None)` if the session is unknown and
    /// `create` is false.
    fn make_resident(
        &self,
        inner: &mut Inner<M>,
        tenant: &str,
        stream: &str,
        create: bool,
    ) -> Result<Option<bool>, ServeError> {
        let key = (tenant.to_string(), stream.to_string());
        inner.clock += 1;
        let clock = inner.clock;
        if let Some(entry) = inner.sessions.get_mut(&key) {
            entry.last_touch = clock;
            match entry.state {
                EntryState::Resident(_) => return Ok(Some(false)),
                EntryState::Evicted { .. } => {
                    let fingerprint = entry.fingerprint;
                    let session = self.restore(fingerprint)?.ok_or_else(|| {
                        ServeError::RestoreFailed("evicted session missing from the store".into())
                    })?;
                    entry.state = EntryState::Resident(session);
                    inner.counters.restores += 1;
                    kcenter_obs::counter("serve.restores").inc();
                    return Ok(Some(true));
                }
            }
        }
        // Unknown to this registry: a previous server run may still have
        // persisted it.
        let fingerprint = self.fingerprint(tenant, stream);
        let (session, restored) = match self.restore(fingerprint)? {
            Some(session) => (session, true),
            None if create => (
                Session {
                    coreset: WeightedDoublingCoreset::new(self.metric.clone(), self.config.tau),
                    last_persisted: 0,
                    last_answer: None,
                },
                false,
            ),
            None => return Ok(None),
        };
        if restored {
            inner.counters.restores += 1;
            kcenter_obs::counter("serve.restores").inc();
        }
        inner.sessions.insert(
            key,
            Entry {
                fingerprint,
                last_touch: clock,
                state: EntryState::Resident(session),
            },
        );
        Ok(Some(restored))
    }

    fn resident_points(inner: &Inner<M>) -> usize {
        inner
            .sessions
            .values()
            .map(|e| match &e.state {
                EntryState::Resident(s) => s.coreset.memory_items(),
                EntryState::Evicted { .. } => 0,
            })
            .sum()
    }

    /// Evicts least-recently-touched resident sessions (sparing `keep`)
    /// until the resident-point total fits the budget.
    fn enforce_budget(
        &self,
        inner: &mut Inner<M>,
        keep: &(String, String),
    ) -> Result<(), ServeError> {
        let Some(budget) = self.config.memory_budget_points else {
            return Ok(());
        };
        while Self::resident_points(inner) > budget {
            let victim = inner
                .sessions
                .iter()
                .filter(|(key, e)| *key != keep && matches!(e.state, EntryState::Resident(_)))
                .min_by_key(|(_, e)| e.last_touch)
                .map(|(key, _)| key.clone());
            let Some(victim) = victim else {
                // Only the just-touched session remains: the budget is a
                // fleet-level knob, never a reason to thrash the session
                // being served.
                return Ok(());
            };
            self.evict_entry(inner, &victim)?;
        }
        Ok(())
    }

    /// Persists and drops one resident session.
    fn evict_entry(&self, inner: &mut Inner<M>, key: &(String, String)) -> Result<(), ServeError> {
        let entry = inner
            .sessions
            .get_mut(key)
            .ok_or(ServeError::UnknownSession)?;
        let EntryState::Resident(session) = &mut entry.state else {
            return Ok(());
        };
        let processed = session.coreset.processed();
        let fingerprint = entry.fingerprint;
        // Persist only when the store is behind the live state; an
        // untouched restore evicts for free.
        if session.last_persisted != processed
            || self
                .store
                .as_ref()
                .is_some_and(|s| s.load_session(fingerprint).is_none())
        {
            let mut counters = std::mem::take(&mut inner.counters);
            let entry = inner.sessions.get_mut(key).expect("entry just seen");
            let EntryState::Resident(session) = &mut entry.state else {
                unreachable!("state checked resident above");
            };
            let result = self.persist(&mut counters, fingerprint, session);
            inner.counters = counters;
            result?;
        }
        let entry = inner.sessions.get_mut(key).expect("entry just seen");
        entry.state = EntryState::Evicted { processed };
        inner.counters.evictions += 1;
        kcenter_obs::counter("serve.evictions").inc();
        Ok(())
    }

    /// Feeds a batch of points into the session's coreset, creating or
    /// restoring the session as needed, then applies the periodic-snapshot
    /// policy and the memory budget.
    ///
    /// The batch rides a bounded channel ([`ChannelSource`]) — the serve
    /// layer's ingestion shape — and the reported `ingest_time` counts
    /// only time inside `process`, mirroring `run_stream`'s metering.
    ///
    /// The whole batch is validated up front (uniform, session-consistent
    /// dimensionality), so a rejected batch leaves the session untouched.
    pub fn ingest(
        &self,
        tenant: &str,
        stream: &str,
        points: Vec<Point>,
    ) -> Result<IngestReport, ServeError> {
        let mut inner = self.inner.lock();
        let restored = self
            .make_resident(&mut inner, tenant, stream, true)?
            .expect("create = true always yields a session");
        let key = (tenant.to_string(), stream.to_string());
        let session = resident_mut(&mut inner, &key);
        // Validate the batch against the session's pinned dimension (the
        // first point ever ingested pins it).
        let mut expected = session.coreset.centers().first().map(Point::dim);
        for p in &points {
            match expected {
                None => expected = Some(p.dim()),
                Some(dim) if p.dim() == dim => {}
                Some(dim) => {
                    return Err(ServeError::DimensionMismatch {
                        expected: dim,
                        got: p.dim(),
                    })
                }
            }
        }

        let accepted = points.len();
        let buffer = self.config.ingest_buffer.max(1);
        let feed = ChannelSource::spawn(buffer, move |tx| {
            tx.feed(points);
        });
        let mut ingest_time = Duration::ZERO;
        for point in feed.iter() {
            let start = Instant::now();
            session.coreset.process(point);
            ingest_time += start.elapsed();
        }
        let drained = feed.join();
        debug_assert!(drained, "registry drains every accepted batch");
        session.last_answer = None;

        let processed = session.coreset.processed();
        let resident_points = session.coreset.memory_items();
        let phi = session.coreset.phi();

        // Periodic snapshot: persist once enough new items accumulated.
        if self.store.is_some()
            && self.config.snapshot_every > 0
            && processed.saturating_sub(session.last_persisted) >= self.config.snapshot_every
        {
            let mut counters = std::mem::take(&mut inner.counters);
            let fingerprint = inner.sessions[&key].fingerprint;
            let session = resident_mut(&mut inner, &key);
            let result = self.persist(&mut counters, fingerprint, session);
            inner.counters = counters;
            result?;
        }
        self.enforce_budget(&mut inner, &key)?;

        kcenter_obs::counter("serve.ingest.batches").inc();
        kcenter_obs::counter("serve.ingest.points").add(accepted as u64);
        kcenter_obs::histogram("serve.ingest.micros").observe_duration(ingest_time);
        Ok(IngestReport {
            accepted,
            processed,
            resident_points,
            phi,
            restored,
            ingest_time,
        })
    }

    /// Answers a k-center-with-outliers query over a snapshot of the
    /// session's live coreset, via the cached finalization path
    /// (`solve_coreset` prices the coreset into a `CachedOracle` and runs
    /// `solve_coreset_cached`). Repeating a query at an unchanged stream
    /// position returns the memoized answer.
    pub fn query(
        &self,
        tenant: &str,
        stream: &str,
        k: usize,
        z: u64,
        eps_hat: f64,
    ) -> Result<QueryAnswer, ServeError> {
        if k == 0 {
            return Err(ServeError::BadRequest("k must be positive".into()));
        }
        if eps_hat <= 0.0 || !eps_hat.is_finite() {
            return Err(ServeError::BadRequest(
                "eps must be positive and finite".into(),
            ));
        }
        let mut inner = self.inner.lock();
        if self
            .make_resident(&mut inner, tenant, stream, false)?
            .is_none()
        {
            return Err(ServeError::UnknownSession);
        }
        let key = (tenant.to_string(), stream.to_string());
        self.enforce_budget(&mut inner, &key)?;
        let session = resident_mut(&mut inner, &key);
        let processed = session.coreset.processed();
        if processed == 0 {
            return Err(ServeError::EmptySession);
        }
        let query_key = QueryKey {
            processed,
            k,
            z,
            eps_bits: eps_hat.to_bits(),
        };
        if let Some((cached_key, answer)) = &session.last_answer {
            if *cached_key == query_key {
                kcenter_obs::counter("serve.queries").inc();
                kcenter_obs::counter("serve.queries.cached").inc();
                return Ok(QueryAnswer {
                    centers: answer.centers.clone(),
                    radius: answer.r_min,
                    uncovered_weight: answer.uncovered_weight,
                    processed,
                    cached: true,
                });
            }
        }
        // Solve over a snapshot of the live coreset.
        let query_span = kcenter_obs::span!("serve.query.solve");
        let coreset = session
            .coreset
            .centers()
            .iter()
            .cloned()
            .zip(session.coreset.weights().iter().copied())
            .map(|(point, weight)| WeightedPoint { point, weight })
            .collect::<kcenter_core::WeightedCoreset<Point>>();
        let solution = solve_coreset(
            &coreset,
            &self.metric,
            k,
            z,
            eps_hat,
            SearchMode::GeometricGrid,
            default_matrix_threshold(),
        );
        let answer = QueryAnswer {
            centers: solution.centers.clone(),
            radius: solution.r_min,
            uncovered_weight: solution.uncovered_weight,
            processed,
            cached: false,
        };
        query_span.field("k", k as u64).finish();
        kcenter_obs::counter("serve.queries").inc();
        session.last_answer = Some((query_key, solution));
        Ok(answer)
    }

    /// Explicitly evicts a session to the store. Returns `true` when it
    /// was resident (and is now persisted + dropped), `false` when it was
    /// already evicted.
    pub fn evict(&self, tenant: &str, stream: &str) -> Result<bool, ServeError> {
        if self.store.is_none() {
            return Err(ServeError::NoStore);
        }
        let mut inner = self.inner.lock();
        let key = (tenant.to_string(), stream.to_string());
        let entry = inner.sessions.get(&key).ok_or(ServeError::UnknownSession)?;
        let was_resident = matches!(entry.state, EntryState::Resident(_));
        if was_resident {
            self.evict_entry(&mut inner, &key)?;
        }
        Ok(was_resident)
    }

    /// Per-session stat; errors on a session this registry has never seen
    /// (and that the store does not hold).
    pub fn session_stat(&self, tenant: &str, stream: &str) -> Result<SessionStat, ServeError> {
        let inner = self.inner.lock();
        let key = (tenant.to_string(), stream.to_string());
        if let Some(entry) = inner.sessions.get(&key) {
            return Ok(match &entry.state {
                EntryState::Resident(s) => SessionStat {
                    resident: true,
                    processed: s.coreset.processed(),
                    memory_points: s.coreset.memory_items(),
                },
                EntryState::Evicted { processed } => SessionStat {
                    resident: false,
                    processed: *processed,
                    memory_points: 0,
                },
            });
        }
        drop(inner);
        // A session persisted by a previous server run counts too.
        let Some(store) = self.store.as_ref() else {
            return Err(ServeError::UnknownSession);
        };
        let stored = store
            .load_session(self.fingerprint(tenant, stream))
            .ok_or(ServeError::UnknownSession)?;
        Ok(SessionStat {
            resident: false,
            processed: stored.processed,
            memory_points: 0,
        })
    }

    /// Registry-wide counters.
    pub fn stats(&self) -> RegistryStats {
        let inner = self.inner.lock();
        RegistryStats {
            sessions: inner.sessions.len(),
            resident_sessions: inner
                .sessions
                .values()
                .filter(|e| matches!(e.state, EntryState::Resident(_)))
                .count(),
            resident_points: Self::resident_points(&inner),
            evictions: inner.counters.evictions,
            restores: inner.counters.restores,
            snapshots: inner.counters.snapshots,
        }
    }

    /// Persists every resident session (without evicting); returns how
    /// many were written. A no-op without a store.
    pub fn flush(&self) -> Result<usize, ServeError> {
        if self.store.is_none() {
            return Ok(0);
        }
        let mut inner = self.inner.lock();
        let keys: Vec<(String, String)> = inner
            .sessions
            .iter()
            .filter(|(_, e)| matches!(e.state, EntryState::Resident(_)))
            .map(|(k, _)| k.clone())
            .collect();
        let mut written = 0usize;
        for key in keys {
            let mut counters = std::mem::take(&mut inner.counters);
            let fingerprint = inner.sessions[&key].fingerprint;
            let session = resident_mut(&mut inner, &key);
            let result = self.persist(&mut counters, fingerprint, session);
            inner.counters = counters;
            result?;
            written += 1;
        }
        Ok(written)
    }
}

/// The resident session behind `key`; panics if it is not resident —
/// callers establish residency via `make_resident` first.
fn resident_mut<'a, M>(inner: &'a mut Inner<M>, key: &(String, String)) -> &'a mut Session<M> {
    match &mut inner
        .sessions
        .get_mut(key)
        .expect("session made resident by caller")
        .state
    {
        EntryState::Resident(session) => session,
        EntryState::Evicted { .. } => unreachable!("session made resident by caller"),
    }
}
