#![deny(missing_docs)]
//! Clustering-as-a-service over the paper's streaming coreset (§4).
//!
//! The ROADMAP's north star is a server handling heavy traffic from many
//! users; this crate is that always-on layer. A [`SessionRegistry`] keeps
//! one resumable `WeightedDoublingCoreset` per `(tenant, stream)`:
//!
//! * **Ingest** — batches ride a bounded channel (the `kcenter-stream`
//!   `ChannelSource` shape) into the session's coreset; per-batch metering
//!   counts only time inside `process`, like `run_stream`.
//! * **Query** — centers/radius/uncovered-weight on demand via the cached
//!   finalization path (`solve_coreset` → `CachedOracle` →
//!   `solve_coreset_cached`) over a snapshot of the live coreset, with a
//!   per-session answer memo keyed by (stream position, k, z, ε).
//! * **Snapshot / evict / restore** — session state persists to the
//!   artifact store as `ArtifactKind::Session`, content-addressed by
//!   `(tenant, stream, τ)`. Idle sessions are evicted under a configurable
//!   memory budget and restored transparently on the next touch; the
//!   restore is gated by `WeightedDoublingCoreset::from_snapshot`, so an
//!   interrupted stream continues **bitwise-identically** to an
//!   uninterrupted one.
//!
//! [`server`] wraps the registry in a socket server — unix by default,
//! TCP via [`server::ServeEndpoint::Tcp`], or both at once — speaking the
//! same length-delimited framed protocol as `crates/exec`'s persistent
//! workers. The normative wire contract (frame layout, verbs, the
//! `hello` handshake, error replies, float formatting) is documented in
//! `docs/PROTOCOL.md` at the repository root.

pub mod registry;
pub mod server;

pub use registry::{
    IngestReport, QueryAnswer, RegistryConfig, RegistryStats, SessionRegistry, SessionStat,
};
pub use server::{run_server, run_server_on, ServeClient, ServeEndpoint};

/// Why a serve-layer operation failed. Every variant maps to a clean
/// protocol-level `err` reply; none of them can corrupt session state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// The session is unknown to the registry and the store.
    UnknownSession,
    /// The session exists but has processed no points yet.
    EmptySession,
    /// A batch point's dimension disagrees with the session's.
    DimensionMismatch {
        /// The session's pinned dimension.
        expected: usize,
        /// The offending point's dimension.
        got: usize,
    },
    /// A persisted session was built under a different `τ`.
    TauMismatch {
        /// The registry's `τ`.
        expected: u64,
        /// The stored session's `τ`.
        found: u64,
    },
    /// The operation needs a store (eviction/persistence) but none is
    /// configured.
    NoStore,
    /// Persisted state failed the restore gate
    /// (`WeightedDoublingCoreset::from_snapshot`).
    RestoreFailed(String),
    /// An I/O error from the store.
    Io(String),
    /// A malformed request (bad parameters).
    BadRequest(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::UnknownSession => write!(f, "unknown session"),
            ServeError::EmptySession => write!(f, "session has no points"),
            ServeError::DimensionMismatch { expected, got } => {
                write!(
                    f,
                    "dimension mismatch: session is {expected}-d, point is {got}-d"
                )
            }
            ServeError::TauMismatch { expected, found } => {
                write!(
                    f,
                    "stored session has tau = {found}, registry wants {expected}"
                )
            }
            ServeError::NoStore => write!(f, "operation requires a session store"),
            ServeError::RestoreFailed(why) => write!(f, "session restore rejected: {why}"),
            ServeError::Io(why) => write!(f, "store i/o error: {why}"),
            ServeError::BadRequest(why) => write!(f, "bad request: {why}"),
        }
    }
}

impl std::error::Error for ServeError {}
