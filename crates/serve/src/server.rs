//! The socket front of the session registry — unix by default, TCP via
//! [`ServeEndpoint::Tcp`]; both may serve one registry at once.
//!
//! Speaks the same length-delimited framed protocol as `crates/exec`'s
//! persistent workers (`[u32 payload_len][u32 part_count]([u32 len][utf-8])*`,
//! 16 MiB cap; see `docs/PROTOCOL.md` for the normative contract) — one
//! request frame in, one reply frame out, per round:
//!
//! * `["ping"]` → `["ok", "pong"]`
//! * `["hello"]` (optionally with a `tau=N` announce) → `["ok", "hello",
//!   "proto=…", "version=…", "tau=…"]`; an announced `τ` that disagrees
//!   with the registry's replies `["err", …]` instead
//! * `["ingest", tenant, stream, p…]` — each `p` is a comma-separated
//!   coordinate list → `["ok", "processed=…", "resident=…", "phi=…",
//!   "restored=…"]`
//! * `["query", tenant, stream, k, z, eps]` → `["ok", "radius=…",
//!   "uncovered=…", "processed=…", "cached=…", "centers=N", c…]`
//! * `["evict", tenant, stream]` → `["ok", "evicted=true|false"]`
//! * `["stat", tenant, stream]` → `["ok", "resident=…", "processed=…",
//!   "points=…"]`
//! * `["stats"]` → `["ok", "sessions=…", "resident_sessions=…",
//!   "resident_points=…", "evictions=…", "restores=…", "snapshots=…"]`
//! * `["flush"]` → `["ok", "persisted=N"]`
//! * `["metrics"]` (or `["metrics", "prometheus"]`) → `["ok", <Prometheus
//!   text exposition of the process metrics registry>]`;
//!   `["metrics", "json"]` → `["ok", <kcenter-metrics/v1 JSON>]`
//! * `["shutdown"]` — flushes every resident session, replies
//!   `["ok", "bye"]`, and stops the server.
//!
//! Failures reply `["err", message]` and never tear the connection; a
//! clean client hang-up between frames ends that connection only.
//!
//! Floats cross the wire through Rust's shortest-round-trip formatting,
//! so every `ϕ`, radius, and coordinate re-parses **bit-exactly** — the
//! protocol preserves the workspace's determinism standard.

use std::io::{self, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use kcenter_exec::protocol::{read_frame, write_frame, PROTOCOL_VERSION};
use kcenter_metric::{Metric, Point};

use crate::{ServeError, SessionRegistry};

/// Formats a point for the wire: comma-separated shortest-round-trip
/// coordinates.
fn format_point(p: &Point) -> String {
    let coords: Vec<String> = p.coords().iter().map(|c| c.to_string()).collect();
    coords.join(",")
}

/// Parses a wire point; rejects empty and non-finite coordinates.
fn parse_point(s: &str) -> Result<Point, ServeError> {
    let coords: Result<Vec<f64>, _> = s.split(',').map(str::trim).map(str::parse).collect();
    let coords = coords.map_err(|e| ServeError::BadRequest(format!("bad coordinate: {e}")))?;
    Point::try_new(coords).map_err(|e| ServeError::BadRequest(format!("bad point: {e}")))
}

fn parse_num<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, ServeError>
where
    T::Err: std::fmt::Display,
{
    s.parse()
        .map_err(|e| ServeError::BadRequest(format!("bad {what} {s:?}: {e}")))
}

/// Handles one request frame; `Ok(false)` means the server should stop.
fn dispatch<M: Metric<Point> + Clone + Sync>(
    registry: &SessionRegistry<M>,
    parts: &[String],
) -> (Vec<String>, bool) {
    match handle(registry, parts) {
        Ok((reply, keep_going)) => (reply, keep_going),
        Err(err) => (vec!["err".into(), err.to_string()], true),
    }
}

fn handle<M: Metric<Point> + Clone + Sync>(
    registry: &SessionRegistry<M>,
    parts: &[String],
) -> Result<(Vec<String>, bool), ServeError> {
    let verb = parts
        .first()
        .ok_or_else(|| ServeError::BadRequest("empty frame".into()))?;
    let arg = |i: usize, what: &str| -> Result<&String, ServeError> {
        parts
            .get(i)
            .ok_or_else(|| ServeError::BadRequest(format!("missing {what}")))
    };
    match verb.as_str() {
        "ping" => Ok((vec!["ok".into(), "pong".into()], true)),
        "hello" => {
            // A client may announce the `τ` it expects; serving it a
            // registry built under a different `τ` would silently answer
            // from differently-shaped coresets, so mismatches are errors.
            let expected = registry.config().tau;
            for part in &parts[1..] {
                if let Some(announced) = part.strip_prefix("tau=") {
                    let found: usize = parse_num(announced, "tau")?;
                    if found != expected {
                        return Err(ServeError::TauMismatch {
                            expected: expected as u64,
                            found: found as u64,
                        });
                    }
                }
            }
            Ok((
                vec![
                    "ok".into(),
                    "hello".into(),
                    format!("proto={PROTOCOL_VERSION}"),
                    format!("version={}", env!("CARGO_PKG_VERSION")),
                    format!("tau={expected}"),
                ],
                true,
            ))
        }
        "ingest" => {
            let tenant = arg(1, "tenant")?;
            let stream = arg(2, "stream")?;
            let points: Result<Vec<Point>, ServeError> =
                parts[3..].iter().map(|s| parse_point(s)).collect();
            let report = registry.ingest(tenant, stream, points?)?;
            Ok((
                vec![
                    "ok".into(),
                    format!("processed={}", report.processed),
                    format!("resident={}", report.resident_points),
                    format!("phi={}", report.phi),
                    format!("restored={}", report.restored),
                ],
                true,
            ))
        }
        "query" => {
            let tenant = arg(1, "tenant")?;
            let stream = arg(2, "stream")?;
            let k: usize = parse_num(arg(3, "k")?, "k")?;
            let z: u64 = parse_num(arg(4, "z")?, "z")?;
            let eps: f64 = parse_num(arg(5, "eps")?, "eps")?;
            let answer = registry.query(tenant, stream, k, z, eps)?;
            let mut reply = vec![
                "ok".into(),
                format!("radius={}", answer.radius),
                format!("uncovered={}", answer.uncovered_weight),
                format!("processed={}", answer.processed),
                format!("cached={}", answer.cached),
                format!("centers={}", answer.centers.len()),
            ];
            reply.extend(answer.centers.iter().map(format_point));
            Ok((reply, true))
        }
        "evict" => {
            let evicted = registry.evict(arg(1, "tenant")?, arg(2, "stream")?)?;
            Ok((vec!["ok".into(), format!("evicted={evicted}")], true))
        }
        "stat" => {
            let stat = registry.session_stat(arg(1, "tenant")?, arg(2, "stream")?)?;
            Ok((
                vec![
                    "ok".into(),
                    format!("resident={}", stat.resident),
                    format!("processed={}", stat.processed),
                    format!("points={}", stat.memory_points),
                ],
                true,
            ))
        }
        "stats" => {
            let s = registry.stats();
            Ok((
                vec![
                    "ok".into(),
                    format!("sessions={}", s.sessions),
                    format!("resident_sessions={}", s.resident_sessions),
                    format!("resident_points={}", s.resident_points),
                    format!("evictions={}", s.evictions),
                    format!("restores={}", s.restores),
                    format!("snapshots={}", s.snapshots),
                ],
                true,
            ))
        }
        "flush" => {
            let written = registry.flush()?;
            Ok((vec!["ok".into(), format!("persisted={written}")], true))
        }
        "shutdown" => {
            registry.flush()?;
            Ok((vec!["ok".into(), "bye".into()], false))
        }
        "metrics" => {
            // Gauges mirror live registry state at scrape time; counters
            // accumulate at their increment sites.
            let s = registry.stats();
            kcenter_obs::gauge("serve.sessions.known").set(s.sessions as u64);
            kcenter_obs::gauge("serve.sessions.resident").set(s.resident_sessions as u64);
            kcenter_obs::gauge("serve.points.resident").set(s.resident_points as u64);
            let body = match parts.get(1).map(String::as_str) {
                None | Some("prometheus") => kcenter_obs::render_prometheus(),
                Some("json") => kcenter_obs::render_json(),
                Some(other) => {
                    return Err(ServeError::BadRequest(format!(
                        "unknown metrics format {other:?}"
                    )))
                }
            };
            Ok((vec!["ok".into(), body], true))
        }
        other => Err(ServeError::BadRequest(format!("unknown verb {other:?}"))),
    }
}

/// One connection's request loop; returns `false` when a shutdown was
/// requested on it.
fn serve_connection<M: Metric<Point> + Clone + Sync, R: Read, W: Write>(
    registry: &SessionRegistry<M>,
    mut reader: R,
    mut writer: W,
) -> io::Result<bool> {
    while let Some(parts) = read_frame(&mut reader)? {
        let (reply, keep_going) = dispatch(registry, &parts);
        write_frame(&mut writer, &reply)?;
        if !keep_going {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Where a serve listener binds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeEndpoint {
    /// A unix-domain socket at this path (the default front).
    Unix(PathBuf),
    /// A TCP listener at this `host:port` address (a leading `tcp://`
    /// scheme prefix is accepted and stripped). Port `0` binds an
    /// ephemeral port; the resolved address is announced on stdout as
    /// `kcenter-serve: listening on tcp://HOST:PORT`.
    Tcp(String),
}

/// A bound listener plus what is needed to wake and clean it up.
enum BoundListener {
    Unix(UnixListener, PathBuf),
    Tcp(TcpListener),
}

/// How a stopping server pokes a (possibly blocked) accept loop awake.
#[derive(Clone)]
enum WakeTarget {
    Unix(PathBuf),
    Tcp(SocketAddr),
}

/// Connects-and-drops to every listener so each accept loop observes the
/// stop flag instead of blocking forever.
fn wake_all(targets: &[WakeTarget]) {
    for target in targets {
        match target {
            WakeTarget::Unix(path) => {
                let _ = UnixStream::connect(path);
            }
            WakeTarget::Tcp(addr) => {
                let _ = TcpStream::connect(addr);
            }
        }
    }
}

/// One listener's accept loop: serves connections on their own threads
/// until the shared stop flag is raised (by a `["shutdown"]` on *any*
/// listener), then joins its connections.
fn accept_loop<M: Metric<Point> + Clone + Send + Sync + 'static>(
    bound: BoundListener,
    registry: Arc<SessionRegistry<M>>,
    stop: Arc<AtomicBool>,
    wake: Arc<Vec<WakeTarget>>,
) {
    let mut workers = Vec::new();
    loop {
        if stop.load(Ordering::Acquire) {
            break;
        }
        // Both arms produce the connection as a (reader, writer) pair so
        // one framed loop serves either stream flavour.
        let served: io::Result<bool> = match &bound {
            BoundListener::Unix(listener, _) => match listener.accept() {
                Ok((conn, _)) if stop.load(Ordering::Acquire) => {
                    drop(conn);
                    break;
                }
                Ok((conn, _)) => {
                    let registry = Arc::clone(&registry);
                    let stop = Arc::clone(&stop);
                    let wake = Arc::clone(&wake);
                    workers.push(std::thread::spawn(move || {
                        let halves = conn.try_clone().map(|r| (BufReader::new(r), conn));
                        finish_connection(
                            halves.and_then(|(r, w)| serve_connection(registry.as_ref(), r, w)),
                            &stop,
                            &wake,
                        );
                    }));
                    continue;
                }
                Err(err) => Err(err).map(|()| true),
            },
            BoundListener::Tcp(listener) => match listener.accept() {
                Ok((conn, _)) if stop.load(Ordering::Acquire) => {
                    drop(conn);
                    break;
                }
                Ok((conn, _)) => {
                    let _ = conn.set_nodelay(true);
                    let registry = Arc::clone(&registry);
                    let stop = Arc::clone(&stop);
                    let wake = Arc::clone(&wake);
                    workers.push(std::thread::spawn(move || {
                        let halves = conn.try_clone().map(|r| (BufReader::new(r), conn));
                        finish_connection(
                            halves.and_then(|(r, w)| serve_connection(registry.as_ref(), r, w)),
                            &stop,
                            &wake,
                        );
                    }));
                    continue;
                }
                Err(err) => Err(err).map(|()| true),
            },
        };
        if let Err(err) = served {
            eprintln!("kcenter-serve: accept error: {err}");
            break;
        }
    }
    for worker in workers {
        let _ = worker.join();
    }
}

/// Routes one finished connection's outcome: a shutdown request raises
/// the stop flag and wakes every listener; errors are reported without
/// touching other connections.
fn finish_connection(outcome: io::Result<bool>, stop: &AtomicBool, wake: &[WakeTarget]) {
    match outcome {
        Ok(true) => {}
        Ok(false) => {
            stop.store(true, Ordering::Release);
            wake_all(wake);
        }
        Err(err) => eprintln!("kcenter-serve: connection error: {err}"),
    }
}

/// Binds every endpoint and serves the registry until a client sends
/// `["shutdown"]` on any of them. Every resident session is flushed to
/// the store (when one is configured) before the listeners wind down.
///
/// Each bound endpoint is announced on stdout as
/// `kcenter-serve: listening on unix:PATH` / `tcp://HOST:PORT` — the
/// TCP line is how callers learn an ephemeral (`:0`) port. Stale unix
/// socket files are removed before binding and again on clean shutdown.
pub fn run_server_on<M: Metric<Point> + Clone + Send + Sync + 'static>(
    endpoints: &[ServeEndpoint],
    registry: SessionRegistry<M>,
) -> io::Result<()> {
    if endpoints.is_empty() {
        return Err(io::Error::other("serve requires at least one endpoint"));
    }
    let mut bound = Vec::with_capacity(endpoints.len());
    let mut wake = Vec::with_capacity(endpoints.len());
    for endpoint in endpoints {
        match endpoint {
            ServeEndpoint::Unix(path) => {
                let _ = std::fs::remove_file(path);
                let listener = UnixListener::bind(path)?;
                println!("kcenter-serve: listening on unix:{}", path.display());
                wake.push(WakeTarget::Unix(path.clone()));
                bound.push(BoundListener::Unix(listener, path.clone()));
            }
            ServeEndpoint::Tcp(addr) => {
                let addr = addr.strip_prefix("tcp://").unwrap_or(addr);
                let listener = TcpListener::bind(addr)?;
                let local = listener.local_addr()?;
                println!("kcenter-serve: listening on tcp://{local}");
                wake.push(WakeTarget::Tcp(local));
                bound.push(BoundListener::Tcp(listener));
            }
        }
    }
    let _ = std::io::stdout().flush();
    let registry = Arc::new(registry);
    let stop = Arc::new(AtomicBool::new(false));
    let wake = Arc::new(wake);
    let sockets: Vec<PathBuf> = bound
        .iter()
        .filter_map(|b| match b {
            BoundListener::Unix(_, path) => Some(path.clone()),
            BoundListener::Tcp(_) => None,
        })
        .collect();
    let acceptors: Vec<_> = bound
        .into_iter()
        .map(|listener| {
            let registry = Arc::clone(&registry);
            let stop = Arc::clone(&stop);
            let wake = Arc::clone(&wake);
            std::thread::spawn(move || accept_loop(listener, registry, stop, wake))
        })
        .collect();
    for acceptor in acceptors {
        let _ = acceptor.join();
    }
    for socket in sockets {
        let _ = std::fs::remove_file(socket);
    }
    Ok(())
}

/// Binds `socket` and serves the registry until a client sends
/// `["shutdown"]` — the single-endpoint unix wrapper around
/// [`run_server_on`].
pub fn run_server<M: Metric<Point> + Clone + Send + Sync + 'static>(
    socket: &Path,
    registry: SessionRegistry<M>,
) -> io::Result<()> {
    run_server_on(&[ServeEndpoint::Unix(socket.to_path_buf())], registry)
}

/// A thin client for the serve protocol — what the CLI subcommand and the
/// soak test drive. Transport-agnostic: [`ServeClient::connect`] speaks
/// over a unix socket, [`ServeClient::connect_tcp`] over TCP, and every
/// request behaves identically on both.
pub struct ServeClient {
    reader: BufReader<Box<dyn Read + Send>>,
    writer: Box<dyn Write + Send>,
}

impl ServeClient {
    /// Connects to a serve unix socket.
    pub fn connect(socket: &Path) -> io::Result<Self> {
        let stream = UnixStream::connect(socket)?;
        Ok(ServeClient {
            reader: BufReader::new(Box::new(stream.try_clone()?)),
            writer: Box::new(stream),
        })
    }

    /// Connects to a serve TCP listener at `host:port` (a leading
    /// `tcp://` is accepted and stripped).
    pub fn connect_tcp(addr: &str) -> io::Result<Self> {
        let addr = addr.strip_prefix("tcp://").unwrap_or(addr);
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(ServeClient {
            reader: BufReader::new(Box::new(stream.try_clone()?)),
            writer: Box::new(stream),
        })
    }

    /// Performs the `hello` handshake, optionally announcing the `τ`
    /// this client expects; a mismatch is an error reply.
    pub fn hello(&mut self, tau: Option<u64>) -> io::Result<Vec<String>> {
        let mut parts = vec!["hello".to_string()];
        if let Some(tau) = tau {
            parts.push(format!("tau={tau}"));
        }
        self.request(&parts)
    }

    /// Sends one request frame and returns the reply parts.
    ///
    /// An `["err", …]` reply becomes an `io::Error` of kind `Other`, so
    /// callers can't mistake a protocol-level failure for data.
    pub fn request(&mut self, parts: &[String]) -> io::Result<Vec<String>> {
        write_frame(&mut self.writer, parts)?;
        let reply = read_frame(&mut self.reader)?
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "server hung up"))?;
        if reply.first().map(String::as_str) == Some("err") {
            return Err(io::Error::other(reply.get(1).cloned().unwrap_or_default()));
        }
        Ok(reply)
    }

    /// Ingests a batch of points.
    pub fn ingest(
        &mut self,
        tenant: &str,
        stream: &str,
        points: &[Point],
    ) -> io::Result<Vec<String>> {
        let mut parts = vec!["ingest".to_string(), tenant.to_string(), stream.to_string()];
        parts.extend(points.iter().map(format_point));
        self.request(&parts)
    }

    /// Queries a session; returns the reply parts
    /// (`radius=…`/`uncovered=…`/… then the centers).
    pub fn query(
        &mut self,
        tenant: &str,
        stream: &str,
        k: usize,
        z: u64,
        eps: f64,
    ) -> io::Result<Vec<String>> {
        self.request(&[
            "query".to_string(),
            tenant.to_string(),
            stream.to_string(),
            k.to_string(),
            z.to_string(),
            eps.to_string(),
        ])
    }

    /// Evicts a session; returns whether it was resident.
    pub fn evict(&mut self, tenant: &str, stream: &str) -> io::Result<bool> {
        let reply = self.request(&["evict".to_string(), tenant.to_string(), stream.to_string()])?;
        Ok(reply.iter().any(|p| p == "evicted=true"))
    }

    /// Scrapes the server's metrics registry. `format` is `None` (or
    /// `Some("prometheus")`) for Prometheus text exposition,
    /// `Some("json")` for the `kcenter-metrics/v1` JSON rendering; the
    /// returned string is the exposition body.
    pub fn metrics(&mut self, format: Option<&str>) -> io::Result<String> {
        let mut parts = vec!["metrics".to_string()];
        if let Some(format) = format {
            parts.push(format.to_string());
        }
        let reply = self.request(&parts)?;
        reply
            .get(1)
            .cloned()
            .ok_or_else(|| io::Error::other("metrics reply missing body"))
    }

    /// Asks the server to flush and stop.
    pub fn shutdown(&mut self) -> io::Result<()> {
        self.request(&["shutdown".to_string()]).map(|_| ())
    }
}

/// Pulls `key=value` out of a reply's parts — shared by the CLI's output
/// formatting and the tests' assertions.
pub fn reply_field<'a>(parts: &'a [String], key: &str) -> Option<&'a str> {
    let prefix = format!("{key}=");
    parts.iter().find_map(|p| p.strip_prefix(&prefix))
}
