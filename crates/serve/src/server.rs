//! The unix-socket front of the session registry.
//!
//! Speaks the same length-delimited framed protocol as `crates/exec`'s
//! persistent workers (`[u32 payload_len][u32 part_count]([u32 len][utf-8])*`,
//! 16 MiB cap) — one request frame in, one reply frame out, per round:
//!
//! * `["ping"]` → `["ok", "pong"]`
//! * `["ingest", tenant, stream, p…]` — each `p` is a comma-separated
//!   coordinate list → `["ok", "processed=…", "resident=…", "phi=…",
//!   "restored=…"]`
//! * `["query", tenant, stream, k, z, eps]` → `["ok", "radius=…",
//!   "uncovered=…", "processed=…", "cached=…", "centers=N", c…]`
//! * `["evict", tenant, stream]` → `["ok", "evicted=true|false"]`
//! * `["stat", tenant, stream]` → `["ok", "resident=…", "processed=…",
//!   "points=…"]`
//! * `["stats"]` → `["ok", "sessions=…", "resident_sessions=…",
//!   "resident_points=…", "evictions=…", "restores=…", "snapshots=…"]`
//! * `["flush"]` → `["ok", "persisted=N"]`
//! * `["shutdown"]` — flushes every resident session, replies
//!   `["ok", "bye"]`, and stops the server.
//!
//! Failures reply `["err", message]` and never tear the connection; a
//! clean client hang-up between frames ends that connection only.
//!
//! Floats cross the wire through Rust's shortest-round-trip formatting,
//! so every `ϕ`, radius, and coordinate re-parses **bit-exactly** — the
//! protocol preserves the workspace's determinism standard.

use std::io::{self, BufReader};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use kcenter_exec::protocol::{read_frame, write_frame};
use kcenter_metric::{Metric, Point};

use crate::{ServeError, SessionRegistry};

/// Formats a point for the wire: comma-separated shortest-round-trip
/// coordinates.
fn format_point(p: &Point) -> String {
    let coords: Vec<String> = p.coords().iter().map(|c| c.to_string()).collect();
    coords.join(",")
}

/// Parses a wire point; rejects empty and non-finite coordinates.
fn parse_point(s: &str) -> Result<Point, ServeError> {
    let coords: Result<Vec<f64>, _> = s.split(',').map(str::trim).map(str::parse).collect();
    let coords = coords.map_err(|e| ServeError::BadRequest(format!("bad coordinate: {e}")))?;
    Point::try_new(coords).map_err(|e| ServeError::BadRequest(format!("bad point: {e}")))
}

fn parse_num<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, ServeError>
where
    T::Err: std::fmt::Display,
{
    s.parse()
        .map_err(|e| ServeError::BadRequest(format!("bad {what} {s:?}: {e}")))
}

/// Handles one request frame; `Ok(false)` means the server should stop.
fn dispatch<M: Metric<Point> + Clone + Sync>(
    registry: &SessionRegistry<M>,
    parts: &[String],
) -> (Vec<String>, bool) {
    match handle(registry, parts) {
        Ok((reply, keep_going)) => (reply, keep_going),
        Err(err) => (vec!["err".into(), err.to_string()], true),
    }
}

fn handle<M: Metric<Point> + Clone + Sync>(
    registry: &SessionRegistry<M>,
    parts: &[String],
) -> Result<(Vec<String>, bool), ServeError> {
    let verb = parts
        .first()
        .ok_or_else(|| ServeError::BadRequest("empty frame".into()))?;
    let arg = |i: usize, what: &str| -> Result<&String, ServeError> {
        parts
            .get(i)
            .ok_or_else(|| ServeError::BadRequest(format!("missing {what}")))
    };
    match verb.as_str() {
        "ping" => Ok((vec!["ok".into(), "pong".into()], true)),
        "ingest" => {
            let tenant = arg(1, "tenant")?;
            let stream = arg(2, "stream")?;
            let points: Result<Vec<Point>, ServeError> =
                parts[3..].iter().map(|s| parse_point(s)).collect();
            let report = registry.ingest(tenant, stream, points?)?;
            Ok((
                vec![
                    "ok".into(),
                    format!("processed={}", report.processed),
                    format!("resident={}", report.resident_points),
                    format!("phi={}", report.phi),
                    format!("restored={}", report.restored),
                ],
                true,
            ))
        }
        "query" => {
            let tenant = arg(1, "tenant")?;
            let stream = arg(2, "stream")?;
            let k: usize = parse_num(arg(3, "k")?, "k")?;
            let z: u64 = parse_num(arg(4, "z")?, "z")?;
            let eps: f64 = parse_num(arg(5, "eps")?, "eps")?;
            let answer = registry.query(tenant, stream, k, z, eps)?;
            let mut reply = vec![
                "ok".into(),
                format!("radius={}", answer.radius),
                format!("uncovered={}", answer.uncovered_weight),
                format!("processed={}", answer.processed),
                format!("cached={}", answer.cached),
                format!("centers={}", answer.centers.len()),
            ];
            reply.extend(answer.centers.iter().map(format_point));
            Ok((reply, true))
        }
        "evict" => {
            let evicted = registry.evict(arg(1, "tenant")?, arg(2, "stream")?)?;
            Ok((vec!["ok".into(), format!("evicted={evicted}")], true))
        }
        "stat" => {
            let stat = registry.session_stat(arg(1, "tenant")?, arg(2, "stream")?)?;
            Ok((
                vec![
                    "ok".into(),
                    format!("resident={}", stat.resident),
                    format!("processed={}", stat.processed),
                    format!("points={}", stat.memory_points),
                ],
                true,
            ))
        }
        "stats" => {
            let s = registry.stats();
            Ok((
                vec![
                    "ok".into(),
                    format!("sessions={}", s.sessions),
                    format!("resident_sessions={}", s.resident_sessions),
                    format!("resident_points={}", s.resident_points),
                    format!("evictions={}", s.evictions),
                    format!("restores={}", s.restores),
                    format!("snapshots={}", s.snapshots),
                ],
                true,
            ))
        }
        "flush" => {
            let written = registry.flush()?;
            Ok((vec!["ok".into(), format!("persisted={written}")], true))
        }
        "shutdown" => {
            registry.flush()?;
            Ok((vec!["ok".into(), "bye".into()], false))
        }
        other => Err(ServeError::BadRequest(format!("unknown verb {other:?}"))),
    }
}

/// One connection's request loop; returns `false` when a shutdown was
/// requested on it.
fn serve_connection<M: Metric<Point> + Clone + Sync>(
    registry: &SessionRegistry<M>,
    stream: UnixStream,
) -> io::Result<bool> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    while let Some(parts) = read_frame(&mut reader)? {
        let (reply, keep_going) = dispatch(registry, &parts);
        write_frame(&mut writer, &reply)?;
        if !keep_going {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Binds `socket` and serves the registry until a client sends
/// `["shutdown"]`. Every resident session is flushed to the store (when
/// one is configured) before the listener winds down.
///
/// A stale socket file from a previous run is removed before binding; the
/// file is removed again on clean shutdown.
pub fn run_server<M: Metric<Point> + Clone + Send + Sync + 'static>(
    socket: &Path,
    registry: SessionRegistry<M>,
) -> io::Result<()> {
    let _ = std::fs::remove_file(socket);
    let listener = UnixListener::bind(socket)?;
    let registry = Arc::new(registry);
    let stop = Arc::new(AtomicBool::new(false));
    let mut workers = Vec::new();
    for conn in listener.incoming() {
        if stop.load(Ordering::Acquire) {
            break;
        }
        let conn = conn?;
        let registry = Arc::clone(&registry);
        let stop_flag = Arc::clone(&stop);
        let wake_path = socket.to_path_buf();
        workers.push(std::thread::spawn(move || {
            match serve_connection(registry.as_ref(), conn) {
                Ok(true) => {}
                Ok(false) => {
                    // Shutdown requested: flag it and poke the accept loop
                    // so it observes the flag instead of blocking forever.
                    stop_flag.store(true, Ordering::Release);
                    let _ = UnixStream::connect(&wake_path);
                }
                Err(err) => eprintln!("kcenter-serve: connection error: {err}"),
            }
        }));
    }
    for worker in workers {
        let _ = worker.join();
    }
    let _ = std::fs::remove_file(socket);
    Ok(())
}

/// A thin client for the serve protocol — what the CLI subcommand and the
/// soak test drive.
pub struct ServeClient {
    reader: BufReader<UnixStream>,
    writer: UnixStream,
}

impl ServeClient {
    /// Connects to a serve socket.
    pub fn connect(socket: &Path) -> io::Result<Self> {
        let stream = UnixStream::connect(socket)?;
        Ok(ServeClient {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
        })
    }

    /// Sends one request frame and returns the reply parts.
    ///
    /// An `["err", …]` reply becomes an `io::Error` of kind `Other`, so
    /// callers can't mistake a protocol-level failure for data.
    pub fn request(&mut self, parts: &[String]) -> io::Result<Vec<String>> {
        write_frame(&mut self.writer, parts)?;
        let reply = read_frame(&mut self.reader)?
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "server hung up"))?;
        if reply.first().map(String::as_str) == Some("err") {
            return Err(io::Error::other(reply.get(1).cloned().unwrap_or_default()));
        }
        Ok(reply)
    }

    /// Ingests a batch of points.
    pub fn ingest(
        &mut self,
        tenant: &str,
        stream: &str,
        points: &[Point],
    ) -> io::Result<Vec<String>> {
        let mut parts = vec!["ingest".to_string(), tenant.to_string(), stream.to_string()];
        parts.extend(points.iter().map(format_point));
        self.request(&parts)
    }

    /// Queries a session; returns the reply parts
    /// (`radius=…`/`uncovered=…`/… then the centers).
    pub fn query(
        &mut self,
        tenant: &str,
        stream: &str,
        k: usize,
        z: u64,
        eps: f64,
    ) -> io::Result<Vec<String>> {
        self.request(&[
            "query".to_string(),
            tenant.to_string(),
            stream.to_string(),
            k.to_string(),
            z.to_string(),
            eps.to_string(),
        ])
    }

    /// Evicts a session; returns whether it was resident.
    pub fn evict(&mut self, tenant: &str, stream: &str) -> io::Result<bool> {
        let reply = self.request(&["evict".to_string(), tenant.to_string(), stream.to_string()])?;
        Ok(reply.iter().any(|p| p == "evicted=true"))
    }

    /// Asks the server to flush and stop.
    pub fn shutdown(&mut self) -> io::Result<()> {
        self.request(&["shutdown".to_string()]).map(|_| ())
    }
}

/// Pulls `key=value` out of a reply's parts — shared by the CLI's output
/// formatting and the tests' assertions.
pub fn reply_field<'a>(parts: &'a [String], key: &str) -> Option<&'a str> {
    let prefix = format!("{key}=");
    parts.iter().find_map(|p| p.strip_prefix(&prefix))
}
