//! Serve-layer integration tests: evict/restore transparency, persistence
//! across registry instances, and the unix-socket protocol end to end.

use std::path::PathBuf;

use kcenter_metric::{Euclidean, Point};
use kcenter_serve::server::reply_field;
use kcenter_serve::{run_server, RegistryConfig, ServeClient, ServeError, SessionRegistry};
use kcenter_store::ArtifactStore;

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("kcenter-serve-tests")
        .join(format!("{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A deterministic per-session point stream.
fn session_points(seed: u64, n: usize) -> Vec<Point> {
    (0..n)
        .map(|i| {
            let a = ((i as u64).wrapping_mul(2654435761).wrapping_add(seed * 97)) % 1000;
            let b = ((i as u64).wrapping_mul(40503).wrapping_add(seed * 131)) % 1000;
            Point::new(vec![a as f64 * 0.5, b as f64 * 0.25])
        })
        .collect()
}

fn config(tau: usize, budget: Option<usize>) -> RegistryConfig {
    RegistryConfig {
        tau,
        memory_budget_points: budget,
        snapshot_every: 0,
        ingest_buffer: 32,
    }
}

#[test]
fn eviction_pressure_is_transparent_bitwise() {
    // Reference: every session resident forever.
    let reference = SessionRegistry::new(Euclidean, config(16, None), None).unwrap();
    // Under test: a budget small enough that 8 sessions (≤ 17 points each)
    // cannot all stay resident, forcing evict/restore churn mid-stream.
    let dir = tmp_dir("evict-transparent");
    let store = ArtifactStore::open(&dir).unwrap();
    let squeezed = SessionRegistry::new(Euclidean, config(16, Some(40)), Some(store)).unwrap();

    let sessions: Vec<(String, String)> = (0..8)
        .map(|i| (format!("tenant-{}", i % 3), format!("stream-{i}")))
        .collect();
    // Interleave batches across sessions so LRU churn hits mid-stream.
    for round in 0..6 {
        for (i, (tenant, stream)) in sessions.iter().enumerate() {
            let points = session_points(i as u64 + 1, 250);
            let batch = points[round * 40..(round + 1) * 40].to_vec();
            reference.ingest(tenant, stream, batch.clone()).unwrap();
            squeezed.ingest(tenant, stream, batch).unwrap();
        }
    }
    let stats = squeezed.stats();
    assert!(
        stats.evictions > 0 && stats.restores > 0,
        "the budget must actually force churn, got {stats:?}"
    );
    assert_eq!(stats.sessions, 8, "zero session loss");

    for (tenant, stream) in &sessions {
        let a = reference.query(tenant, stream, 3, 5, 0.25).unwrap();
        let b = squeezed.query(tenant, stream, 3, 5, 0.25).unwrap();
        assert_eq!(a.processed, b.processed);
        assert_eq!(a.radius.to_bits(), b.radius.to_bits(), "{tenant}/{stream}");
        assert_eq!(a.uncovered_weight, b.uncovered_weight);
        assert_eq!(a.centers.len(), b.centers.len());
        for (ca, cb) in a.centers.iter().zip(&b.centers) {
            for (x, y) in ca.coords().iter().zip(cb.coords()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }
}

#[test]
fn sessions_survive_registry_restarts() {
    let dir = tmp_dir("restart");
    let points = session_points(7, 300);
    let first_half = points[..150].to_vec();
    let second_half = points[150..].to_vec();

    {
        let store = ArtifactStore::open(&dir).unwrap();
        let registry = SessionRegistry::new(Euclidean, config(12, None), Some(store)).unwrap();
        registry.ingest("acme", "clicks", first_half).unwrap();
        assert_eq!(registry.flush().unwrap(), 1);
    }
    // A brand-new registry (server restart) picks the session up from the
    // store on first touch.
    let store = ArtifactStore::open(&dir).unwrap();
    let resumed = SessionRegistry::new(Euclidean, config(12, None), Some(store)).unwrap();
    let stat = resumed.session_stat("acme", "clicks").unwrap();
    assert_eq!(stat.processed, 150);
    assert!(!stat.resident);
    let report = resumed.ingest("acme", "clicks", second_half).unwrap();
    assert!(report.restored);
    assert_eq!(report.processed, 300);

    // And the continued stream matches an uninterrupted one bitwise.
    let uninterrupted = SessionRegistry::new(Euclidean, config(12, None), None).unwrap();
    uninterrupted.ingest("acme", "clicks", points).unwrap();
    let a = uninterrupted.query("acme", "clicks", 4, 3, 0.5).unwrap();
    let b = resumed.query("acme", "clicks", 4, 3, 0.5).unwrap();
    assert_eq!(a.radius.to_bits(), b.radius.to_bits());
    assert_eq!(a.uncovered_weight, b.uncovered_weight);
}

#[test]
fn restore_under_a_different_tau_is_rejected() {
    let dir = tmp_dir("tau-mismatch");
    {
        let store = ArtifactStore::open(&dir).unwrap();
        let registry = SessionRegistry::new(Euclidean, config(8, None), Some(store)).unwrap();
        registry.ingest("t", "s", session_points(1, 50)).unwrap();
        registry.flush().unwrap();
    }
    let store = ArtifactStore::open(&dir).unwrap();
    let other = SessionRegistry::new(Euclidean, config(16, None), Some(store)).unwrap();
    // τ is part of the fingerprint, so a registry with a different τ simply
    // does not see the old session — it can never silently re-interpret it.
    assert_eq!(
        other.session_stat("t", "s").unwrap_err(),
        ServeError::UnknownSession
    );
}

#[test]
fn registry_guards_its_contracts() {
    let registry = SessionRegistry::new(Euclidean, config(8, None), None).unwrap();
    // Unknown session.
    assert_eq!(
        registry.query("no", "body", 2, 0, 0.5).unwrap_err(),
        ServeError::UnknownSession
    );
    // Budget without a store is rejected at construction.
    let budget_no_store = SessionRegistry::new(Euclidean, config(8, Some(10)), None);
    assert!(matches!(budget_no_store, Err(ServeError::NoStore)));
    // Mixed dimensions within a batch leave the session untouched.
    registry
        .ingest("t", "s", vec![Point::new(vec![1.0, 2.0])])
        .unwrap();
    let err = registry
        .ingest("t", "s", vec![Point::new(vec![1.0])])
        .unwrap_err();
    assert!(matches!(err, ServeError::DimensionMismatch { .. }));
    assert_eq!(registry.session_stat("t", "s").unwrap().processed, 1);
    // Eviction without a store is an error, not a silent drop.
    assert_eq!(registry.evict("t", "s").unwrap_err(), ServeError::NoStore);
    // Bad query parameters.
    assert!(matches!(
        registry.query("t", "s", 0, 0, 0.5).unwrap_err(),
        ServeError::BadRequest(_)
    ));
    assert!(matches!(
        registry.query("t", "s", 2, 0, 0.0).unwrap_err(),
        ServeError::BadRequest(_)
    ));
}

#[test]
fn query_answers_are_memoized_per_stream_position() {
    let registry = SessionRegistry::new(Euclidean, config(8, None), None).unwrap();
    registry.ingest("t", "s", session_points(3, 100)).unwrap();
    let fresh = registry.query("t", "s", 3, 2, 0.25).unwrap();
    assert!(!fresh.cached);
    let memo = registry.query("t", "s", 3, 2, 0.25).unwrap();
    assert!(memo.cached);
    assert_eq!(fresh.radius.to_bits(), memo.radius.to_bits());
    // Any parameter change misses…
    assert!(!registry.query("t", "s", 4, 2, 0.25).unwrap().cached);
    // …and so does new data.
    registry.ingest("t", "s", session_points(3, 10)).unwrap();
    assert!(!registry.query("t", "s", 3, 2, 0.25).unwrap().cached);
}

#[test]
fn unix_socket_server_round_trips() {
    let dir = tmp_dir("server");
    std::fs::create_dir_all(&dir).unwrap();
    let socket = dir.join("serve.sock");
    let store = ArtifactStore::open(dir.join("cache")).unwrap();
    let registry = SessionRegistry::new(Euclidean, config(8, Some(20)), Some(store)).unwrap();
    let server = {
        let socket = socket.clone();
        std::thread::spawn(move || run_server(&socket, registry))
    };
    // Wait for the socket to appear.
    let mut client = loop {
        match ServeClient::connect(&socket) {
            Ok(c) => break c,
            Err(_) => std::thread::yield_now(),
        }
    };
    let pong = client.request(&["ping".to_string()]).unwrap();
    assert_eq!(pong, vec!["ok".to_string(), "pong".to_string()]);

    let points = session_points(9, 60);
    let reply = client.ingest("acme", "clicks", &points).unwrap();
    assert_eq!(reply_field(&reply, "processed"), Some("60"));

    let answer = client.query("acme", "clicks", 3, 2, 0.25).unwrap();
    let radius: f64 = reply_field(&answer, "radius").unwrap().parse().unwrap();
    assert!(radius.is_finite() && radius >= 0.0);
    let centers: usize = reply_field(&answer, "centers").unwrap().parse().unwrap();
    assert!((1..=3).contains(&centers));

    // Evict, then touch again: the reply must show a transparent restore
    // with the same processed count.
    assert!(client.evict("acme", "clicks").unwrap());
    let stat = client
        .request(&["stat".to_string(), "acme".to_string(), "clicks".to_string()])
        .unwrap();
    assert_eq!(reply_field(&stat, "resident"), Some("false"));
    assert_eq!(reply_field(&stat, "processed"), Some("60"));
    let again = client.query("acme", "clicks", 3, 2, 0.25).unwrap();
    assert_eq!(
        reply_field(&again, "radius").unwrap(),
        reply_field(&answer, "radius").unwrap(),
        "post-restore answer is bit-identical"
    );

    // Unknown verbs and malformed points are protocol-level errors, not
    // connection teardowns.
    assert!(client.request(&["warp".to_string()]).is_err());
    assert!(client
        .request(&[
            "ingest".to_string(),
            "a".to_string(),
            "b".to_string(),
            "1.0,NaN".to_string()
        ])
        .is_err());
    assert!(client.request(&["ping".to_string()]).is_ok());

    client.shutdown().unwrap();
    server.join().unwrap().unwrap();
    assert!(!socket.exists(), "socket cleaned up on shutdown");
}
