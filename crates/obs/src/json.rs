//! A minimal JSON reader/writer helper.
//!
//! The workspace vendors no serde, and observability needs JSON in two
//! places only: *emitting* trace records and registry snapshots (done
//! with formatters plus [`escape`]) and *validating* them in tests
//! (done with [`parse`]). This module is deliberately small: full JSON
//! syntax on the read side, strings/numbers on the write side.

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`; integral values round-trip exactly
    /// up to 2⁵³, far beyond any counter this workspace snapshots).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match), `None` for non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value as a `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// `true` if this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }
}

/// Escapes a string for embedding inside a JSON string literal
/// (everything between, not including, the quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Parses one complete JSON document.
///
/// # Errors
///
/// A human-readable description of the first syntax error, with its
/// byte offset.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut at = 0;
    let value = parse_value(bytes, &mut at)?;
    skip_ws(bytes, &mut at);
    if at != bytes.len() {
        return Err(format!("trailing content at byte {at}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], at: &mut usize) {
    while *at < bytes.len() && matches!(bytes[*at], b' ' | b'\t' | b'\n' | b'\r') {
        *at += 1;
    }
}

fn expect(bytes: &[u8], at: &mut usize, ch: u8) -> Result<(), String> {
    if bytes.get(*at) == Some(&ch) {
        *at += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", ch as char, at))
    }
}

fn parse_value(bytes: &[u8], at: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, at);
    match bytes.get(*at) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(bytes, at),
        Some(b'[') => parse_array(bytes, at),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, at)?)),
        Some(b't') => parse_literal(bytes, at, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, at, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, at, "null", Json::Null),
        Some(_) => parse_number(bytes, at),
    }
}

fn parse_literal(bytes: &[u8], at: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if bytes[*at..].starts_with(word.as_bytes()) {
        *at += word.len();
        Ok(value)
    } else {
        Err(format!("malformed literal at byte {at}"))
    }
}

fn parse_number(bytes: &[u8], at: &mut usize) -> Result<Json, String> {
    let start = *at;
    if bytes.get(*at) == Some(&b'-') {
        *at += 1;
    }
    while *at < bytes.len() && matches!(bytes[*at], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *at += 1;
    }
    std::str::from_utf8(&bytes[start..*at])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|n| n.is_finite())
        .map(Json::Num)
        .ok_or_else(|| format!("malformed number at byte {start}"))
}

fn parse_string(bytes: &[u8], at: &mut usize) -> Result<String, String> {
    expect(bytes, at, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*at) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *at += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *at += 1;
                match bytes.get(*at) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*at + 1..*at + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        // Surrogates don't appear in our own output; map
                        // them to the replacement character defensively.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *at += 4;
                    }
                    _ => return Err(format!("bad escape at byte {at}")),
                }
                *at += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so slicing
                // on char boundaries is guaranteed to succeed).
                let rest = &bytes[*at..];
                let s = std::str::from_utf8(rest).map_err(|_| "non-UTF-8 input")?;
                let ch = s.chars().next().unwrap();
                out.push(ch);
                *at += ch.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], at: &mut usize) -> Result<Json, String> {
    expect(bytes, at, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, at);
    if bytes.get(*at) == Some(&b']') {
        *at += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, at)?);
        skip_ws(bytes, at);
        match bytes.get(*at) {
            Some(b',') => *at += 1,
            Some(b']') => {
                *at += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {at}")),
        }
    }
}

fn parse_object(bytes: &[u8], at: &mut usize) -> Result<Json, String> {
    expect(bytes, at, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, at);
    if bytes.get(*at) == Some(&b'}') {
        *at += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, at);
        let key = parse_string(bytes, at)?;
        skip_ws(bytes, at);
        expect(bytes, at, b':')?;
        let value = parse_value(bytes, at)?;
        fields.push((key, value));
        skip_ws(bytes, at);
        match bytes.get(*at) {
            Some(b',') => *at += 1,
            Some(b'}') => {
                *at += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {at}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_shapes_trace_records_use() {
        let record = r#"{"type":"span","id":3,"parent":null,"name":"exec.round1","worker":null,"start_us":12,"dur_us":3400,"fields":{"partitions":"4"}}"#;
        let v = parse(record).unwrap();
        assert_eq!(v.get("type").and_then(Json::as_str), Some("span"));
        assert_eq!(v.get("id").and_then(Json::as_u64), Some(3));
        assert!(v.get("parent").unwrap().is_null());
        assert_eq!(
            v.get("fields")
                .and_then(|f| f.get("partitions"))
                .and_then(Json::as_str),
            Some("4")
        );
    }

    #[test]
    fn escapes_round_trip_through_the_parser() {
        let nasty = "a\"b\\c\nd\te\u{1}π";
        let doc = format!("{{\"s\":\"{}\"}}", escape(nasty));
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("s").and_then(Json::as_str), Some(nasty));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "\"unterminated",
            "01x",
            "{\"a\":1} trailing",
            "nul",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn numbers_arrays_and_nesting_parse() {
        let v = parse(r#"[0, -1.5, 1e3, [true, false, null], {"k": [2]}]"#).unwrap();
        let items = v.as_array().unwrap();
        assert_eq!(items[0].as_u64(), Some(0));
        assert_eq!(items[1].as_f64(), Some(-1.5));
        assert_eq!(items[2].as_f64(), Some(1000.0));
        assert_eq!(items[3].as_array().unwrap().len(), 3);
        assert_eq!(
            items[4]
                .get("k")
                .and_then(|k| k.as_array())
                .map(<[Json]>::len),
            Some(1)
        );
    }
}
