//! The structured trace sink: spans, events, and the JSONL record
//! stream behind `KCENTER_TRACE` / `--trace`.
//!
//! Tracing is **off by default** and costs only the span's histogram
//! observation (a few relaxed atomics) when off — no I/O, no
//! allocation beyond the span's name, no output anywhere. That is a
//! hard requirement: the golden determinism suites must be
//! byte-identical with the sink enabled or disabled, because all trace
//! bytes go to the trace file and nowhere else.
//!
//! Record schema (`kcenter-trace/v1`) — one JSON object per line:
//!
//! ```text
//! {"type":"meta","schema":"kcenter-trace/v1","pid":N}
//! {"type":"span","id":N,"parent":N|null,"name":S,"worker":N|null,
//!  "start_us":U,"dur_us":U,"fields":{K:V,…}}
//! {"type":"event","name":S,"at_us":U,"fields":{K:V,…}}
//! ```
//!
//! Timestamps are **microseconds since the sink was opened** (a
//! monotonic-clock epoch private to the process), never wall-clock —
//! traces from repeated runs diff structurally, and no record embeds
//! absolute time.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use crate::json::escape;
use crate::registry::histogram;

/// Environment variable naming the trace output file. Unset or empty
/// means tracing is disabled.
pub const TRACE_ENV: &str = "KCENTER_TRACE";

/// Schema identifier written into every trace file's `meta` record.
/// Bumped on any incompatible record-shape change.
pub const TRACE_SCHEMA: &str = "kcenter-trace/v1";

/// An open trace output: a monotonic epoch plus a line-buffered writer.
struct Sink {
    epoch: Instant,
    out: Mutex<BufWriter<File>>,
}

impl Sink {
    fn open(path: &str) -> std::io::Result<Sink> {
        let file = File::create(path)?;
        let sink = Sink {
            epoch: Instant::now(),
            out: Mutex::new(BufWriter::new(file)),
        };
        sink.write_line(&format!(
            "{{\"type\":\"meta\",\"schema\":\"{TRACE_SCHEMA}\",\"pid\":{}}}",
            std::process::id()
        ));
        Ok(sink)
    }

    /// Appends one line and flushes, so a crash loses at most the
    /// record being written.
    fn write_line(&self, line: &str) {
        if let Ok(mut out) = self.out.lock() {
            let _ = writeln!(out, "{line}");
            let _ = out.flush();
        }
    }

    fn micros_since_epoch(&self, t: Instant) -> u64 {
        t.checked_duration_since(self.epoch)
            .unwrap_or(Duration::ZERO)
            .as_micros()
            .min(u128::from(u64::MAX)) as u64
    }

    #[allow(clippy::too_many_arguments)] // one arg per record field
    fn span_line(
        &self,
        id: u64,
        parent: Option<u64>,
        name: &str,
        worker: Option<u64>,
        start_us: u64,
        dur_us: u64,
        fields: &[(String, String)],
    ) {
        let mut line = format!(
            "{{\"type\":\"span\",\"id\":{id},\"parent\":{},\"name\":\"{}\",\"worker\":{},\"start_us\":{start_us},\"dur_us\":{dur_us},\"fields\":{{",
            opt(parent),
            escape(name),
            opt(worker),
        );
        push_fields(&mut line, fields);
        line.push_str("}}");
        self.write_line(&line);
    }
}

fn opt(v: Option<u64>) -> String {
    v.map_or_else(|| "null".to_string(), |n| n.to_string())
}

fn push_fields(line: &mut String, fields: &[(String, String)]) {
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        line.push_str(&format!("\"{}\":\"{}\"", escape(k), escape(v)));
    }
}

static SINK: OnceLock<Option<Arc<Sink>>> = OnceLock::new();

/// Explicitly enables tracing to `path` (the CLI's `--trace` flag).
///
/// Must run before the first span resolves the sink; in practice the
/// CLI calls it at startup. Wins over [`TRACE_ENV`] when both are
/// present.
///
/// # Errors
///
/// When the file cannot be created, or when the sink was already
/// resolved (a second `--trace`, or a span already fired after the
/// environment variable resolved it).
pub fn init_trace(path: &str) -> Result<(), String> {
    let sink = Sink::open(path).map_err(|e| format!("cannot open trace file {path:?}: {e}"))?;
    SINK.set(Some(Arc::new(sink)))
        .map_err(|_| "trace sink already initialized".to_string())
}

/// The process sink: resolved once, lazily, from [`TRACE_ENV`] unless
/// [`init_trace`] got there first. A create failure on the env path is
/// best-effort (tracing silently stays off — env-driven tracing must
/// never fail a run).
fn sink() -> Option<Arc<Sink>> {
    SINK.get_or_init(|| {
        std::env::var(TRACE_ENV)
            .ok()
            .filter(|p| !p.is_empty())
            .and_then(|p| Sink::open(&p).ok().map(Arc::new))
    })
    .clone()
}

/// Whether a trace sink is live (records are being written).
pub fn trace_enabled() -> bool {
    sink().is_some()
}

fn next_span_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

thread_local! {
    /// The open-span stack of this thread; the top is the parent of the
    /// next span started here.
    static OPEN_SPANS: std::cell::RefCell<Vec<u64>> = const { std::cell::RefCell::new(Vec::new()) };
}

/// A timed region. Created by [`span`] (or the [`span!`](crate::span!)
/// macro), closed by [`Span::finish`] or on drop.
///
/// Closing **always** observes the elapsed time into the registry
/// histogram `{name}.micros`, so span names double as metric names;
/// a JSONL record is written only when the sink is live.
#[derive(Debug)]
pub struct Span {
    id: u64,
    parent: Option<u64>,
    name: String,
    start: Instant,
    fields: Vec<(String, String)>,
    done: bool,
}

/// Starts a span named `name`, parented to the innermost span still
/// open on this thread.
pub fn span(name: &str) -> Span {
    let id = next_span_id();
    let parent = OPEN_SPANS.with(|stack| {
        let mut stack = stack.borrow_mut();
        let parent = stack.last().copied();
        stack.push(id);
        parent
    });
    Span {
        id,
        parent,
        name: name.to_string(),
        start: Instant::now(),
        fields: Vec::new(),
        done: false,
    }
}

impl Span {
    /// This span's trace id — hand it to a child recorded via
    /// [`record_span`], or across a process boundary.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// When this span started (monotonic clock).
    pub fn start(&self) -> Instant {
        self.start
    }

    /// Attaches a key/value field to the eventual record (builder
    /// style).
    #[must_use]
    pub fn field(mut self, key: &str, value: impl std::fmt::Display) -> Span {
        self.fields.push((key.to_string(), value.to_string()));
        self
    }

    /// Attaches a key/value field in place (for fields only known
    /// mid-span).
    pub fn add_field(&mut self, key: &str, value: impl std::fmt::Display) {
        self.fields.push((key.to_string(), value.to_string()));
    }

    /// Ends the span, returning its duration (also fed to the
    /// `{name}.micros` histogram, and to the sink when live).
    pub fn finish(mut self) -> Duration {
        self.close()
    }

    fn close(&mut self) -> Duration {
        self.done = true;
        OPEN_SPANS.with(|stack| {
            let mut stack = stack.borrow_mut();
            if let Some(pos) = stack.iter().rposition(|&id| id == self.id) {
                stack.remove(pos);
            }
        });
        let dur = self.start.elapsed();
        histogram(&format!("{}.micros", self.name)).observe_duration(dur);
        if let Some(sink) = sink() {
            sink.span_line(
                self.id,
                self.parent,
                &self.name,
                None,
                sink.micros_since_epoch(self.start),
                dur.as_micros().min(u128::from(u64::MAX)) as u64,
                &self.fields,
            );
        }
        dur
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.done {
            self.close();
        }
    }
}

/// A span observed elsewhere (typically inside a fleet worker) that the
/// coordinator records into its own timeline — see [`record_span`].
#[derive(Debug)]
pub struct SpanRecord<'a> {
    /// Span name (also the `{name}.micros` histogram it feeds).
    pub name: &'a str,
    /// Parent span id in **this** process's trace, if any.
    pub parent: Option<u64>,
    /// The worker/partition the span is attributed to, if any.
    pub worker: Option<u64>,
    /// When the region started on this process's monotonic clock
    /// (`None` when unknown: `start_us` is then recorded as the span's
    /// end time minus its duration, clamped to the epoch).
    pub start: Option<Instant>,
    /// How long the region ran.
    pub dur: Duration,
    /// Key/value fields for the record.
    pub fields: &'a [(String, String)],
}

/// Records a span that was timed elsewhere — the cross-process half of
/// the tracing story. The coordinator calls this with the per-job
/// timings a worker piggybacks on its `ok` replies, producing one
/// merged per-worker timeline; the duration always feeds the
/// `{name}.micros` histogram. Returns the new span's id.
pub fn record_span(rec: SpanRecord<'_>) -> u64 {
    let id = next_span_id();
    histogram(&format!("{}.micros", rec.name)).observe_duration(rec.dur);
    if let Some(sink) = sink() {
        let dur_us = rec.dur.as_micros().min(u128::from(u64::MAX)) as u64;
        let start_us = match rec.start {
            Some(t) => sink.micros_since_epoch(t),
            None => sink
                .micros_since_epoch(Instant::now())
                .saturating_sub(dur_us),
        };
        sink.span_line(
            id, rec.parent, rec.name, rec.worker, start_us, dur_us, rec.fields,
        );
    }
    id
}

/// Emits a point-in-time event record (sink live only; no metric side
/// effect).
pub fn event(name: &str, fields: &[(String, String)]) {
    if let Some(sink) = sink() {
        let at_us = sink.micros_since_epoch(Instant::now());
        let mut line = format!(
            "{{\"type\":\"event\",\"name\":\"{}\",\"at_us\":{at_us},\"fields\":{{",
            escape(name)
        );
        push_fields(&mut line, fields);
        line.push_str("}}");
        sink.write_line(&line);
    }
}

/// Starts a [`Span`]: `span!("exec.round1")`, optionally with fields —
/// `span!("exec.round1", "partitions" => 4)`.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
    ($name:expr, $($k:expr => $v:expr),+ $(,)?) => {{
        let mut s = $crate::span($name);
        $( s = s.field($k, $v); )+
        s
    }};
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse, Json};

    /// Local sinks (not the process-global one) keep these tests
    /// independent of execution order and of each other.
    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("kcenter-obs-{tag}-{}.jsonl", std::process::id()))
    }

    #[test]
    fn spans_nest_per_thread_and_feed_histograms() {
        let outer = span("test.trace.outer");
        let inner = span("test.trace.inner");
        assert_eq!(inner.parent, Some(outer.id()));
        let sibling_parent = {
            let d = inner.finish();
            // finish() reports the measured duration...
            let h = crate::registry::histogram("test.trace.inner.micros");
            assert!(h.count() >= 1);
            // ...and pops the stack, so the next span parents to outer.
            let sib = span("test.trace.sibling");
            let p = sib.parent;
            drop(sib);
            let _ = d;
            p
        };
        assert_eq!(sibling_parent, Some(outer.id()));
        drop(outer);
        // A fresh root span has no parent.
        assert_eq!(span("test.trace.root").parent, None);
    }

    #[test]
    fn sink_writes_schema_stable_jsonl() {
        let path = temp_path("sink");
        let sink = Sink::open(path.to_str().unwrap()).unwrap();
        sink.span_line(
            7,
            None,
            "exec.round1",
            None,
            10,
            250,
            &[("partitions".to_string(), "4".to_string())],
        );
        sink.span_line(8, Some(7), "exec.worker.job", Some(2), 12, 100, &[]);
        drop(sink);
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        let meta = parse(lines[0]).unwrap();
        assert_eq!(meta.get("type").and_then(Json::as_str), Some("meta"));
        assert_eq!(
            meta.get("schema").and_then(Json::as_str),
            Some(TRACE_SCHEMA)
        );
        let root = parse(lines[1]).unwrap();
        assert_eq!(root.get("parent").map(Json::is_null), Some(true));
        assert_eq!(
            root.get("fields")
                .and_then(|f| f.get("partitions"))
                .and_then(Json::as_str),
            Some("4")
        );
        let child = parse(lines[2]).unwrap();
        assert_eq!(child.get("parent").and_then(Json::as_u64), Some(7));
        assert_eq!(child.get("worker").and_then(Json::as_u64), Some(2));
        assert_eq!(child.get("start_us").and_then(Json::as_u64), Some(12));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn record_span_feeds_the_named_histogram() {
        let before = crate::registry::histogram("test.trace.recorded.micros").count();
        let id = record_span(SpanRecord {
            name: "test.trace.recorded",
            parent: None,
            worker: Some(3),
            start: None,
            dur: Duration::from_micros(123),
            fields: &[],
        });
        assert!(id > 0);
        let h = crate::registry::histogram("test.trace.recorded.micros");
        assert_eq!(h.count(), before + 1);
        assert!(h.sum_micros() >= 123);
    }

    #[test]
    fn span_macro_supports_fields() {
        let s = crate::span!("test.trace.macro", "k" => 5, "algo" => "gmm");
        assert_eq!(s.fields.len(), 2);
        assert_eq!(s.fields[1], ("algo".to_string(), "gmm".to_string()));
        let _ = s.finish();
    }
}
