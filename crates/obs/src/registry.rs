//! The process-wide metrics registry: named counters, gauges, and
//! microsecond histograms behind cheap atomic handles.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::json::escape;

/// Upper bounds (inclusive, in microseconds) of the histogram buckets.
///
/// Powers of four from 16 µs to ~67 s: wide enough that a worker's
/// sub-millisecond merge and a multi-second round-1 build both land in
/// an interior bucket, coarse enough that a snapshot stays one line.
pub(crate) const HISTOGRAM_BOUNDS_US: [u64; 12] = [
    16, 64, 256, 1_024, 4_096, 16_384, 65_536, 262_144, 1_048_576, 4_194_304, 16_777_216,
    67_108_864,
];

/// A monotonically increasing counter.
///
/// Clones share the same underlying cell; incrementing is one relaxed
/// atomic add, so a handle can live in a hot loop.
#[derive(Clone, Debug)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can move both ways (resident sessions, resident
/// points). Stored as a `u64`, which covers every gauge this workspace
/// exposes.
#[derive(Clone, Debug)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the gauge to `v`.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug, Default)]
pub(crate) struct HistogramCells {
    count: AtomicU64,
    sum_us: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BOUNDS_US.len()],
}

/// A histogram of microsecond durations with fixed power-of-four
/// buckets (see the rendered `le=` bounds). Observing is a handful of
/// relaxed atomic adds; there is no lock and no allocation.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramCells>);

impl Histogram {
    /// Records one observation of `micros`.
    pub fn observe(&self, micros: u64) {
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum_us.fetch_add(micros, Ordering::Relaxed);
        for (i, bound) in HISTOGRAM_BOUNDS_US.iter().enumerate() {
            if micros <= *bound {
                self.0.buckets[i].fetch_add(1, Ordering::Relaxed);
                break;
            }
        }
        // Values above the last bound land only in the implicit +Inf
        // bucket, which renderers derive from `count`.
    }

    /// Records one observation of a [`std::time::Duration`].
    pub fn observe_duration(&self, d: std::time::Duration) {
        self.observe(d.as_micros().min(u128::from(u64::MAX)) as u64);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed microseconds.
    pub fn sum_micros(&self) -> u64 {
        self.0.sum_us.load(Ordering::Relaxed)
    }

    fn bucket_counts(&self) -> [u64; HISTOGRAM_BOUNDS_US.len()] {
        let mut out = [0u64; HISTOGRAM_BOUNDS_US.len()];
        for (slot, cell) in out.iter_mut().zip(self.0.buckets.iter()) {
            *slot = cell.load(Ordering::Relaxed);
        }
        out
    }
}

#[derive(Clone, Debug)]
enum Slot {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Slot {
    fn kind(&self) -> &'static str {
        match self {
            Slot::Counter(_) => "counter",
            Slot::Gauge(_) => "gauge",
            Slot::Histogram(_) => "histogram",
        }
    }
}

/// A registry of named metrics.
///
/// One process-wide instance lives behind [`registry`]; tests may build
/// private instances. Names are stable dotted paths — the dots become
/// underscores in the Prometheus rendering — and a name permanently
/// owns its kind: asking for `metric.store.hits` as a gauge after it
/// was registered as a counter is a programming error and panics.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    slots: Mutex<BTreeMap<String, Slot>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    fn slot(&self, name: &str, make: impl FnOnce() -> Slot) -> Slot {
        let mut slots = self.slots.lock().unwrap();
        slots.entry(name.to_string()).or_insert_with(make).clone()
    }

    /// Returns the counter registered under `name`, creating it on
    /// first use.
    ///
    /// # Panics
    ///
    /// If `name` is already registered as a different kind.
    pub fn counter(&self, name: &str) -> Counter {
        match self.slot(name, || Slot::Counter(Counter(Arc::new(AtomicU64::new(0))))) {
            Slot::Counter(c) => c,
            other => panic!("metric {name:?} is a {}, not a counter", other.kind()),
        }
    }

    /// Returns the gauge registered under `name`, creating it on first
    /// use.
    ///
    /// # Panics
    ///
    /// If `name` is already registered as a different kind.
    pub fn gauge(&self, name: &str) -> Gauge {
        match self.slot(name, || Slot::Gauge(Gauge(Arc::new(AtomicU64::new(0))))) {
            Slot::Gauge(g) => g,
            other => panic!("metric {name:?} is a {}, not a gauge", other.kind()),
        }
    }

    /// Returns the histogram registered under `name`, creating it on
    /// first use.
    ///
    /// # Panics
    ///
    /// If `name` is already registered as a different kind.
    pub fn histogram(&self, name: &str) -> Histogram {
        match self.slot(name, || {
            Slot::Histogram(Histogram(Arc::new(HistogramCells::default())))
        }) {
            Slot::Histogram(h) => h,
            other => panic!("metric {name:?} is a {}, not a histogram", other.kind()),
        }
    }

    /// A point-in-time snapshot of every registered metric, sorted by
    /// name.
    pub fn snapshot(&self) -> Vec<MetricSnapshot> {
        let slots = self.slots.lock().unwrap();
        slots
            .iter()
            .map(|(name, slot)| MetricSnapshot {
                name: name.clone(),
                value: match slot {
                    Slot::Counter(c) => MetricValue::Counter(c.get()),
                    Slot::Gauge(g) => MetricValue::Gauge(g.get()),
                    Slot::Histogram(h) => MetricValue::Histogram {
                        count: h.count(),
                        sum_micros: h.sum_micros(),
                        buckets: h.bucket_counts().to_vec(),
                    },
                },
            })
            .collect()
    }

    /// The current value of every **counter**, sorted by name — the
    /// shape a fleet worker diffs around a job to piggyback its deltas
    /// on the `ok` reply.
    pub fn counter_values(&self) -> Vec<(String, u64)> {
        let slots = self.slots.lock().unwrap();
        slots
            .iter()
            .filter_map(|(name, slot)| match slot {
                Slot::Counter(c) => Some((name.clone(), c.get())),
                _ => None,
            })
            .collect()
    }

    /// Renders the registry in the Prometheus text exposition format.
    ///
    /// Dotted names map to `kcenter_`-prefixed underscore names
    /// (`exec.round1.micros` → `kcenter_exec_round1_micros`); every
    /// family gets a `# TYPE` line; histograms expose cumulative
    /// `_bucket{le="…"}` series plus `_sum` and `_count`.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for snap in self.snapshot() {
            let name = prometheus_name(&snap.name);
            match snap.value {
                MetricValue::Counter(v) => {
                    out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
                }
                MetricValue::Gauge(v) => {
                    out.push_str(&format!("# TYPE {name} gauge\n{name} {v}\n"));
                }
                MetricValue::Histogram {
                    count,
                    sum_micros,
                    buckets,
                } => {
                    out.push_str(&format!("# TYPE {name} histogram\n"));
                    let mut cumulative = 0u64;
                    for (bound, in_bucket) in HISTOGRAM_BOUNDS_US.iter().zip(&buckets) {
                        cumulative += in_bucket;
                        out.push_str(&format!("{name}_bucket{{le=\"{bound}\"}} {cumulative}\n"));
                    }
                    out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {count}\n"));
                    out.push_str(&format!("{name}_sum {sum_micros}\n"));
                    out.push_str(&format!("{name}_count {count}\n"));
                }
            }
        }
        out
    }

    /// Renders the registry as one JSON object
    /// (`{"schema":"kcenter-metrics/v1","metrics":[…]}`), for the serve
    /// `metrics json` verb and `kcenter cluster --report json`.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"schema\":\"kcenter-metrics/v1\",\"metrics\":[");
        for (i, snap) in self.snapshot().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{{\"name\":\"{}\",", escape(&snap.name)));
            match &snap.value {
                MetricValue::Counter(v) => {
                    out.push_str(&format!("\"type\":\"counter\",\"value\":{v}}}"));
                }
                MetricValue::Gauge(v) => {
                    out.push_str(&format!("\"type\":\"gauge\",\"value\":{v}}}"));
                }
                MetricValue::Histogram {
                    count,
                    sum_micros,
                    buckets,
                } => {
                    out.push_str(&format!(
                        "\"type\":\"histogram\",\"count\":{count},\"sum_micros\":{sum_micros},\"buckets\":["
                    ));
                    for (j, (bound, in_bucket)) in
                        HISTOGRAM_BOUNDS_US.iter().zip(buckets).enumerate()
                    {
                        if j > 0 {
                            out.push(',');
                        }
                        out.push_str(&format!("{{\"le\":{bound},\"count\":{in_bucket}}}"));
                    }
                    out.push_str("]}");
                }
            }
        }
        out.push_str("]}");
        out
    }
}

/// Maps a dotted metric name to its Prometheus series name.
fn prometheus_name(dotted: &str) -> String {
    let mut out = String::from("kcenter_");
    for ch in dotted.chars() {
        if ch.is_ascii_alphanumeric() {
            out.push(ch);
        } else {
            out.push('_');
        }
    }
    out
}

/// One metric in a [`MetricsRegistry::snapshot`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MetricSnapshot {
    /// The dotted registry name.
    pub name: String,
    /// The value at snapshot time.
    pub value: MetricValue,
}

/// The value half of a [`MetricSnapshot`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MetricValue {
    /// A counter's current value.
    Counter(u64),
    /// A gauge's current value.
    Gauge(u64),
    /// A histogram's counts.
    Histogram {
        /// Total observations.
        count: u64,
        /// Sum of observed microseconds.
        sum_micros: u64,
        /// Per-bucket (non-cumulative) counts, one per
        /// `HISTOGRAM_BOUNDS_US` bound; overflow lives only in `count`.
        buckets: Vec<u64>,
    },
}

/// The process-wide registry every subsystem reports into.
pub fn registry() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

/// Shorthand for [`registry()`]`.counter(name)`.
pub fn counter(name: &str) -> Counter {
    registry().counter(name)
}

/// Shorthand for [`registry()`]`.gauge(name)`.
pub fn gauge(name: &str) -> Gauge {
    registry().gauge(name)
}

/// Shorthand for [`registry()`]`.histogram(name)`.
pub fn histogram(name: &str) -> Histogram {
    registry().histogram(name)
}

/// Shorthand for [`registry()`]`.counter_values()`.
pub fn counter_values() -> Vec<(String, u64)> {
    registry().counter_values()
}

/// Shorthand for [`registry()`]`.render_prometheus()`.
pub fn render_prometheus() -> String {
    registry().render_prometheus()
}

/// Shorthand for [`registry()`]`.render_json()`.
pub fn render_json() -> String {
    registry().render_json()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_share_cells_across_handles() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("test.c");
        let b = reg.counter("test.c");
        a.inc();
        b.add(4);
        assert_eq!(reg.counter("test.c").get(), 5);
        let g = reg.gauge("test.g");
        g.set(7);
        g.set(3);
        assert_eq!(reg.gauge("test.g").get(), 3);
    }

    #[test]
    fn histogram_buckets_are_cumulative_in_prometheus_only() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("test.h.micros");
        h.observe(10); // ≤16
        h.observe(100); // ≤256
        h.observe(100_000_000); // above every bound: +Inf only
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum_micros(), 100_000_110);
        let snap = reg.snapshot();
        match &snap[0].value {
            MetricValue::Histogram { count, buckets, .. } => {
                assert_eq!(*count, 3);
                assert_eq!(buckets[0], 1); // 10µs
                assert_eq!(buckets[2], 1); // 100µs
                assert_eq!(buckets.iter().sum::<u64>(), 2); // overflow excluded
            }
            other => panic!("expected a histogram, got {other:?}"),
        }
        let prom = reg.render_prometheus();
        assert!(prom.contains("# TYPE kcenter_test_h_micros histogram"));
        assert!(prom.contains("kcenter_test_h_micros_bucket{le=\"16\"} 1"));
        assert!(prom.contains("kcenter_test_h_micros_bucket{le=\"256\"} 2"));
        assert!(prom.contains("kcenter_test_h_micros_bucket{le=\"+Inf\"} 3"));
        assert!(prom.contains("kcenter_test_h_micros_sum 100000110"));
        assert!(prom.contains("kcenter_test_h_micros_count 3"));
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn kind_clashes_panic() {
        let reg = MetricsRegistry::new();
        let _ = reg.counter("test.kind");
        let _ = reg.gauge("test.kind");
    }

    #[test]
    fn counter_values_lists_only_counters_sorted() {
        let reg = MetricsRegistry::new();
        reg.counter("b.two").add(2);
        reg.counter("a.one").add(1);
        reg.gauge("z.gauge").set(9);
        reg.histogram("m.micros").observe(5);
        assert_eq!(
            reg.counter_values(),
            vec![("a.one".to_string(), 1), ("b.two".to_string(), 2)]
        );
    }

    #[test]
    fn json_rendering_parses_and_names_are_prometheus_clean() {
        let reg = MetricsRegistry::new();
        reg.counter("exec.shards.written").add(3);
        reg.histogram("exec.round1.micros").observe(1000);
        let json = reg.render_json();
        let value = crate::json::parse(&json).expect("render_json must emit valid JSON");
        assert_eq!(
            value.get("schema").and_then(|v| v.as_str()),
            Some("kcenter-metrics/v1")
        );
        let metrics = value.get("metrics").and_then(|v| v.as_array()).unwrap();
        assert_eq!(metrics.len(), 2);
        // Prometheus names: unique, no dots.
        let prom = reg.render_prometheus();
        let mut seen = std::collections::BTreeSet::new();
        for line in prom.lines().filter(|l| l.starts_with("# TYPE ")) {
            let name = line.split_whitespace().nth(2).unwrap();
            assert!(!name.contains('.'), "dots are invalid: {name}");
            assert!(seen.insert(name.to_string()), "duplicate family {name}");
        }
    }
}
