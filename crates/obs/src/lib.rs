//! Unified observability for the kcenter workspace.
//!
//! Every subsystem — the metric/store caches, the multi-process
//! executor, the streaming session server, the CLI, and the bench
//! runner — reports through this one crate instead of hand-rolled
//! statics and ad-hoc stderr lines. Three pieces:
//!
//! * **A process-wide [`MetricsRegistry`]** of named counters, gauges,
//!   and (microsecond) histograms. Handles are cheap `Arc<AtomicU64>`
//!   clones — the registry lock is touched only on first registration —
//!   so hot loops pay one relaxed atomic op per increment. Names are
//!   stable dotted paths (`metric.matrix.builds`, `exec.round1.micros`,
//!   `serve.evictions`); [`render_prometheus`] and [`render_json`]
//!   expose the whole registry in one call.
//! * **A structured trace sink**: off by default, enabled by
//!   pointing [`TRACE_ENV`] (`KCENTER_TRACE`) or the CLI's `--trace` at
//!   a file. [`Span`] guards time a region on the monotonic clock,
//!   always feed the `{name}.micros` histogram, and — only when the
//!   sink is live — append one schema-stable JSONL record per span.
//!   With the sink off, tracing is a few atomic ops and **zero output**,
//!   which is what keeps the golden determinism suites byte-stable.
//! * **Shared formatters** for the accounting lines several binaries
//!   print (see [`cache_accounting_line`]), so the format is pinned in
//!   exactly one place.
//!
//! The crate is intentionally dependency-free (std only) and sits below
//! every other workspace crate.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod json;
mod registry;
mod trace;

pub use registry::{
    counter, counter_values, gauge, histogram, registry, render_json, render_prometheus, Counter,
    Gauge, Histogram, MetricSnapshot, MetricValue, MetricsRegistry,
};
pub use trace::{
    event, init_trace, record_span, span, trace_enabled, Span, SpanRecord, TRACE_ENV, TRACE_SCHEMA,
};

/// The one true `cache-accounting:` stderr line.
///
/// The fig4/fig7/ablation binaries and the CLI all report distance-cache
/// accounting on stderr; the golden suites parse it back. This is the
/// single formatter they share, and `tests` pin the format so a drive-by
/// edit fails loudly instead of silently desynchronizing the parsers.
pub fn cache_accounting_line(builds: usize, hits: usize, misses: usize) -> String {
    format!("cache-accounting: builds={builds} hits={hits} misses={misses}")
}

/// Parses a [`cache_accounting_line`] back into `(builds, hits, misses)`.
///
/// Accepts the line with or without surrounding noise lines; returns
/// `None` when no well-formed accounting line is present.
pub fn parse_cache_accounting(text: &str) -> Option<(usize, usize, usize)> {
    let line = text
        .lines()
        .find(|l| l.trim_start().starts_with("cache-accounting:"))?;
    let mut builds = None;
    let mut hits = None;
    let mut misses = None;
    for field in line.trim_start()["cache-accounting:".len()..].split_whitespace() {
        let (key, value) = field.split_once('=')?;
        match key {
            "builds" => builds = value.parse().ok(),
            "hits" => hits = value.parse().ok(),
            "misses" => misses = value.parse().ok(),
            _ => {}
        }
    }
    Some((builds?, hits?, misses?))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The format-pinning regression test the satellite task asks for:
    /// the accounting line is parsed by `tests/fig_golden.rs` and the
    /// bench binaries, so its shape is a contract, not a style choice.
    #[test]
    fn cache_accounting_format_is_pinned() {
        assert_eq!(
            cache_accounting_line(3, 12, 5),
            "cache-accounting: builds=3 hits=12 misses=5"
        );
        assert_eq!(
            cache_accounting_line(0, 0, 0),
            "cache-accounting: builds=0 hits=0 misses=0"
        );
    }

    #[test]
    fn cache_accounting_round_trips_through_the_parser() {
        let line = cache_accounting_line(7, 1, 0);
        assert_eq!(parse_cache_accounting(&line), Some((7, 1, 0)));
        let noisy = format!("banner\n  {line}\ntrailer");
        assert_eq!(parse_cache_accounting(&noisy), Some((7, 1, 0)));
        assert_eq!(parse_cache_accounting("no accounting here"), None);
        assert_eq!(parse_cache_accounting("cache-accounting: builds=1"), None);
    }
}
