//! CHARIKARETAL — the sequential 3-approximation of Charikar et al. (SODA
//! 2001) for k-center with `z` outliers.
//!
//! For a radius guess `r`, greedily pick the point whose ball of radius `r`
//! covers the most uncovered points and remove everything within `3r`;
//! after `k` picks, the guess is feasible iff at most `z` points remain. A
//! binary search over the `O(n²)` pairwise distances finds the smallest
//! feasible guess; the result is a 3-approximation (and `3-ε` is NP-hard).
//!
//! As the paper notes (§5.4), this is exactly `O(log n)` executions of
//! `OutliersCluster` with `ε̂ = 0` and unit weights on the *whole input* —
//! so the implementation delegates to the shared primitives, with the full
//! `O(n²)` distance matrix cached (the quadratic footprint is intrinsic to
//! the baseline and the reason Fig. 8 runs it on 10k-point samples).
//!
//! Coincident points: audited against the seeding-phase multiplicity-loss
//! bug fixed in `mk_outliers.rs` (PR 1) — no such loss exists here. Every
//! input point carries its own unit weight into `OutliersCluster`, so a
//! location with `z + 1` coincident copies can never be written off
//! within an outlier budget of `z` (see the duplicate-heavy regression
//! tests below).

use std::time::{Duration, Instant};

use kcenter_core::outliers_cluster::CmpMatrixRef;
use kcenter_core::radius_search::{find_min_feasible_radius, SearchMode};
use kcenter_core::solution::{oracle_radius_with_outliers, Clustering};
use kcenter_core::InputError;
use kcenter_metric::{DistanceMatrix, Metric};

/// Result of a CHARIKARETAL run.
#[derive(Clone, Debug)]
pub struct CharikarResult<P> {
    /// Centers and the measured objective `r_{T,Z_T}(S)`.
    pub clustering: Clustering<P>,
    /// The smallest feasible radius guess found by the binary search.
    pub r_min: f64,
    /// Number of greedy-cover executions.
    pub evaluations: usize,
    /// Total wall-clock time.
    pub time: Duration,
}

/// Runs the 3-approximation of Charikar et al. (2001).
///
/// # Errors
///
/// Returns [`InputError`] if `(n, k, z)` violate `0 < k`, `k + z < n`.
pub fn charikar_kcenter_outliers<P, M>(
    points: &[P],
    metric: &M,
    k: usize,
    z: usize,
) -> Result<CharikarResult<P>, InputError>
where
    P: Clone + Sync,
    M: Metric<P>,
{
    let n = points.len();
    if n == 0 {
        return Err(InputError::EmptyInput);
    }
    if k == 0 || k >= n {
        return Err(InputError::InvalidK { k, n });
    }
    if k + z >= n {
        return Err(InputError::InvalidZ { k, z, n });
    }

    let start = Instant::now();
    // Proxy-scale matrix behind a borrowed view: one comparison rule with
    // the metric-backed oracles, no sqrt per cached entry, and the same
    // matrix prices both the binary search and the final objective below.
    let matrix = DistanceMatrix::build_cmp(points, metric);
    let view = CmpMatrixRef::<P, M>::new(&matrix, metric);
    let weights = vec![1u64; n];
    // ε̂ = 0: selection ball r, removal ball 3r — the original algorithm.
    let search = find_min_feasible_radius(
        &view,
        &weights,
        k,
        z as u64,
        0.0,
        SearchMode::ExactCandidates,
    );
    let centers: Vec<P> = search
        .clustering
        .centers
        .iter()
        .map(|&i| points[i].clone())
        .collect();
    let objective = oracle_radius_with_outliers(&view, &search.clustering.centers, z);
    let time = start.elapsed();

    Ok(CharikarResult {
        clustering: Clustering {
            centers,
            radius: objective,
        },
        r_min: search.radius,
        evaluations: search.evaluations,
        time,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcenter_core::brute_force::optimal_kcenter_outliers;
    use kcenter_metric::{Euclidean, Point};

    fn pts(coords: &[f64]) -> Vec<Point> {
        coords.iter().map(|&c| Point::new(vec![c])).collect()
    }

    #[test]
    fn three_approximation_holds_on_small_instances() {
        let points = pts(&[0.0, 0.4, 0.9, 20.0, 20.3, 21.0, 500.0, -300.0]);
        let (_, opt) = optimal_kcenter_outliers(&points, &Euclidean, 2, 2);
        let result = charikar_kcenter_outliers(&points, &Euclidean, 2, 2).unwrap();
        assert!(
            result.clustering.radius <= 3.0 * opt + 1e-9,
            "radius {} > 3·OPT = {}",
            result.clustering.radius,
            3.0 * opt
        );
    }

    #[test]
    fn excludes_the_planted_outliers() {
        let mut coords: Vec<f64> = (0..30).map(|i| (i % 10) as f64 * 0.5).collect();
        coords.push(10_000.0);
        coords.push(-9_000.0);
        let points = pts(&coords);
        let result = charikar_kcenter_outliers(&points, &Euclidean, 2, 2).unwrap();
        assert!(
            result.clustering.radius < 10.0,
            "radius {} failed to exclude outliers",
            result.clustering.radius
        );
    }

    #[test]
    fn z_zero_reduces_to_plain_kcenter_bound() {
        let points = pts(&[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
        let (_, opt) = optimal_kcenter_outliers(&points, &Euclidean, 2, 0);
        let result = charikar_kcenter_outliers(&points, &Euclidean, 2, 0).unwrap();
        assert!(result.clustering.radius <= 3.0 * opt + 1e-9);
        assert_eq!(result.clustering.k().min(2), result.clustering.k());
    }

    #[test]
    fn binary_search_is_logarithmic() {
        let points: Vec<Point> = (0..100)
            .map(|i| Point::new(vec![(i as f64 * 7.7) % 53.0]))
            .collect();
        let result = charikar_kcenter_outliers(&points, &Euclidean, 5, 3).unwrap();
        assert!(
            result.evaluations <= 2 * 14 + 4,
            "evaluations {} not logarithmic in n²",
            result.evaluations
        );
    }

    #[test]
    fn coincident_multiplicity_beats_outlier_budget() {
        // z + 1 = 3 coincident far points with budget z = 2 and k = 1: the
        // far location's aggregate unit weight (3) exceeds z, so it cannot
        // be discarded — the single center must stretch to cover it
        // ((3+0ε̂)·r ≥ 1000 ⇒ r_min ≥ ~333). A dedup anywhere in the
        // pipeline would collapse the copies to weight 1 and report a
        // cluster-scale radius instead.
        let mut coords: Vec<f64> = (0..20).map(|i| i as f64 * 0.05).collect();
        coords.extend([1000.0, 1000.0, 1000.0]);
        let points = pts(&coords);
        let result = charikar_kcenter_outliers(&points, &Euclidean, 1, 2).unwrap();
        assert!(
            result.r_min >= 1000.0 / 3.0 - 1.0,
            "r_min {} ignored coincident multiplicity",
            result.r_min
        );

        // Exactly z = 2 coincident copies ARE droppable: radius collapses
        // back to cluster scale.
        let mut coords: Vec<f64> = (0..20).map(|i| i as f64 * 0.05).collect();
        coords.extend([1000.0, 1000.0]);
        let points = pts(&coords);
        let result = charikar_kcenter_outliers(&points, &Euclidean, 1, 2).unwrap();
        assert!(
            result.r_min <= 1.0 + 1e-9,
            "r_min {} failed to drop exactly-z duplicates",
            result.r_min
        );
    }

    #[test]
    fn validates_input() {
        let points = pts(&[0.0, 1.0, 2.0]);
        assert!(charikar_kcenter_outliers(&points, &Euclidean, 0, 0).is_err());
        assert!(charikar_kcenter_outliers(&points, &Euclidean, 2, 1).is_err());
        let empty: Vec<Point> = Vec::new();
        assert!(charikar_kcenter_outliers(&empty, &Euclidean, 1, 0).is_err());
    }
}
