//! MALKOMESETAL — the MapReduce algorithms of Malkomes, Kusner, Chen,
//! Weinberger & Moseley (NIPS 2015).
//!
//! Their 2-round algorithms select exactly `k` (respectively `k + z`)
//! centers per partition in round 1 — i.e. they are the paper's algorithms
//! with coreset multiplier `µ = 1` (paper §5.1/§5.2: "for µ = 1 the
//! algorithm corresponds to the one in \[26\]"). These wrappers make the
//! baseline explicit in the experiment harness instead of leaving "µ = 1"
//! implicit, and pin the configuration so it cannot drift from the
//! baseline's definition.
//!
//! Coincident points: audited against the seeding-phase multiplicity-loss
//! bug fixed in `mk_outliers.rs` (PR 1) — no such loss exists here. Both
//! wrappers run on weighted GMM coresets whose weights count every proxied
//! input point (coincident copies included), so duplicate multiplicities
//! survive into the outlier budget arithmetic (see the duplicate-heavy
//! regression test below).

use kcenter_core::coreset::CoresetSpec;
use kcenter_core::mapreduce_kcenter::{mr_kcenter, MrKCenterConfig, MrKCenterResult};
use kcenter_core::mapreduce_outliers::{mr_kcenter_outliers, MrOutliersConfig, MrOutliersResult};
use kcenter_core::InputError;
use kcenter_metric::Metric;

/// The 4-approximation MapReduce k-center algorithm of Malkomes et al.:
/// round 1 keeps exactly `k` GMM centers per partition.
pub fn malkomes_mr_kcenter<P, M>(
    points: &[P],
    metric: &M,
    k: usize,
    ell: usize,
    seed: u64,
) -> Result<MrKCenterResult<P>, InputError>
where
    P: Clone + Send + Sync,
    M: Metric<P>,
{
    mr_kcenter(
        points,
        metric,
        &MrKCenterConfig {
            k,
            ell,
            coreset: CoresetSpec::Multiplier { mu: 1 },
            seed,
        },
    )
}

/// The 13-approximation MapReduce k-center-with-outliers algorithm of
/// Malkomes et al.: round 1 keeps exactly `k + z` weighted GMM centers per
/// partition.
pub fn malkomes_mr_outliers<P, M>(
    points: &[P],
    metric: &M,
    k: usize,
    z: usize,
    ell: usize,
    seed: u64,
) -> Result<MrOutliersResult<P>, InputError>
where
    P: Clone + Send + Sync,
    M: Metric<P>,
{
    let mut config = MrOutliersConfig::deterministic(k, z, ell, CoresetSpec::Multiplier { mu: 1 });
    config.seed = seed;
    mr_kcenter_outliers(points, metric, &config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcenter_metric::{Euclidean, Point};

    fn grid(n: usize) -> Vec<Point> {
        (0..n)
            .map(|i| Point::new(vec![(i % 25) as f64, (i / 25) as f64]))
            .collect()
    }

    #[test]
    fn kcenter_wrapper_uses_mu_one_coresets() {
        let points = grid(500);
        let result = malkomes_mr_kcenter(&points, &Euclidean, 5, 4, 1).unwrap();
        // µ = 1: each of the 4 partitions contributes exactly k = 5 centers.
        assert_eq!(result.union_size, 4 * 5);
        assert_eq!(result.clustering.k(), 5);
    }

    #[test]
    fn outliers_wrapper_uses_k_plus_z_coresets() {
        let mut points = grid(300);
        points.push(Point::new(vec![10_000.0, 10_000.0]));
        points.push(Point::new(vec![-10_000.0, 10_000.0]));
        let result = malkomes_mr_outliers(&points, &Euclidean, 4, 2, 2, 1).unwrap();
        // µ = 1 deterministic: per-partition coreset of k + z = 6.
        assert!(result.union_size <= 2 * 6);
        assert!(result.clustering.radius < 40.0);
    }

    #[test]
    fn duplicate_heavy_outliers_keep_multiplicity() {
        // A main grid plus z + 1 = 3 coincident far points with budget
        // z = 2 and k = 2: the far location's weight exceeds the budget,
        // so a center must land there — the full-dataset objective (which
        // keeps the third coincident copy after discarding z) stays at
        // grid scale. Multiplicity loss in the coreset weights would let
        // the solver drop the location and blow the measured radius.
        let mut points = grid(300);
        for _ in 0..3 {
            points.push(Point::new(vec![10_000.0, 10_000.0]));
        }
        let result = malkomes_mr_outliers(&points, &Euclidean, 2, 2, 2, 1).unwrap();
        assert!(
            result.clustering.radius < 50.0,
            "radius {} — coincident far points lost their multiplicity",
            result.clustering.radius
        );
    }

    #[test]
    fn matches_direct_mu1_configuration() {
        let points = grid(400);
        let wrapper = malkomes_mr_kcenter(&points, &Euclidean, 4, 4, 9).unwrap();
        let direct = mr_kcenter(
            &points,
            &Euclidean,
            &MrKCenterConfig {
                k: 4,
                ell: 4,
                coreset: CoresetSpec::Multiplier { mu: 1 },
                seed: 9,
            },
        )
        .unwrap();
        assert_eq!(wrapper.clustering.radius, direct.clustering.radius);
        assert_eq!(wrapper.union_size, direct.union_size);
    }
}
