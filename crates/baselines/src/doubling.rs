//! The doubling algorithm of Charikar, Chekuri, Feder & Motwani (2004):
//! 1-pass streaming k-center, deterministic 8-approximation, `Θ(k)` memory.
//!
//! This is the unweighted special case of the paper's weighted doubling
//! coreset (§4) with budget `τ = k`: the surviving centers *are* the
//! solution, with radius at most `8ϕ ≤ 8·r*_k` by invariants (c) and (e).
//! It serves as a baseline in its own right and as pass 1 of the paper's
//! 2-pass D-oblivious algorithm.
//!
//! Coincident points: audited against the seeding-phase multiplicity-loss
//! bug fixed in `mk_outliers.rs` (PR 1) — no such loss exists here.
//! Duplicates fold into the underlying weighted coreset's center weights
//! (invariant (d): weights always sum to the processed count), and plain
//! k-center's objective is multiplicity-oblivious anyway. The
//! duplicate-heavy regression test below pins the fold-don't-drop
//! behaviour.

use kcenter_core::streaming_coreset::WeightedDoublingCoreset;
use kcenter_metric::Metric;
use kcenter_stream::StreamingAlgorithm;

/// Output of the doubling algorithm.
#[derive(Clone, Debug)]
pub struct DoublingOutput<P> {
    /// The (at most `k`) centers.
    pub centers: Vec<P>,
    /// Final lower bound `ϕ`; the achieved radius is at most `8ϕ`.
    pub phi: f64,
}

/// 1-pass streaming k-center, 8-approximation.
pub struct DoublingKCenter<P, M> {
    inner: WeightedDoublingCoreset<P, M>,
}

impl<P: Clone, M: Metric<P>> DoublingKCenter<P, M> {
    /// Creates the algorithm for `k` centers.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(metric: M, k: usize) -> Self {
        DoublingKCenter {
            inner: WeightedDoublingCoreset::new(metric, k),
        }
    }

    /// Current lower bound `ϕ`.
    pub fn phi(&self) -> f64 {
        self.inner.phi()
    }
}

impl<P: Clone, M: Metric<P>> StreamingAlgorithm<P> for DoublingKCenter<P, M> {
    type Output = DoublingOutput<P>;

    fn process(&mut self, item: P) {
        self.inner.process(item);
    }

    fn memory_items(&self) -> usize {
        self.inner.memory_items()
    }

    fn finalize(self) -> DoublingOutput<P> {
        let output = self.inner.finalize();
        DoublingOutput {
            centers: output.coreset.points_only(),
            phi: output.phi,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcenter_core::brute_force::optimal_kcenter;
    use kcenter_core::solution::radius;
    use kcenter_metric::{Euclidean, Point};
    use kcenter_stream::run_stream;

    #[test]
    fn eight_approximation_on_small_instances() {
        let points: Vec<Point> = (0..24)
            .map(|i| Point::new(vec![((i * 11) % 24) as f64]))
            .collect();
        let k = 3;
        let (_, opt) = optimal_kcenter(&points, &Euclidean, k);
        let alg = DoublingKCenter::new(Euclidean, k);
        let (out, _) = run_stream(alg, points.iter().cloned());
        let r = radius(&points, &out.centers, &Euclidean);
        assert!(
            r <= 8.0 * opt + 1e-9,
            "doubling radius {r} exceeds 8·OPT = {}",
            8.0 * opt
        );
        assert!(out.centers.len() <= k);
    }

    #[test]
    fn memory_is_theta_k() {
        let points: Vec<Point> = (0..5_000)
            .map(|i| {
                Point::new(vec![
                    (i as f64 * 0.77).sin() * 1e4,
                    (i as f64 * 0.31).cos() * 1e4,
                ])
            })
            .collect();
        let k = 10;
        let alg = DoublingKCenter::new(Euclidean, k);
        let (out, report) = run_stream(alg, points);
        assert!(report.peak_memory_items <= k + 1);
        assert!(out.centers.len() <= k);
        assert!(out.phi > 0.0);
    }

    #[test]
    fn duplicate_heavy_stream_folds_weights_without_loss() {
        // 300 copies of one location interleaved with 3 real clusters: the
        // pass must terminate within its memory budget, keep one center
        // per region, and account every duplicate in the coreset weights.
        let mut points = Vec::new();
        for i in 0..360 {
            if i % 6 < 3 {
                points.push(Point::new(vec![5.0, 5.0]));
            } else {
                let c = (i % 6 - 3) as f64;
                points.push(Point::new(vec![c * 100.0 + (i % 7) as f64 * 0.1, 0.0]));
            }
        }
        let k = 4;
        let mut inner = kcenter_core::streaming_coreset::WeightedDoublingCoreset::new(Euclidean, k);
        for p in &points {
            kcenter_stream::StreamingAlgorithm::process(&mut inner, p.clone());
        }
        inner.check_invariants().unwrap();
        assert_eq!(
            inner.weights().iter().sum::<u64>(),
            points.len() as u64,
            "duplicate weights were dropped"
        );

        let alg = DoublingKCenter::new(Euclidean, k);
        let (out, report) = run_stream(alg, points.iter().cloned());
        assert!(out.centers.len() <= k);
        assert!(report.peak_memory_items <= k + 1);
        let r = radius(&points, &out.centers, &Euclidean);
        assert!(r <= 8.0 * out.phi + 1e-9);
    }

    #[test]
    fn achieved_radius_within_8_phi() {
        let points: Vec<Point> = (0..600)
            .map(|i| Point::new(vec![((i * 17) % 101) as f64, ((i * 5) % 47) as f64]))
            .collect();
        let alg = DoublingKCenter::new(Euclidean, 6);
        let (out, _) = run_stream(alg, points.iter().cloned());
        let r = radius(&points, &out.centers, &Euclidean);
        assert!(
            r <= 8.0 * out.phi + 1e-9,
            "invariant (c) violated: {r} > {}",
            8.0 * out.phi
        );
    }
}
