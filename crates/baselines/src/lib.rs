#![warn(missing_docs)]
//! Baseline algorithms the paper compares against.
//!
//! | Module | Algorithm | Role in the paper |
//! |---|---|---|
//! | [`charikar_outliers`] | Charikar, Khuller, Mount & Narasimhan (SODA 2001): sequential 3-approximation for k-center with `z` outliers, `O(k·n²·log n)` time | CHARIKARETAL, the sequential baseline of Fig. 8 |
//! | [`doubling`] | Charikar, Chekuri, Feder & Motwani (2004): 1-pass doubling algorithm, 8-approximation for streaming k-center with `Θ(k)` memory | substrate of the paper's coreset construction; pass 1 of the 2-pass algorithm |
//! | [`mccutchen_khuller`] | McCutchen & Khuller (APPROX 2008): (2+ε)-approximation streaming k-center via parallel geometric scales | BASESTREAM, the streaming baseline of Fig. 3 |
//! | [`mk_outliers`] | McCutchen & Khuller (APPROX 2008): (4+ε)-approximation streaming k-center with outliers, `O(k·z·ε⁻¹)` memory | BASEOUTLIERS, the streaming baseline of Fig. 5 |
//! | [`malkomes`] | Malkomes, Kusner, Chen, Weinberger & Moseley (NIPS 2015): 2-round MapReduce algorithms (4-approx / 13-approx) | MALKOMESETAL — identical to the paper's MR algorithms at coreset multiplier `µ = 1` (Figs. 2, 4, 8) |
//!
//! Every baseline is implemented from scratch against the same
//! `kcenter-metric` / `kcenter-stream` substrates as the paper's algorithms,
//! so the experiment harness compares like with like.

pub mod charikar_outliers;
pub mod doubling;
pub mod malkomes;
pub mod mccutchen_khuller;
pub mod mk_outliers;

pub use charikar_outliers::charikar_kcenter_outliers;
pub use doubling::DoublingKCenter;
pub use mccutchen_khuller::BaseStream;
pub use mk_outliers::BaseOutliers;
