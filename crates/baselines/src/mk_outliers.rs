//! BASEOUTLIERS — streaming k-center with `z` outliers in the style of
//! McCutchen & Khuller (APPROX 2008), the paper's Fig. 5 baseline.
//!
//! For a radius guess `η` their algorithm maintains at most `k` clusters and
//! a *free set* of at most `(k+1)(z+1)` points. An arriving point within
//! `4η` of a cluster center is absorbed; otherwise it joins the free set.
//! Whenever some free point has at least `z+1` free points within `2η` (a
//! witness that a real cluster lives there) and the cluster budget is not
//! exhausted, a new cluster opens at that point, capturing everything within
//! `4η`. Each cluster retains up to `z+1` *support points* (within `2η` of
//! its center): when the free set overflows — the guess was too small — `η`
//! rises to the next rung of its geometric ladder and the retained points
//! (supports and free points) are replayed at the new scale, so dense
//! regions keep their witnesses across escalations. The result is a
//! `(4+ε)`-approximation using `O(k·z)` memory per scale.
//!
//! Following the paper's description ("essentially runs a number `m` of
//! parallel instances of a `(k·z)`-space streaming algorithm"), `m`
//! staggered-scale instances run side by side — the Fig. 5 space axis is
//! `m·k·z` — and the instance with the smallest surviving guess wins.

use kcenter_metric::Metric;
use kcenter_stream::StreamingAlgorithm;

/// A cluster: its center plus up to `z+1` support points near the center.
struct Cluster<P> {
    center: P,
    /// Support points within `2η` of the center (the center itself is
    /// `support[0]`); capped at `z + 1`.
    support: Vec<P>,
}

/// One guess-tracking instance (space `O(k·z)`).
struct OutlierInstance<P> {
    eta: Option<f64>,
    clusters: Vec<Cluster<P>>,
    free: Vec<P>,
}

impl<P: Clone> OutlierInstance<P> {
    fn new() -> Self {
        OutlierInstance {
            eta: None,
            clusters: Vec::new(),
            free: Vec::new(),
        }
    }

    fn stored_points(&self) -> usize {
        self.clusters.iter().map(|c| c.support.len()).sum::<usize>() + self.free.len()
    }

    fn free_capacity(k: usize, z: usize) -> usize {
        (k + 1) * (z + 1)
    }

    fn process<M: Metric<P>>(&mut self, metric: &M, k: usize, z: usize, offset: f64, item: P) {
        match self.eta {
            None => {
                // Seeding phase: buffer points in the free set until it
                // overflows, then pick the first guess. Multiplicity
                // matters for the witness rule (z+1 coincident points are a
                // legitimate cluster), so duplicates are retained up to the
                // z+1 copies any witness decision can need; beyond that a
                // copy adds no information and is dropped. The cap keeps
                // every location at ≤ z+1 copies, so an overflowing buffer
                // necessarily holds ≥ k+1 distinct locations and the
                // minimum positive distance below is well-defined.
                let copies = self
                    .free
                    .iter()
                    .filter(|p| metric.cmp_distance(p, &item) == 0.0)
                    .count();
                if copies > z {
                    return;
                }
                self.free.push(item);
                if self.free.len() > Self::free_capacity(k, z) {
                    let min_d = min_positive_distance(metric, &self.free)
                        .expect("distinct points buffered");
                    let target = min_d / 2.0;
                    let rung = (target / offset).log2().floor();
                    self.eta = Some(offset * 2f64.powf(rung).max(f64::MIN_POSITIVE));
                    self.rebuild(metric, k, z);
                }
            }
            Some(eta) => {
                self.insert(metric, k, z, eta, item);
                if self.free.len() > Self::free_capacity(k, z) {
                    self.escalate(metric, k, z);
                }
            }
        }
    }

    /// Route one point at the current guess. The per-point scans compare
    /// sqrt-free proxies against the guess thresholds mapped once onto the
    /// comparison scale.
    fn insert<M: Metric<P>>(&mut self, metric: &M, k: usize, z: usize, eta: f64, item: P) {
        let absorb = metric.distance_to_cmp(4.0 * eta);
        let support_r = metric.distance_to_cmp(2.0 * eta);
        for cluster in &mut self.clusters {
            let d = metric.cmp_distance(&cluster.center, &item);
            if d <= absorb {
                // Absorbed; retain as support if close and budget allows.
                if d <= support_r && cluster.support.len() < z + 1 {
                    cluster.support.push(item);
                }
                return;
            }
        }
        self.free.push(item);
        let anchor = self.free.len() - 1;
        self.try_open_clusters(metric, k, z, eta, anchor);
    }

    /// Open clusters at free points witnessing ≥ z+1 free points within 2η.
    ///
    /// Adding one point can only raise the neighbour counts of points
    /// within `2η` of it, so only those candidates (the `anchor`'s
    /// neighbourhood) are scanned — this keeps the steady-state per-point
    /// cost linear in `|free|` instead of quadratic.
    fn try_open_clusters<M: Metric<P>>(
        &mut self,
        metric: &M,
        k: usize,
        z: usize,
        eta: f64,
        anchor: usize,
    ) {
        let anchor_point = self.free[anchor].clone();
        let witness_r = metric.distance_to_cmp(2.0 * eta);
        let capture_r = metric.distance_to_cmp(4.0 * eta);
        loop {
            if self.clusters.len() >= k {
                return;
            }
            let witness = self.free.iter().position(|p| {
                metric.cmp_distance(p, &anchor_point) <= witness_r
                    && self
                        .free
                        .iter()
                        .filter(|q| metric.cmp_distance(p, q) <= witness_r)
                        .count()
                        > z
            });
            match witness {
                Some(idx) => {
                    let center = self.free[idx].clone();
                    // Support: closest z+1 free points within 2η.
                    let mut support: Vec<P> = Vec::with_capacity(z + 1);
                    for q in &self.free {
                        if support.len() < z + 1 && metric.cmp_distance(&center, q) <= witness_r {
                            support.push(q.clone());
                        }
                    }
                    self.free
                        .retain(|q| metric.cmp_distance(&center, q) > capture_r);
                    self.clusters.push(Cluster { center, support });
                    // The anchor may have been captured; if so, no further
                    // counts around it can have increased.
                    if !self
                        .free
                        .iter()
                        .any(|q| metric.cmp_distance(q, &anchor_point) == 0.0)
                    {
                        return;
                    }
                }
                None => return,
            }
        }
    }

    /// The guess failed: raise η one rung and replay the retained points.
    fn escalate<M: Metric<P>>(&mut self, metric: &M, k: usize, z: usize) {
        let eta = self.eta.expect("escalate only after seeding") * 2.0;
        self.eta = Some(eta);
        self.rebuild(metric, k, z);
    }

    /// Re-cluster the retained points (supports + free) at the current
    /// guess.
    fn rebuild<M: Metric<P>>(&mut self, metric: &M, k: usize, z: usize) {
        let eta = self.eta.expect("rebuild only after seeding");
        let mut retained: Vec<P> = Vec::with_capacity(self.stored_points());
        for cluster in self.clusters.drain(..) {
            retained.extend(cluster.support);
        }
        retained.append(&mut self.free);
        for p in retained {
            self.insert(metric, k, z, eta, p);
        }
        if self.free.len() > Self::free_capacity(k, z) {
            self.escalate(metric, k, z);
        }
    }

    /// Final centers: cluster centers, topped up from the densest free
    /// points if fewer than `k` clusters opened.
    fn centers<M: Metric<P>>(&self, metric: &M, k: usize) -> Vec<P> {
        let mut centers: Vec<P> = self.clusters.iter().map(|c| c.center.clone()).collect();
        if centers.len() < k {
            let eta = self.eta.unwrap_or(0.0);
            let neighbour_r = metric.distance_to_cmp(2.0 * eta);
            let mut ranked: Vec<(usize, usize)> = self
                .free
                .iter()
                .enumerate()
                .map(|(i, p)| {
                    let neighbours = self
                        .free
                        .iter()
                        .filter(|q| metric.cmp_distance(p, q) <= neighbour_r)
                        .count();
                    (i, neighbours)
                })
                .collect();
            ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            for (i, _) in ranked {
                if centers.len() >= k {
                    break;
                }
                let candidate = &self.free[i];
                let dup = centers
                    .iter()
                    .any(|c| metric.cmp_distance(c, candidate) == 0.0);
                if !dup {
                    centers.push(candidate.clone());
                }
            }
        }
        centers
    }
}

fn min_positive_distance<P, M: Metric<P>>(metric: &M, points: &[P]) -> Option<f64> {
    let mut min = f64::INFINITY;
    for i in 0..points.len() {
        for j in i + 1..points.len() {
            let d = metric.cmp_distance(&points[i], &points[j]);
            if d > 0.0 && d < min {
                min = d;
            }
        }
    }
    (min != f64::INFINITY).then(|| metric.cmp_to_distance(min))
}

/// Output: winning centers plus diagnostics.
#[derive(Clone, Debug)]
pub struct BaseOutliersOutput<P> {
    /// Centers of the winning (smallest-guess) instance.
    pub centers: Vec<P>,
    /// The winning guess `η` (`0` if no instance ever seeded).
    pub eta: f64,
}

/// Streaming k-center with outliers: `m` parallel `O(k·z)`-space instances.
pub struct BaseOutliers<P, M> {
    metric: M,
    k: usize,
    z: usize,
    instances: Vec<OutlierInstance<P>>,
    offsets: Vec<f64>,
}

impl<P: Clone, M: Metric<P>> BaseOutliers<P, M> {
    /// Creates the algorithm with `m ≥ 1` staggered scales.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `m == 0`.
    pub fn new(metric: M, k: usize, z: usize, m: usize) -> Self {
        assert!(k > 0, "k must be positive");
        assert!(m > 0, "m must be positive");
        let offsets: Vec<f64> = (0..m).map(|j| 2f64.powf(j as f64 / m as f64)).collect();
        BaseOutliers {
            metric,
            k,
            z,
            instances: (0..m).map(|_| OutlierInstance::new()).collect(),
            offsets,
        }
    }
}

impl<P: Clone, M: Metric<P>> StreamingAlgorithm<P> for BaseOutliers<P, M> {
    type Output = BaseOutliersOutput<P>;

    fn process(&mut self, item: P) {
        for (instance, &offset) in self.instances.iter_mut().zip(&self.offsets) {
            instance.process(&self.metric, self.k, self.z, offset, item.clone());
        }
    }

    fn memory_items(&self) -> usize {
        self.instances.iter().map(|i| i.stored_points()).sum()
    }

    fn finalize(self) -> BaseOutliersOutput<P> {
        let best = self
            .instances
            .iter()
            .min_by(|a, b| {
                let ea = a.eta.unwrap_or(0.0);
                let eb = b.eta.unwrap_or(0.0);
                ea.partial_cmp(&eb).expect("finite guesses")
            })
            .expect("at least one instance");
        BaseOutliersOutput {
            centers: best.centers(&self.metric, self.k),
            eta: best.eta.unwrap_or(0.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcenter_core::solution::radius_with_outliers;
    use kcenter_metric::{Euclidean, Point};
    use kcenter_stream::run_stream;

    fn planted(z: usize) -> Vec<Point> {
        let mut pts = Vec::new();
        for c in 0..3 {
            for i in 0..50 {
                pts.push(Point::new(vec![
                    c as f64 * 100.0 + (i % 5) as f64 * 0.3,
                    (i / 5) as f64 * 0.3,
                ]));
            }
        }
        for j in 0..z {
            pts.push(Point::new(vec![
                30_000.0 + 5_000.0 * j as f64,
                -20_000.0 * (j as f64 + 1.0),
            ]));
        }
        pts
    }

    #[test]
    fn excludes_planted_outliers() {
        let pts = planted(3);
        let alg = BaseOutliers::new(Euclidean, 3, 3, 4);
        let (out, _) = run_stream(alg, pts.iter().cloned());
        assert!(out.centers.len() <= 3);
        let r = radius_with_outliers(&pts, &out.centers, 3, &Euclidean);
        assert!(r < 100.0, "radius {r} did not exclude outliers");
    }

    #[test]
    fn memory_bounded_by_instances() {
        let pts = planted(4);
        let (k, z, m) = (3usize, 4usize, 2usize);
        let alg = BaseOutliers::new(Euclidean, k, z, m);
        let (_, report) = run_stream(alg, pts);
        // Free set ≤ (k+1)(z+1)+1 transient, plus k clusters of ≤ z+1
        // support points each.
        let per_instance = (k + 1) * (z + 1) + 1 + k * (z + 1);
        assert!(
            report.peak_memory_items <= m * per_instance,
            "peak {} exceeds m·O(k·z) = {}",
            report.peak_memory_items,
            m * per_instance
        );
    }

    #[test]
    fn sparse_streams_terminate_with_few_centers() {
        // A geometric line: density never produces z+1 witnesses at small
        // scales, forcing escalations; must terminate with ≤ k centers.
        let pts: Vec<Point> = (0..40)
            .map(|i| Point::new(vec![2f64.powi(i % 20) + i as f64]))
            .collect();
        let alg = BaseOutliers::new(Euclidean, 2, 3, 2);
        let (out, _) = run_stream(alg, pts);
        assert!(out.centers.len() <= 2);
    }

    #[test]
    fn duplicate_heavy_stream_is_stable() {
        let mut pts = vec![Point::new(vec![1.0, 1.0]); 200];
        pts.extend((0..40).map(|i| Point::new(vec![(i % 8) as f64 * 10.0, 50.0])));
        let (k, z, m) = (4usize, 2usize, 2usize);
        let alg = BaseOutliers::new(Euclidean, k, z, m);
        let (out, report) = run_stream(alg, pts);
        assert!(!out.centers.is_empty());
        let per_instance = (k + 1) * (z + 1) + 1 + k * (z + 1);
        assert!(report.peak_memory_items <= m * per_instance);
    }

    #[test]
    fn more_instances_do_not_hurt_quality_much() {
        let pts = planted(2);
        let measure = |m: usize| {
            let alg = BaseOutliers::new(Euclidean, 3, 2, m);
            let (out, _) = run_stream(alg, pts.iter().cloned());
            radius_with_outliers(&pts, &out.centers, 2, &Euclidean)
        };
        let r1 = measure(1);
        let r8 = measure(8);
        assert!(
            r8 <= r1 * 1.25 + 1.0,
            "m=8 ({r8}) much worse than m=1 ({r1})"
        );
    }
}
