//! BASESTREAM — streaming k-center in the style of McCutchen & Khuller
//! (APPROX 2008), the paper's Fig. 3 baseline.
//!
//! McCutchen & Khuller refine the doubling algorithm to a
//! `(2+ε)`-approximation by tracking the optimal radius with a finer
//! geometric step, at the cost of `Θ(k·ε⁻¹·log ε⁻¹)` memory. We implement
//! the standard *parallel-scales* formulation the paper's experiments use:
//! `m` instances run side by side, instance `j` restricting its radius
//! guesses to the geometric ladder `{2^(i + j/m)}`; each instance keeps at
//! most `k` centers (a new point farther than `2η` from all centers opens
//! one), and on overflow raises `η` to its next ladder rung, re-merging its
//! centers. At the end the instance with the smallest surviving guess wins
//! — the finer the ladder (larger `m`), the closer the winning guess sits
//! above the optimum, trading space (`m·k`, the Fig. 3 space axis) for
//! approximation quality.

use kcenter_metric::Metric;
use kcenter_stream::StreamingAlgorithm;

/// One guess-tracking instance.
struct ScaleInstance<P> {
    /// Current radius guess `η`; `None` until two distinct points seed it.
    eta: Option<f64>,
    /// The ladder step: overflow multiplies `η` by this.
    step: f64,
    centers: Vec<P>,
}

impl<P: Clone> ScaleInstance<P> {
    fn new(step: f64) -> Self {
        ScaleInstance {
            eta: None,
            step,
            centers: Vec::new(),
        }
    }

    fn process<M: Metric<P>>(&mut self, metric: &M, k: usize, offset: f64, item: P) {
        match self.eta {
            None => {
                // Seeding: collect points until two are distinct, then set η
                // at this instance's offset on the ladder below half their
                // distance. Exact duplicates are dropped so degenerate
                // streams cannot blow the memory budget.
                if let Some(d) = self
                    .centers
                    .iter()
                    .map(|c| metric.cmp_distance(&item, c))
                    .reduce(f64::min)
                {
                    if d == 0.0 {
                        return;
                    }
                    // Largest ladder value ≤ d/2 on this instance's rungs
                    // (one proxy → distance conversion at the boundary).
                    let target = metric.cmp_to_distance(d) / 2.0;
                    let rung = (target / offset).log2().floor();
                    self.eta = Some(offset * 2f64.powf(rung).max(f64::MIN_POSITIVE));
                }
                self.centers.push(item);
                if self.eta.is_some() {
                    self.enforce_budget(metric, k);
                }
            }
            Some(eta) => {
                // Sqrt-free nearest-center scan against the 2η threshold.
                let d = self
                    .centers
                    .iter()
                    .map(|c| metric.cmp_distance(&item, c))
                    .fold(f64::INFINITY, f64::min);
                if d > metric.distance_to_cmp(2.0 * eta) {
                    self.centers.push(item);
                    self.enforce_budget(metric, k);
                }
            }
        }
    }

    /// Raise η along the ladder and re-merge until at most `k` centers
    /// remain.
    fn enforce_budget<M: Metric<P>>(&mut self, metric: &M, k: usize) {
        while self.centers.len() > k {
            let eta = self.eta.expect("budget enforced only after seeding") * self.step;
            self.eta = Some(eta);
            let merge_r = metric.distance_to_cmp(2.0 * eta);
            let mut survivors: Vec<P> = Vec::with_capacity(self.centers.len());
            'outer: for c in self.centers.drain(..) {
                for s in &survivors {
                    if metric.cmp_distance(&c, s) <= merge_r {
                        continue 'outer;
                    }
                }
                survivors.push(c);
            }
            self.centers = survivors;
        }
    }
}

/// Output: winning centers plus the winning guess.
#[derive(Clone, Debug)]
pub struct BaseStreamOutput<P> {
    /// Centers of the instance with the smallest surviving guess.
    pub centers: Vec<P>,
    /// That instance's final radius guess `η` (`0` for degenerate streams).
    pub eta: f64,
}

/// Streaming k-center with `m` parallel geometric scales (space `m·k`).
pub struct BaseStream<P, M> {
    metric: M,
    k: usize,
    instances: Vec<ScaleInstance<P>>,
    offsets: Vec<f64>,
}

impl<P: Clone, M: Metric<P>> BaseStream<P, M> {
    /// Creates the algorithm with `m ≥ 1` parallel scales.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `m == 0`.
    pub fn new(metric: M, k: usize, m: usize) -> Self {
        assert!(k > 0, "k must be positive");
        assert!(m > 0, "m must be positive");
        // Instance j's rungs: offset_j · 2^i with offset_j = 2^(j/m); each
        // instance doubles on overflow, so together the rungs form the
        // 2^(1/m)-fine ladder.
        let offsets: Vec<f64> = (0..m).map(|j| 2f64.powf(j as f64 / m as f64)).collect();
        BaseStream {
            metric,
            k,
            instances: (0..m).map(|_| ScaleInstance::new(2.0)).collect(),
            offsets,
        }
    }
}

impl<P: Clone, M: Metric<P>> StreamingAlgorithm<P> for BaseStream<P, M> {
    type Output = BaseStreamOutput<P>;

    fn process(&mut self, item: P) {
        for (instance, &offset) in self.instances.iter_mut().zip(&self.offsets) {
            instance.process(&self.metric, self.k, offset, item.clone());
        }
    }

    fn memory_items(&self) -> usize {
        self.instances.iter().map(|i| i.centers.len()).sum()
    }

    fn finalize(self) -> BaseStreamOutput<P> {
        // Winner: smallest surviving η (degenerate instances — never seeded
        // — hold every distinct point and win with η = 0).
        let best = self
            .instances
            .into_iter()
            .min_by(|a, b| {
                let ea = a.eta.unwrap_or(0.0);
                let eb = b.eta.unwrap_or(0.0);
                ea.partial_cmp(&eb).expect("finite guesses")
            })
            .expect("at least one instance");
        BaseStreamOutput {
            centers: best.centers,
            eta: best.eta.unwrap_or(0.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcenter_core::brute_force::optimal_kcenter;
    use kcenter_core::solution::radius;
    use kcenter_metric::{Euclidean, Point};
    use kcenter_stream::run_stream;

    fn line_points(n: usize) -> Vec<Point> {
        (0..n)
            .map(|i| Point::new(vec![((i * 13) % n) as f64]))
            .collect()
    }

    #[test]
    fn returns_at_most_k_centers_with_bounded_radius() {
        let points = line_points(22);
        let k = 3;
        let (_, opt) = optimal_kcenter(&points, &Euclidean, k);
        let alg = BaseStream::new(Euclidean, k, 4);
        let (out, _) = run_stream(alg, points.iter().cloned());
        assert!(out.centers.len() <= k);
        let r = radius(&points, &out.centers, &Euclidean);
        // Single-scale doubling gives 8; staggered scales only improve. Use
        // the conservative 8-factor as the correctness envelope.
        assert!(r <= 8.0 * opt + 1e-9, "radius {r} vs opt {opt}");
    }

    #[test]
    fn more_scales_do_not_hurt() {
        let points: Vec<Point> = (0..400)
            .map(|i| Point::new(vec![((i * 29) % 113) as f64, ((i * 7) % 31) as f64]))
            .collect();
        let r1 = {
            let alg = BaseStream::new(Euclidean, 5, 1);
            let (out, _) = run_stream(alg, points.iter().cloned());
            radius(&points, &out.centers, &Euclidean)
        };
        let r8 = {
            let alg = BaseStream::new(Euclidean, 5, 8);
            let (out, _) = run_stream(alg, points.iter().cloned());
            radius(&points, &out.centers, &Euclidean)
        };
        assert!(
            r8 <= r1 * 1.10 + 1e-9,
            "m=8 ({r8}) much worse than m=1 ({r1})"
        );
    }

    #[test]
    fn memory_is_m_times_k() {
        let points: Vec<Point> = (0..3_000)
            .map(|i| Point::new(vec![(i as f64 * 0.613).sin() * 500.0]))
            .collect();
        let (k, m) = (6, 4);
        let alg = BaseStream::new(Euclidean, k, m);
        let (_, report) = run_stream(alg, points);
        assert!(
            report.peak_memory_items <= m * (k + 1),
            "peak memory {} exceeds m(k+1)",
            report.peak_memory_items
        );
    }

    #[test]
    fn short_streams_are_returned_whole() {
        let points = vec![Point::new(vec![1.0]), Point::new(vec![1.0])];
        let alg = BaseStream::new(Euclidean, 3, 2);
        let (out, _) = run_stream(alg, points);
        // Identical points never seed η; all distinct points kept.
        assert_eq!(out.eta, 0.0);
        assert!(!out.centers.is_empty());
    }
}
