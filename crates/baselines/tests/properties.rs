//! Property tests for the baseline streaming algorithms' structural
//! invariants.

use proptest::prelude::*;

use kcenter_baselines::{BaseOutliers, BaseStream, DoublingKCenter};
use kcenter_core::brute_force::optimal_kcenter;
use kcenter_core::solution::radius;
use kcenter_metric::{Euclidean, Point};
use kcenter_stream::{run_stream, StreamingAlgorithm};

fn arb_points(max_n: usize) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec(
        prop::collection::vec(-1e3..1e3f64, 2).prop_map(Point::new),
        1..max_n,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// BaseStream: at most k centers per instance, memory ≤ m(k+1), and the
    /// winning solution covers the whole stream within the 8·OPT envelope.
    #[test]
    fn base_stream_invariants(points in arb_points(48), k in 1usize..4, m in 1usize..4) {
        let alg = BaseStream::new(Euclidean, k, m);
        let (out, report) = run_stream(alg, points.iter().cloned());
        prop_assert!(report.peak_memory_items <= m * (k + 1));
        prop_assert!(!out.centers.is_empty());
        if points.len() > k {
            let (_, opt) = optimal_kcenter(&points, &Euclidean, k.min(points.len() - 1));
            if out.centers.len() <= k {
                let r = radius(&points, &out.centers, &Euclidean);
                prop_assert!(r <= 8.0 * opt + 1e-6, "radius {r} vs 8·OPT {}", 8.0 * opt);
            }
        }
    }

    /// BaseOutliers: bounded memory and at most k centers, any stream.
    #[test]
    fn base_outliers_invariants(
        points in arb_points(60),
        k in 1usize..4,
        z in 0usize..3,
        m in 1usize..3,
    ) {
        let alg = BaseOutliers::new(Euclidean, k, z, m);
        let (out, report) = run_stream(alg, points.iter().cloned());
        let per_instance = (k + 1) * (z + 1) + 1 + k * (z + 1);
        prop_assert!(report.peak_memory_items <= m * per_instance);
        prop_assert!(out.centers.len() <= k.max(1));
    }

    /// The doubling algorithm never stores more than k+1 points and its
    /// output radius respects the 8-approximation whenever it returns ≤ k
    /// centers.
    #[test]
    fn doubling_invariants(points in arb_points(48), k in 1usize..5) {
        let mut alg = DoublingKCenter::new(Euclidean, k);
        for p in &points {
            alg.process(p.clone());
            prop_assert!(alg.memory_items() <= k + 1);
        }
        let phi = alg.phi();
        let out = alg.finalize();
        prop_assert!(out.centers.len() <= k + 1);
        let r = radius(&points, &out.centers, &Euclidean);
        prop_assert!(r <= 8.0 * phi.max(0.0) + 1e-9 || phi == 0.0);
        if points.len() > k {
            let (_, opt) = optimal_kcenter(&points, &Euclidean, k);
            prop_assert!(r <= 8.0 * opt + 1e-6, "radius {r} vs 8·OPT {}", 8.0 * opt);
        }
    }
}
