//! Regression tests pinning the outlier accounting of the McCutchen–Khuller
//! streaming baseline (`BaseOutliers`): a location holding at most `z`
//! points must never spend a cluster on its own — those points are exactly
//! the ones the radius is allowed to ignore.

use kcenter_baselines::mk_outliers::BaseOutliers;
use kcenter_core::solution::radius_with_outliers;
use kcenter_metric::{Euclidean, Point};
use kcenter_stream::run_stream;

/// A cluster needs strictly more than `z` witnesses (i.e. `z+1` free points
/// within `2η`). Exactly `z` coincident far points must therefore never
/// open a cluster — with `k = 1` and the far points arriving *first*, an
/// off-by-one (`>= z`) would hand them the only cluster budget and leave
/// the genuine 100-point cluster uncovered.
#[test]
fn z_far_points_never_consume_the_cluster_budget() {
    let z = 3usize;
    let mut stream: Vec<Point> = (0..z)
        .map(|_| Point::new(vec![50_000.0, 50_000.0]))
        .collect();
    for i in 0..100 {
        stream.push(Point::new(vec![
            (i % 10) as f64 * 0.4,
            (i / 10) as f64 * 0.4,
        ]));
    }

    let alg = BaseOutliers::new(Euclidean, 1, z, 4);
    let (out, _) = run_stream(alg, stream.iter().cloned());
    assert!(!out.centers.is_empty());
    let r = radius_with_outliers(&stream, &out.centers, z, &Euclidean);
    assert!(
        r < 100.0,
        "radius {r}: the z far duplicates grabbed the cluster budget"
    );
}

/// With `z+1` points at the far location the witnesses are genuine: given
/// budget (`k = 2`) both regions must be represented and the radius with
/// zero outliers allowed stays at cluster scale.
#[test]
fn z_plus_one_far_points_do_open_a_cluster() {
    let z = 3usize;
    let mut stream: Vec<Point> = (0..=z)
        .map(|_| Point::new(vec![50_000.0, 50_000.0]))
        .collect();
    for i in 0..100 {
        stream.push(Point::new(vec![
            (i % 10) as f64 * 0.4,
            (i / 10) as f64 * 0.4,
        ]));
    }

    let alg = BaseOutliers::new(Euclidean, 2, z, 4);
    let (out, _) = run_stream(alg, stream.iter().cloned());
    let r = radius_with_outliers(&stream, &out.centers, 0, &Euclidean);
    assert!(
        r < 100.0,
        "radius {r}: the z+1 far points were not given a center"
    );
}
